//! The typed per-task lifecycle.
//!
//! Every task moves through an explicit state machine instead of a pile of
//! ad-hoc booleans. The engine *drives* the machine — arrival, dispatch,
//! enforcement, faults, dead-lettering and replay each request one
//! transition — and the machine *validates* it: the legal-successor table is
//! an exhaustive `match` (adding a phase forces every arm to be revisited at
//! compile time), and any transition outside the table is rejected with an
//! [`IllegalTransition`] error rather than silently corrupting state.
//!
//! ```text
//!             ┌────────────────────────────────────────────┐
//!             ▼                                            │
//! Pending ─► Ready ─► Running ─► Completed                 │
//!    │        ▲ │ ▲      │                                 │
//!    │        │ ▼ │      │ (retry / crash / preemption)────┘
//!    │        │ Requeued │
//!    │        │ │        ▼
//!    └────────┼─┴──► DeadLettered
//!             └────────── (replay)
//! ```

use super::arena::AttemptChain;
use crate::faults::checkpoint_progress_s;
use tora_alloc::resources::ResourceVector;
use tora_metrics::DeadLetterCause;

/// Where a task currently is in its lifecycle.
///
/// The successor table lives in [`TaskPhase::successors`]; everything else
/// (counters, allocations, attempt history) rides along in the engine's
/// per-task state and is only meaningful in the phases that use it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskPhase {
    /// Known to the engine but not yet runnable: the arrival model has not
    /// released it, or a predecessor has not completed.
    Pending,
    /// In the ready queue, waiting for the scheduler to place it.
    Ready,
    /// An attempt is in flight on some worker.
    Running,
    /// A transiently-failed dispatch is backing off before re-queueing.
    Requeued,
    /// Finished successfully — truly terminal, no transitions out.
    Completed,
    /// Abandoned to the dead-letter channel. Terminal for accounting, but a
    /// replayable cause may re-admit the task to `Ready` once the pool
    /// recovers.
    DeadLettered,
}

impl TaskPhase {
    /// Every phase in the machine (the exhaustive-table tests walk this).
    pub const ALL: [TaskPhase; 6] = [
        TaskPhase::Pending,
        TaskPhase::Ready,
        TaskPhase::Running,
        TaskPhase::Requeued,
        TaskPhase::Completed,
        TaskPhase::DeadLettered,
    ];

    /// The legal successors of this phase — the single source of truth for
    /// the whole machine. The `match` is exhaustive over `TaskPhase`, so a
    /// new phase cannot be added without deciding its place here.
    pub fn successors(self) -> &'static [TaskPhase] {
        match self {
            // Released by the arrival model / dependency resolution, or
            // doomed before ever running (dependency cascade, stalled run).
            TaskPhase::Pending => &[TaskPhase::Ready, TaskPhase::DeadLettered],
            // Placed on a worker, bounced by a flaky dispatch, or abandoned
            // (unplaceable, dispatch budget spent, stalled run).
            TaskPhase::Ready => &[
                TaskPhase::Running,
                TaskPhase::Requeued,
                TaskPhase::DeadLettered,
            ],
            // An attempt ends exactly one of three ways: success, a retry
            // (kill / crash / preemption re-queues the task), or terminal
            // abandonment (attempt budget spent, escalation infeasible).
            TaskPhase::Running => &[
                TaskPhase::Ready,
                TaskPhase::Completed,
                TaskPhase::DeadLettered,
            ],
            // Backoff elapsed, or the run stalled while the task waited.
            TaskPhase::Requeued => &[TaskPhase::Ready, TaskPhase::DeadLettered],
            // Success is forever.
            TaskPhase::Completed => &[],
            // Dead-letter replay re-admits the task to the ready queue.
            TaskPhase::DeadLettered => &[TaskPhase::Ready],
        }
    }

    /// Whether `self → to` is in the legal-successor table.
    pub fn can_advance(self, to: TaskPhase) -> bool {
        self.successors().contains(&to)
    }

    /// Whether the phase counts toward run termination (the event loop ends
    /// when every task is `Completed` or `DeadLettered`).
    pub fn is_terminal(self) -> bool {
        matches!(self, TaskPhase::Completed | TaskPhase::DeadLettered)
    }
}

/// A transition outside the legal-successor table.
///
/// The engine never produces one in a well-formed run (the lifecycle
/// proptests drive arbitrary fault plans through the engine to prove it);
/// surfacing the pair instead of panicking deep in a handler keeps the
/// failure debuggable when a future change does break the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalTransition {
    /// The phase the task was in.
    pub from: TaskPhase,
    /// The phase the engine asked for.
    pub to: TaskPhase,
}

impl std::fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "illegal task transition {:?} -> {:?}",
            self.from, self.to
        )
    }
}

impl std::error::Error for IllegalTransition {}

/// Per-task engine state: the lifecycle phase plus the bookkeeping that
/// rides along with it.
pub(crate) struct TaskState {
    /// Where the task is in its lifecycle (see [`TaskPhase`]).
    pub(crate) phase: TaskPhase,
    /// Attempt history, chained through the engine's shared
    /// [`super::arena::AttemptArena`] slab.
    pub(crate) attempts: AttemptChain,
    /// Bumped whenever the task's ready-queue membership is revoked
    /// (dead-letter); entries carrying an older token are stale.
    pub(crate) queue_token: u32,
    /// Allocation for the next dispatch; `None` until first predicted.
    pub(crate) next_alloc: Option<ResourceVector>,
    /// `next_alloc` must not be re-predicted: it was fixed by a retry
    /// escalation (which a later, smaller prediction must not undo) or by a
    /// preemption (resubmit with the same allocation).
    pub(crate) pinned: bool,
    /// Allocator knowledge epoch `next_alloc` was predicted under; stale
    /// unpinned predictions are refreshed at the next scheduling round.
    pub(crate) predicted_epoch: u64,
    /// Whether the arrival model has released the task.
    pub(crate) arrived: bool,
    /// Predecessors still running (Fig. 1's dependency resolution).
    pub(crate) deps_remaining: usize,
    /// Consecutive transient dispatch failures (reset on success).
    pub(crate) dispatch_failures: usize,
    /// Consecutive scheduling rounds spent ready but unplaceable on every
    /// live worker (reset whenever some worker could ever host it).
    pub(crate) unplaceable_strikes: usize,
    /// How many times the task was pulled back from the dead-letter channel
    /// (bounded by the plan's `max_replay_rounds`).
    pub(crate) replays: usize,
    /// Why the task is currently dead-lettered (`None` while live); decides
    /// replay eligibility without searching the metrics.
    pub(crate) dead_cause: Option<DeadLetterCause>,
    /// Checkpointed work carried across crashed attempts, in seconds of the
    /// task's nominal duration. Zero unless the fault plan enables
    /// checkpoint/restart (`checkpointed_fraction > 0`). The bank survives
    /// dead-lettering and replay — a persisted checkpoint outlives the
    /// scheduler's opinion of the task.
    pub(crate) salvaged_s: f64,
}

impl TaskState {
    pub(crate) fn fresh(deps_remaining: usize, arrived: bool) -> Self {
        TaskState {
            phase: TaskPhase::Pending,
            attempts: AttemptChain::default(),
            queue_token: 0,
            next_alloc: None,
            pinned: false,
            predicted_epoch: 0,
            arrived,
            deps_remaining,
            dispatch_failures: 0,
            unplaceable_strikes: 0,
            replays: 0,
            dead_cause: None,
            salvaged_s: 0.0,
        }
    }

    /// Drive the lifecycle one step, validating against the successor
    /// table. The engine `expect`s the result: an `Err` here is an engine
    /// bug, never a property of the workload or fault plan.
    pub(crate) fn advance(&mut self, to: TaskPhase) -> Result<(), IllegalTransition> {
        if !self.phase.can_advance(to) {
            return Err(IllegalTransition {
                from: self.phase,
                to,
            });
        }
        self.phase = to;
        Ok(())
    }

    /// Terminally abandoned (dead-lettered): must never run again unless
    /// replay re-admits it.
    pub(crate) fn is_dead(&self) -> bool {
        self.phase == TaskPhase::DeadLettered
    }

    /// Finished successfully.
    pub(crate) fn is_completed(&self) -> bool {
        self.phase == TaskPhase::Completed
    }

    /// Bank checkpointed progress from a crashed attempt: `fraction` of the
    /// work the attempt actually finished (capped at what was left to do)
    /// carries forward to the next dispatch. Returns the salvaged seconds.
    pub(crate) fn bank_salvage(
        &mut self,
        fraction: f64,
        elapsed_s: f64,
        work_rate: f64,
        remaining_s: f64,
    ) -> f64 {
        let salvaged = fraction * checkpoint_progress_s(elapsed_s, work_rate, remaining_s);
        if salvaged > 0.0 {
            self.salvaged_s += salvaged;
        }
        salvaged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full legal-transition table, spelled out pair by pair. This is
    /// deliberately redundant with `successors()`: the test encodes the
    /// *intended* machine so an accidental edit to the table shows up as a
    /// diff against intent, not a silently changed contract.
    const LEGAL: [(TaskPhase, TaskPhase); 11] = [
        (TaskPhase::Pending, TaskPhase::Ready),
        (TaskPhase::Pending, TaskPhase::DeadLettered),
        (TaskPhase::Ready, TaskPhase::Running),
        (TaskPhase::Ready, TaskPhase::Requeued),
        (TaskPhase::Ready, TaskPhase::DeadLettered),
        (TaskPhase::Requeued, TaskPhase::Ready),
        (TaskPhase::Requeued, TaskPhase::DeadLettered),
        (TaskPhase::Running, TaskPhase::Ready),
        (TaskPhase::Running, TaskPhase::Completed),
        (TaskPhase::Running, TaskPhase::DeadLettered),
        (TaskPhase::DeadLettered, TaskPhase::Ready),
    ];

    #[test]
    fn exhaustive_transition_table_matches_intent() {
        for from in TaskPhase::ALL {
            for to in TaskPhase::ALL {
                let want = LEGAL.contains(&(from, to));
                assert_eq!(
                    from.can_advance(to),
                    want,
                    "{from:?} -> {to:?}: table says {want}"
                );
            }
        }
        // Every successor list is consistent with the pair table too.
        for from in TaskPhase::ALL {
            for &to in from.successors() {
                assert!(LEGAL.contains(&(from, to)), "{from:?} -> {to:?}");
            }
        }
    }

    #[test]
    fn completed_is_absorbing_and_dead_letter_only_replays() {
        assert!(TaskPhase::Completed.successors().is_empty());
        assert_eq!(TaskPhase::DeadLettered.successors(), &[TaskPhase::Ready]);
        assert!(TaskPhase::Completed.is_terminal());
        assert!(TaskPhase::DeadLettered.is_terminal());
        for live in [
            TaskPhase::Pending,
            TaskPhase::Ready,
            TaskPhase::Running,
            TaskPhase::Requeued,
        ] {
            assert!(!live.is_terminal(), "{live:?}");
        }
    }

    #[test]
    fn advance_applies_legal_and_rejects_illegal_transitions() {
        let mut t = TaskState::fresh(0, true);
        assert_eq!(t.phase, TaskPhase::Pending);
        t.advance(TaskPhase::Ready).unwrap();
        t.advance(TaskPhase::Running).unwrap();
        t.advance(TaskPhase::Completed).unwrap();
        // Success is forever: every exit from Completed is rejected and the
        // phase is left untouched.
        for to in TaskPhase::ALL {
            let err = t.advance(to).unwrap_err();
            assert_eq!(
                err,
                IllegalTransition {
                    from: TaskPhase::Completed,
                    to
                }
            );
            assert_eq!(t.phase, TaskPhase::Completed);
        }
        let msg = format!(
            "{}",
            IllegalTransition {
                from: TaskPhase::Completed,
                to: TaskPhase::Ready
            }
        );
        assert!(msg.contains("Completed"), "{msg}");
    }

    #[test]
    fn every_phase_is_reachable_from_pending() {
        // Walk the machine breadth-first: the table must not strand any
        // declared phase.
        let mut seen = vec![TaskPhase::Pending];
        let mut frontier = vec![TaskPhase::Pending];
        while let Some(p) = frontier.pop() {
            for &next in p.successors() {
                if !seen.contains(&next) {
                    seen.push(next);
                    frontier.push(next);
                }
            }
        }
        for phase in TaskPhase::ALL {
            assert!(seen.contains(&phase), "{phase:?} unreachable");
        }
    }

    #[test]
    fn salvage_bank_accumulates_and_clamps_to_remaining_work() {
        let mut t = TaskState::fresh(0, true);
        // Half-checkpointing, full-speed attempt: 30 s elapsed of 100 s
        // remaining banks 15 s.
        assert_eq!(t.bank_salvage(0.5, 30.0, 1.0, 100.0), 15.0);
        assert_eq!(t.salvaged_s, 15.0);
        // A stretched (straggling) attempt progresses at its work rate.
        assert_eq!(t.bank_salvage(0.5, 40.0, 0.25, 85.0), 5.0);
        assert_eq!(t.salvaged_s, 20.0);
        // Progress can never exceed the work that was left.
        assert_eq!(t.bank_salvage(1.0, 1e9, 1.0, 80.0), 80.0);
        assert_eq!(t.salvaged_s, 100.0);
        // A hung attempt (work rate zero) checkpoints nothing.
        assert_eq!(t.bank_salvage(1.0, 50.0, 0.0, 80.0), 0.0);
        assert_eq!(t.salvaged_s, 100.0);
    }
}
