//! The deterministic discrete-event queue.
//!
//! Events are ordered by `(time, seq)`: simulated time first, then a
//! monotonically increasing sequence number assigned at scheduling time.
//! The tie-break makes simultaneous events fire in exactly the order they
//! were scheduled, on every platform, every run — the golden chaos suite
//! pins entire fault timelines byte for byte on this property.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// What the engine can wake up to.
#[derive(Debug)]
pub(crate) enum Event {
    Finish {
        dispatch: u64,
    },
    Arrive {
        task_idx: usize,
    },
    Churn,
    /// A worker crashes abruptly (fault plan), losing its running attempts.
    Crash,
    /// A correlated failure takes out a whole rack of workers at once.
    RackCrash,
    /// A task whose dispatch failed transiently re-enters the ready queue
    /// after its backoff.
    Requeue {
        task_idx: usize,
    },
}

/// One scheduled event: a payload, its fire time and its tie-break rank.
pub(crate) struct QueuedEvent {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: Event,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The priority queue itself: a min-heap over `(time, seq)` that owns the
/// sequence counter, so deterministic tie-breaking cannot be forgotten at a
/// call site.
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at `time`, stamping the next sequence number.
    pub(crate) fn schedule(&mut self, time: SimTime, event: Event) {
        self.seq += 1;
        self.heap.push(Reverse(QueuedEvent {
            time,
            seq: self.seq,
            event,
        }));
    }

    /// Pop the earliest event: smallest time, then earliest scheduled.
    pub(crate) fn pop(&mut self) -> Option<QueuedEvent> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + 5.0, Event::Churn);
        q.schedule(SimTime::ZERO + 1.0, Event::Crash);
        q.schedule(SimTime::ZERO + 3.0, Event::RackCrash);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.seconds())
            .collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + 10.0;
        for task_idx in 0..50 {
            q.schedule(t, Event::Arrive { task_idx });
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.event {
                Event::Arrive { task_idx } => task_idx,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>(), "FIFO at equal times");
    }

    #[test]
    fn sequence_numbers_are_unique_and_monotonic() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + 2.0, Event::Churn);
        q.schedule(SimTime::ZERO + 1.0, Event::Churn);
        q.schedule(SimTime::ZERO + 2.0, Event::Churn);
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        // Popped in (time, seq) order; the stamps themselves are 1-based
        // scheduling ranks.
        assert_eq!(seqs, vec![2, 1, 3]);
    }
}
