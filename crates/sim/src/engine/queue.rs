//! The deterministic discrete-event queue.
//!
//! Events are ordered by `(time, seq)`: simulated time first, then a
//! monotonically increasing sequence number assigned at scheduling time.
//! The tie-break makes simultaneous events fire in exactly the order they
//! were scheduled, on every platform, every run — the golden chaos suite
//! pins entire fault timelines byte for byte on this property.
//!
//! Internally the queue is a *calendar queue* (Brown 1988): a ring of time
//! buckets, each `width` simulated seconds wide, scanned one epoch window
//! at a time. Push is O(1); pop scans only the current window, which the
//! resize policy keeps at O(1) events on average, so both ends are O(1)
//! amortized where a `BinaryHeap` pays O(log n) per million-task event.
//! The structure is invisible in output: pop always returns the exact
//! `(time, seq)` minimum, so bucket width and resize thresholds can never
//! change a simulation result, only its speed.

use super::arena::RunId;
use crate::time::SimTime;

/// What the engine can wake up to.
#[derive(Debug)]
pub(crate) enum Event {
    Finish {
        run: RunId,
    },
    Arrive {
        task_idx: usize,
    },
    Churn,
    /// A worker crashes abruptly (fault plan), losing its running attempts.
    Crash,
    /// A correlated failure takes out a whole rack of workers at once.
    RackCrash,
    /// A task whose dispatch failed transiently re-enters the ready queue
    /// after its backoff.
    Requeue {
        task_idx: usize,
    },
}

/// One scheduled event: a payload, its fire time and its tie-break rank.
pub(crate) struct QueuedEvent {
    pub(crate) time: SimTime,
    pub(crate) seq: u64,
    pub(crate) event: Event,
    /// Epoch key `floor(time / width)`, stamped at insertion (and
    /// re-stamped on rebuild, where the width changes). Window membership
    /// is the integer comparison `key == epoch` — the *same* computation
    /// that placed the event in its bucket, so bucket placement and window
    /// scans can never disagree, even where floating-point edges round.
    key: u64,
}

impl QueuedEvent {
    /// The total order the queue guarantees.
    fn rank(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Smallest bucket count; also the floor the queue shrinks back to.
const MIN_BUCKETS: usize = 16;
/// Largest bucket count. Beyond this the per-bucket allocation churn of a
/// rebuild costs more (in page faults) than the slightly longer window
/// scans save: a million-event backlog at 2^16 buckets still averages
/// only ~16 events per window.
const MAX_BUCKETS: usize = 1 << 16;
/// Grow when the population exceeds this many events per bucket.
const GROW_AT: usize = 2;

/// The calendar queue itself. It owns the sequence counter, so
/// deterministic tie-breaking cannot be forgotten at a call site.
///
/// Invariant: every pending event's key is at least `epoch` (the current
/// window). It holds because pop only advances the window past empty
/// regions, and the engine never schedules into the past — new events
/// land at or after the time being processed.
pub(crate) struct EventQueue {
    buckets: Vec<Vec<QueuedEvent>>,
    /// Simulated seconds covered by one bucket per epoch.
    width: f64,
    /// The window being scanned: events whose key equals this epoch.
    /// Integer arithmetic only — the epoch never drifts the way a
    /// float accumulator (`cur_top += width`) would.
    epoch: u64,
    len: usize,
    seq: u64,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1.0,
            epoch: 0,
            len: 0,
            seq: 0,
        }
    }

    /// Schedule `event` at `time`, stamping the next sequence number.
    pub(crate) fn schedule(&mut self, time: SimTime, event: Event) {
        self.seq += 1;
        if self.len >= GROW_AT * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            let target = (self.len * 2).next_power_of_two().min(MAX_BUCKETS);
            self.rebuild(target);
        }
        let key = self.key_of(time);
        let bucket = (key % self.buckets.len() as u64) as usize;
        self.buckets[bucket].push(QueuedEvent {
            time,
            seq: self.seq,
            event,
            key,
        });
        self.len += 1;
    }

    /// Pop the earliest event: smallest time, then earliest scheduled.
    pub(crate) fn pop(&mut self) -> Option<QueuedEvent> {
        if self.len == 0 {
            return None;
        }
        if self.buckets.len() > MIN_BUCKETS && self.len * 8 < self.buckets.len() {
            let target = (self.len * 2).next_power_of_two().max(MIN_BUCKETS);
            self.rebuild(target);
        }
        let n = self.buckets.len();
        for _ in 0..n {
            let cur = (self.epoch % n as u64) as usize;
            if let Some(best) = self.min_in_window(cur) {
                self.len -= 1;
                return Some(self.buckets[cur].swap_remove(best));
            }
            self.epoch += 1;
        }
        // Sparse tail: a full epoch cycle is empty, so jump the window
        // straight to the global minimum instead of spinning across years.
        let (bucket, idx) = self.global_min();
        self.epoch = self.buckets[bucket][idx].key;
        self.len -= 1;
        Some(self.buckets[bucket].swap_remove(idx))
    }

    /// Epoch key `time` falls into under the current width.
    fn key_of(&self, time: SimTime) -> u64 {
        (time.seconds().max(0.0) / self.width).floor() as u64
    }

    /// Index of the `(time, seq)`-smallest event in bucket `cur` belonging
    /// to the current epoch, if any. By the queue invariant (no event ever
    /// lands in a past epoch) that event is the global minimum.
    fn min_in_window(&self, cur: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, ev) in self.buckets[cur].iter().enumerate() {
            if ev.key != self.epoch {
                continue;
            }
            if best.is_none_or(|b| ev.rank() < self.buckets[cur][b].rank()) {
                best = Some(i);
            }
        }
        best
    }

    /// `(bucket, index)` of the `(time, seq)`-smallest pending event.
    /// Only reached on the sparse-tail path, so the O(n) scan is rare.
    fn global_min(&self) -> (usize, usize) {
        let mut best: Option<((SimTime, u64), (usize, usize))> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, ev) in bucket.iter().enumerate() {
                if best.is_none_or(|(rank, _)| ev.rank() < rank) {
                    best = Some((ev.rank(), (b, i)));
                }
            }
        }
        best.expect("global_min on empty queue").1
    }

    /// Re-bucket every pending event into `nbuckets` buckets, re-deriving
    /// the width from the observed event-time span so the average window
    /// holds O(1) events. Keys are re-stamped under the new width, and the
    /// epoch resumes at the current position translated into new-width
    /// units — clamped to the earliest re-stamped key, so boundary
    /// rounding in the translation can never strand a pending event in a
    /// past window.
    fn rebuild(&mut self, nbuckets: usize) {
        let resume_s = self.epoch as f64 * self.width;
        let mut pending: Vec<QueuedEvent> =
            self.buckets.iter_mut().flat_map(|b| b.drain(..)).collect();
        if let (Some(lo), Some(hi)) = (
            pending.iter().map(|e| e.time).min(),
            pending.iter().map(|e| e.time).max(),
        ) {
            let span = hi.seconds() - lo.seconds();
            if span > 0.0 {
                self.width = (span / pending.len() as f64).clamp(1e-3, 1e6);
            }
        }
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        self.epoch = (resume_s / self.width).floor() as u64;
        for ev in &mut pending {
            ev.key = (ev.time.seconds().max(0.0) / self.width).floor() as u64;
            self.epoch = self.epoch.min(ev.key);
        }
        for ev in pending {
            let bucket = (ev.key % nbuckets as u64) as usize;
            self.buckets[bucket].push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + 5.0, Event::Churn);
        q.schedule(SimTime::ZERO + 1.0, Event::Crash);
        q.schedule(SimTime::ZERO + 3.0, Event::RackCrash);
        let times: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.seconds())
            .collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        let t = SimTime::ZERO + 10.0;
        for task_idx in 0..50 {
            q.schedule(t, Event::Arrive { task_idx });
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.event {
                Event::Arrive { task_idx } => task_idx,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>(), "FIFO at equal times");
    }

    #[test]
    fn sequence_numbers_are_unique_and_monotonic() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + 2.0, Event::Churn);
        q.schedule(SimTime::ZERO + 1.0, Event::Churn);
        q.schedule(SimTime::ZERO + 2.0, Event::Churn);
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        // Popped in (time, seq) order; the stamps themselves are 1-based
        // scheduling ranks.
        assert_eq!(seqs, vec![2, 1, 3]);
    }

    #[test]
    fn ties_break_by_seq_across_bucket_resizes() {
        // Enough events to force several grow rebuilds, with deliberate
        // time collisions so the (time, seq) tie-break is exercised under
        // re-bucketing, plus a sparse far-future tail to hit the
        // global-min jump.
        let mut q = EventQueue::new();
        let mut expect: Vec<(u64, u64)> = Vec::new(); // (time_key, seq)
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        for i in 0..4000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = (state >> 33) % 97; // heavy collisions in [0, 97)
            q.schedule(SimTime::ZERO + t as f64, Event::Churn);
            expect.push((t, i + 1));
        }
        q.schedule(SimTime::ZERO + 1.0e6, Event::Crash);
        expect.push((1_000_000, 4001));
        expect.sort_unstable();
        let got: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time.seconds() as u64, e.seq))
            .collect();
        assert_eq!(got, expect, "exact (time, seq) order survives resizes");
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        // Mimic the engine: pop one event, schedule a few more at or after
        // the popped time (never into the past).
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, Event::Churn);
        let mut last = (SimTime::ZERO, 0u64);
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut popped = 1usize;
        let mut scheduled = 1usize;
        while let Some(ev) = q.pop() {
            assert!((ev.time, ev.seq) > last, "pop order regressed");
            last = (ev.time, ev.seq);
            popped += 1;
            while scheduled < 3000 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let delta = ((state >> 40) % 1000) as f64 / 10.0;
                q.schedule(ev.time + delta, Event::Churn);
                scheduled += 1;
                if scheduled.is_multiple_of(3) {
                    break;
                }
            }
        }
        assert_eq!(popped - 1, 3000, "every scheduled event popped once");
    }
}
