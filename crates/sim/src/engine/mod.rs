//! The discrete-event workflow engine.
//!
//! Reproduces the execution loop of Figure 1: ready tasks are allocated at
//! dispatch time (the moment the paper's contribution acts), placed
//! first-fit on opportunistic workers, killed when they over-consume, and
//! retried with a bigger allocation. Completed tasks report their resource
//! records back to the allocator. Workers may join and leave mid-run; a
//! departing worker preempts its tasks, which are resubmitted with their
//! current allocation (preemption is an infrastructure artifact, not an
//! allocation failure, so it does not enter the §II-C waste metric — the
//! result reports it separately).
//!
//! # Architecture
//!
//! The engine is layered; each layer owns one concern and this module only
//! orchestrates:
//!
//! | module      | owns |
//! |-------------|------|
//! | [`lifecycle`] | the typed per-task state machine ([`TaskPhase`]) and per-task bookkeeping |
//! | `queue`     | the `(time, seq)`-ordered event queue with deterministic tie-breaking |
//! | `dispatch`  | allocation at dispatch time, placement, flaky-dispatch backoff, attempt completion |
//! | `faults`    | crash / rack-crash / straggler injection and checkpoint salvage |
//! | `churn`     | pool evolution and preemption |
//! | `replay`    | the dead-letter channel and its replay path |
//!
//! Every task transition is driven through [`lifecycle::TaskPhase`]'s legal-
//! successor table; an illegal transition is an engine bug and fails fast.

mod arena;
mod churn;
mod critical;
mod dispatch;
mod faults;
pub mod lifecycle;
mod queue;
mod replay;

#[cfg(test)]
mod fault_tests;
#[cfg(test)]
mod tests;

pub use lifecycle::{IllegalTransition, TaskPhase};

use self::arena::{AttemptArena, RunArena, RunId};
use self::critical::CriticalPath;
use self::lifecycle::TaskState;
use self::queue::{Event, EventQueue};
use crate::enforcement::EnforcementModel;
use crate::faults::FaultPlan;
use crate::log::{EventLog, SimEvent};
use crate::sampling::exponential_interval_s;
use crate::scheduler::QueuePolicy;
use crate::stats::{SimStats, UtilizationSample, UtilizationSeries};
use crate::time::SimTime;
use crate::workers::{ChurnConfig, WorkerId, WorkerPool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap, VecDeque};
use tora_alloc::allocator::{AlgorithmKind, Allocator, AllocatorConfig};
use tora_alloc::feedback::{AttemptFeedback, FaultPolicy};
use tora_alloc::resources::{ResourceVector, WorkerSpec};
use tora_alloc::task::CategoryId;
use tora_alloc::task::{TaskFeatures, TaskSpec};
use tora_alloc::trace::{EventSink, NoopSink};
use tora_metrics::{DeadLetterCause, WorkflowMetrics};
use tora_workloads::{TaskSource, Workflow};

/// How the dynamic workflow generates (submits) its tasks over time.
///
/// Dynamic workflow systems generate tasks *at runtime* (§I) — the manager
/// rarely sees the whole workload at once. The arrival model bounds how many
/// tasks can pile up in exploratory mode before the first records return.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ArrivalModel {
    /// Every task is ready at time zero (a static batch — the worst case for
    /// the exploratory phase).
    #[default]
    Batch,
    /// Tasks are generated with exponential inter-arrival times of the given
    /// mean, in submission order.
    Poisson {
        /// Mean seconds between submissions.
        mean_interval_s: f64,
    },
}

/// Optional heterogeneous pool: a fraction of joining workers are scaled-up
/// nodes (opportunistic pools frequently mix slot sizes). Spatial capacity is
/// multiplied; the wall-time axis is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerMix {
    /// Probability that a joining worker is a large one.
    pub large_fraction: f64,
    /// Spatial capacity multiplier of the mixed-in workers (> 0; values
    /// below 1 model workers *smaller* than the workflow's base shape, which
    /// is how a shrinking pool strands over-sized allocations).
    pub scale: f64,
}

impl WorkerMix {
    /// Validate the mix parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.large_fraction) {
            return Err(format!("bad large_fraction {}", self.large_fraction));
        }
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(format!("bad scale {}", self.scale));
        }
        Ok(())
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// How failed attempts are timed.
    pub enforcement: EnforcementModel,
    /// Worker pool evolution.
    pub churn: ChurnConfig,
    /// Heterogeneous pool mix (`None` = every worker matches the workflow's
    /// base shape).
    pub worker_mix: Option<WorkerMix>,
    /// Task submission process.
    pub arrival: ArrivalModel,
    /// Ready-queue scheduling policy.
    pub queue_policy: QueuePolicy,
    /// Record a structured [`EventLog`] of the run.
    pub record_log: bool,
    /// Sample a pool [`UtilizationSeries`] at every event.
    pub track_utilization: bool,
    /// RNG seed (drives the allocator's bucket sampling, arrivals and the
    /// churn).
    pub seed: u64,
    /// Fault-injection plan (crashes, stragglers, lost records, flaky
    /// dispatch) plus the resilience budgets bounding them. The default
    /// [`FaultPlan::none`] reproduces fault-free behaviour exactly.
    #[serde(default)]
    pub faults: FaultPlan,
    /// Fault-feedback policy for the embedded allocator: when set, attempt
    /// outcomes are reported back and the allocator pads/escalates its
    /// predictions from the windowed fault rate. `None` (the default)
    /// compiles the channel out of the decision path entirely.
    #[serde(default)]
    pub fault_policy: Option<FaultPolicy>,
    /// Worker threads for the allocator's category-sharded prediction and
    /// rebucketing paths. `0` (the default) auto-detects via
    /// [`tora_alloc::par::detected_threads`] (`TORA_THREADS` override,
    /// cgroup CPU quota, hardware parallelism, in that order). Output is
    /// byte-identical at any value — this knob trades wall-clock only.
    #[serde(default)]
    pub threads: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            enforcement: EnforcementModel::default(),
            churn: ChurnConfig::fixed(20),
            worker_mix: None,
            arrival: ArrivalModel::Batch,
            queue_policy: QueuePolicy::Fifo,
            record_log: false,
            track_utilization: false,
            seed: 0,
            faults: FaultPlan::none(),
            fault_policy: None,
            threads: 0,
        }
    }
}

impl SimConfig {
    /// The paper-like setting: opportunistic 20–50 worker pool with ramp-up
    /// and runtime task generation.
    pub fn paper_like(seed: u64) -> Self {
        SimConfig {
            enforcement: EnforcementModel::default(),
            churn: ChurnConfig::paper_like(),
            worker_mix: None,
            arrival: ArrivalModel::Poisson {
                mean_interval_s: 1.5,
            },
            queue_policy: QueuePolicy::Fifo,
            record_log: false,
            track_utilization: false,
            seed,
            faults: FaultPlan::none(),
            fault_policy: None,
            threads: 0,
        }
    }
}

/// Aggregate result of one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// §II-C metrics over every completed task.
    pub metrics: WorkflowMetrics,
    /// Wall-clock length of the run in simulated seconds.
    pub makespan_s: f64,
    /// Number of task preemptions caused by departing workers.
    pub preemptions: usize,
    /// Allocation·time lost to preempted attempts, per dimension (not part
    /// of the paper's waste metric; reported for completeness).
    pub preempted_alloc_time: ResourceVector,
    /// Smallest and largest pool size observed.
    pub worker_range: (usize, usize),
    /// Total dispatches (successful + killed + preempted attempts).
    pub dispatches: usize,
    /// Engine-side tally of dispatches, completions, failures and allocator
    /// calls — the reconciliation counterpart of the allocator's own
    /// [`tora_alloc::trace::TraceStats`].
    pub stats: SimStats,
    /// The structured event log (when `record_log` was set).
    pub log: Option<EventLog>,
    /// The pool utilization series (when `track_utilization` was set).
    pub utilization: Option<UtilizationSeries>,
}

/// A dynamic-workflow application driver (Fig. 1's application layer).
///
/// The defining property of the paper's workflow class is that "tasks'
/// definitions and dependencies are generated and inferred at runtime" (§I).
/// A driver is the application side of that loop: it submits an initial
/// batch of tasks and reacts to every completion — possibly submitting more
/// work based on the results (Colmena's steering, Coffea's
/// partition-then-accumulate). Driver-submitted tasks become ready
/// immediately (subject to their dependencies); the static [`Workflow`] path
/// is the degenerate driver that submits everything up front.
pub trait Driver: Send {
    /// Called once at time zero.
    fn on_start(&mut self, api: &mut SubmitApi);
    /// Called after each task completes successfully.
    fn on_task_complete(&mut self, task: &TaskSpec, api: &mut SubmitApi);
}

/// The submission handle a [`Driver`] writes new tasks through.
pub struct SubmitApi {
    submissions: Vec<(u32, TaskFeatures, ResourceVector, f64, Vec<u64>)>,
    next_id: u64,
}

impl SubmitApi {
    /// Submit an independent task; returns its id.
    pub fn submit(&mut self, category: u32, peak: ResourceVector, duration_s: f64) -> u64 {
        self.submit_with_deps(category, peak, duration_s, Vec::new())
    }

    /// Submit a task depending on earlier task ids; returns its id.
    ///
    /// # Panics
    /// If a dependency id is not strictly smaller than the new task's id.
    pub fn submit_with_deps(
        &mut self,
        category: u32,
        peak: ResourceVector,
        duration_s: f64,
        deps: Vec<u64>,
    ) -> u64 {
        self.submit_featured(category, TaskFeatures::default(), peak, duration_s, deps)
    }

    /// Submit a task carrying a pre-run feature vector, for
    /// feature-conditioned allocators; returns its id.
    ///
    /// # Panics
    /// If a dependency id is not strictly smaller than the new task's id.
    pub fn submit_featured(
        &mut self,
        category: u32,
        features: TaskFeatures,
        peak: ResourceVector,
        duration_s: f64,
        deps: Vec<u64>,
    ) -> u64 {
        let id = self.next_id;
        assert!(
            deps.iter().all(|&d| d < id),
            "dependencies must reference earlier tasks"
        );
        self.next_id += 1;
        self.submissions
            .push((category, features, peak, duration_s, deps));
        id
    }
}

/// The engine.
///
/// Generic over an [`EventSink`] so a run can be traced end to end: with a
/// non-default sink (see [`Simulation::with_sink`]) the embedded allocator
/// emits an [`tora_alloc::trace::AllocEvent`] for every decision it makes,
/// while the engine independently tallies its calls in [`SimStats`]. The
/// default [`NoopSink`] compiles all of that out.
pub struct Simulation<S: EventSink = NoopSink> {
    worker: WorkerSpec,
    specs: Vec<TaskSpec>,
    /// Streaming generator: specs are pulled on demand (just before each
    /// arrival fires), so a million-task workload never sits fully
    /// materialized ahead of the event horizon.
    source: Option<Box<dyn TaskSource>>,
    /// Total the source will yield; `specs` grows toward it lazily.
    source_total: usize,
    /// The source's bounded dependency lookahead (`0` = dependency-free).
    /// A dead-letter first materializes this span past the dying task so
    /// every potential dependent exists before the cascade — which keeps
    /// cascade timing byte-identical to the materialized run.
    source_window: usize,
    /// Incremental critical-path tracker; present iff the workload carries
    /// dependency structure.
    cp: Option<CriticalPath>,
    driver: Option<Box<dyn Driver>>,
    allocator: Allocator<S>,
    config: SimConfig,
    pool: WorkerPool,
    churn_rng: StdRng,
    /// Dedicated fault stream: a plan of all-zero rates draws nothing, so
    /// the churn/arrival/allocator streams are never perturbed.
    fault_rng: StdRng,
    events: EventQueue,
    dispatch_ids: u64,
    /// In-flight attempts, slab-allocated with generational handles so a
    /// stale `Finish` event (preemption, crash) is recognized in O(1).
    running: RunArena,
    /// Live attempts per worker — the departure/crash victim index. Victims
    /// are still ordered by dispatch number, so slot reuse is invisible.
    running_by_worker: HashMap<WorkerId, Vec<(u64, RunId)>>,
    /// Attempt histories for every task, chained through one shared slab.
    attempt_arena: AttemptArena,
    /// Ready queue entries are `(task, queue_token)`; a dead-letter bumps
    /// the task's token instead of scanning the queue, and stale entries
    /// are dropped lazily at dispatch time.
    ready: VecDeque<(usize, u32)>,
    tasks: Vec<TaskState>,
    dependents: Vec<Vec<usize>>,
    /// Dead-lettered tasks with a replayable cause, kept in task order so
    /// replay re-admission scans only genuine candidates.
    replay_candidates: BTreeSet<usize>,
    completed: usize,
    /// Tasks abandoned to the dead-letter channel (terminal, like
    /// completion: the run ends when `completed + dead_lettered` covers
    /// every task).
    dead_lettered: usize,
    now: SimTime,
    result_metrics: WorkflowMetrics,
    preempted_alloc_time: ResourceVector,
    worker_range: (usize, usize),
    stats: SimStats,
    /// Bumped on every observation; invalidates unpinned cached predictions.
    alloc_epoch: u64,
    /// Resolved allocator worker-thread count (`config.threads`, with `0`
    /// auto-detected at construction). Purely a wall-clock knob: the
    /// category-sharded allocator is byte-identical at any value.
    threads: usize,
    /// Lifetime count of workers that ever joined (including the initial
    /// pool); drives the deterministic round-robin rack assignment.
    joined_workers: u64,
    /// Largest pool size ever observed; the reference point for the
    /// dead-letter replay capacity threshold.
    peak_workers: usize,
    log: Option<EventLog>,
    utilization: Option<UtilizationSeries>,
}

impl Simulation {
    /// Build an engine for one (static) workflow and algorithm.
    pub fn new(workflow: &Workflow, algorithm: AlgorithmKind, config: SimConfig) -> Self {
        let mut sim = Self::bare(workflow.worker, algorithm, config);
        sim.specs = workflow.tasks.clone();
        sim.tasks = workflow
            .tasks
            .iter()
            .enumerate()
            .map(|(i, _)| TaskState::fresh(workflow.deps_of(i).len(), false))
            .collect();
        // Reverse adjacency for dependency resolution.
        sim.dependents = vec![Vec::new(); workflow.len()];
        for i in 0..workflow.len() {
            for &d in workflow.deps_of(i) {
                sim.dependents[d as usize].push(i);
            }
        }
        if workflow.has_dependencies() {
            let mut cp = CriticalPath::new();
            for i in 0..workflow.len() {
                cp.push(workflow.tasks[i].duration_s, workflow.deps_of(i));
            }
            sim.cp = Some(cp);
        }
        sim
    }

    /// Build an engine that pulls its tasks lazily from a streaming
    /// [`TaskSource`] — the scaling path. Specs are generated on demand as
    /// their arrivals fire, so generation overlaps simulation and the
    /// engine's footprint stays bounded by what has actually arrived. The
    /// run is byte-identical to `Simulation::new` over the materialized
    /// form of the same source.
    pub fn from_source(
        source: Box<dyn TaskSource>,
        algorithm: AlgorithmKind,
        config: SimConfig,
    ) -> Self {
        let mut sim = Self::bare(source.worker(), algorithm, config);
        sim.source_total = source.total_tasks();
        sim.source_window = source.dependency_window();
        if sim.source_window > 0 {
            sim.cp = Some(CriticalPath::new());
        }
        sim.specs.reserve(sim.source_total.min(1 << 20));
        sim.source = Some(source);
        sim
    }

    /// Build an engine whose tasks are generated at runtime by `driver`
    /// (no static workload).
    pub fn with_driver(
        driver: Box<dyn Driver>,
        worker: WorkerSpec,
        algorithm: AlgorithmKind,
        config: SimConfig,
    ) -> Self {
        let mut sim = Self::bare(worker, algorithm, config);
        sim.driver = Some(driver);
        sim
    }

    /// Attach an [`EventSink`] to the embedded allocator, turning this
    /// engine into a traced one. Retrieve the sink afterwards with
    /// [`Simulation::run_traced`].
    pub fn with_sink<S: EventSink>(self, sink: S) -> Simulation<S> {
        Simulation {
            worker: self.worker,
            specs: self.specs,
            source: self.source,
            source_total: self.source_total,
            source_window: self.source_window,
            cp: self.cp,
            driver: self.driver,
            allocator: self.allocator.with_sink(sink),
            config: self.config,
            pool: self.pool,
            churn_rng: self.churn_rng,
            fault_rng: self.fault_rng,
            events: self.events,
            dispatch_ids: self.dispatch_ids,
            running: self.running,
            running_by_worker: self.running_by_worker,
            attempt_arena: self.attempt_arena,
            ready: self.ready,
            tasks: self.tasks,
            dependents: self.dependents,
            replay_candidates: self.replay_candidates,
            completed: self.completed,
            dead_lettered: self.dead_lettered,
            now: self.now,
            result_metrics: self.result_metrics,
            preempted_alloc_time: self.preempted_alloc_time,
            worker_range: self.worker_range,
            stats: self.stats,
            alloc_epoch: self.alloc_epoch,
            threads: self.threads,
            joined_workers: self.joined_workers,
            peak_workers: self.peak_workers,
            log: self.log,
            utilization: self.utilization,
        }
    }

    fn bare(worker: WorkerSpec, algorithm: AlgorithmKind, config: SimConfig) -> Self {
        config.churn.validate().expect("invalid churn config");
        config.faults.validate().expect("invalid fault plan");
        let alloc_config = AllocatorConfig {
            machine: worker,
            ..AllocatorConfig::default()
        };
        if let Some(mix) = config.worker_mix {
            mix.validate().expect("invalid worker mix");
        }
        if let Some(policy) = config.fault_policy {
            policy.validate().expect("invalid fault policy");
        }
        let mut allocator = Allocator::with_config(algorithm, alloc_config, config.seed);
        allocator.set_fault_policy(config.fault_policy);
        let mut churn_rng = StdRng::seed_from_u64(config.seed ^ 0xC4_0A17);
        let mut pool = WorkerPool::new();
        let mut joined_workers = 0u64;
        for _ in 0..config.churn.initial {
            let spec = Self::sample_worker_spec(worker, &config, &mut churn_rng);
            let spec = Self::assign_rack(spec, config.faults.rack_count, joined_workers);
            joined_workers += 1;
            pool.join(spec);
        }
        let initial_workers = config.churn.initial;
        let mut log = config.record_log.then(EventLog::new);
        if let Some(log) = log.as_mut() {
            for id in 0..initial_workers as u64 {
                log.push(
                    0.0,
                    SimEvent::WorkerJoined {
                        worker: WorkerId(id),
                    },
                );
            }
        }
        Simulation {
            worker,
            specs: Vec::new(),
            source: None,
            source_total: 0,
            source_window: 0,
            cp: None,
            driver: None,
            allocator,
            config,
            pool,
            churn_rng,
            fault_rng: StdRng::seed_from_u64(config.seed ^ 0x00FA_0175),
            events: EventQueue::new(),
            dispatch_ids: 0,
            running: RunArena::new(),
            running_by_worker: HashMap::new(),
            attempt_arena: AttemptArena::new(),
            ready: VecDeque::new(),
            tasks: Vec::new(),
            dependents: Vec::new(),
            replay_candidates: BTreeSet::new(),
            completed: 0,
            dead_lettered: 0,
            now: SimTime::ZERO,
            result_metrics: WorkflowMetrics::new(),
            preempted_alloc_time: ResourceVector::ZERO,
            worker_range: (initial_workers, initial_workers),
            stats: SimStats::new(),
            alloc_epoch: 0,
            threads: tora_alloc::par::resolve(config.threads),
            joined_workers,
            peak_workers: initial_workers,
            log,
            utilization: config.track_utilization.then(UtilizationSeries::new),
        }
    }
}

impl<S: EventSink> Simulation<S> {
    fn log_event(&mut self, event: SimEvent) {
        if let Some(log) = self.log.as_mut() {
            log.push(self.now.seconds(), event);
        }
    }

    fn sample_utilization(&mut self) {
        if let Some(series) = self.utilization.as_mut() {
            let capacity = self.pool.total_capacity();
            let reserved = capacity.sub(&self.pool.total_available());
            series.push(UtilizationSample {
                time_s: self.now.seconds(),
                workers: self.pool.len(),
                running: self.pool.total_running(),
                capacity,
                reserved,
            });
        }
    }

    /// Append a task to the ready queue, stamped with its current queue
    /// token. A later dead-letter bumps the token, turning any entry still
    /// in the queue into a stale one that dispatch drops on sight — the
    /// lazy equivalent of eagerly scanning the queue to remove it.
    fn push_ready(&mut self, task_idx: usize) {
        self.ready
            .push_back((task_idx, self.tasks[task_idx].queue_token));
    }

    /// Whether a ready-queue entry still refers to a live enqueueing.
    fn ready_entry_live(&self, entry: (usize, u32)) -> bool {
        self.tasks[entry.0].queue_token == entry.1
    }

    /// Report an attempt outcome on the allocator's fault-feedback channel,
    /// attributed to the rack the attempt ran on. Only wired while the
    /// fault plan is active: a fault-free run must stay byte-identical to
    /// the pre-feedback engine (no window pushes, no feedback trace events,
    /// no stats).
    fn report_outcome(
        &mut self,
        category: CategoryId,
        outcome: AttemptFeedback,
        rack: Option<u32>,
    ) {
        if !self.config.faults.is_active() {
            return;
        }
        self.allocator.observe_outcome(category, outcome, rack);
        self.stats.record_feedback(category.0);
    }

    /// Racks placement should deprioritize right now. Empty — and the
    /// placement path then byte-identical to plain first fit — unless the
    /// fault plan is active *and* a fault policy has flagged racks whose
    /// decayed crash rate crossed its threshold.
    fn rack_avoid_list(&self) -> Vec<u32> {
        if !self.config.faults.is_active() {
            return Vec::new();
        }
        self.allocator.avoided_racks()
    }

    /// Total number of tasks this run must account for: everything
    /// materialized so far, or the streaming source's declared total.
    fn total_target(&self) -> usize {
        self.specs.len().max(self.source_total)
    }

    /// Pull tasks from the streaming source until `task_idx` is
    /// materialized. A no-op for materialized runs and already-pulled
    /// indices. Sources yield sequential tasks whose dependencies (if any)
    /// are confined to the declared lookahead window, so each pull is a
    /// spec push, a lifecycle slot counting the still-incomplete
    /// dependencies, and the reverse-adjacency wiring for them — exactly
    /// the state a materialized run would hold for that task at this
    /// moment (a completed dependency is already resolved; a dead one is
    /// impossible, because its death would have materialized this task
    /// first, see `dead_letter`).
    fn ensure_spec(&mut self, task_idx: usize) {
        if self.specs.len() > task_idx || self.source.is_none() {
            return;
        }
        while self.specs.len() <= task_idx {
            let idx = self.specs.len();
            let source = self.source.as_mut().expect("checked above");
            let spec = source
                .next_task()
                .expect("source ended before its declared total");
            assert_eq!(
                spec.id.0, idx as u64,
                "streaming sources must yield sequential ids"
            );
            assert!(
                self.worker.capacity.dominates(&spec.peak),
                "{}: peak {} exceeds worker capacity {}",
                spec.id,
                spec.peak,
                self.worker.capacity
            );
            let deps = if self.source_window > 0 {
                self.source.as_ref().expect("checked above").deps_of(idx)
            } else {
                Vec::new()
            };
            let deps_remaining = deps
                .iter()
                .filter(|&&d| !self.tasks[d as usize].is_completed())
                .count();
            for &d in &deps {
                if !self.tasks[d as usize].is_completed() {
                    debug_assert!(
                        !self.tasks[d as usize].is_dead(),
                        "a dead dependency must have materialized its window"
                    );
                    self.dependents[d as usize].push(idx);
                }
            }
            if let Some(cp) = self.cp.as_mut() {
                cp.push(spec.duration_s, &deps);
            }
            self.specs.push(spec);
            self.tasks.push(TaskState::fresh(deps_remaining, false));
            self.dependents.push(Vec::new());
        }
    }

    /// The arrival model released a task: it becomes ready once its
    /// predecessors (if any) have completed.
    fn on_arrive(&mut self, task_idx: usize) {
        self.ensure_spec(task_idx);
        if self.tasks[task_idx].is_dead() {
            // Dead-lettered (dependency cascade) before it ever arrived; its
            // submission was already accounted at dead-letter time.
            return;
        }
        self.log_event(SimEvent::TaskSubmitted {
            task: self.specs[task_idx].id,
        });
        self.stats.submitted += 1;
        let state = &mut self.tasks[task_idx];
        debug_assert!(!state.arrived, "duplicate arrival");
        state.arrived = true;
        if state.deps_remaining == 0 {
            state
                .advance(TaskPhase::Ready)
                .expect("arrived task was pending");
            self.push_ready(task_idx);
        }
    }

    /// Schedule every task's arrival according to the arrival model.
    fn schedule_arrivals(&mut self) {
        match self.config.arrival {
            ArrivalModel::Batch => {
                for task_idx in 0..self.total_target() {
                    self.on_arrive(task_idx);
                }
            }
            ArrivalModel::Poisson { mean_interval_s } => {
                assert!(
                    mean_interval_s.is_finite() && mean_interval_s > 0.0,
                    "bad arrival interval"
                );
                let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x0A88_17E5);
                let mut t = SimTime::ZERO;
                for task_idx in 0..self.total_target() {
                    t = t + exponential_interval_s(&mut rng, mean_interval_s).max(0.0);
                    self.events.schedule(t, Event::Arrive { task_idx });
                }
            }
        }
    }

    /// A fresh submission handle continuing the id sequence.
    fn submit_api(&self) -> SubmitApi {
        SubmitApi {
            submissions: Vec::new(),
            next_id: self.specs.len() as u64,
        }
    }

    /// Fold driver submissions into the live run: new tasks arrive
    /// immediately, gated only by their dependencies.
    fn integrate_submissions(&mut self, api: SubmitApi) {
        assert!(
            self.source.is_none(),
            "driver submissions cannot mix with a streaming source"
        );
        for (category, features, peak, duration_s, deps) in api.submissions {
            let id = self.specs.len() as u64;
            let spec = TaskSpec::new(id, category, peak, duration_s).with_features(features);
            assert!(
                self.worker.capacity.dominates(&spec.peak),
                "{}: peak {} exceeds worker capacity {}",
                spec.id,
                spec.peak,
                self.worker.capacity
            );
            let deps_remaining = deps
                .iter()
                .filter(|&&d| !self.tasks[d as usize].is_completed())
                .count();
            for &d in &deps {
                if !self.tasks[d as usize].is_completed() {
                    self.dependents[d as usize].push(id as usize);
                }
            }
            self.specs.push(spec);
            let mut state = TaskState::fresh(deps_remaining, true);
            if deps_remaining == 0 {
                state
                    .advance(TaskPhase::Ready)
                    .expect("fresh submission was pending");
            }
            self.tasks.push(state);
            self.dependents.push(Vec::new());
            self.log_event(SimEvent::TaskSubmitted { task: spec.id });
            self.stats.submitted += 1;
            if deps_remaining == 0 {
                self.push_ready(id as usize);
            }
        }
    }

    /// Dead-letter every task the dried-up run can no longer finish, in id
    /// order: first the materialized stranded tasks, then the
    /// declared-but-unpulled tail of a streaming source — directly by id
    /// range, without building `TaskSpec`s for tasks the run never touched
    /// (the sweep used to materialize the whole tail just to abandon it,
    /// which at 10M+ unpulled tasks dominated the fault-drained run).
    /// Unpulled ids all exceed materialized ones, so the combined sweep
    /// emits the same id-ordered dead-letter stream the materializing
    /// version produced, byte for byte.
    fn sweep_stranded(&mut self) {
        if self.source_window > 0 && self.total_target() > 0 {
            // A structured source materializes its remainder before the
            // sweep: the critical-path DP needs every task's duration, and
            // stranded tasks must cascade through their (materialized)
            // dependents — both exactly as the materialized run would.
            // Structured workloads are shape-bounded, so this tail is small;
            // the id-range fast path below stays for the flat million-task
            // sweeps it was built for.
            self.ensure_spec(self.total_target() - 1);
        }
        let mut task_idx = 0;
        while task_idx < self.tasks.len() {
            if !self.tasks[task_idx].phase.is_terminal() {
                self.dead_letter(task_idx, DeadLetterCause::Stalled);
            }
            task_idx += 1;
        }
        for index in self.specs.len()..self.total_target() {
            self.dead_letter_unpulled(index, DeadLetterCause::Stalled);
        }
    }

    /// Run to completion and return the result.
    pub fn run(self) -> SimResult {
        self.run_traced().0
    }

    /// Run to completion, returning the result *and* the event sink the
    /// allocator emitted into — the traced variant of [`Simulation::run`].
    pub fn run_traced(mut self) -> (SimResult, S) {
        self.schedule_churn();
        self.schedule_crash();
        self.schedule_rack_crash();
        self.schedule_arrivals();
        if let Some(mut driver) = self.driver.take() {
            let mut api = self.submit_api();
            driver.on_start(&mut api);
            self.integrate_submissions(api);
            self.driver = Some(driver);
        }
        self.dispatch();
        self.enforce_unplaceable_strikes();
        self.sample_utilization();
        while self.completed + self.dead_lettered < self.total_target() {
            let Some(ev) = self.events.pop() else {
                // Without faults this is unreachable: every non-terminal
                // task has a Finish or Arrive event in flight. Under a fault
                // plan the event stream can legitimately dry up (e.g. every
                // worker crashed away); dead-letter the stranded remainder
                // so the run still terminates with conserved accounting.
                assert!(
                    self.config.faults.is_active(),
                    "tasks pending but no events scheduled"
                );
                self.sweep_stranded();
                break;
            };
            debug_assert!(ev.time >= self.now);
            self.now = ev.time;
            match ev.event {
                Event::Finish { run } => self.on_finish(run),
                Event::Arrive { task_idx } => self.on_arrive(task_idx),
                Event::Churn => self.on_churn(),
                Event::Crash => self.on_crash(),
                Event::RackCrash => self.on_rack_crash(),
                Event::Requeue { task_idx } => self.on_requeue(task_idx),
            }
            self.dispatch();
            self.enforce_unplaceable_strikes();
            self.sample_utilization();
        }
        if let Some(cp) = self.cp.as_ref() {
            self.stats.critical_path = Some(cp.summarize(&self.result_metrics, self.now.seconds()));
        }
        let stats = self.stats;
        let result = SimResult {
            metrics: self.result_metrics,
            makespan_s: self.now.seconds(),
            preemptions: stats.preemptions as usize,
            preempted_alloc_time: self.preempted_alloc_time,
            worker_range: self.worker_range,
            dispatches: stats.dispatches as usize,
            stats,
            log: self.log,
            utilization: self.utilization,
        };
        (result, self.allocator.into_sink())
    }
}

/// Convenience: simulate `workflow` under `algorithm` with `config`.
pub fn simulate(workflow: &Workflow, algorithm: AlgorithmKind, config: SimConfig) -> SimResult {
    Simulation::new(workflow, algorithm, config).run()
}
