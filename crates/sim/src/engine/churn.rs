//! Worker churn: the opportunistic pool joining and (gracefully) leaving.
//!
//! Churn draws from its own seeded stream so fault injection never perturbs
//! pool evolution. A departing worker *preempts* its running attempts —
//! they are resubmitted with the same pinned allocation, because preemption
//! is an infrastructure artifact, not an allocation failure.

use super::lifecycle::TaskPhase;
use super::queue::Event;
use super::{SimConfig, Simulation};
use crate::log::SimEvent;
use crate::sampling::exponential_interval_s;
use rand::rngs::StdRng;
use rand::Rng;
use tora_alloc::resources::WorkerSpec;
use tora_alloc::trace::EventSink;

impl<S: EventSink> Simulation<S> {
    /// The shape of the next worker to join, honoring the heterogeneity mix.
    pub(super) fn sample_worker_spec(
        base: WorkerSpec,
        config: &SimConfig,
        rng: &mut StdRng,
    ) -> WorkerSpec {
        let Some(mix) = config.worker_mix else {
            return base;
        };
        if rng.gen::<f64>() >= mix.large_fraction {
            return base;
        }
        let mut capacity = base.capacity;
        for kind in tora_alloc::resources::ResourceKind::ALL {
            if kind.is_spatial() {
                capacity[kind] *= mix.scale;
            }
        }
        WorkerSpec::new(capacity)
    }

    /// Tag a joining worker with its rack. Racks are assigned round-robin
    /// over the lifetime join counter — deterministic and RNG-free, so a
    /// plan with `rack_count == 0` (rack crashes disabled) leaves the run
    /// byte-identical to one that never heard of racks.
    pub(super) fn assign_rack(spec: WorkerSpec, rack_count: u32, joined: u64) -> WorkerSpec {
        if rack_count == 0 {
            spec
        } else {
            spec.with_rack((joined % rack_count as u64) as u32)
        }
    }

    pub(super) fn schedule_churn(&mut self) {
        if let Some(mean) = self.config.churn.mean_interval_s {
            let dt = exponential_interval_s(&mut self.churn_rng, mean);
            self.events.schedule(self.now + dt.max(1e-9), Event::Churn);
        }
    }

    pub(super) fn on_churn(&mut self) {
        let n = self.pool.len();
        let (min, max) = (self.config.churn.min, self.config.churn.max);
        // A zero-width band that is already satisfied has nothing to churn.
        if min == max && n == min {
            self.schedule_churn();
            return;
        }
        let join = if n <= min {
            true
        } else if n >= max {
            false
        } else {
            self.churn_rng.gen::<bool>()
        };
        if join {
            let spec = Self::sample_worker_spec(self.worker, &self.config, &mut self.churn_rng);
            let spec = Self::assign_rack(spec, self.config.faults.rack_count, self.joined_workers);
            self.joined_workers += 1;
            let id = self.pool.join(spec);
            self.log_event(SimEvent::WorkerJoined { worker: id });
            self.peak_workers = self.peak_workers.max(self.pool.len());
            self.maybe_replay_dead_letters();
        } else if let Some(id) = self.pool.random_worker(&mut self.churn_rng) {
            // Preempt everything running on the departing worker, in
            // dispatch order (the index is unordered after swap-removals).
            let mut victims = self.running_by_worker.remove(&id).unwrap_or_default();
            victims.sort_unstable_by_key(|&(dispatch, _)| dispatch);
            for (_, victim) in victims {
                let run = self.running.remove(victim).expect("victim listed");
                let elapsed = self.now - run.start;
                self.preempted_alloc_time =
                    self.preempted_alloc_time.add(&run.alloc.scale(elapsed));
                self.stats.preemptions += 1;
                // Resubmit with the same (pinned) allocation: preemption
                // teaches the allocator nothing about the task's needs.
                let state = &mut self.tasks[run.task_idx];
                state.next_alloc = Some(run.alloc);
                state.pinned = true;
                state
                    .advance(TaskPhase::Ready)
                    .expect("preempted attempt was running");
                self.push_ready(run.task_idx);
                self.log_event(SimEvent::TaskPreempted {
                    task: self.specs[run.task_idx].id,
                    worker: id,
                });
            }
            self.pool.leave(id);
            self.log_event(SimEvent::WorkerLeft { worker: id });
        }
        let n = self.pool.len();
        self.worker_range = (self.worker_range.0.min(n), self.worker_range.1.max(n));
        self.schedule_churn();
    }
}
