//! Fault-injection glue: abrupt worker crashes, correlated rack crashes and
//! the straggler model, all drawing from the dedicated fault stream.
//!
//! Crashes are harsher than churn departures: every running attempt is
//! *lost* — charged for its elapsed time, counted against the task's
//! attempt budget, and its resource record dies with the worker. When the
//! plan enables checkpoint/restart (`checkpointed_fraction > 0`), a crashed
//! attempt first banks that fraction of the work it actually finished, so
//! the retry resumes from the checkpoint instead of from zero.

use super::lifecycle::TaskPhase;
use super::queue::Event;
use super::Simulation;
use crate::enforcement::AttemptVerdict;
use crate::log::SimEvent;
use crate::sampling::exponential_interval_s;
use crate::workers::WorkerId;
use rand::Rng;
use tora_alloc::feedback::AttemptFeedback;
use tora_alloc::resources::ResourceMask;
use tora_alloc::trace::EventSink;
use tora_metrics::{AttemptCause, AttemptOutcome, DeadLetterCause};

impl<S: EventSink> Simulation<S> {
    /// Decide at dispatch time how the attempt will end, folding the
    /// straggler model over the enforcement verdict: a straggling attempt
    /// runs at `straggler_multiplier ×` its charged time, and a watchdog
    /// kills anything that would run past `straggler_timeout_s`.
    ///
    /// The third element is the attempt's *work rate* — nominal task
    /// seconds finished per wall-clock second — which checkpoint/restart
    /// uses to price salvaged progress: full speed for ordinary attempts,
    /// `1 / multiplier` for a straggling one, and zero for a hung attempt
    /// (a watchdog victim made no trustworthy progress to checkpoint).
    pub(super) fn inject_straggler(
        &mut self,
        verdict: AttemptVerdict,
    ) -> (AttemptVerdict, AttemptCause, f64) {
        let plan = self.config.faults;
        let base_cause = if verdict.success {
            AttemptCause::Completed
        } else {
            AttemptCause::ResourceExhausted
        };
        if !(plan.straggler_rate > 0.0 && self.fault_rng.gen::<f64>() < plan.straggler_rate) {
            return (verdict, base_cause, 1.0);
        }
        let stretched = plan.straggler_multiplier * verdict.charged_time_s;
        if stretched <= plan.straggler_timeout_s {
            // Still reaches its natural end (completion or enforcement
            // kill), just later: the extra allocation·time is drag waste.
            let cause = if verdict.success {
                AttemptCause::StragglerCompleted
            } else {
                base_cause
            };
            let work_rate = if stretched > 0.0 {
                verdict.charged_time_s / stretched
            } else {
                1.0
            };
            (
                AttemptVerdict {
                    charged_time_s: stretched,
                    ..verdict
                },
                cause,
                work_rate,
            )
        } else {
            // Hangs past the watchdog: killed at the timeout, with nothing
            // learned about which resource (if any) was the problem.
            (
                AttemptVerdict {
                    success: false,
                    charged_time_s: plan.straggler_timeout_s,
                    exhausted: ResourceMask::NONE,
                },
                AttemptCause::StragglerTimeout,
                0.0,
            )
        }
    }

    /// Schedule the next worker crash (exponential inter-arrival), when the
    /// fault plan has crashes enabled.
    pub(super) fn schedule_crash(&mut self) {
        if let Some(mean) = self.config.faults.crash_mean_interval_s {
            let dt = exponential_interval_s(&mut self.fault_rng, mean);
            self.events.schedule(self.now + dt.max(1e-9), Event::Crash);
        }
    }

    /// Crash one worker abruptly. Unlike a graceful churn departure, every
    /// running attempt is *lost*: it is charged for its elapsed time, counts
    /// against the task's attempt budget, and teaches the allocator nothing
    /// (the record died with the worker). Crashes ignore the churn band's
    /// minimum — an opportunistic pool offers no such guarantee.
    pub(super) fn crash_worker(&mut self, id: WorkerId) {
        self.stats.faults.worker_crashes += 1;
        // The rack must be read before the worker leaves the pool: it is
        // the crash attribution rack avoidance learns from.
        let rack = self.pool.get(id).map(|w| w.spec.rack);
        let mut victims = self.running_by_worker.remove(&id).unwrap_or_default();
        victims.sort_unstable_by_key(|&(dispatch, _)| dispatch);
        for (_, victim) in victims {
            let run = self.running.remove(victim).expect("victim listed");
            let elapsed = self.now - run.start;
            self.stats.faults.crashed_attempts += 1;
            self.log_event(SimEvent::TaskCrashed {
                task: self.specs[run.task_idx].id,
                worker: id,
            });
            self.report_outcome(
                self.specs[run.task_idx].category,
                AttemptFeedback::Crash,
                rack,
            );
            let mut attempt =
                AttemptOutcome::failure_with_cause(run.alloc, elapsed, AttemptCause::WorkerCrash);
            let fraction = self.config.faults.checkpointed_fraction;
            if fraction > 0.0 {
                let state = &mut self.tasks[run.task_idx];
                let salvaged =
                    state.bank_salvage(fraction, elapsed, run.work_rate, run.remaining_s);
                if salvaged > 0.0 {
                    attempt.salvaged_s = salvaged;
                    self.stats.faults.checkpointed_attempts += 1;
                    self.stats.salvaged_work_s += salvaged;
                    self.log_event(SimEvent::TaskCheckpointed {
                        task: self.specs[run.task_idx].id,
                        salvaged_s: salvaged,
                    });
                }
            }
            let state = &mut self.tasks[run.task_idx];
            self.attempt_arena.push(&mut state.attempts, attempt);
            let cap = self.config.faults.max_attempts;
            if cap > 0 && self.tasks[run.task_idx].attempts.len() >= cap {
                self.dead_letter(run.task_idx, DeadLetterCause::AttemptsExhausted);
            } else {
                // The crash says nothing about the allocation: resubmit
                // with the same (pinned) one.
                let state = &mut self.tasks[run.task_idx];
                state.next_alloc = Some(run.alloc);
                state.pinned = true;
                state
                    .advance(TaskPhase::Ready)
                    .expect("crashed attempt was running");
                self.push_ready(run.task_idx);
            }
        }
        self.pool.leave(id);
        self.log_event(SimEvent::WorkerCrashed { worker: id });
        let n = self.pool.len();
        self.worker_range = (self.worker_range.0.min(n), self.worker_range.1.max(n));
    }

    /// An independent single-worker crash event.
    pub(super) fn on_crash(&mut self) {
        if let Some(id) = self.pool.random_worker(&mut self.fault_rng) {
            self.crash_worker(id);
        }
        // Keep the crash process alive only while it can ever strike again:
        // an empty pool with churn disabled never repopulates, and an
        // eternal self-rescheduling event would keep the run alive forever.
        if !(self.pool.is_empty() && self.config.churn.mean_interval_s.is_none()) {
            self.schedule_crash();
        }
    }

    /// Schedule the next correlated rack crash, when the fault plan has
    /// them enabled.
    pub(super) fn schedule_rack_crash(&mut self) {
        if let Some(mean) = self.config.faults.rack_crash_mean_interval_s {
            let dt = exponential_interval_s(&mut self.fault_rng, mean);
            self.events
                .schedule(self.now + dt.max(1e-9), Event::RackCrash);
        }
    }

    /// A correlated failure: one random live worker is struck, and every
    /// other live worker in its rack goes down with it (shared switch,
    /// shared PDU). Each victim is a full abrupt crash — attempts lost,
    /// records lost, attempt budgets charged.
    pub(super) fn on_rack_crash(&mut self) {
        if let Some(struck) = self.pool.random_worker(&mut self.fault_rng) {
            self.stats.faults.rack_crashes += 1;
            let rack = self.pool.get(struck).expect("live worker").spec.rack;
            let victims: Vec<WorkerId> = self
                .pool
                .workers()
                .filter(|(_, w)| w.spec.rack == rack)
                .map(|(id, _)| id)
                .collect();
            for id in victims {
                self.crash_worker(id);
            }
        }
        // Same liveness guard as the single-crash process.
        if !(self.pool.is_empty() && self.config.churn.mean_interval_s.is_none()) {
            self.schedule_rack_crash();
        }
    }
}
