//! Arena-backed storage for the engine's hot per-event state.
//!
//! At million-task scale the engine's original bookkeeping — a
//! `HashMap<u64, Running>` keyed by dispatch number and a `Vec` of attempt
//! outcomes inside every task — costs a heap allocation (and a hash) per
//! attempt. Both structures are replaced by dense slabs with free-list
//! reuse:
//!
//! * [`RunArena`] holds in-flight attempts in a generational slab: a
//!   [`RunId`] is a `(slot, generation)` pair, so a `Finish` event that
//!   outlives its attempt (preemption, crash) fails the generation check
//!   and is recognized as stale — exactly the semantics the old
//!   `HashMap::remove` lookup miss provided, at O(1) with zero hashing and
//!   slot reuse across retries.
//! * [`AttemptArena`] holds every task's attempt history as an intrusive
//!   backward-linked chain in one slab; a terminal task (completion or
//!   dead-letter) drains its chain into the `Vec` the metrics API expects
//!   and returns the nodes to the free list for the next retry chain.
//!
//! Neither arena owns ordering decisions: victim ordering on worker
//! departure still sorts by the monotone dispatch number stored in the
//! attempt, so the golden chaos timelines are unaffected by slot reuse.

use tora_metrics::AttemptOutcome;

use super::dispatch::Running;

/// Sentinel for "no chain node" in [`AttemptArena`] links.
const NONE: u32 = u32::MAX;

/// Handle to an in-flight attempt in the [`RunArena`].
///
/// The generation detects stale handles: removing an attempt bumps the
/// slot's generation, so an event holding the old `RunId` no longer
/// resolves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RunId {
    slot: u32,
    generation: u32,
}

/// One slab slot: the live attempt (if any) plus the slot's generation.
struct RunSlot {
    generation: u32,
    entry: Option<Running>,
}

/// Generational slab of in-flight attempts with free-list slot reuse.
#[derive(Default)]
pub(crate) struct RunArena {
    slots: Vec<RunSlot>,
    free: Vec<u32>,
    live: usize,
}

impl RunArena {
    pub(crate) fn new() -> Self {
        RunArena {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Number of live attempts.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Store an attempt, reusing a freed slot when one exists.
    pub(crate) fn insert(&mut self, running: Running) -> RunId {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.entry.is_none(), "free slot was live");
            s.entry = Some(running);
            RunId {
                slot,
                generation: s.generation,
            }
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(RunSlot {
                generation: 0,
                entry: Some(running),
            });
            RunId {
                slot,
                generation: 0,
            }
        }
    }

    /// Remove and return the attempt behind `id`. `None` when the handle is
    /// stale (the slot was freed — and possibly reused — since `id` was
    /// issued), mirroring the old `HashMap::remove` miss for consumed
    /// dispatch numbers.
    pub(crate) fn remove(&mut self, id: RunId) -> Option<Running> {
        let s = self.slots.get_mut(id.slot as usize)?;
        if s.generation != id.generation || s.entry.is_none() {
            return None;
        }
        let running = s.entry.take();
        s.generation = s.generation.wrapping_add(1);
        self.free.push(id.slot);
        self.live -= 1;
        running
    }

    /// Read-only access to a live attempt.
    #[cfg(test)]
    pub(crate) fn get(&self, id: RunId) -> Option<&Running> {
        let s = self.slots.get(id.slot as usize)?;
        if s.generation != id.generation {
            return None;
        }
        s.entry.as_ref()
    }
}

/// Handle to a task's attempt chain: the most recent node plus the chain
/// length. `Default` is the empty chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct AttemptChain {
    head: u32,
    len: u32,
}

impl Default for AttemptChain {
    fn default() -> Self {
        AttemptChain { head: NONE, len: 0 }
    }
}

impl AttemptChain {
    /// Attempts recorded so far.
    pub(crate) fn len(self) -> usize {
        self.len as usize
    }
}

/// One chain node: an attempt outcome linked to the previous attempt of the
/// same task.
struct AttemptNode {
    outcome: AttemptOutcome,
    prev: u32,
}

/// Slab of per-task attempt chains with free-list node reuse.
///
/// In the fault-free steady state every task pushes exactly one node and
/// drains it at completion, so the arena's high-water mark is the number of
/// simultaneously running tasks — not the workflow size.
#[derive(Default)]
pub(crate) struct AttemptArena {
    nodes: Vec<AttemptNode>,
    free: Vec<u32>,
}

impl AttemptArena {
    pub(crate) fn new() -> Self {
        AttemptArena {
            nodes: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Append `outcome` to `chain`.
    pub(crate) fn push(&mut self, chain: &mut AttemptChain, outcome: AttemptOutcome) {
        let node = AttemptNode {
            outcome,
            prev: chain.head,
        };
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        };
        chain.head = idx;
        chain.len += 1;
    }

    /// Mutable access to the most recent attempt of `chain`.
    #[cfg(test)]
    pub(crate) fn last_mut(&mut self, chain: AttemptChain) -> Option<&mut AttemptOutcome> {
        if chain.head == NONE {
            return None;
        }
        Some(&mut self.nodes[chain.head as usize].outcome)
    }

    /// Drain `chain` into a chronological `Vec` (oldest attempt first),
    /// returning the nodes to the free list. The chain handle is reset to
    /// empty.
    pub(crate) fn take(&mut self, chain: &mut AttemptChain) -> Vec<AttemptOutcome> {
        let mut out = Vec::with_capacity(chain.len as usize);
        let mut cur = chain.head;
        while cur != NONE {
            let node = &mut self.nodes[cur as usize];
            out.push(node.outcome);
            let prev = node.prev;
            self.free.push(cur);
            cur = prev;
        }
        out.reverse();
        debug_assert_eq!(out.len(), chain.len as usize);
        *chain = AttemptChain::default();
        out
    }

    /// Rebuild a chain from a chronological attempt list (dead-letter
    /// replay restores the drained history so the attempt budget spans the
    /// replay).
    pub(crate) fn restore(&mut self, attempts: Vec<AttemptOutcome>) -> AttemptChain {
        let mut chain = AttemptChain::default();
        for outcome in attempts {
            self.push(&mut chain, outcome);
        }
        chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enforcement::AttemptVerdict;
    use crate::time::SimTime;
    use crate::workers::WorkerId;
    use tora_alloc::resources::{ResourceMask, ResourceVector};
    use tora_metrics::AttemptCause;

    fn running(task_idx: usize) -> Running {
        Running {
            task_idx,
            worker: WorkerId(0),
            alloc: ResourceVector::new(1.0, 100.0, 10.0),
            start: SimTime::ZERO,
            verdict: AttemptVerdict {
                success: true,
                charged_time_s: 1.0,
                exhausted: ResourceMask::NONE,
            },
            cause: AttemptCause::Completed,
            work_rate: 1.0,
            remaining_s: 1.0,
        }
    }

    #[test]
    fn run_arena_reuses_slots_across_retries() {
        let mut arena = RunArena::new();
        let a = arena.insert(running(0));
        let b = arena.insert(running(1));
        assert_eq!(arena.len(), 2);
        // First attempt ends; its slot is freed...
        assert_eq!(arena.remove(a).unwrap().task_idx, 0);
        assert_eq!(arena.len(), 1);
        // ...and the retry reuses the same slot under a new generation.
        let retry = arena.insert(running(2));
        assert_eq!(retry.slot, a.slot, "freed slot is reused");
        assert_ne!(retry.generation, a.generation, "generation advanced");
        assert_eq!(arena.get(retry).unwrap().task_idx, 2);
        assert_eq!(arena.remove(b).unwrap().task_idx, 1);
    }

    #[test]
    fn stale_run_ids_resolve_to_none() {
        let mut arena = RunArena::new();
        let a = arena.insert(running(7));
        assert!(arena.remove(a).is_some());
        // A Finish event for the consumed attempt: stale, like the old
        // HashMap miss.
        assert!(arena.remove(a).is_none());
        assert!(arena.get(a).is_none());
        // Even after the slot is reused, the old handle stays dead.
        let b = arena.insert(running(8));
        assert_eq!(b.slot, a.slot);
        assert!(arena.remove(a).is_none());
        assert_eq!(arena.remove(b).unwrap().task_idx, 8);
        assert_eq!(arena.len(), 0);
    }

    #[test]
    fn attempt_chains_drain_in_chronological_order() {
        let mut arena = AttemptArena::new();
        let alloc = ResourceVector::new(1.0, 100.0, 10.0);
        let mut chain = AttemptChain::default();
        arena.push(&mut chain, AttemptOutcome::failure(alloc, 1.0));
        arena.push(&mut chain, AttemptOutcome::failure(alloc, 2.0));
        arena.push(&mut chain, AttemptOutcome::success(alloc, 3.0));
        assert_eq!(chain.len(), 3);
        let drained = arena.take(&mut chain);
        assert_eq!(chain.len(), 0);
        let times: Vec<f64> = drained.iter().map(|a| a.charged_time_s).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0], "oldest attempt first");
        assert!(!drained[0].success && drained[2].success);
    }

    #[test]
    fn attempt_nodes_recycle_through_the_free_list() {
        let mut arena = AttemptArena::new();
        let alloc = ResourceVector::new(1.0, 100.0, 10.0);
        let mut a = AttemptChain::default();
        arena.push(&mut a, AttemptOutcome::failure(alloc, 1.0));
        arena.push(&mut a, AttemptOutcome::success(alloc, 2.0));
        let _ = arena.take(&mut a);
        let nodes_before = arena.nodes.len();
        // A second task's chain reuses the freed nodes: the slab stays at
        // its high-water mark.
        let mut b = AttemptChain::default();
        arena.push(&mut b, AttemptOutcome::failure(alloc, 3.0));
        arena.push(&mut b, AttemptOutcome::success(alloc, 4.0));
        assert_eq!(arena.nodes.len(), nodes_before, "no new nodes allocated");
        assert_eq!(
            arena
                .take(&mut b)
                .iter()
                .map(|x| x.charged_time_s)
                .sum::<f64>(),
            7.0
        );
    }

    #[test]
    fn restore_round_trips_a_drained_chain() {
        let mut arena = AttemptArena::new();
        let alloc = ResourceVector::new(1.0, 100.0, 10.0);
        let mut chain = AttemptChain::default();
        arena.push(&mut chain, AttemptOutcome::failure(alloc, 1.0));
        arena.push(&mut chain, AttemptOutcome::failure(alloc, 2.0));
        let drained = arena.take(&mut chain);
        let mut restored = arena.restore(drained.clone());
        assert_eq!(restored.len(), 2);
        // last_mut sees the most recent attempt.
        assert_eq!(arena.last_mut(restored).unwrap().charged_time_s, 2.0);
        assert_eq!(arena.take(&mut restored), drained);
    }
}
