//! Incremental critical-path tracking for structured workloads.
//!
//! The tracker grows with the task list — [`CriticalPath::push`] runs once
//! per task at creation (materialized build or streaming pull), so the
//! longest-chain DP never needs the full workflow at once and a streamed
//! DAG pays the same O(edges) as a materialized one. Predecessor links are
//! kept so the realized chain can be walked backwards at summary time;
//! `dependents` can't serve that role because dispatch `mem::take`s it
//! during dependency resolution.
//!
//! Ties in the DP break toward the smallest dependency id (strict `>`), the
//! same rule as `tora_workloads::dag::longest_path`, so the engine and the
//! workload-side helper agree on which chain is *the* critical path.

use tora_alloc::resources::ResourceKind;
use tora_metrics::{CriticalPathStats, WorkflowMetrics};

/// Sentinel predecessor: the task starts a chain.
const NO_PRED: u64 = u64::MAX;

pub(super) struct CriticalPath {
    /// Longest-chain length (summed nominal durations) ending at each task.
    dist: Vec<f64>,
    /// The dependency realizing `dist`, or [`NO_PRED`].
    pred: Vec<u64>,
    /// Tasks on the chain realizing `dist`.
    hops: Vec<u32>,
    /// Completion time in sim seconds; `NaN` until the task completes.
    finish: Vec<f64>,
}

impl CriticalPath {
    pub(super) fn new() -> Self {
        CriticalPath {
            dist: Vec::new(),
            pred: Vec::new(),
            hops: Vec::new(),
            finish: Vec::new(),
        }
    }

    /// Account the next task (ids are sequential; deps reference earlier
    /// tasks, which the engine already asserts).
    pub(super) fn push(&mut self, duration_s: f64, deps: &[u64]) {
        let mut best = 0.0f64;
        let mut best_pred = NO_PRED;
        let mut best_hops = 0u32;
        for &d in deps {
            if self.dist[d as usize] > best {
                best = self.dist[d as usize];
                best_pred = d;
                best_hops = self.hops[d as usize];
            }
        }
        self.dist.push(best + duration_s);
        self.pred.push(best_pred);
        self.hops.push(best_hops + 1);
        self.finish.push(f64::NAN);
    }

    /// Record a task's completion time.
    pub(super) fn record_finish(&mut self, task_idx: usize, now_s: f64) {
        self.finish[task_idx] = now_s;
    }

    /// Summarize the run: walk the chain realizing the global longest path
    /// and split completed-task memory waste by membership.
    pub(super) fn summarize(
        &self,
        metrics: &WorkflowMetrics,
        makespan_s: f64,
    ) -> CriticalPathStats {
        if self.dist.is_empty() {
            return CriticalPathStats {
                longest_path_s: 0.0,
                longest_path_tasks: 0,
                realized_s: makespan_s,
                inflation: 0.0,
                on_path_waste_mb_s: 0.0,
                off_path_waste_mb_s: 0.0,
            };
        }
        let mut sink = 0usize;
        for i in 1..self.dist.len() {
            if self.dist[i] > self.dist[sink] {
                sink = i;
            }
        }
        let mut on_path = vec![false; self.dist.len()];
        let mut cur = sink as u64;
        loop {
            on_path[cur as usize] = true;
            let p = self.pred[cur as usize];
            if p == NO_PRED {
                break;
            }
            cur = p;
        }
        // Waste splits over *completed* tasks only (the §II-C per-task
        // waste is defined against a successful final run); dead-lettered
        // work is already attributed by the fault report.
        let (mut on, mut off) = (0.0f64, 0.0f64);
        for outcome in metrics.outcomes() {
            let waste = outcome.waste(ResourceKind::MemoryMb);
            if on_path
                .get(outcome.task.0 as usize)
                .copied()
                .unwrap_or(false)
            {
                on += waste;
            } else {
                off += waste;
            }
        }
        let longest = self.dist[sink];
        let realized = if self.finish[sink].is_nan() {
            makespan_s
        } else {
            self.finish[sink]
        };
        CriticalPathStats {
            longest_path_s: longest,
            longest_path_tasks: self.hops[sink],
            realized_s: realized,
            inflation: if longest > 0.0 {
                realized / longest
            } else {
                0.0
            },
            on_path_waste_mb_s: on,
            off_path_waste_mb_s: off,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_tracks_the_longest_chain_incrementally() {
        let mut cp = CriticalPath::new();
        cp.push(5.0, &[]); // 0: chain 5
        cp.push(2.0, &[]); // 1: chain 2
        cp.push(4.0, &[0, 1]); // 2: 0 -> 2, chain 9
        cp.push(10.0, &[1]); // 3: 1 -> 3, chain 12
        cp.push(1.0, &[2, 3]); // 4: 3 -> 4, chain 13
        let stats = cp.summarize(&WorkflowMetrics::new(), 20.0);
        assert!((stats.longest_path_s - 13.0).abs() < 1e-12);
        assert_eq!(stats.longest_path_tasks, 3); // 1 -> 3 -> 4
        assert!(
            (stats.realized_s - 20.0).abs() < 1e-12,
            "NaN finish falls back"
        );
    }

    #[test]
    fn realized_time_comes_from_the_sink_finish() {
        let mut cp = CriticalPath::new();
        cp.push(3.0, &[]);
        cp.push(4.0, &[0]);
        cp.record_finish(0, 6.0);
        cp.record_finish(1, 14.0);
        let stats = cp.summarize(&WorkflowMetrics::new(), 99.0);
        assert!((stats.longest_path_s - 7.0).abs() < 1e-12);
        assert!((stats.realized_s - 14.0).abs() < 1e-12);
        assert!((stats.inflation - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ties_break_toward_the_smallest_dependency() {
        let mut cp = CriticalPath::new();
        cp.push(5.0, &[]);
        cp.push(5.0, &[]);
        cp.push(1.0, &[0, 1]);
        // Both chains are length 5; the tie must pick task 0.
        assert_eq!(cp.pred[2], 0);
    }
}
