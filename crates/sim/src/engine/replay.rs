//! The dead-letter channel and its replay path.
//!
//! Terminal abandonment is the engine's pressure-relief valve: a task whose
//! budgets are spent (attempts, dispatch retries, unplaceable rounds) or
//! whose inputs will never exist leaves the live run with an explicit
//! cause. Replay is the inverse valve — when the pool recovers, tasks whose
//! abandonment was an *environment* shortage are re-admitted, keeping the
//! conservation identity `submitted = completed + dead-lettered` intact at
//! every quiescent point.

use super::lifecycle::TaskPhase;
use super::Simulation;
use crate::log::SimEvent;
use tora_alloc::task::{CategoryId, TaskId};
use tora_alloc::trace::EventSink;
use tora_metrics::{DeadLetter, DeadLetterCause};

impl<S: EventSink> Simulation<S> {
    /// Terminally abandon a task: it leaves the ready queue, is recorded as
    /// a [`DeadLetter`] in the metrics, and recursively dooms every
    /// dependent (their input will never exist). Idempotent.
    pub(super) fn dead_letter(&mut self, task_idx: usize, cause: DeadLetterCause) {
        if self.tasks[task_idx].is_dead() || self.tasks[task_idx].is_completed() {
            return;
        }
        if self.source_window > 0 {
            // Bounded-lookahead cascade: every dependent of the dying task
            // lies within the source's declared window, so materializing
            // that span now lets the recursion doom them at this exact sim
            // time — the same moment the fully materialized run dooms them.
            let horizon = (task_idx + self.source_window).min(self.total_target() - 1);
            self.ensure_spec(horizon);
        }
        let state = &mut self.tasks[task_idx];
        state
            .advance(TaskPhase::DeadLettered)
            .expect("live task enters the dead-letter channel");
        state.dead_cause = Some(cause);
        if !state.arrived {
            // Doomed before the arrival model released it: account the
            // submission here so conservation (submitted = completed +
            // dead-lettered) holds even if the run ends before its arrival.
            state.arrived = true;
            self.stats.submitted += 1;
        }
        let attempts = self.attempt_arena.take(&mut self.tasks[task_idx].attempts);
        // Revoke any ready-queue membership lazily: bumping the token makes
        // a still-queued entry stale, which dispatch drops on sight —
        // exactly what the eager O(queue) scan-and-remove used to do.
        self.tasks[task_idx].queue_token = self.tasks[task_idx].queue_token.wrapping_add(1);
        if cause.replayable() {
            self.replay_candidates.insert(task_idx);
        }
        let spec = self.specs[task_idx];
        let letter = DeadLetter {
            task: spec.id,
            category: spec.category,
            cause,
            attempts,
        };
        debug_assert!(letter.check().is_ok(), "{:?}", letter.check());
        self.result_metrics.push_dead_letter(letter);
        self.stats.faults.dead_lettered += 1;
        self.dead_lettered += 1;
        self.log_event(SimEvent::TaskDeadLettered {
            task: spec.id,
            cause,
        });
        let dependents = std::mem::take(&mut self.dependents[task_idx]);
        for &d in &dependents {
            self.dead_letter(d, DeadLetterCause::DependencyDeadLettered);
        }
        self.dependents[task_idx] = dependents;
    }

    /// Terminally abandon a declared-but-unpulled streaming task without
    /// materializing its spec.
    ///
    /// The byte-identical twin of [`Simulation::dead_letter`] for an index
    /// past `specs.len()`: such a task was never arrived, never queued,
    /// never attempted and has no dependents, so the only observable effects
    /// are the submission accounting (conservation charges the submission at
    /// abandonment time, exactly as `dead_letter` does for an unarrived
    /// task), the [`DeadLetter`] record with an empty attempt history, and
    /// the log event. The category comes from
    /// [`tora_workloads::TaskSource::category_of`], which is RNG-free — the
    /// whole point is that a >10M-task unpulled tail costs nothing to sweep.
    pub(super) fn dead_letter_unpulled(&mut self, index: usize, cause: DeadLetterCause) {
        let category = self
            .source
            .as_ref()
            .expect("an unpulled tail only exists under a streaming source")
            .category_of(index);
        let task = TaskId(index as u64);
        self.stats.submitted += 1;
        let letter = DeadLetter {
            task,
            category: CategoryId(category),
            cause,
            attempts: Vec::new(),
        };
        debug_assert!(letter.check().is_ok(), "{:?}", letter.check());
        self.result_metrics.push_dead_letter(letter);
        self.stats.faults.dead_lettered += 1;
        self.dead_lettered += 1;
        self.log_event(SimEvent::TaskDeadLettered { task, cause });
    }

    /// Re-admit replayable dead letters once the pool has recovered.
    ///
    /// Called on every worker join. Replay is enabled by the plan's
    /// `replay_capacity_fraction` / `max_replay_rounds` pair: when the live
    /// pool reaches the configured fraction of the largest pool ever seen, a
    /// dead letter whose cause was an environment shortage
    /// ([`DeadLetterCause::replayable`]) and which has replay rounds left is
    /// pulled back out of the channel and re-queued. The restored task keeps
    /// its attempt history (the attempt budget still applies across the
    /// replay) but its transient-failure counters start over.
    ///
    /// Conservation: `dead_lettered` counts *currently* abandoned tasks, so
    /// a replay decrements it (and a re-dead-letter increments it again) —
    /// `submitted = completed + dead_lettered` holds at every quiescent
    /// point, and cumulatively `replay_successes ≤ replayed`. Dependents
    /// cascaded from a replayed task stay dead: their own cause
    /// (`DependencyDeadLettered`) is not replayable.
    pub(super) fn maybe_replay_dead_letters(&mut self) {
        let plan = self.config.faults;
        if plan.max_replay_rounds == 0 || plan.replay_capacity_fraction <= 0.0 {
            return;
        }
        let needed = (plan.replay_capacity_fraction * self.peak_workers as f64).ceil() as usize;
        if self.pool.len() < needed.max(1) {
            return;
        }
        // The candidate set holds every dead task with a replayable cause,
        // in task order — the same order the old full scan produced. Tasks
        // whose replay budget is spent are pruned for good (replays never
        // decrease), so repeated joins don't rescan them.
        let mut candidates = Vec::new();
        let mut exhausted = Vec::new();
        for &i in &self.replay_candidates {
            let t = &self.tasks[i];
            debug_assert!(t.is_dead() && t.dead_cause.is_some_and(|c| c.replayable()));
            if t.replays < plan.max_replay_rounds {
                candidates.push(i);
            } else {
                exhausted.push(i);
            }
        }
        for i in exhausted {
            self.replay_candidates.remove(&i);
        }
        for task_idx in candidates {
            self.replay_candidates.remove(&task_idx);
            let task_id = self.specs[task_idx].id;
            let letter = self
                .result_metrics
                .remove_dead_letter(task_id)
                .expect("dead task has a recorded dead letter");
            let state = &mut self.tasks[task_idx];
            state
                .advance(TaskPhase::Ready)
                .expect("replay re-admits a dead-lettered task");
            state.dead_cause = None;
            state.replays += 1;
            state.dispatch_failures = 0;
            state.unplaceable_strikes = 0;
            state.pinned = false;
            state.next_alloc = None;
            // Restore the attempt history: the budget spans the replay.
            self.tasks[task_idx].attempts = self.attempt_arena.restore(letter.attempts);
            self.dead_lettered -= 1;
            self.stats.faults.dead_lettered -= 1;
            self.stats.faults.replayed += 1;
            self.log_event(SimEvent::TaskReplayed { task: task_id });
            // Replayable causes only ever strike ready (dependency-free,
            // arrived) tasks, so the task can re-enter the queue directly.
            self.push_ready(task_idx);
        }
    }
}
