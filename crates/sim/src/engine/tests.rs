//! Core engine tests: completion, determinism, churn, scheduling policies,
//! dependencies and runtime task generation.

use super::*;
use tora_alloc::resources::ResourceKind;
use tora_workloads::synthetic::SyntheticKind;
use tora_workloads::PaperWorkflow;

fn small(kind: SyntheticKind) -> Workflow {
    kind.catalog_workflow()
        .spec(42)
        .tasks(200)
        .materialize()
        .unwrap()
}

#[test]
fn every_task_completes_exactly_once() {
    let wf = small(SyntheticKind::Bimodal);
    let res = simulate(
        &wf,
        AlgorithmKind::ExhaustiveBucketing,
        SimConfig::default(),
    );
    assert_eq!(res.metrics.len(), wf.len());
    let mut ids: Vec<u64> = res.metrics.outcomes().iter().map(|o| o.task.0).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), wf.len());
    assert!(res.makespan_s > 0.0);
    assert!(res.dispatches >= wf.len());
}

#[test]
fn whole_machine_never_retries() {
    let wf = small(SyntheticKind::Normal);
    let res = simulate(&wf, AlgorithmKind::WholeMachine, SimConfig::default());
    assert_eq!(res.metrics.total_retries(), 0);
    assert_eq!(res.dispatches, wf.len());
    // And its memory efficiency is terrible (≈ 4 GB / 64 GB).
    let awe = res.metrics.awe(ResourceKind::MemoryMb).unwrap();
    assert!(awe < 0.15, "whole machine AWE {awe}");
}

#[test]
fn bucketing_beats_whole_machine_on_memory() {
    let wf = small(SyntheticKind::Normal);
    let base = simulate(&wf, AlgorithmKind::WholeMachine, SimConfig::default());
    let eb = simulate(
        &wf,
        AlgorithmKind::ExhaustiveBucketing,
        SimConfig::default(),
    );
    let k = ResourceKind::MemoryMb;
    assert!(
        eb.metrics.awe(k).unwrap() > 2.0 * base.metrics.awe(k).unwrap(),
        "EB {:?} vs WM {:?}",
        eb.metrics.awe(k),
        base.metrics.awe(k)
    );
}

#[test]
fn churn_preserves_completion_and_accounting() {
    let wf = small(SyntheticKind::Uniform);
    let config = SimConfig {
        churn: ChurnConfig {
            initial: 5,
            min: 2,
            max: 8,
            mean_interval_s: Some(20.0),
        },
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::GreedyBucketing, config);
    assert_eq!(res.metrics.len(), wf.len());
    assert!(res.worker_range.0 >= 2);
    assert!(res.worker_range.1 <= 8);
    // With leaves happening, some preemptions are expected (not
    // guaranteed, but overwhelmingly likely for this seed/config).
    assert!(res.preemptions > 0, "no preemption observed");
    assert!(res.preempted_alloc_time.iter().all(|(_, v)| v >= 0.0));
}

#[test]
fn deterministic_given_seed() {
    let wf = small(SyntheticKind::Exponential);
    let config = SimConfig {
        churn: ChurnConfig::paper_like(),
        seed: 9,
        ..SimConfig::default()
    };
    let a = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    let b = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    assert_eq!(
        a.metrics.awe(ResourceKind::MemoryMb),
        b.metrics.awe(ResourceKind::MemoryMb)
    );
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_eq!(a.preemptions, b.preemptions);
}

#[test]
fn awe_is_worker_count_independent_without_failures() {
    // With Whole Machine (no retries, fixed allocation), AWE must be
    // identical across pool sizes — the §II-C independence claim in its
    // purest form.
    let wf = small(SyntheticKind::Bimodal);
    let awe = |n: usize| {
        let config = SimConfig {
            churn: ChurnConfig::fixed(n),
            ..SimConfig::default()
        };
        simulate(&wf, AlgorithmKind::WholeMachine, config)
            .metrics
            .awe(ResourceKind::MemoryMb)
            .unwrap()
    };
    let a = awe(5);
    let b = awe(40);
    assert!((a - b).abs() < 1e-12, "{a} vs {b}");
}

#[test]
fn makespan_shrinks_with_more_workers() {
    let wf = small(SyntheticKind::Normal);
    let run = |n: usize| {
        let config = SimConfig {
            churn: ChurnConfig::fixed(n),
            ..SimConfig::default()
        };
        simulate(&wf, AlgorithmKind::MaxSeen, config).makespan_s
    };
    assert!(run(40) < run(4), "more workers should finish sooner");
}

#[test]
fn event_log_is_consistent_under_churn() {
    let wf = small(SyntheticKind::Bimodal);
    let config = SimConfig {
        churn: ChurnConfig {
            initial: 4,
            min: 2,
            max: 8,
            mean_interval_s: Some(15.0),
        },
        record_log: true,
        seed: 5,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    let log = res.log.expect("log requested");
    log.check_consistency().unwrap();
    // Dispatch count in the log matches the engine's counter.
    let dispatched = log.count(|e| matches!(e, crate::log::SimEvent::TaskDispatched { .. }));
    assert_eq!(dispatched, res.dispatches);
    let completed = log.count(|e| matches!(e, crate::log::SimEvent::TaskCompleted { .. }));
    assert_eq!(completed, wf.len());
    let killed = log.count(|e| matches!(e, crate::log::SimEvent::TaskKilled { .. }));
    assert_eq!(killed, res.metrics.total_retries());
    let preempted = log.count(|e| matches!(e, crate::log::SimEvent::TaskPreempted { .. }));
    assert_eq!(preempted, res.preemptions);
    assert_eq!(dispatched, completed + killed + preempted);
    // JSONL roundtrip.
    let parsed = crate::log::EventLog::from_jsonl(&log.to_jsonl()).unwrap();
    assert_eq!(parsed, log);
}

#[test]
fn utilization_series_is_sane() {
    let wf = small(SyntheticKind::Normal);
    let config = SimConfig {
        track_utilization: true,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::MaxSeen, config);
    let series = res.utilization.expect("series requested");
    assert!(!series.is_empty());
    for s in series.samples() {
        for kind in tora_alloc::resources::ResourceKind::STANDARD {
            if let Some(u) = s.utilization(kind) {
                assert!((0.0..=1.0 + 1e-9).contains(&u), "{kind}: {u}");
            }
        }
        assert!(s.workers >= 1);
    }
    assert!(series.peak_running() >= 1);
    let mean = series
        .mean_utilization(tora_alloc::resources::ResourceKind::Cores)
        .unwrap();
    assert!(mean > 0.0 && mean <= 1.0);
}

#[test]
fn all_queue_policies_complete_the_workflow() {
    let wf = small(SyntheticKind::Bimodal);
    for policy in crate::scheduler::QueuePolicy::ALL {
        let config = SimConfig {
            queue_policy: policy,
            seed: 3,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        assert_eq!(res.metrics.len(), wf.len(), "{}", policy.label());
        for o in res.metrics.outcomes() {
            o.check().unwrap();
        }
    }
}

#[test]
fn backfill_is_no_slower_than_fifo() {
    // Letting small tasks around a blocked head usually helps, but a
    // backfilled task can also delay the critical path, so the property
    // only holds in aggregate: compare mean makespan across seeds
    // rather than any single draw.
    let mut fifo_total = 0.0;
    let mut backfill_total = 0.0;
    let wf = small(SyntheticKind::Exponential);
    for seed in 0..8u64 {
        let run = |policy| {
            let config = SimConfig {
                queue_policy: policy,
                churn: ChurnConfig::fixed(4),
                seed: 11 + seed,
                ..SimConfig::default()
            };
            simulate(&wf, AlgorithmKind::MaxSeen, config).makespan_s
        };
        fifo_total += run(crate::scheduler::QueuePolicy::Fifo);
        backfill_total += run(crate::scheduler::QueuePolicy::FifoBackfill);
    }
    assert!(
        backfill_total <= fifo_total * 1.05,
        "mean backfill makespan {backfill_total} should not trail fifo {fifo_total}"
    );
}

#[test]
fn dependencies_gate_execution_order() {
    // A diamond: 0 → {1, 2} → 3. Completion order must respect it.
    use tora_alloc::resources::ResourceVector;
    use tora_alloc::task::TaskSpec;
    let peak = ResourceVector::new(1.0, 100.0, 10.0);
    let tasks: Vec<TaskSpec> = (0..4)
        .map(|i| TaskSpec::new(i, 0, peak, 10.0 + i as f64))
        .collect();
    let wf = Workflow::new(
        "diamond",
        vec!["t".into()],
        tasks,
        tora_alloc::resources::WorkerSpec::paper_default(),
    )
    .with_dependencies(vec![vec![], vec![0], vec![0], vec![1, 2]]);
    let config = SimConfig {
        record_log: true,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::WholeMachine, config);
    assert_eq!(res.metrics.len(), 4);
    let log = res.log.unwrap();
    log.check_consistency().unwrap();
    // Extract completion times per task id.
    let mut done = std::collections::HashMap::new();
    for e in log.entries() {
        if let crate::log::SimEvent::TaskCompleted { task, .. } = e.event {
            done.insert(task.0, e.time_s);
        }
    }
    assert!(done[&0] <= done[&1] && done[&0] <= done[&2]);
    assert!(done[&1] <= done[&3] && done[&2] <= done[&3]);
    // Dispatches of dependents happen after predecessors complete.
    let mut dispatched = std::collections::HashMap::new();
    for e in log.entries() {
        if let crate::log::SimEvent::TaskDispatched { task, .. } = e.event {
            dispatched.entry(task.0).or_insert(e.time_s);
        }
    }
    assert!(dispatched[&3] >= done[&1].max(done[&2]));
}

#[test]
fn dag_workflow_completes_with_retries_and_churn() {
    let wf = PaperWorkflow::TopEft
        .spec(3)
        .category_tasks(vec![20, 160, 12])
        .dag()
        .materialize()
        .unwrap();
    let config = SimConfig {
        churn: ChurnConfig {
            initial: 4,
            min: 3,
            max: 8,
            mean_interval_s: Some(20.0),
        },
        record_log: true,
        seed: 3,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    assert_eq!(res.metrics.len(), wf.len());
    res.log.unwrap().check_consistency().unwrap();
    // The DAG forces accumulating tasks to finish last.
    let order: Vec<u64> = res.metrics.outcomes().iter().map(|o| o.task.0).collect();
    let _ = order; // completion set is full; per-task ordering verified above
}

#[test]
fn heterogeneous_pool_hosts_more_concurrent_tasks() {
    let wf = small(SyntheticKind::Normal);
    let base = SimConfig {
        churn: ChurnConfig::fixed(6),
        track_utilization: true,
        seed: 5,
        ..SimConfig::default()
    };
    let mixed = SimConfig {
        worker_mix: Some(WorkerMix {
            large_fraction: 0.5,
            scale: 4.0,
        }),
        ..base
    };
    let plain = simulate(&wf, AlgorithmKind::MaxSeen, base);
    let big = simulate(&wf, AlgorithmKind::MaxSeen, mixed);
    assert_eq!(plain.metrics.len(), wf.len());
    assert_eq!(big.metrics.len(), wf.len());
    // Scaled workers host more attempts at once and finish sooner.
    let plain_peak = plain.utilization.unwrap().peak_running();
    let big_peak = big.utilization.unwrap().peak_running();
    assert!(big_peak > plain_peak, "{big_peak} vs {plain_peak}");
    assert!(big.makespan_s < plain.makespan_s);
    // AWE accounting is unaffected by where tasks run.
    for o in big.metrics.outcomes() {
        o.check().unwrap();
    }
}

#[test]
fn worker_mix_validation() {
    assert!(WorkerMix {
        large_fraction: 0.3,
        scale: 2.0
    }
    .validate()
    .is_ok());
    assert!(WorkerMix {
        large_fraction: 1.5,
        scale: 2.0
    }
    .validate()
    .is_err());
    // Sub-unit scales are legal: they model workers smaller than the
    // workflow's base shape (shrinking-pool scenarios).
    assert!(WorkerMix {
        large_fraction: 0.5,
        scale: 0.5
    }
    .validate()
    .is_ok());
    assert!(WorkerMix {
        large_fraction: 0.5,
        scale: 0.0
    }
    .validate()
    .is_err());
}

/// A two-phase steering driver: submit `n` probe tasks, then — once all
/// probes are done — submit one downstream task per probe whose memory
/// depends on the probe's "result".
struct TwoPhase {
    probes: usize,
    probe_done: usize,
    submitted_phase2: bool,
}

impl Driver for TwoPhase {
    fn on_start(&mut self, api: &mut SubmitApi) {
        use tora_alloc::resources::ResourceVector;
        for i in 0..self.probes {
            api.submit(0, ResourceVector::new(1.0, 300.0 + i as f64, 50.0), 20.0);
        }
    }

    fn on_task_complete(&mut self, task: &TaskSpec, api: &mut SubmitApi) {
        use tora_alloc::resources::ResourceVector;
        if task.category.0 == 0 {
            self.probe_done += 1;
            if self.probe_done == self.probes && !self.submitted_phase2 {
                self.submitted_phase2 = true;
                // Steering: the application reacts to phase-1 results.
                for i in 0..self.probes {
                    api.submit(1, ResourceVector::new(2.0, 900.0 + i as f64, 80.0), 40.0);
                }
            }
        }
    }
}

#[test]
fn driver_generates_tasks_at_runtime() {
    let driver = Box::new(TwoPhase {
        probes: 30,
        probe_done: 0,
        submitted_phase2: false,
    });
    let config = SimConfig {
        churn: ChurnConfig::fixed(5),
        record_log: true,
        seed: 4,
        ..SimConfig::default()
    };
    let sim = Simulation::with_driver(
        driver,
        tora_alloc::resources::WorkerSpec::paper_default(),
        AlgorithmKind::ExhaustiveBucketing,
        config,
    );
    let res = sim.run();
    // 30 probes + 30 steered tasks, all completed.
    assert_eq!(res.metrics.len(), 60);
    let log = res.log.unwrap();
    log.check_consistency().unwrap();
    // Phase-2 tasks were only dispatched after the last probe finished.
    let mut last_probe_done = 0.0f64;
    let mut first_phase2_dispatch = f64::INFINITY;
    for e in log.entries() {
        match e.event {
            crate::log::SimEvent::TaskCompleted { task, .. } if task.0 < 30 => {
                last_probe_done = last_probe_done.max(e.time_s);
            }
            crate::log::SimEvent::TaskDispatched { task, .. } if task.0 >= 30 => {
                first_phase2_dispatch = first_phase2_dispatch.min(e.time_s);
            }
            _ => {}
        }
    }
    assert!(first_phase2_dispatch >= last_probe_done);
    // Both categories were learned independently.
    let phase2 = res
        .metrics
        .outcomes()
        .iter()
        .filter(|o| o.category.0 == 1)
        .count();
    assert_eq!(phase2, 30);
}

#[test]
fn driver_submissions_can_depend_on_running_tasks() {
    struct Chained;
    impl Driver for Chained {
        fn on_start(&mut self, api: &mut SubmitApi) {
            use tora_alloc::resources::ResourceVector;
            let peak = ResourceVector::new(1.0, 100.0, 10.0);
            let a = api.submit(0, peak, 10.0);
            let b = api.submit_with_deps(0, peak, 10.0, vec![a]);
            let _c = api.submit_with_deps(0, peak, 10.0, vec![a, b]);
        }
        fn on_task_complete(&mut self, _: &TaskSpec, _: &mut SubmitApi) {}
    }
    let res = Simulation::with_driver(
        Box::new(Chained),
        tora_alloc::resources::WorkerSpec::paper_default(),
        AlgorithmKind::WholeMachine,
        SimConfig {
            record_log: true,
            ..SimConfig::default()
        },
    )
    .run();
    assert_eq!(res.metrics.len(), 3);
    res.log.unwrap().check_consistency().unwrap();
}

#[test]
fn production_workflows_run_end_to_end() {
    for wf in [PaperWorkflow::ColmenaXtb, PaperWorkflow::TopEft] {
        let built = wf.build(3);
        let res = simulate(
            &built,
            AlgorithmKind::ExhaustiveBucketing,
            SimConfig::default(),
        );
        assert_eq!(res.metrics.len(), built.len(), "{}", built.name);
    }
}
