//! Dispatch: allocation at dispatch time, first-fit placement, transient
//! dispatch failures with exponential backoff, and attempt completion.
//!
//! This is where the paper's contribution acts — a ready task is allocated
//! the moment it is placed (§II-A note), killed when it over-consumes, and
//! retried with a bigger allocation. Checkpoint/restart hooks in here too:
//! a task whose earlier attempts banked salvaged progress is judged on its
//! *remaining* duration, so the retry only pays for the work still owed.

use super::arena::RunId;
use super::lifecycle::TaskPhase;
use super::queue::Event;
use super::Simulation;
use crate::enforcement::AttemptVerdict;
use crate::log::SimEvent;
use crate::scheduler::QueuePolicy;
use crate::time::SimTime;
use crate::workers::WorkerId;
use rand::Rng;
use tora_alloc::feedback::AttemptFeedback;
use tora_alloc::resources::ResourceVector;
use tora_alloc::task::{ResourceRecord, TaskContext, TaskSpec};
use tora_alloc::trace::EventSink;
use tora_metrics::{AttemptCause, AttemptOutcome, DeadLetterCause, TaskOutcome};

/// One attempt in flight on a worker.
pub(super) struct Running {
    pub(super) task_idx: usize,
    pub(super) worker: WorkerId,
    pub(super) alloc: ResourceVector,
    pub(super) start: SimTime,
    pub(super) verdict: AttemptVerdict,
    /// How this attempt will end if it runs to its `Finish` event
    /// (straggler injection is decided at dispatch time).
    pub(super) cause: AttemptCause,
    /// Nominal task seconds finished per wall-clock second (1.0 normally,
    /// `1/multiplier` for a straggler, 0.0 for a hung attempt); prices
    /// checkpointed progress when the attempt crashes.
    pub(super) work_rate: f64,
    /// Task duration still owed at dispatch time (the full duration minus
    /// any salvage banked by earlier crashed attempts).
    pub(super) remaining_s: f64,
}

impl<S: EventSink> Simulation<S> {
    /// The allocation a queued task would get if dispatched right now.
    /// Allocation happens at dispatch time (§II-A note), so a queued first
    /// attempt's prediction goes stale whenever the allocator learns
    /// something new — queue scans under non-FIFO policies must not freeze a
    /// prediction made before the estimator had data. The knowledge epoch
    /// (bumped on every observation) detects exactly that, so an unchanged
    /// estimator reuses the cached prediction instead of burning a fresh
    /// one per scheduling round. Pinned allocations (retry escalations and
    /// preemption resubmits) are never re-predicted.
    pub(super) fn ensure_alloc(&mut self, task_idx: usize) -> ResourceVector {
        if let Some(a) = self.tasks[task_idx].next_alloc {
            if self.tasks[task_idx].pinned
                || self.tasks[task_idx].predicted_epoch == self.alloc_epoch
            {
                return a;
            }
        }
        let ctx = TaskContext::from(&self.specs[task_idx]);
        let a = self.allocator.predict_first(ctx).into_alloc();
        self.stats.record_predict_first(ctx.category.0);
        let state = &mut self.tasks[task_idx];
        state.next_alloc = Some(a);
        state.predicted_epoch = self.alloc_epoch;
        state.pinned = false;
        a
    }

    /// Predicted allocations for the first `visible` ready-queue entries,
    /// as `(queue index, allocation)` pairs for the queue policy.
    ///
    /// Cache-missing entries are predicted as one batch through the
    /// category-sharded allocator ([`predict_first_batch`]), fanning
    /// distinct categories across the engine's worker threads. Because no
    /// observation lands between the queue scan's predictions, the batch is
    /// byte-identical — decisions, RNG consumption, trace events — to the
    /// per-entry serial calls it replaces; the single-entry (FIFO) case
    /// stays on the direct path.
    ///
    /// [`predict_first_batch`]: tora_alloc::allocator::Allocator::predict_first_batch
    fn predict_visible(&mut self, visible: usize) -> Vec<(usize, ResourceVector)> {
        let mut queue = Vec::with_capacity(visible);
        if visible == 1 {
            let (task_idx, _) = self.ready[0];
            let alloc = self.ensure_alloc(task_idx);
            queue.push((0, alloc));
            return queue;
        }
        // (queue index, task index) of entries whose cached prediction is
        // missing or stale; everyone else reuses their cache, exactly as
        // `ensure_alloc` would.
        let mut misses: Vec<(usize, usize)> = Vec::new();
        for qi in 0..visible {
            let (task_idx, _) = self.ready[qi];
            let state = &self.tasks[task_idx];
            match state.next_alloc {
                Some(a) if state.pinned || state.predicted_epoch == self.alloc_epoch => {
                    queue.push((qi, a));
                }
                _ => {
                    misses.push((qi, task_idx));
                    queue.push((qi, ResourceVector::ZERO)); // patched below
                }
            }
        }
        if !misses.is_empty() {
            let contexts: Vec<TaskContext> = misses
                .iter()
                .map(|&(_, task_idx)| TaskContext::from(&self.specs[task_idx]))
                .collect();
            let decisions = self.allocator.predict_first_batch(&contexts, self.threads);
            for (&(qi, task_idx), decision) in misses.iter().zip(decisions) {
                let category = self.specs[task_idx].category;
                self.stats.record_predict_first(category.0);
                let alloc = decision.into_alloc();
                let state = &mut self.tasks[task_idx];
                state.next_alloc = Some(alloc);
                state.predicted_epoch = self.alloc_epoch;
                state.pinned = false;
                queue[qi].1 = alloc;
            }
        }
        queue
    }

    /// Drop stale ready-queue entries (their task's queue token moved on,
    /// i.e. it was dead-lettered after enqueueing). FIFO only ever looks at
    /// the head, so popping stale heads suffices; the scanning policies see
    /// the whole queue and need it compacted.
    fn drop_stale_ready(&mut self) {
        match self.config.queue_policy {
            QueuePolicy::Fifo => {
                while let Some(&entry) = self.ready.front() {
                    if self.ready_entry_live(entry) {
                        break;
                    }
                    self.ready.pop_front();
                }
            }
            _ => {
                let tasks = &self.tasks;
                self.ready
                    .retain(|&(t, token)| tasks[t].queue_token == token);
            }
        }
    }

    /// Dispatch ready tasks under the configured queue policy until nothing
    /// more fits.
    pub(super) fn dispatch(&mut self) {
        loop {
            self.drop_stale_ready();
            if self.ready.is_empty() {
                break;
            }
            // The FIFO policy only ever inspects (and therefore allocates)
            // the queue head; the others need every queued task's predicted
            // allocation.
            let visible = match self.config.queue_policy {
                QueuePolicy::Fifo => 1,
                _ => self.ready.len(),
            };
            let queue = self.predict_visible(visible);
            let pool = &self.pool;
            let Some(qi) = self
                .config
                .queue_policy
                .select(&queue, |alloc| pool.can_place(alloc))
            else {
                break; // nothing dispatchable right now
            };
            let (task_idx, _) = self.ready.remove(qi).expect("selected index in queue");
            // Transient dispatch failure: the placement RPC is lost before
            // the attempt starts. The task backs off (exponentially) and
            // re-enters the queue via a `Requeue` event — or is dead-lettered
            // once its consecutive-failure budget is spent.
            let plan = self.config.faults;
            if plan.dispatch_failure_rate > 0.0
                && self.fault_rng.gen::<f64>() < plan.dispatch_failure_rate
            {
                self.stats.faults.dispatch_failures += 1;
                let state = &mut self.tasks[task_idx];
                state.dispatch_failures += 1;
                let failures = state.dispatch_failures;
                self.log_event(SimEvent::DispatchFailed {
                    task: self.specs[task_idx].id,
                });
                if plan.max_dispatch_retries > 0 && failures > plan.max_dispatch_retries {
                    self.dead_letter(task_idx, DeadLetterCause::DispatchRetriesExhausted);
                } else {
                    self.tasks[task_idx]
                        .advance(TaskPhase::Requeued)
                        .expect("flaky dispatch bounced a ready task");
                    let backoff = plan.dispatch_backoff_s
                        * 2f64.powi(failures.saturating_sub(1).min(10) as i32);
                    self.events
                        .schedule(self.now + backoff, Event::Requeue { task_idx });
                }
                continue;
            }
            self.tasks[task_idx].dispatch_failures = 0;
            let alloc = self.tasks[task_idx].next_alloc.expect("alloc just ensured");
            let avoid = self.rack_avoid_list();
            let worker = self
                .pool
                .place_avoiding(&alloc, &avoid)
                .expect("can_place verified");
            let task = self.specs[task_idx];
            // Checkpoint/restart: judge the attempt on the work still owed.
            // With no banked salvage this is the spec itself, bit for bit.
            let salvaged = self.tasks[task_idx].salvaged_s;
            let effective = if salvaged > 0.0 {
                TaskSpec {
                    duration_s: (task.duration_s - salvaged).max(0.0),
                    ..task
                }
            } else {
                task
            };
            let verdict = self.config.enforcement.judge(&effective, &alloc);
            let (verdict, cause, work_rate) = self.inject_straggler(verdict);
            self.dispatch_ids += 1;
            let dispatch = self.dispatch_ids;
            let run = self.running.insert(Running {
                task_idx,
                worker,
                alloc,
                start: self.now,
                verdict,
                cause,
                work_rate,
                remaining_s: effective.duration_s,
            });
            self.running_by_worker
                .entry(worker)
                .or_default()
                .push((dispatch, run));
            self.stats.dispatches += 1;
            self.tasks[task_idx]
                .advance(TaskPhase::Running)
                .expect("dispatched task was ready");
            self.log_event(SimEvent::TaskDispatched {
                task: self.specs[task_idx].id,
                worker,
                attempt: self.tasks[task_idx].attempts.len() + 1,
                allocation: alloc,
            });
            self.events
                .schedule(self.now + verdict.charged_time_s, Event::Finish { run });
        }
    }

    /// Drop an attempt from its worker's victim index (it ended in place,
    /// rather than with the worker).
    pub(super) fn forget_worker_run(&mut self, worker: WorkerId, run: RunId) {
        if let Some(list) = self.running_by_worker.get_mut(&worker) {
            if let Some(pos) = list.iter().position(|&(_, r)| r == run) {
                list.swap_remove(pos);
            }
            if list.is_empty() {
                self.running_by_worker.remove(&worker);
            }
        }
    }

    pub(super) fn on_finish(&mut self, run_id: RunId) {
        let Some(run) = self.running.remove(run_id) else {
            return; // stale event: the attempt was preempted or crashed
        };
        self.forget_worker_run(run.worker, run_id);
        self.pool.release(run.worker, &run.alloc);
        let rack = self.pool.get(run.worker).map(|w| w.spec.rack);
        let task = self.specs[run.task_idx];
        if run.verdict.success {
            self.log_event(SimEvent::TaskCompleted {
                task: task.id,
                worker: run.worker,
            });
            let attempt = if run.cause == AttemptCause::StragglerCompleted {
                self.stats.faults.stragglers_slow += 1;
                AttemptOutcome::success_straggled(run.alloc, run.verdict.charged_time_s)
            } else {
                AttemptOutcome::success(run.alloc, run.verdict.charged_time_s)
            };
            let state = &mut self.tasks[run.task_idx];
            self.attempt_arena.push(&mut state.attempts, attempt);
            let outcome = TaskOutcome {
                task: task.id,
                category: task.category,
                peak: task.peak,
                duration_s: task.duration_s,
                attempts: self.attempt_arena.take(&mut state.attempts),
            };
            debug_assert!(outcome.check().is_ok(), "{:?}", outcome.check());
            self.result_metrics.push(outcome);
            let plan = self.config.faults;
            if plan.record_dropout_rate > 0.0
                && self.fault_rng.gen::<f64>() < plan.record_dropout_rate
            {
                // The completion is real but its resource record never
                // reaches the allocator: nothing is learned from this task.
                self.stats.faults.record_drops += 1;
                self.log_event(SimEvent::RecordDropped { task: task.id });
            } else if self.allocator.observe(&ResourceRecord::from_task(&task)) {
                self.stats.record_observation(task.category.0);
                // The estimator just learned something: queued (unpinned)
                // first predictions are now stale.
                self.alloc_epoch += 1;
            } else {
                self.stats.faults.rejected_records += 1;
            }
            self.report_outcome(task.category, AttemptFeedback::Success, rack);
            self.stats.completions += 1;
            self.completed += 1;
            self.tasks[run.task_idx]
                .advance(TaskPhase::Completed)
                .expect("completed attempt was running");
            let now_s = self.now.seconds();
            if let Some(cp) = self.cp.as_mut() {
                cp.record_finish(run.task_idx, now_s);
            }
            if self.tasks[run.task_idx].replays > 0 {
                self.stats.faults.replay_successes += 1;
            }
            // Dependency resolution: completed inputs release dependents.
            let dependents = std::mem::take(&mut self.dependents[run.task_idx]);
            for d in &dependents {
                let dep_state = &mut self.tasks[*d];
                dep_state.deps_remaining -= 1;
                // A cascade-doomed dependent stays dead even if its
                // predecessor later completes via replay.
                if dep_state.deps_remaining == 0 && dep_state.arrived && !dep_state.is_dead() {
                    dep_state
                        .advance(TaskPhase::Ready)
                        .expect("released dependent was pending");
                    self.push_ready(*d);
                }
            }
            self.dependents[run.task_idx] = dependents;
            // The application reacts to the result (Fig. 1's steering loop).
            if let Some(mut driver) = self.driver.take() {
                let mut api = self.submit_api();
                driver.on_task_complete(&task, &mut api);
                self.integrate_submissions(api);
                self.driver = Some(driver);
            }
        } else if run.cause == AttemptCause::StragglerTimeout {
            // Straggler watchdog kill: the allocation was not the problem,
            // so no retry prediction is made — resubmit with the same
            // (pinned) allocation, unless the attempt budget is spent.
            self.log_event(SimEvent::TaskTimedOut {
                task: task.id,
                worker: run.worker,
            });
            self.stats.faults.straggler_kills += 1;
            self.report_outcome(task.category, AttemptFeedback::Straggler, rack);
            let state = &mut self.tasks[run.task_idx];
            self.attempt_arena.push(
                &mut state.attempts,
                AttemptOutcome::failure_with_cause(
                    run.alloc,
                    run.verdict.charged_time_s,
                    AttemptCause::StragglerTimeout,
                ),
            );
            let cap = self.config.faults.max_attempts;
            if cap > 0 && self.tasks[run.task_idx].attempts.len() >= cap {
                self.dead_letter(run.task_idx, DeadLetterCause::AttemptsExhausted);
            } else {
                let state = &mut self.tasks[run.task_idx];
                state.next_alloc = Some(run.alloc);
                state.pinned = true;
                state
                    .advance(TaskPhase::Ready)
                    .expect("timed-out attempt was running");
                self.push_ready(run.task_idx);
            }
        } else {
            self.log_event(SimEvent::TaskKilled {
                task: task.id,
                worker: run.worker,
            });
            let state = &mut self.tasks[run.task_idx];
            self.attempt_arena.push(
                &mut state.attempts,
                AttemptOutcome::failure(run.alloc, run.verdict.charged_time_s),
            );
            self.stats.failures += 1;
            self.report_outcome(task.category, AttemptFeedback::Exhaustion, rack);
            let cap = self.config.faults.max_attempts;
            if cap > 0 && self.tasks[run.task_idx].attempts.len() >= cap {
                // Attempt budget spent: dead-letter without asking the
                // allocator for a retry (`capped_retries` balances the
                // `failures = retry predictions` reconciliation identity).
                self.stats.faults.capped_retries += 1;
                self.dead_letter(run.task_idx, DeadLetterCause::AttemptsExhausted);
                return;
            }
            let escalations = self
                .allocator
                .config()
                .managed
                .iter()
                .filter(|kind| run.verdict.exhausted.contains(**kind))
                .count() as u64;
            self.stats
                .record_predict_retry(task.category.0, escalations);
            let decision = self.allocator.predict_retry(
                TaskContext::from(&task),
                &run.alloc,
                &run.verdict.exhausted,
            );
            if decision.infeasible {
                // The retry could not grow any exhausted axis (already at
                // machine capacity): re-running would reproduce the exact
                // same kill forever.
                self.dead_letter(run.task_idx, DeadLetterCause::Infeasible);
                return;
            }
            let next = decision.into_alloc();
            let state = &mut self.tasks[run.task_idx];
            state.next_alloc = Some(next);
            // Escalations are pinned: a later, smaller prediction must not
            // undo the doubling chosen at kill time.
            state.pinned = true;
            state
                .advance(TaskPhase::Ready)
                .expect("killed attempt was running");
            self.push_ready(run.task_idx);
        }
    }

    /// A transiently-failed dispatch finished its backoff.
    pub(super) fn on_requeue(&mut self, task_idx: usize) {
        let state = &mut self.tasks[task_idx];
        if !state.is_dead() && !state.is_completed() {
            state
                .advance(TaskPhase::Ready)
                .expect("requeued task re-enters the queue");
            self.push_ready(task_idx);
        }
    }

    /// Dead-letter ready tasks that no live worker could host even when
    /// idle, once they have been stuck that way for more than the plan's
    /// `max_unplaceable_rounds` consecutive scheduling rounds (a shrinking
    /// pool can strand an escalated allocation forever).
    pub(super) fn enforce_unplaceable_strikes(&mut self) {
        let max = self.config.faults.max_unplaceable_rounds;
        if max == 0 || self.ready.is_empty() {
            return;
        }
        let ready: Vec<usize> = self
            .ready
            .iter()
            .filter(|&&e| self.ready_entry_live(e))
            .map(|&(t, _)| t)
            .collect();
        let mut doomed = Vec::new();
        for task_idx in ready {
            let alloc = self.ensure_alloc(task_idx);
            if self.pool.could_ever_place(&alloc) {
                self.tasks[task_idx].unplaceable_strikes = 0;
            } else {
                let state = &mut self.tasks[task_idx];
                state.unplaceable_strikes += 1;
                if state.unplaceable_strikes > max {
                    doomed.push(task_idx);
                }
            }
        }
        for task_idx in doomed {
            self.dead_letter(task_idx, DeadLetterCause::Unplaceable);
        }
    }
}
