//! Fault-injection tests: crashes, stragglers, budgets, dead-lettering,
//! replay, rack correlation and checkpoint/restart.

use super::*;
use tora_workloads::synthetic::SyntheticKind;

fn small(kind: SyntheticKind) -> Workflow {
    kind.catalog_workflow()
        .spec(42)
        .tasks(200)
        .materialize()
        .unwrap()
}

fn assert_conserved(res: &SimResult, total: usize) {
    let dead = res.stats.faults.dead_lettered;
    assert_eq!(
        res.stats.submitted,
        res.stats.completions + dead,
        "conservation: submitted = completed + dead-lettered"
    );
    assert_eq!(res.stats.submitted as usize, total);
    assert_eq!(res.metrics.len() as u64, res.stats.completions);
    assert_eq!(res.metrics.dead_lettered_count() as u64, dead);
}

#[test]
fn zero_rate_fault_plan_reproduces_fault_free_run() {
    let wf = small(SyntheticKind::Bimodal);
    let config = SimConfig {
        churn: ChurnConfig::paper_like(),
        seed: 7,
        ..SimConfig::default()
    };
    let with_plan = SimConfig {
        faults: FaultPlan::none(),
        ..config
    };
    let a = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    let b = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, with_plan);
    assert_eq!(
        serde_json::to_string(&a.metrics).unwrap(),
        serde_json::to_string(&b.metrics).unwrap()
    );
    assert_eq!(a.makespan_s, b.makespan_s);
    assert!(!a.stats.faults.any());
}

#[test]
fn crash_plan_conserves_tasks_and_logs_consistently() {
    let wf = small(SyntheticKind::Uniform);
    let config = SimConfig {
        churn: ChurnConfig {
            initial: 6,
            min: 3,
            max: 10,
            mean_interval_s: Some(15.0),
        },
        faults: FaultPlan::named("crashes").unwrap(),
        record_log: true,
        seed: 13,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    assert_conserved(&res, wf.len());
    assert!(res.stats.faults.worker_crashes > 0, "no crash fired");
    assert!(res.stats.faults.crashed_attempts > 0, "no attempt lost");
    res.log.unwrap().check_consistency().unwrap();
}

#[test]
fn straggler_plan_slows_and_kills_attempts() {
    let wf = small(SyntheticKind::Normal);
    let config = SimConfig {
        faults: FaultPlan {
            straggler_rate: 0.3,
            straggler_multiplier: 10.0,
            straggler_timeout_s: 120.0,
            max_attempts: 8,
            ..FaultPlan::none()
        },
        record_log: true,
        seed: 3,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::MaxSeen, config);
    assert_conserved(&res, wf.len());
    let f = &res.stats.faults;
    assert!(
        f.straggler_kills > 0 || f.stragglers_slow > 0,
        "30% straggler rate drew nothing: {f:?}"
    );
    // Drag waste is attributed to faults, not to the allocator.
    let attributed = res
        .metrics
        .attributed_waste(tora_alloc::resources::ResourceKind::MemoryMb);
    if f.stragglers_slow > 0 || f.straggler_kills > 0 {
        assert!(attributed.fault_induced > 0.0, "{attributed:?}");
    }
    res.log.unwrap().check_consistency().unwrap();
}

#[test]
fn record_dropout_starves_learning_but_not_completion() {
    let wf = small(SyntheticKind::Exponential);
    let config = SimConfig {
        faults: FaultPlan {
            record_dropout_rate: 0.4,
            ..FaultPlan::none()
        },
        record_log: true,
        seed: 21,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    assert_eq!(res.metrics.len(), wf.len(), "dropout must not lose tasks");
    assert!(res.stats.faults.record_drops > 0);
    // Observations + drops covers every completion.
    assert_eq!(
        res.stats.calls.observations + res.stats.faults.record_drops,
        res.stats.completions
    );
    res.log.unwrap().check_consistency().unwrap();
}

#[test]
fn flaky_dispatch_backs_off_and_conserves() {
    let wf = small(SyntheticKind::Bimodal);
    let config = SimConfig {
        faults: FaultPlan::named("flaky-dispatch").unwrap(),
        record_log: true,
        seed: 2,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::MaxSeen, config);
    assert_conserved(&res, wf.len());
    assert!(
        res.stats.faults.dispatch_failures > 0,
        "25% rate drew nothing"
    );
    // Failed dispatches are not real dispatches.
    assert!(res.stats.dispatches >= res.stats.completions);
    res.log.unwrap().check_consistency().unwrap();
}

#[test]
fn attempt_budget_dead_letters_instead_of_spinning() {
    // With a budget of one attempt, any first-attempt kill is terminal.
    let wf = small(SyntheticKind::Bimodal);
    let config = SimConfig {
        faults: FaultPlan {
            max_attempts: 1,
            ..FaultPlan::none()
        },
        record_log: true,
        seed: 5,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    assert_conserved(&res, wf.len());
    let dead = res.stats.faults.dead_lettered;
    assert!(dead > 0, "exploratory kills should exist under EB");
    assert_eq!(res.stats.faults.capped_retries, dead);
    assert!(res
        .metrics
        .dead_letters()
        .iter()
        .all(|l| l.cause == DeadLetterCause::AttemptsExhausted));
    // No completed task has more than one attempt.
    assert!(res.metrics.outcomes().iter().all(|o| o.attempts.len() == 1));
    res.log.unwrap().check_consistency().unwrap();
}

#[test]
fn shrunken_pool_dead_letters_unplaceable_tasks() {
    // Every worker is a quarter of the base shape, so a whole-machine
    // allocation can never be placed; the unplaceable-rounds budget must
    // dead-letter the stranded tasks instead of hanging the run.
    use tora_alloc::resources::ResourceVector;
    use tora_alloc::task::TaskSpec;
    let peak = ResourceVector::new(8.0, 32768.0, 1000.0);
    let tasks: Vec<TaskSpec> = (0..4).map(|i| TaskSpec::new(i, 0, peak, 30.0)).collect();
    let wf = Workflow::new(
        "stranded",
        vec!["t".into()],
        tasks,
        tora_alloc::resources::WorkerSpec::paper_default(),
    );
    let config = SimConfig {
        churn: ChurnConfig {
            initial: 3,
            min: 3,
            max: 3,
            mean_interval_s: Some(5.0),
        },
        worker_mix: Some(WorkerMix {
            large_fraction: 1.0,
            scale: 0.25,
        }),
        faults: FaultPlan {
            max_unplaceable_rounds: 2,
            ..FaultPlan::none()
        },
        record_log: true,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::WholeMachine, config);
    assert_conserved(&res, 4);
    assert_eq!(res.stats.faults.dead_lettered, 4);
    assert!(res
        .metrics
        .dead_letters()
        .iter()
        .all(|l| l.cause == DeadLetterCause::Unplaceable));
    res.log.unwrap().check_consistency().unwrap();
}

#[test]
fn dead_letter_cascades_to_dependents() {
    // 0 → 1 → 2; task 0 can never be placed, so 1 and 2 are doomed too.
    use tora_alloc::resources::ResourceVector;
    use tora_alloc::task::TaskSpec;
    let big = ResourceVector::new(8.0, 32768.0, 1000.0);
    let smallp = ResourceVector::new(1.0, 100.0, 10.0);
    let tasks = vec![
        TaskSpec::new(0, 0, big, 30.0),
        TaskSpec::new(1, 1, smallp, 10.0),
        TaskSpec::new(2, 1, smallp, 10.0),
    ];
    let wf = Workflow::new(
        "chain",
        vec!["big".into(), "small".into()],
        tasks,
        tora_alloc::resources::WorkerSpec::paper_default(),
    )
    .with_dependencies(vec![vec![], vec![0], vec![1]]);
    let config = SimConfig {
        churn: ChurnConfig {
            initial: 2,
            min: 2,
            max: 2,
            mean_interval_s: Some(5.0),
        },
        worker_mix: Some(WorkerMix {
            large_fraction: 1.0,
            scale: 0.25,
        }),
        faults: FaultPlan {
            max_unplaceable_rounds: 1,
            ..FaultPlan::none()
        },
        record_log: true,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::WholeMachine, config);
    assert_conserved(&res, 3);
    assert_eq!(res.stats.faults.dead_lettered, 3);
    let causes: Vec<DeadLetterCause> = res.metrics.dead_letters().iter().map(|l| l.cause).collect();
    assert_eq!(
        causes
            .iter()
            .filter(|c| **c == DeadLetterCause::Unplaceable)
            .count(),
        1
    );
    assert_eq!(
        causes
            .iter()
            .filter(|c| **c == DeadLetterCause::DependencyDeadLettered)
            .count(),
        2
    );
    res.log.unwrap().check_consistency().unwrap();
}

#[test]
fn heavy_chaos_is_deterministic_given_seed() {
    let wf = small(SyntheticKind::Bimodal);
    let config = SimConfig {
        churn: ChurnConfig {
            initial: 5,
            min: 2,
            max: 9,
            mean_interval_s: Some(12.0),
        },
        faults: FaultPlan::named("heavy").unwrap(),
        seed: 77,
        ..SimConfig::default()
    };
    let a = simulate(&wf, AlgorithmKind::GreedyBucketing, config);
    let b = simulate(&wf, AlgorithmKind::GreedyBucketing, config);
    assert_conserved(&a, wf.len());
    assert_eq!(a.stats, b.stats);
    assert_eq!(
        serde_json::to_string(&a.metrics).unwrap(),
        serde_json::to_string(&b.metrics).unwrap()
    );
    let ra = crate::faults::FaultReport::from_result(&a, &config, "greedy-bucketing");
    let rb = crate::faults::FaultReport::from_result(&b, &config, "greedy-bucketing");
    assert_eq!(ra.to_json(), rb.to_json());
    assert!(ra.conservation_ok);
}

#[test]
fn rack_crashes_down_correlated_workers_and_conserve() {
    // Fixed 8-worker pool over 4 racks: round-robin puts exactly two
    // workers in every rack, so the first rack crash (nothing else
    // removes workers here) must take out two workers at once.
    let wf = small(SyntheticKind::Bimodal);
    let config = SimConfig {
        churn: ChurnConfig::fixed(8),
        faults: FaultPlan {
            rack_crash_mean_interval_s: Some(20.0),
            rack_count: 4,
            max_attempts: 10,
            ..FaultPlan::none()
        },
        record_log: true,
        seed: 11,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    assert_conserved(&res, wf.len());
    let f = &res.stats.faults;
    assert!(f.rack_crashes > 0, "no rack crash fired: {f:?}");
    assert!(
        f.worker_crashes > f.rack_crashes,
        "rack crashes were not correlated: {f:?}"
    );
    let log = res.log.unwrap();
    log.check_consistency().unwrap();
    let crashed = log.count(|e| matches!(e, crate::log::SimEvent::WorkerCrashed { .. }));
    assert_eq!(crashed as u64, f.worker_crashes);
}

#[test]
fn replay_readmits_dead_letters_after_pool_recovery() {
    // Flaky dispatch with a one-retry budget produces
    // DispatchRetriesExhausted dead letters; every churn join above the
    // capacity threshold pulls them back for another round.
    let wf = small(SyntheticKind::Bimodal);
    let config = SimConfig {
        churn: ChurnConfig {
            initial: 5,
            min: 2,
            max: 10,
            mean_interval_s: Some(8.0),
        },
        faults: FaultPlan {
            dispatch_failure_rate: 0.35,
            dispatch_backoff_s: 1.0,
            max_dispatch_retries: 1,
            replay_capacity_fraction: 0.5,
            max_replay_rounds: 3,
            ..FaultPlan::none()
        },
        record_log: true,
        seed: 17,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::MaxSeen, config);
    assert_conserved(&res, wf.len());
    let f = &res.stats.faults;
    assert!(f.replayed > 0, "no dead letter was replayed: {f:?}");
    assert!(f.replay_successes > 0, "replay recovered nothing: {f:?}");
    assert!(f.replay_successes <= f.replayed);
    let log = res.log.unwrap();
    log.check_consistency().unwrap();
    let replay_events = log.count(|e| matches!(e, crate::log::SimEvent::TaskReplayed { .. }));
    assert_eq!(replay_events as u64, f.replayed);
}

#[test]
fn fault_policy_reports_every_terminal_attempt_outcome() {
    let wf = small(SyntheticKind::Bimodal);
    let config = SimConfig {
        faults: FaultPlan {
            straggler_rate: 0.2,
            straggler_multiplier: 8.0,
            straggler_timeout_s: 100.0,
            max_attempts: 8,
            ..FaultPlan::none()
        },
        fault_policy: Some(FaultPolicy::default()),
        seed: 3,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    assert_conserved(&res, wf.len());
    assert!(res.stats.calls.feedback > 0);
    // Success per completion, Exhaustion per resource kill, Straggler
    // per watchdog kill, Crash per crashed attempt — nothing else.
    assert_eq!(
        res.stats.calls.feedback,
        res.stats.completions
            + res.stats.failures
            + res.stats.faults.straggler_kills
            + res.stats.faults.crashed_attempts
    );
}

#[test]
fn fault_policy_without_faults_is_a_strict_no_op() {
    // The fault-feedback channel must be invisible while the plan is
    // inactive: identical metrics, identical makespan, zero feedback.
    let wf = small(SyntheticKind::Exponential);
    let base = SimConfig {
        churn: ChurnConfig::paper_like(),
        seed: 21,
        ..SimConfig::default()
    };
    let with_policy = SimConfig {
        fault_policy: Some(FaultPolicy::default()),
        ..base
    };
    let a = simulate(&wf, AlgorithmKind::GreedyBucketing, base);
    let b = simulate(&wf, AlgorithmKind::GreedyBucketing, with_policy);
    assert_eq!(
        serde_json::to_string(&a.metrics).unwrap(),
        serde_json::to_string(&b.metrics).unwrap()
    );
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_eq!(b.stats.calls.feedback, 0);
}

// ---- checkpoint/restart ------------------------------------------------

/// A crash-heavy plan with checkpointing at the given fraction.
fn crashy_plan(fraction: f64) -> FaultPlan {
    FaultPlan {
        crash_mean_interval_s: Some(25.0),
        max_attempts: 12,
        checkpointed_fraction: fraction,
        ..FaultPlan::none()
    }
}

#[test]
fn zero_checkpoint_fraction_is_byte_inert() {
    // `checkpointed_fraction: 0.0` must leave a crashing run byte-identical
    // to one whose plan never heard of checkpointing (the field's default):
    // no salvage counters, no banked work, no perturbed stream.
    let wf = small(SyntheticKind::Uniform);
    let base_plan = FaultPlan {
        crash_mean_interval_s: Some(25.0),
        max_attempts: 12,
        ..FaultPlan::none()
    };
    let run = |faults: FaultPlan| {
        let config = SimConfig {
            churn: ChurnConfig::fixed(6),
            faults,
            seed: 19,
            ..SimConfig::default()
        };
        simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config)
    };
    let a = run(base_plan);
    let b = run(crashy_plan(0.0));
    assert!(a.stats.faults.crashed_attempts > 0, "no crash fired");
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_eq!(
        serde_json::to_string(&a.metrics).unwrap(),
        serde_json::to_string(&b.metrics).unwrap()
    );
    assert_eq!(a.stats.faults.checkpointed_attempts, 0);
    assert_eq!(a.stats.salvaged_work_s, 0.0);
}

#[test]
fn checkpointing_salvages_work_deterministically_and_conserves() {
    let wf = small(SyntheticKind::Uniform);
    let config = SimConfig {
        churn: ChurnConfig::fixed(6),
        faults: crashy_plan(0.5),
        record_log: true,
        seed: 19,
        ..SimConfig::default()
    };
    let a = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    let b = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    assert_conserved(&a, wf.len());
    assert_eq!(a.stats, b.stats);
    let f = &a.stats.faults;
    assert!(f.crashed_attempts > 0, "no crash fired: {f:?}");
    assert!(f.checkpointed_attempts > 0, "no attempt salvaged: {f:?}");
    assert!(f.checkpointed_attempts <= f.crashed_attempts);
    assert!(a.stats.salvaged_work_s > 0.0);
    // The stats total is exactly the per-attempt salvage over every
    // outcome and dead letter.
    let per_attempt: f64 = a
        .metrics
        .outcomes()
        .iter()
        .map(|o| o.salvaged_s())
        .chain(
            a.metrics
                .dead_letters()
                .iter()
                .map(|l| l.attempts.iter().map(|at| at.salvaged_s).sum::<f64>()),
        )
        .sum();
    assert!(
        (a.stats.salvaged_work_s - per_attempt).abs() < 1e-9,
        "{} vs {per_attempt}",
        a.stats.salvaged_work_s
    );
    // Checkpoint events appear in the log, one per salvaged attempt.
    let log = a.log.unwrap();
    log.check_consistency().unwrap();
    let ckpt = log.count(|e| matches!(e, crate::log::SimEvent::TaskCheckpointed { .. }));
    assert_eq!(ckpt as u64, f.checkpointed_attempts);
    // Outcomes remain internally consistent under salvage accounting.
    for o in a.metrics.outcomes() {
        o.check().unwrap();
    }
}

#[test]
fn full_checkpoint_resumes_exactly_where_the_crash_left_off() {
    // With fraction 1.0, no stragglers and a whole-machine allocator (no
    // enforcement kills), every retry runs exactly the remaining duration:
    // the successful attempt's charged time plus everything salvaged adds
    // back up to the task's nominal duration.
    let wf = small(SyntheticKind::Normal);
    let config = SimConfig {
        churn: ChurnConfig::fixed(5),
        faults: crashy_plan(1.0),
        seed: 29,
        ..SimConfig::default()
    };
    let res = simulate(&wf, AlgorithmKind::WholeMachine, config);
    assert_conserved(&res, wf.len());
    assert!(
        res.stats.faults.checkpointed_attempts > 0,
        "no salvage: {:?}",
        res.stats.faults
    );
    for o in res.metrics.outcomes() {
        let spec_duration = o.duration_s;
        let salvaged = o.salvaged_s();
        let last = o.attempts.last().expect("completed task has attempts");
        assert!(last.success);
        assert!(
            (last.charged_time_s - (spec_duration - salvaged)).abs() < 1e-9,
            "task {}: charged {} vs duration {} - salvaged {}",
            o.task.0,
            last.charged_time_s,
            spec_duration,
            salvaged
        );
    }
}

#[test]
fn checkpointing_reduces_fault_waste_under_crashes() {
    // Salvaged progress shortens retries, so the crash-induced waste and
    // the makespan should both improve versus the same run without
    // checkpointing (aggregate property for this seed/config).
    let wf = small(SyntheticKind::Uniform);
    let run = |fraction: f64| {
        let config = SimConfig {
            // Churn must replace crashed workers: a churn-less fixed pool
            // drains to zero under the crash process, every task strands,
            // and both waste figures degenerate to 0 (no completed task to
            // attribute waste to), making the comparison vacuous.
            churn: ChurnConfig {
                initial: 6,
                min: 6,
                max: 6,
                mean_interval_s: Some(5.0),
            },
            faults: crashy_plan(fraction),
            seed: 19,
            ..SimConfig::default()
        };
        simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config)
    };
    let off = run(0.0);
    let on = run(1.0);
    assert!(on.stats.salvaged_work_s > 0.0);
    assert!(!off.metrics.is_empty(), "the scenario must complete tasks");
    let k = tora_alloc::resources::ResourceKind::MemoryMb;
    let waste_off = off.metrics.attributed_waste(k).fault_induced;
    let waste_on = on.metrics.attributed_waste(k).fault_induced;
    assert!(
        waste_on < waste_off,
        "salvage should cut crash waste: {waste_on} vs {waste_off}"
    );
}

#[test]
fn unpulled_tail_sweep_matches_the_materializing_sweep() {
    // The stranded sweep must produce the same dead-letter stream whether
    // the streaming tail was materialized first (the old behavior) or
    // dead-lettered directly by id range (the cheap path): same ids, same
    // categories, same accounting, same log events.
    use tora_workloads::PaperWorkflow;
    let spec = PaperWorkflow::TopEft
        .spec(11)
        .category_tasks(vec![5, 30, 3]);
    let config = SimConfig {
        record_log: true,
        faults: FaultPlan::named("light").unwrap(),
        ..SimConfig::default()
    };
    let sweep_after_pulling = |pulled: usize| {
        let source = spec.stream().unwrap();
        let mut sim = Simulation::from_source(source, AlgorithmKind::ExhaustiveBucketing, config);
        if pulled > 0 {
            sim.ensure_spec(pulled - 1);
        }
        sim.sweep_stranded();
        assert_eq!(sim.dead_lettered, 38);
        assert_eq!(sim.stats.submitted, 38);
        assert_eq!(sim.stats.faults.dead_lettered, 38);
        (
            serde_json::to_string(&sim.result_metrics).unwrap(),
            serde_json::to_string(&sim.log).unwrap(),
        )
    };
    let materialized_first = sweep_after_pulling(38);
    let pulled_none = sweep_after_pulling(0);
    let pulled_some = sweep_after_pulling(7);
    assert_eq!(materialized_first, pulled_none);
    assert_eq!(materialized_first, pulled_some);
}
