//! The discrete-event workflow engine.
//!
//! Reproduces the execution loop of Figure 1: ready tasks are allocated at
//! dispatch time (the moment the paper's contribution acts), placed
//! first-fit on opportunistic workers, killed when they over-consume, and
//! retried with a bigger allocation. Completed tasks report their resource
//! records back to the allocator. Workers may join and leave mid-run; a
//! departing worker preempts its tasks, which are resubmitted with their
//! current allocation (preemption is an infrastructure artifact, not an
//! allocation failure, so it does not enter the §II-C waste metric — the
//! result reports it separately).

use crate::enforcement::{AttemptVerdict, EnforcementModel};
use crate::log::{EventLog, SimEvent};
use crate::scheduler::QueuePolicy;
use crate::stats::{SimStats, UtilizationSample, UtilizationSeries};
use crate::time::SimTime;
use crate::workers::{ChurnConfig, WorkerId, WorkerPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use tora_alloc::allocator::{AlgorithmKind, Allocator, AllocatorConfig};
use tora_alloc::resources::{ResourceVector, WorkerSpec};
use tora_alloc::task::ResourceRecord;
use tora_alloc::task::TaskSpec;
use tora_alloc::trace::{EventSink, NoopSink};
use tora_metrics::{AttemptOutcome, TaskOutcome, WorkflowMetrics};
use tora_workloads::Workflow;

/// How the dynamic workflow generates (submits) its tasks over time.
///
/// Dynamic workflow systems generate tasks *at runtime* (§I) — the manager
/// rarely sees the whole workload at once. The arrival model bounds how many
/// tasks can pile up in exploratory mode before the first records return.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ArrivalModel {
    /// Every task is ready at time zero (a static batch — the worst case for
    /// the exploratory phase).
    #[default]
    Batch,
    /// Tasks are generated with exponential inter-arrival times of the given
    /// mean, in submission order.
    Poisson {
        /// Mean seconds between submissions.
        mean_interval_s: f64,
    },
}

/// Optional heterogeneous pool: a fraction of joining workers are scaled-up
/// nodes (opportunistic pools frequently mix slot sizes). Spatial capacity is
/// multiplied; the wall-time axis is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerMix {
    /// Probability that a joining worker is a large one.
    pub large_fraction: f64,
    /// Spatial capacity multiplier of large workers (≥ 1).
    pub scale: f64,
}

impl WorkerMix {
    /// Validate the mix parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.large_fraction) {
            return Err(format!("bad large_fraction {}", self.large_fraction));
        }
        if !(self.scale.is_finite() && self.scale >= 1.0) {
            return Err(format!("bad scale {}", self.scale));
        }
        Ok(())
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// How failed attempts are timed.
    pub enforcement: EnforcementModel,
    /// Worker pool evolution.
    pub churn: ChurnConfig,
    /// Heterogeneous pool mix (`None` = every worker matches the workflow's
    /// base shape).
    pub worker_mix: Option<WorkerMix>,
    /// Task submission process.
    pub arrival: ArrivalModel,
    /// Ready-queue scheduling policy.
    pub queue_policy: QueuePolicy,
    /// Record a structured [`EventLog`] of the run.
    pub record_log: bool,
    /// Sample a pool [`UtilizationSeries`] at every event.
    pub track_utilization: bool,
    /// RNG seed (drives the allocator's bucket sampling, arrivals and the
    /// churn).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            enforcement: EnforcementModel::default(),
            churn: ChurnConfig::fixed(20),
            worker_mix: None,
            arrival: ArrivalModel::Batch,
            queue_policy: QueuePolicy::Fifo,
            record_log: false,
            track_utilization: false,
            seed: 0,
        }
    }
}

impl SimConfig {
    /// The paper-like setting: opportunistic 20–50 worker pool with ramp-up
    /// and runtime task generation.
    pub fn paper_like(seed: u64) -> Self {
        SimConfig {
            enforcement: EnforcementModel::default(),
            churn: ChurnConfig::paper_like(),
            worker_mix: None,
            arrival: ArrivalModel::Poisson {
                mean_interval_s: 1.5,
            },
            queue_policy: QueuePolicy::Fifo,
            record_log: false,
            track_utilization: false,
            seed,
        }
    }
}

/// Aggregate result of one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// §II-C metrics over every completed task.
    pub metrics: WorkflowMetrics,
    /// Wall-clock length of the run in simulated seconds.
    pub makespan_s: f64,
    /// Number of task preemptions caused by departing workers.
    pub preemptions: usize,
    /// Allocation·time lost to preempted attempts, per dimension (not part
    /// of the paper's waste metric; reported for completeness).
    pub preempted_alloc_time: ResourceVector,
    /// Smallest and largest pool size observed.
    pub worker_range: (usize, usize),
    /// Total dispatches (successful + killed + preempted attempts).
    pub dispatches: usize,
    /// Engine-side tally of dispatches, completions, failures and allocator
    /// calls — the reconciliation counterpart of the allocator's own
    /// [`tora_alloc::trace::TraceStats`].
    pub stats: SimStats,
    /// The structured event log (when `record_log` was set).
    pub log: Option<EventLog>,
    /// The pool utilization series (when `track_utilization` was set).
    pub utilization: Option<UtilizationSeries>,
}

#[derive(Debug)]
enum Event {
    Finish { dispatch: u64 },
    Arrive { task_idx: usize },
    Churn,
}

struct QueuedEvent {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct Running {
    task_idx: usize,
    worker: WorkerId,
    alloc: ResourceVector,
    start: SimTime,
    verdict: AttemptVerdict,
}

struct TaskState {
    attempts: Vec<AttemptOutcome>,
    /// Allocation for the next dispatch; `None` until first predicted.
    next_alloc: Option<ResourceVector>,
    /// `next_alloc` must not be re-predicted: it was fixed by a retry
    /// escalation (which a later, smaller prediction must not undo) or by a
    /// preemption (resubmit with the same allocation).
    pinned: bool,
    /// Allocator knowledge epoch `next_alloc` was predicted under; stale
    /// unpinned predictions are refreshed at the next scheduling round.
    predicted_epoch: u64,
    /// Whether the arrival model has released the task.
    arrived: bool,
    /// Predecessors still running (Fig. 1's dependency resolution).
    deps_remaining: usize,
}

impl TaskState {
    fn fresh(deps_remaining: usize, arrived: bool) -> Self {
        TaskState {
            attempts: Vec::new(),
            next_alloc: None,
            pinned: false,
            predicted_epoch: 0,
            arrived,
            deps_remaining,
        }
    }
}

/// A dynamic-workflow application driver (Fig. 1's application layer).
///
/// The defining property of the paper's workflow class is that "tasks'
/// definitions and dependencies are generated and inferred at runtime" (§I).
/// A driver is the application side of that loop: it submits an initial
/// batch of tasks and reacts to every completion — possibly submitting more
/// work based on the results (Colmena's steering, Coffea's
/// partition-then-accumulate). Driver-submitted tasks become ready
/// immediately (subject to their dependencies); the static [`Workflow`] path
/// is the degenerate driver that submits everything up front.
pub trait Driver: Send {
    /// Called once at time zero.
    fn on_start(&mut self, api: &mut SubmitApi);
    /// Called after each task completes successfully.
    fn on_task_complete(&mut self, task: &TaskSpec, api: &mut SubmitApi);
}

/// The submission handle a [`Driver`] writes new tasks through.
pub struct SubmitApi {
    submissions: Vec<(u32, ResourceVector, f64, Vec<u64>)>,
    next_id: u64,
}

impl SubmitApi {
    /// Submit an independent task; returns its id.
    pub fn submit(&mut self, category: u32, peak: ResourceVector, duration_s: f64) -> u64 {
        self.submit_with_deps(category, peak, duration_s, Vec::new())
    }

    /// Submit a task depending on earlier task ids; returns its id.
    ///
    /// # Panics
    /// If a dependency id is not strictly smaller than the new task's id.
    pub fn submit_with_deps(
        &mut self,
        category: u32,
        peak: ResourceVector,
        duration_s: f64,
        deps: Vec<u64>,
    ) -> u64 {
        let id = self.next_id;
        assert!(
            deps.iter().all(|&d| d < id),
            "dependencies must reference earlier tasks"
        );
        self.next_id += 1;
        self.submissions.push((category, peak, duration_s, deps));
        id
    }
}

/// The engine.
///
/// Generic over an [`EventSink`] so a run can be traced end to end: with a
/// non-default sink (see [`Simulation::with_sink`]) the embedded allocator
/// emits an [`tora_alloc::trace::AllocEvent`] for every decision it makes,
/// while the engine independently tallies its calls in [`SimStats`]. The
/// default [`NoopSink`] compiles all of that out.
pub struct Simulation<S: EventSink = NoopSink> {
    worker: WorkerSpec,
    specs: Vec<TaskSpec>,
    driver: Option<Box<dyn Driver>>,
    allocator: Allocator<S>,
    config: SimConfig,
    pool: WorkerPool,
    churn_rng: StdRng,
    events: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
    dispatch_ids: u64,
    running: HashMap<u64, Running>,
    ready: VecDeque<usize>,
    tasks: Vec<TaskState>,
    dependents: Vec<Vec<usize>>,
    completed_flags: Vec<bool>,
    completed: usize,
    now: SimTime,
    result_metrics: WorkflowMetrics,
    preempted_alloc_time: ResourceVector,
    worker_range: (usize, usize),
    stats: SimStats,
    /// Bumped on every observation; invalidates unpinned cached predictions.
    alloc_epoch: u64,
    log: Option<EventLog>,
    utilization: Option<UtilizationSeries>,
}

impl Simulation {
    /// Build an engine for one (static) workflow and algorithm.
    pub fn new(workflow: &Workflow, algorithm: AlgorithmKind, config: SimConfig) -> Self {
        let mut sim = Self::bare(workflow.worker, algorithm, config);
        sim.specs = workflow.tasks.clone();
        sim.tasks = workflow
            .tasks
            .iter()
            .enumerate()
            .map(|(i, _)| TaskState::fresh(workflow.deps_of(i).len(), false))
            .collect();
        sim.completed_flags = vec![false; workflow.len()];
        // Reverse adjacency for dependency resolution.
        sim.dependents = vec![Vec::new(); workflow.len()];
        for i in 0..workflow.len() {
            for &d in workflow.deps_of(i) {
                sim.dependents[d as usize].push(i);
            }
        }
        sim
    }

    /// Build an engine whose tasks are generated at runtime by `driver`
    /// (no static workload).
    pub fn with_driver(
        driver: Box<dyn Driver>,
        worker: WorkerSpec,
        algorithm: AlgorithmKind,
        config: SimConfig,
    ) -> Self {
        let mut sim = Self::bare(worker, algorithm, config);
        sim.driver = Some(driver);
        sim
    }

    /// Attach an [`EventSink`] to the embedded allocator, turning this
    /// engine into a traced one. Retrieve the sink afterwards with
    /// [`Simulation::run_traced`].
    pub fn with_sink<S: EventSink>(self, sink: S) -> Simulation<S> {
        Simulation {
            worker: self.worker,
            specs: self.specs,
            driver: self.driver,
            allocator: self.allocator.with_sink(sink),
            config: self.config,
            pool: self.pool,
            churn_rng: self.churn_rng,
            events: self.events,
            seq: self.seq,
            dispatch_ids: self.dispatch_ids,
            running: self.running,
            ready: self.ready,
            tasks: self.tasks,
            dependents: self.dependents,
            completed_flags: self.completed_flags,
            completed: self.completed,
            now: self.now,
            result_metrics: self.result_metrics,
            preempted_alloc_time: self.preempted_alloc_time,
            worker_range: self.worker_range,
            stats: self.stats,
            alloc_epoch: self.alloc_epoch,
            log: self.log,
            utilization: self.utilization,
        }
    }

    fn bare(worker: WorkerSpec, algorithm: AlgorithmKind, config: SimConfig) -> Self {
        config.churn.validate().expect("invalid churn config");
        let alloc_config = AllocatorConfig {
            machine: worker,
            ..AllocatorConfig::default()
        };
        if let Some(mix) = config.worker_mix {
            mix.validate().expect("invalid worker mix");
        }
        let allocator = Allocator::with_config(algorithm, alloc_config, config.seed);
        let mut churn_rng = StdRng::seed_from_u64(config.seed ^ 0xC4_0A17);
        let mut pool = WorkerPool::new();
        for _ in 0..config.churn.initial {
            let spec = Self::sample_worker_spec(worker, &config, &mut churn_rng);
            pool.join(spec);
        }
        let initial_workers = config.churn.initial;
        let mut log = config.record_log.then(EventLog::new);
        if let Some(log) = log.as_mut() {
            for id in 0..initial_workers as u64 {
                log.push(
                    0.0,
                    SimEvent::WorkerJoined {
                        worker: WorkerId(id),
                    },
                );
            }
        }
        Simulation {
            worker,
            specs: Vec::new(),
            driver: None,
            allocator,
            config,
            pool,
            churn_rng,
            events: BinaryHeap::new(),
            seq: 0,
            dispatch_ids: 0,
            running: HashMap::new(),
            ready: VecDeque::new(),
            tasks: Vec::new(),
            dependents: Vec::new(),
            completed_flags: Vec::new(),
            completed: 0,
            now: SimTime::ZERO,
            result_metrics: WorkflowMetrics::new(),
            preempted_alloc_time: ResourceVector::ZERO,
            worker_range: (initial_workers, initial_workers),
            stats: SimStats::new(),
            alloc_epoch: 0,
            log,
            utilization: config.track_utilization.then(UtilizationSeries::new),
        }
    }
}

impl<S: EventSink> Simulation<S> {
    fn log_event(&mut self, event: SimEvent) {
        if let Some(log) = self.log.as_mut() {
            log.push(self.now.seconds(), event);
        }
    }

    fn sample_utilization(&mut self) {
        if let Some(series) = self.utilization.as_mut() {
            let capacity = self.pool.total_capacity();
            let reserved = capacity.sub(&self.pool.total_available());
            series.push(UtilizationSample {
                time_s: self.now.seconds(),
                workers: self.pool.len(),
                running: self.pool.total_running(),
                capacity,
                reserved,
            });
        }
    }

    /// The shape of the next worker to join, honoring the heterogeneity mix.
    fn sample_worker_spec(base: WorkerSpec, config: &SimConfig, rng: &mut StdRng) -> WorkerSpec {
        let Some(mix) = config.worker_mix else {
            return base;
        };
        if rng.gen::<f64>() >= mix.large_fraction {
            return base;
        }
        let mut capacity = base.capacity;
        for kind in tora_alloc::resources::ResourceKind::ALL {
            if kind.is_spatial() {
                capacity[kind] *= mix.scale;
            }
        }
        WorkerSpec::new(capacity)
    }

    fn push_event(&mut self, time: SimTime, event: Event) {
        self.seq += 1;
        self.events.push(Reverse(QueuedEvent {
            time,
            seq: self.seq,
            event,
        }));
    }

    fn schedule_churn(&mut self) {
        if let Some(mean) = self.config.churn.mean_interval_s {
            let u: f64 = 1.0 - self.churn_rng.gen::<f64>();
            let dt = -mean * u.ln();
            self.push_event(self.now + dt.max(1e-9), Event::Churn);
        }
    }

    /// The allocation a queued task would get if dispatched right now.
    /// Allocation happens at dispatch time (§II-A note), so a queued first
    /// attempt's prediction goes stale whenever the allocator learns
    /// something new — queue scans under non-FIFO policies must not freeze a
    /// prediction made before the estimator had data. The knowledge epoch
    /// (bumped on every observation) detects exactly that, so an unchanged
    /// estimator reuses the cached prediction instead of burning a fresh
    /// one per scheduling round. Pinned allocations (retry escalations and
    /// preemption resubmits) are never re-predicted.
    fn ensure_alloc(&mut self, task_idx: usize) -> ResourceVector {
        if let Some(a) = self.tasks[task_idx].next_alloc {
            if self.tasks[task_idx].pinned
                || self.tasks[task_idx].predicted_epoch == self.alloc_epoch
            {
                return a;
            }
        }
        let category = self.specs[task_idx].category;
        let a = self.allocator.predict_first(category).into_alloc();
        self.stats.record_predict_first(category.0);
        let state = &mut self.tasks[task_idx];
        state.next_alloc = Some(a);
        state.predicted_epoch = self.alloc_epoch;
        state.pinned = false;
        a
    }

    /// Dispatch ready tasks under the configured queue policy until nothing
    /// more fits.
    fn dispatch(&mut self) {
        loop {
            if self.ready.is_empty() {
                break;
            }
            // The FIFO policy only ever inspects (and therefore allocates)
            // the queue head; the others need every queued task's predicted
            // allocation.
            let visible = match self.config.queue_policy {
                QueuePolicy::Fifo => 1,
                _ => self.ready.len(),
            };
            let mut queue = Vec::with_capacity(visible);
            for qi in 0..visible {
                let task_idx = self.ready[qi];
                let alloc = self.ensure_alloc(task_idx);
                queue.push((qi, alloc));
            }
            let pool = &self.pool;
            let Some(qi) = self
                .config
                .queue_policy
                .select(&queue, |alloc| pool.can_place(alloc))
            else {
                break; // nothing dispatchable right now
            };
            let task_idx = self.ready.remove(qi).expect("selected index in queue");
            let alloc = self.tasks[task_idx].next_alloc.expect("alloc just ensured");
            let worker = self.pool.place(&alloc).expect("can_place verified");
            let task = self.specs[task_idx];
            let verdict = self.config.enforcement.judge(&task, &alloc);
            self.dispatch_ids += 1;
            let dispatch = self.dispatch_ids;
            self.running.insert(
                dispatch,
                Running {
                    task_idx,
                    worker,
                    alloc,
                    start: self.now,
                    verdict,
                },
            );
            self.stats.dispatches += 1;
            self.log_event(SimEvent::TaskDispatched {
                task: self.specs[task_idx].id,
                worker,
                attempt: self.tasks[task_idx].attempts.len() + 1,
                allocation: alloc,
            });
            self.push_event(
                self.now + verdict.charged_time_s,
                Event::Finish { dispatch },
            );
        }
    }

    /// The arrival model released a task: it becomes ready once its
    /// predecessors (if any) have completed.
    fn on_arrive(&mut self, task_idx: usize) {
        self.log_event(SimEvent::TaskSubmitted {
            task: self.specs[task_idx].id,
        });
        let state = &mut self.tasks[task_idx];
        debug_assert!(!state.arrived, "duplicate arrival");
        state.arrived = true;
        if state.deps_remaining == 0 {
            self.ready.push_back(task_idx);
        }
    }

    fn on_finish(&mut self, dispatch: u64) {
        let Some(run) = self.running.remove(&dispatch) else {
            return; // stale event: the attempt was preempted
        };
        self.pool.release(run.worker, &run.alloc);
        let task = self.specs[run.task_idx];
        if run.verdict.success {
            self.log_event(SimEvent::TaskCompleted {
                task: task.id,
                worker: run.worker,
            });
        } else {
            self.log_event(SimEvent::TaskKilled {
                task: task.id,
                worker: run.worker,
            });
        }
        let state = &mut self.tasks[run.task_idx];
        if run.verdict.success {
            state.attempts.push(AttemptOutcome::success(
                run.alloc,
                run.verdict.charged_time_s,
            ));
            let outcome = TaskOutcome {
                task: task.id,
                category: task.category,
                peak: task.peak,
                duration_s: task.duration_s,
                attempts: std::mem::take(&mut state.attempts),
            };
            debug_assert!(outcome.check().is_ok(), "{:?}", outcome.check());
            self.result_metrics.push(outcome);
            self.allocator.observe(&ResourceRecord::from_task(&task));
            self.stats.completions += 1;
            self.stats.record_observation(task.category.0);
            // The estimator just learned something: queued (unpinned) first
            // predictions are now stale.
            self.alloc_epoch += 1;
            self.completed += 1;
            self.completed_flags[run.task_idx] = true;
            // Dependency resolution: completed inputs release dependents.
            let dependents = std::mem::take(&mut self.dependents[run.task_idx]);
            for d in &dependents {
                let dep_state = &mut self.tasks[*d];
                dep_state.deps_remaining -= 1;
                if dep_state.deps_remaining == 0 && dep_state.arrived {
                    self.ready.push_back(*d);
                }
            }
            self.dependents[run.task_idx] = dependents;
            // The application reacts to the result (Fig. 1's steering loop).
            if let Some(mut driver) = self.driver.take() {
                let mut api = self.submit_api();
                driver.on_task_complete(&task, &mut api);
                self.integrate_submissions(api);
                self.driver = Some(driver);
            }
        } else {
            state.attempts.push(AttemptOutcome::failure(
                run.alloc,
                run.verdict.charged_time_s,
            ));
            self.stats.failures += 1;
            let escalations = self
                .allocator
                .config()
                .managed
                .iter()
                .filter(|kind| run.verdict.exhausted.contains(**kind))
                .count() as u64;
            self.stats
                .record_predict_retry(task.category.0, escalations);
            let next = self
                .allocator
                .predict_retry(task.category, &run.alloc, &run.verdict.exhausted)
                .into_alloc();
            let state = &mut self.tasks[run.task_idx];
            state.next_alloc = Some(next);
            // Escalations are pinned: a later, smaller prediction must not
            // undo the doubling chosen at kill time.
            state.pinned = true;
            self.ready.push_back(run.task_idx);
        }
    }

    fn on_churn(&mut self) {
        let n = self.pool.len();
        let (min, max) = (self.config.churn.min, self.config.churn.max);
        // A zero-width band that is already satisfied has nothing to churn.
        if min == max && n == min {
            self.schedule_churn();
            return;
        }
        let join = if n <= min {
            true
        } else if n >= max {
            false
        } else {
            self.churn_rng.gen::<bool>()
        };
        if join {
            let spec = Self::sample_worker_spec(self.worker, &self.config, &mut self.churn_rng);
            let id = self.pool.join(spec);
            self.log_event(SimEvent::WorkerJoined { worker: id });
        } else if let Some(id) = self.pool.random_worker(&mut self.churn_rng) {
            // Preempt everything running on the departing worker.
            let mut victims: Vec<u64> = self
                .running
                .iter()
                .filter(|(_, r)| r.worker == id)
                .map(|(&d, _)| d)
                .collect();
            victims.sort_unstable();
            for d in victims {
                let run = self.running.remove(&d).expect("victim listed");
                let elapsed = self.now - run.start;
                self.preempted_alloc_time =
                    self.preempted_alloc_time.add(&run.alloc.scale(elapsed));
                self.stats.preemptions += 1;
                // Resubmit with the same (pinned) allocation: preemption
                // teaches the allocator nothing about the task's needs.
                let state = &mut self.tasks[run.task_idx];
                state.next_alloc = Some(run.alloc);
                state.pinned = true;
                self.ready.push_back(run.task_idx);
                self.log_event(SimEvent::TaskPreempted {
                    task: self.specs[run.task_idx].id,
                    worker: id,
                });
            }
            self.pool.leave(id);
            self.log_event(SimEvent::WorkerLeft { worker: id });
        }
        let n = self.pool.len();
        self.worker_range = (self.worker_range.0.min(n), self.worker_range.1.max(n));
        self.schedule_churn();
    }

    /// Schedule every task's arrival according to the arrival model.
    fn schedule_arrivals(&mut self) {
        match self.config.arrival {
            ArrivalModel::Batch => {
                for task_idx in 0..self.specs.len() {
                    self.on_arrive(task_idx);
                }
            }
            ArrivalModel::Poisson { mean_interval_s } => {
                assert!(
                    mean_interval_s.is_finite() && mean_interval_s > 0.0,
                    "bad arrival interval"
                );
                let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x0A88_17E5);
                let mut t = SimTime::ZERO;
                for task_idx in 0..self.specs.len() {
                    let u: f64 = 1.0 - rng.gen::<f64>();
                    t = t + (-mean_interval_s * u.ln()).max(0.0);
                    self.push_event(t, Event::Arrive { task_idx });
                }
            }
        }
    }

    /// A fresh submission handle continuing the id sequence.
    fn submit_api(&self) -> SubmitApi {
        SubmitApi {
            submissions: Vec::new(),
            next_id: self.specs.len() as u64,
        }
    }

    /// Fold driver submissions into the live run: new tasks arrive
    /// immediately, gated only by their dependencies.
    fn integrate_submissions(&mut self, api: SubmitApi) {
        for (category, peak, duration_s, deps) in api.submissions {
            let id = self.specs.len() as u64;
            let spec = TaskSpec::new(id, category, peak, duration_s);
            assert!(
                self.worker.capacity.dominates(&spec.peak),
                "{}: peak {} exceeds worker capacity {}",
                spec.id,
                spec.peak,
                self.worker.capacity
            );
            let deps_remaining = deps
                .iter()
                .filter(|&&d| !self.completed_flags[d as usize])
                .count();
            for &d in &deps {
                if !self.completed_flags[d as usize] {
                    self.dependents[d as usize].push(id as usize);
                }
            }
            self.specs.push(spec);
            self.tasks.push(TaskState::fresh(deps_remaining, true));
            self.dependents.push(Vec::new());
            self.completed_flags.push(false);
            self.log_event(SimEvent::TaskSubmitted { task: spec.id });
            if deps_remaining == 0 {
                self.ready.push_back(id as usize);
            }
        }
    }

    /// Run to completion and return the result.
    pub fn run(self) -> SimResult {
        self.run_traced().0
    }

    /// Run to completion, returning the result *and* the event sink the
    /// allocator emitted into — the traced variant of [`Simulation::run`].
    pub fn run_traced(mut self) -> (SimResult, S) {
        self.schedule_churn();
        self.schedule_arrivals();
        if let Some(mut driver) = self.driver.take() {
            let mut api = self.submit_api();
            driver.on_start(&mut api);
            self.integrate_submissions(api);
            self.driver = Some(driver);
        }
        self.dispatch();
        self.sample_utilization();
        while self.completed < self.specs.len() {
            let Reverse(ev) = self
                .events
                .pop()
                .expect("tasks pending but no events scheduled");
            debug_assert!(ev.time >= self.now);
            self.now = ev.time;
            match ev.event {
                Event::Finish { dispatch } => self.on_finish(dispatch),
                Event::Arrive { task_idx } => self.on_arrive(task_idx),
                Event::Churn => self.on_churn(),
            }
            self.dispatch();
            self.sample_utilization();
        }
        let stats = self.stats;
        let result = SimResult {
            metrics: self.result_metrics,
            makespan_s: self.now.seconds(),
            preemptions: stats.preemptions as usize,
            preempted_alloc_time: self.preempted_alloc_time,
            worker_range: self.worker_range,
            dispatches: stats.dispatches as usize,
            stats,
            log: self.log,
            utilization: self.utilization,
        };
        (result, self.allocator.into_sink())
    }
}

/// Convenience: simulate `workflow` under `algorithm` with `config`.
pub fn simulate(workflow: &Workflow, algorithm: AlgorithmKind, config: SimConfig) -> SimResult {
    Simulation::new(workflow, algorithm, config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tora_alloc::resources::ResourceKind;
    use tora_workloads::synthetic::{self, SyntheticKind};
    use tora_workloads::PaperWorkflow;

    fn small(kind: SyntheticKind) -> Workflow {
        synthetic::generate(kind, 200, 42)
    }

    #[test]
    fn every_task_completes_exactly_once() {
        let wf = small(SyntheticKind::Bimodal);
        let res = simulate(
            &wf,
            AlgorithmKind::ExhaustiveBucketing,
            SimConfig::default(),
        );
        assert_eq!(res.metrics.len(), wf.len());
        let mut ids: Vec<u64> = res.metrics.outcomes().iter().map(|o| o.task.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), wf.len());
        assert!(res.makespan_s > 0.0);
        assert!(res.dispatches >= wf.len());
    }

    #[test]
    fn whole_machine_never_retries() {
        let wf = small(SyntheticKind::Normal);
        let res = simulate(&wf, AlgorithmKind::WholeMachine, SimConfig::default());
        assert_eq!(res.metrics.total_retries(), 0);
        assert_eq!(res.dispatches, wf.len());
        // And its memory efficiency is terrible (≈ 4 GB / 64 GB).
        let awe = res.metrics.awe(ResourceKind::MemoryMb).unwrap();
        assert!(awe < 0.15, "whole machine AWE {awe}");
    }

    #[test]
    fn bucketing_beats_whole_machine_on_memory() {
        let wf = small(SyntheticKind::Normal);
        let base = simulate(&wf, AlgorithmKind::WholeMachine, SimConfig::default());
        let eb = simulate(
            &wf,
            AlgorithmKind::ExhaustiveBucketing,
            SimConfig::default(),
        );
        let k = ResourceKind::MemoryMb;
        assert!(
            eb.metrics.awe(k).unwrap() > 2.0 * base.metrics.awe(k).unwrap(),
            "EB {:?} vs WM {:?}",
            eb.metrics.awe(k),
            base.metrics.awe(k)
        );
    }

    #[test]
    fn churn_preserves_completion_and_accounting() {
        let wf = small(SyntheticKind::Uniform);
        let config = SimConfig {
            churn: ChurnConfig {
                initial: 5,
                min: 2,
                max: 8,
                mean_interval_s: Some(20.0),
            },
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::GreedyBucketing, config);
        assert_eq!(res.metrics.len(), wf.len());
        assert!(res.worker_range.0 >= 2);
        assert!(res.worker_range.1 <= 8);
        // With leaves happening, some preemptions are expected (not
        // guaranteed, but overwhelmingly likely for this seed/config).
        assert!(res.preemptions > 0, "no preemption observed");
        assert!(res.preempted_alloc_time.iter().all(|(_, v)| v >= 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let wf = small(SyntheticKind::Exponential);
        let config = SimConfig {
            churn: ChurnConfig::paper_like(),
            seed: 9,
            ..SimConfig::default()
        };
        let a = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        let b = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        assert_eq!(
            a.metrics.awe(ResourceKind::MemoryMb),
            b.metrics.awe(ResourceKind::MemoryMb)
        );
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(a.preemptions, b.preemptions);
    }

    #[test]
    fn awe_is_worker_count_independent_without_failures() {
        // With Whole Machine (no retries, fixed allocation), AWE must be
        // identical across pool sizes — the §II-C independence claim in its
        // purest form.
        let wf = small(SyntheticKind::Bimodal);
        let awe = |n: usize| {
            let config = SimConfig {
                churn: ChurnConfig::fixed(n),
                ..SimConfig::default()
            };
            simulate(&wf, AlgorithmKind::WholeMachine, config)
                .metrics
                .awe(ResourceKind::MemoryMb)
                .unwrap()
        };
        let a = awe(5);
        let b = awe(40);
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn makespan_shrinks_with_more_workers() {
        let wf = small(SyntheticKind::Normal);
        let run = |n: usize| {
            let config = SimConfig {
                churn: ChurnConfig::fixed(n),
                ..SimConfig::default()
            };
            simulate(&wf, AlgorithmKind::MaxSeen, config).makespan_s
        };
        assert!(run(40) < run(4), "more workers should finish sooner");
    }

    #[test]
    fn event_log_is_consistent_under_churn() {
        let wf = small(SyntheticKind::Bimodal);
        let config = SimConfig {
            churn: ChurnConfig {
                initial: 4,
                min: 2,
                max: 8,
                mean_interval_s: Some(15.0),
            },
            record_log: true,
            seed: 5,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        let log = res.log.expect("log requested");
        log.check_consistency().unwrap();
        // Dispatch count in the log matches the engine's counter.
        let dispatched = log.count(|e| matches!(e, crate::log::SimEvent::TaskDispatched { .. }));
        assert_eq!(dispatched, res.dispatches);
        let completed = log.count(|e| matches!(e, crate::log::SimEvent::TaskCompleted { .. }));
        assert_eq!(completed, wf.len());
        let killed = log.count(|e| matches!(e, crate::log::SimEvent::TaskKilled { .. }));
        assert_eq!(killed, res.metrics.total_retries());
        let preempted = log.count(|e| matches!(e, crate::log::SimEvent::TaskPreempted { .. }));
        assert_eq!(preempted, res.preemptions);
        assert_eq!(dispatched, completed + killed + preempted);
        // JSONL roundtrip.
        let parsed = crate::log::EventLog::from_jsonl(&log.to_jsonl()).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn utilization_series_is_sane() {
        let wf = small(SyntheticKind::Normal);
        let config = SimConfig {
            track_utilization: true,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::MaxSeen, config);
        let series = res.utilization.expect("series requested");
        assert!(!series.is_empty());
        for s in series.samples() {
            for kind in tora_alloc::resources::ResourceKind::STANDARD {
                if let Some(u) = s.utilization(kind) {
                    assert!((0.0..=1.0 + 1e-9).contains(&u), "{kind}: {u}");
                }
            }
            assert!(s.workers >= 1);
        }
        assert!(series.peak_running() >= 1);
        let mean = series
            .mean_utilization(tora_alloc::resources::ResourceKind::Cores)
            .unwrap();
        assert!(mean > 0.0 && mean <= 1.0);
    }

    #[test]
    fn all_queue_policies_complete_the_workflow() {
        let wf = small(SyntheticKind::Bimodal);
        for policy in crate::scheduler::QueuePolicy::ALL {
            let config = SimConfig {
                queue_policy: policy,
                seed: 3,
                ..SimConfig::default()
            };
            let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
            assert_eq!(res.metrics.len(), wf.len(), "{}", policy.label());
            for o in res.metrics.outcomes() {
                o.check().unwrap();
            }
        }
    }

    #[test]
    fn backfill_is_no_slower_than_fifo() {
        // Letting small tasks around a blocked head usually helps, but a
        // backfilled task can also delay the critical path, so the property
        // only holds in aggregate: compare mean makespan across seeds
        // rather than any single draw.
        let mut fifo_total = 0.0;
        let mut backfill_total = 0.0;
        let wf = small(SyntheticKind::Exponential);
        for seed in 0..8u64 {
            let run = |policy| {
                let config = SimConfig {
                    queue_policy: policy,
                    churn: ChurnConfig::fixed(4),
                    seed: 11 + seed,
                    ..SimConfig::default()
                };
                simulate(&wf, AlgorithmKind::MaxSeen, config).makespan_s
            };
            fifo_total += run(crate::scheduler::QueuePolicy::Fifo);
            backfill_total += run(crate::scheduler::QueuePolicy::FifoBackfill);
        }
        assert!(
            backfill_total <= fifo_total * 1.05,
            "mean backfill makespan {backfill_total} should not trail fifo {fifo_total}"
        );
    }

    #[test]
    fn dependencies_gate_execution_order() {
        // A diamond: 0 → {1, 2} → 3. Completion order must respect it.
        use tora_alloc::resources::ResourceVector;
        use tora_alloc::task::TaskSpec;
        let peak = ResourceVector::new(1.0, 100.0, 10.0);
        let tasks: Vec<TaskSpec> = (0..4)
            .map(|i| TaskSpec::new(i, 0, peak, 10.0 + i as f64))
            .collect();
        let wf = Workflow::new(
            "diamond",
            vec!["t".into()],
            tasks,
            tora_alloc::resources::WorkerSpec::paper_default(),
        )
        .with_dependencies(vec![vec![], vec![0], vec![0], vec![1, 2]]);
        let config = SimConfig {
            record_log: true,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::WholeMachine, config);
        assert_eq!(res.metrics.len(), 4);
        let log = res.log.unwrap();
        log.check_consistency().unwrap();
        // Extract completion times per task id.
        let mut done = std::collections::HashMap::new();
        for e in log.entries() {
            if let crate::log::SimEvent::TaskCompleted { task, .. } = e.event {
                done.insert(task.0, e.time_s);
            }
        }
        assert!(done[&0] <= done[&1] && done[&0] <= done[&2]);
        assert!(done[&1] <= done[&3] && done[&2] <= done[&3]);
        // Dispatches of dependents happen after predecessors complete.
        let mut dispatched = std::collections::HashMap::new();
        for e in log.entries() {
            if let crate::log::SimEvent::TaskDispatched { task, .. } = e.event {
                dispatched.entry(task.0).or_insert(e.time_s);
            }
        }
        assert!(dispatched[&3] >= done[&1].max(done[&2]));
    }

    #[test]
    fn dag_workflow_completes_with_retries_and_churn() {
        let wf = tora_workloads::topeft::generate_dag(20, 160, 12, 3);
        let config = SimConfig {
            churn: ChurnConfig {
                initial: 4,
                min: 3,
                max: 8,
                mean_interval_s: Some(20.0),
            },
            record_log: true,
            seed: 3,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        assert_eq!(res.metrics.len(), wf.len());
        res.log.unwrap().check_consistency().unwrap();
        // The DAG forces accumulating tasks to finish last.
        let order: Vec<u64> = res.metrics.outcomes().iter().map(|o| o.task.0).collect();
        let _ = order; // completion set is full; per-task ordering verified above
    }

    #[test]
    fn heterogeneous_pool_hosts_more_concurrent_tasks() {
        let wf = small(SyntheticKind::Normal);
        let base = SimConfig {
            churn: ChurnConfig::fixed(6),
            track_utilization: true,
            seed: 5,
            ..SimConfig::default()
        };
        let mixed = SimConfig {
            worker_mix: Some(WorkerMix {
                large_fraction: 0.5,
                scale: 4.0,
            }),
            ..base
        };
        let plain = simulate(&wf, AlgorithmKind::MaxSeen, base);
        let big = simulate(&wf, AlgorithmKind::MaxSeen, mixed);
        assert_eq!(plain.metrics.len(), wf.len());
        assert_eq!(big.metrics.len(), wf.len());
        // Scaled workers host more attempts at once and finish sooner.
        let plain_peak = plain.utilization.unwrap().peak_running();
        let big_peak = big.utilization.unwrap().peak_running();
        assert!(big_peak > plain_peak, "{big_peak} vs {plain_peak}");
        assert!(big.makespan_s < plain.makespan_s);
        // AWE accounting is unaffected by where tasks run.
        for o in big.metrics.outcomes() {
            o.check().unwrap();
        }
    }

    #[test]
    fn worker_mix_validation() {
        assert!(WorkerMix {
            large_fraction: 0.3,
            scale: 2.0
        }
        .validate()
        .is_ok());
        assert!(WorkerMix {
            large_fraction: 1.5,
            scale: 2.0
        }
        .validate()
        .is_err());
        assert!(WorkerMix {
            large_fraction: 0.5,
            scale: 0.5
        }
        .validate()
        .is_err());
    }

    /// A two-phase steering driver: submit `n` probe tasks, then — once all
    /// probes are done — submit one downstream task per probe whose memory
    /// depends on the probe's "result".
    struct TwoPhase {
        probes: usize,
        probe_done: usize,
        submitted_phase2: bool,
    }

    impl Driver for TwoPhase {
        fn on_start(&mut self, api: &mut SubmitApi) {
            use tora_alloc::resources::ResourceVector;
            for i in 0..self.probes {
                api.submit(0, ResourceVector::new(1.0, 300.0 + i as f64, 50.0), 20.0);
            }
        }

        fn on_task_complete(&mut self, task: &TaskSpec, api: &mut SubmitApi) {
            use tora_alloc::resources::ResourceVector;
            if task.category.0 == 0 {
                self.probe_done += 1;
                if self.probe_done == self.probes && !self.submitted_phase2 {
                    self.submitted_phase2 = true;
                    // Steering: the application reacts to phase-1 results.
                    for i in 0..self.probes {
                        api.submit(1, ResourceVector::new(2.0, 900.0 + i as f64, 80.0), 40.0);
                    }
                }
            }
        }
    }

    #[test]
    fn driver_generates_tasks_at_runtime() {
        let driver = Box::new(TwoPhase {
            probes: 30,
            probe_done: 0,
            submitted_phase2: false,
        });
        let config = SimConfig {
            churn: ChurnConfig::fixed(5),
            record_log: true,
            seed: 4,
            ..SimConfig::default()
        };
        let sim = Simulation::with_driver(
            driver,
            tora_alloc::resources::WorkerSpec::paper_default(),
            AlgorithmKind::ExhaustiveBucketing,
            config,
        );
        let res = sim.run();
        // 30 probes + 30 steered tasks, all completed.
        assert_eq!(res.metrics.len(), 60);
        let log = res.log.unwrap();
        log.check_consistency().unwrap();
        // Phase-2 tasks were only dispatched after the last probe finished.
        let mut last_probe_done = 0.0f64;
        let mut first_phase2_dispatch = f64::INFINITY;
        for e in log.entries() {
            match e.event {
                crate::log::SimEvent::TaskCompleted { task, .. } if task.0 < 30 => {
                    last_probe_done = last_probe_done.max(e.time_s);
                }
                crate::log::SimEvent::TaskDispatched { task, .. } if task.0 >= 30 => {
                    first_phase2_dispatch = first_phase2_dispatch.min(e.time_s);
                }
                _ => {}
            }
        }
        assert!(first_phase2_dispatch >= last_probe_done);
        // Both categories were learned independently.
        let phase2 = res
            .metrics
            .outcomes()
            .iter()
            .filter(|o| o.category.0 == 1)
            .count();
        assert_eq!(phase2, 30);
    }

    #[test]
    fn driver_submissions_can_depend_on_running_tasks() {
        struct Chained;
        impl Driver for Chained {
            fn on_start(&mut self, api: &mut SubmitApi) {
                use tora_alloc::resources::ResourceVector;
                let peak = ResourceVector::new(1.0, 100.0, 10.0);
                let a = api.submit(0, peak, 10.0);
                let b = api.submit_with_deps(0, peak, 10.0, vec![a]);
                let _c = api.submit_with_deps(0, peak, 10.0, vec![a, b]);
            }
            fn on_task_complete(&mut self, _: &TaskSpec, _: &mut SubmitApi) {}
        }
        let res = Simulation::with_driver(
            Box::new(Chained),
            tora_alloc::resources::WorkerSpec::paper_default(),
            AlgorithmKind::WholeMachine,
            SimConfig {
                record_log: true,
                ..SimConfig::default()
            },
        )
        .run();
        assert_eq!(res.metrics.len(), 3);
        res.log.unwrap().check_consistency().unwrap();
    }

    #[test]
    fn production_workflows_run_end_to_end() {
        for wf in [PaperWorkflow::ColmenaXtb, PaperWorkflow::TopEft] {
            let built = wf.build(3);
            let res = simulate(
                &built,
                AlgorithmKind::ExhaustiveBucketing,
                SimConfig::default(),
            );
            assert_eq!(res.metrics.len(), built.len(), "{}", built.name);
        }
    }
}
