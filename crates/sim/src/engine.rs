//! The discrete-event workflow engine.
//!
//! Reproduces the execution loop of Figure 1: ready tasks are allocated at
//! dispatch time (the moment the paper's contribution acts), placed
//! first-fit on opportunistic workers, killed when they over-consume, and
//! retried with a bigger allocation. Completed tasks report their resource
//! records back to the allocator. Workers may join and leave mid-run; a
//! departing worker preempts its tasks, which are resubmitted with their
//! current allocation (preemption is an infrastructure artifact, not an
//! allocation failure, so it does not enter the §II-C waste metric — the
//! result reports it separately).

use crate::enforcement::{AttemptVerdict, EnforcementModel};
use crate::faults::FaultPlan;
use crate::log::{EventLog, SimEvent};
use crate::scheduler::QueuePolicy;
use crate::stats::{SimStats, UtilizationSample, UtilizationSeries};
use crate::time::SimTime;
use crate::workers::{ChurnConfig, WorkerId, WorkerPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use tora_alloc::allocator::{AlgorithmKind, Allocator, AllocatorConfig};
use tora_alloc::feedback::{AttemptFeedback, FaultPolicy};
use tora_alloc::resources::{ResourceMask, ResourceVector, WorkerSpec};
use tora_alloc::task::CategoryId;
use tora_alloc::task::ResourceRecord;
use tora_alloc::task::TaskSpec;
use tora_alloc::trace::{EventSink, NoopSink};
use tora_metrics::{
    AttemptCause, AttemptOutcome, DeadLetter, DeadLetterCause, TaskOutcome, WorkflowMetrics,
};
use tora_workloads::Workflow;

/// How the dynamic workflow generates (submits) its tasks over time.
///
/// Dynamic workflow systems generate tasks *at runtime* (§I) — the manager
/// rarely sees the whole workload at once. The arrival model bounds how many
/// tasks can pile up in exploratory mode before the first records return.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ArrivalModel {
    /// Every task is ready at time zero (a static batch — the worst case for
    /// the exploratory phase).
    #[default]
    Batch,
    /// Tasks are generated with exponential inter-arrival times of the given
    /// mean, in submission order.
    Poisson {
        /// Mean seconds between submissions.
        mean_interval_s: f64,
    },
}

/// Optional heterogeneous pool: a fraction of joining workers are scaled-up
/// nodes (opportunistic pools frequently mix slot sizes). Spatial capacity is
/// multiplied; the wall-time axis is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerMix {
    /// Probability that a joining worker is a large one.
    pub large_fraction: f64,
    /// Spatial capacity multiplier of the mixed-in workers (> 0; values
    /// below 1 model workers *smaller* than the workflow's base shape, which
    /// is how a shrinking pool strands over-sized allocations).
    pub scale: f64,
}

impl WorkerMix {
    /// Validate the mix parameters.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.large_fraction) {
            return Err(format!("bad large_fraction {}", self.large_fraction));
        }
        if !(self.scale.is_finite() && self.scale > 0.0) {
            return Err(format!("bad scale {}", self.scale));
        }
        Ok(())
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// How failed attempts are timed.
    pub enforcement: EnforcementModel,
    /// Worker pool evolution.
    pub churn: ChurnConfig,
    /// Heterogeneous pool mix (`None` = every worker matches the workflow's
    /// base shape).
    pub worker_mix: Option<WorkerMix>,
    /// Task submission process.
    pub arrival: ArrivalModel,
    /// Ready-queue scheduling policy.
    pub queue_policy: QueuePolicy,
    /// Record a structured [`EventLog`] of the run.
    pub record_log: bool,
    /// Sample a pool [`UtilizationSeries`] at every event.
    pub track_utilization: bool,
    /// RNG seed (drives the allocator's bucket sampling, arrivals and the
    /// churn).
    pub seed: u64,
    /// Fault-injection plan (crashes, stragglers, lost records, flaky
    /// dispatch) plus the resilience budgets bounding them. The default
    /// [`FaultPlan::none`] reproduces fault-free behaviour exactly.
    #[serde(default)]
    pub faults: FaultPlan,
    /// Fault-feedback policy for the embedded allocator: when set, attempt
    /// outcomes are reported back and the allocator pads/escalates its
    /// predictions from the windowed fault rate. `None` (the default)
    /// compiles the channel out of the decision path entirely.
    #[serde(default)]
    pub fault_policy: Option<FaultPolicy>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            enforcement: EnforcementModel::default(),
            churn: ChurnConfig::fixed(20),
            worker_mix: None,
            arrival: ArrivalModel::Batch,
            queue_policy: QueuePolicy::Fifo,
            record_log: false,
            track_utilization: false,
            seed: 0,
            faults: FaultPlan::none(),
            fault_policy: None,
        }
    }
}

impl SimConfig {
    /// The paper-like setting: opportunistic 20–50 worker pool with ramp-up
    /// and runtime task generation.
    pub fn paper_like(seed: u64) -> Self {
        SimConfig {
            enforcement: EnforcementModel::default(),
            churn: ChurnConfig::paper_like(),
            worker_mix: None,
            arrival: ArrivalModel::Poisson {
                mean_interval_s: 1.5,
            },
            queue_policy: QueuePolicy::Fifo,
            record_log: false,
            track_utilization: false,
            seed,
            faults: FaultPlan::none(),
            fault_policy: None,
        }
    }
}

/// Aggregate result of one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// §II-C metrics over every completed task.
    pub metrics: WorkflowMetrics,
    /// Wall-clock length of the run in simulated seconds.
    pub makespan_s: f64,
    /// Number of task preemptions caused by departing workers.
    pub preemptions: usize,
    /// Allocation·time lost to preempted attempts, per dimension (not part
    /// of the paper's waste metric; reported for completeness).
    pub preempted_alloc_time: ResourceVector,
    /// Smallest and largest pool size observed.
    pub worker_range: (usize, usize),
    /// Total dispatches (successful + killed + preempted attempts).
    pub dispatches: usize,
    /// Engine-side tally of dispatches, completions, failures and allocator
    /// calls — the reconciliation counterpart of the allocator's own
    /// [`tora_alloc::trace::TraceStats`].
    pub stats: SimStats,
    /// The structured event log (when `record_log` was set).
    pub log: Option<EventLog>,
    /// The pool utilization series (when `track_utilization` was set).
    pub utilization: Option<UtilizationSeries>,
}

#[derive(Debug)]
enum Event {
    Finish {
        dispatch: u64,
    },
    Arrive {
        task_idx: usize,
    },
    Churn,
    /// A worker crashes abruptly (fault plan), losing its running attempts.
    Crash,
    /// A correlated failure takes out a whole rack of workers at once.
    RackCrash,
    /// A task whose dispatch failed transiently re-enters the ready queue
    /// after its backoff.
    Requeue {
        task_idx: usize,
    },
}

struct QueuedEvent {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct Running {
    task_idx: usize,
    worker: WorkerId,
    alloc: ResourceVector,
    start: SimTime,
    verdict: AttemptVerdict,
    /// How this attempt will end if it runs to its `Finish` event
    /// (straggler injection is decided at dispatch time).
    cause: AttemptCause,
}

struct TaskState {
    attempts: Vec<AttemptOutcome>,
    /// Allocation for the next dispatch; `None` until first predicted.
    next_alloc: Option<ResourceVector>,
    /// `next_alloc` must not be re-predicted: it was fixed by a retry
    /// escalation (which a later, smaller prediction must not undo) or by a
    /// preemption (resubmit with the same allocation).
    pinned: bool,
    /// Allocator knowledge epoch `next_alloc` was predicted under; stale
    /// unpinned predictions are refreshed at the next scheduling round.
    predicted_epoch: u64,
    /// Whether the arrival model has released the task.
    arrived: bool,
    /// Predecessors still running (Fig. 1's dependency resolution).
    deps_remaining: usize,
    /// Terminally abandoned (dead-lettered): must never run again.
    dead: bool,
    /// Consecutive transient dispatch failures (reset on success).
    dispatch_failures: usize,
    /// Consecutive scheduling rounds spent ready but unplaceable on every
    /// live worker (reset whenever some worker could ever host it).
    unplaceable_strikes: usize,
    /// How many times the task was pulled back from the dead-letter channel
    /// (bounded by the plan's `max_replay_rounds`).
    replays: usize,
    /// Why the task is currently dead-lettered (`None` while live); decides
    /// replay eligibility without searching the metrics.
    dead_cause: Option<DeadLetterCause>,
}

impl TaskState {
    fn fresh(deps_remaining: usize, arrived: bool) -> Self {
        TaskState {
            attempts: Vec::new(),
            next_alloc: None,
            pinned: false,
            predicted_epoch: 0,
            arrived,
            deps_remaining,
            dead: false,
            dispatch_failures: 0,
            unplaceable_strikes: 0,
            replays: 0,
            dead_cause: None,
        }
    }
}

/// A dynamic-workflow application driver (Fig. 1's application layer).
///
/// The defining property of the paper's workflow class is that "tasks'
/// definitions and dependencies are generated and inferred at runtime" (§I).
/// A driver is the application side of that loop: it submits an initial
/// batch of tasks and reacts to every completion — possibly submitting more
/// work based on the results (Colmena's steering, Coffea's
/// partition-then-accumulate). Driver-submitted tasks become ready
/// immediately (subject to their dependencies); the static [`Workflow`] path
/// is the degenerate driver that submits everything up front.
pub trait Driver: Send {
    /// Called once at time zero.
    fn on_start(&mut self, api: &mut SubmitApi);
    /// Called after each task completes successfully.
    fn on_task_complete(&mut self, task: &TaskSpec, api: &mut SubmitApi);
}

/// The submission handle a [`Driver`] writes new tasks through.
pub struct SubmitApi {
    submissions: Vec<(u32, ResourceVector, f64, Vec<u64>)>,
    next_id: u64,
}

impl SubmitApi {
    /// Submit an independent task; returns its id.
    pub fn submit(&mut self, category: u32, peak: ResourceVector, duration_s: f64) -> u64 {
        self.submit_with_deps(category, peak, duration_s, Vec::new())
    }

    /// Submit a task depending on earlier task ids; returns its id.
    ///
    /// # Panics
    /// If a dependency id is not strictly smaller than the new task's id.
    pub fn submit_with_deps(
        &mut self,
        category: u32,
        peak: ResourceVector,
        duration_s: f64,
        deps: Vec<u64>,
    ) -> u64 {
        let id = self.next_id;
        assert!(
            deps.iter().all(|&d| d < id),
            "dependencies must reference earlier tasks"
        );
        self.next_id += 1;
        self.submissions.push((category, peak, duration_s, deps));
        id
    }
}

/// The engine.
///
/// Generic over an [`EventSink`] so a run can be traced end to end: with a
/// non-default sink (see [`Simulation::with_sink`]) the embedded allocator
/// emits an [`tora_alloc::trace::AllocEvent`] for every decision it makes,
/// while the engine independently tallies its calls in [`SimStats`]. The
/// default [`NoopSink`] compiles all of that out.
pub struct Simulation<S: EventSink = NoopSink> {
    worker: WorkerSpec,
    specs: Vec<TaskSpec>,
    driver: Option<Box<dyn Driver>>,
    allocator: Allocator<S>,
    config: SimConfig,
    pool: WorkerPool,
    churn_rng: StdRng,
    /// Dedicated fault stream: a plan of all-zero rates draws nothing, so
    /// the churn/arrival/allocator streams are never perturbed.
    fault_rng: StdRng,
    events: BinaryHeap<Reverse<QueuedEvent>>,
    seq: u64,
    dispatch_ids: u64,
    running: HashMap<u64, Running>,
    ready: VecDeque<usize>,
    tasks: Vec<TaskState>,
    dependents: Vec<Vec<usize>>,
    completed_flags: Vec<bool>,
    completed: usize,
    /// Tasks abandoned to the dead-letter channel (terminal, like
    /// completion: the run ends when `completed + dead_lettered` covers
    /// every task).
    dead_lettered: usize,
    now: SimTime,
    result_metrics: WorkflowMetrics,
    preempted_alloc_time: ResourceVector,
    worker_range: (usize, usize),
    stats: SimStats,
    /// Bumped on every observation; invalidates unpinned cached predictions.
    alloc_epoch: u64,
    /// Lifetime count of workers that ever joined (including the initial
    /// pool); drives the deterministic round-robin rack assignment.
    joined_workers: u64,
    /// Largest pool size ever observed; the reference point for the
    /// dead-letter replay capacity threshold.
    peak_workers: usize,
    log: Option<EventLog>,
    utilization: Option<UtilizationSeries>,
}

impl Simulation {
    /// Build an engine for one (static) workflow and algorithm.
    pub fn new(workflow: &Workflow, algorithm: AlgorithmKind, config: SimConfig) -> Self {
        let mut sim = Self::bare(workflow.worker, algorithm, config);
        sim.specs = workflow.tasks.clone();
        sim.tasks = workflow
            .tasks
            .iter()
            .enumerate()
            .map(|(i, _)| TaskState::fresh(workflow.deps_of(i).len(), false))
            .collect();
        sim.completed_flags = vec![false; workflow.len()];
        // Reverse adjacency for dependency resolution.
        sim.dependents = vec![Vec::new(); workflow.len()];
        for i in 0..workflow.len() {
            for &d in workflow.deps_of(i) {
                sim.dependents[d as usize].push(i);
            }
        }
        sim
    }

    /// Build an engine whose tasks are generated at runtime by `driver`
    /// (no static workload).
    pub fn with_driver(
        driver: Box<dyn Driver>,
        worker: WorkerSpec,
        algorithm: AlgorithmKind,
        config: SimConfig,
    ) -> Self {
        let mut sim = Self::bare(worker, algorithm, config);
        sim.driver = Some(driver);
        sim
    }

    /// Attach an [`EventSink`] to the embedded allocator, turning this
    /// engine into a traced one. Retrieve the sink afterwards with
    /// [`Simulation::run_traced`].
    pub fn with_sink<S: EventSink>(self, sink: S) -> Simulation<S> {
        Simulation {
            worker: self.worker,
            specs: self.specs,
            driver: self.driver,
            allocator: self.allocator.with_sink(sink),
            config: self.config,
            pool: self.pool,
            churn_rng: self.churn_rng,
            fault_rng: self.fault_rng,
            events: self.events,
            seq: self.seq,
            dispatch_ids: self.dispatch_ids,
            running: self.running,
            ready: self.ready,
            tasks: self.tasks,
            dependents: self.dependents,
            completed_flags: self.completed_flags,
            completed: self.completed,
            dead_lettered: self.dead_lettered,
            now: self.now,
            result_metrics: self.result_metrics,
            preempted_alloc_time: self.preempted_alloc_time,
            worker_range: self.worker_range,
            stats: self.stats,
            alloc_epoch: self.alloc_epoch,
            joined_workers: self.joined_workers,
            peak_workers: self.peak_workers,
            log: self.log,
            utilization: self.utilization,
        }
    }

    fn bare(worker: WorkerSpec, algorithm: AlgorithmKind, config: SimConfig) -> Self {
        config.churn.validate().expect("invalid churn config");
        config.faults.validate().expect("invalid fault plan");
        let alloc_config = AllocatorConfig {
            machine: worker,
            ..AllocatorConfig::default()
        };
        if let Some(mix) = config.worker_mix {
            mix.validate().expect("invalid worker mix");
        }
        if let Some(policy) = config.fault_policy {
            policy.validate().expect("invalid fault policy");
        }
        let mut allocator = Allocator::with_config(algorithm, alloc_config, config.seed);
        allocator.set_fault_policy(config.fault_policy);
        let mut churn_rng = StdRng::seed_from_u64(config.seed ^ 0xC4_0A17);
        let mut pool = WorkerPool::new();
        let mut joined_workers = 0u64;
        for _ in 0..config.churn.initial {
            let spec = Self::sample_worker_spec(worker, &config, &mut churn_rng);
            let spec = Self::assign_rack(spec, config.faults.rack_count, joined_workers);
            joined_workers += 1;
            pool.join(spec);
        }
        let initial_workers = config.churn.initial;
        let mut log = config.record_log.then(EventLog::new);
        if let Some(log) = log.as_mut() {
            for id in 0..initial_workers as u64 {
                log.push(
                    0.0,
                    SimEvent::WorkerJoined {
                        worker: WorkerId(id),
                    },
                );
            }
        }
        Simulation {
            worker,
            specs: Vec::new(),
            driver: None,
            allocator,
            config,
            pool,
            churn_rng,
            fault_rng: StdRng::seed_from_u64(config.seed ^ 0x00FA_0175),
            events: BinaryHeap::new(),
            seq: 0,
            dispatch_ids: 0,
            running: HashMap::new(),
            ready: VecDeque::new(),
            tasks: Vec::new(),
            dependents: Vec::new(),
            completed_flags: Vec::new(),
            completed: 0,
            dead_lettered: 0,
            now: SimTime::ZERO,
            result_metrics: WorkflowMetrics::new(),
            preempted_alloc_time: ResourceVector::ZERO,
            worker_range: (initial_workers, initial_workers),
            stats: SimStats::new(),
            alloc_epoch: 0,
            joined_workers,
            peak_workers: initial_workers,
            log,
            utilization: config.track_utilization.then(UtilizationSeries::new),
        }
    }
}

impl<S: EventSink> Simulation<S> {
    fn log_event(&mut self, event: SimEvent) {
        if let Some(log) = self.log.as_mut() {
            log.push(self.now.seconds(), event);
        }
    }

    fn sample_utilization(&mut self) {
        if let Some(series) = self.utilization.as_mut() {
            let capacity = self.pool.total_capacity();
            let reserved = capacity.sub(&self.pool.total_available());
            series.push(UtilizationSample {
                time_s: self.now.seconds(),
                workers: self.pool.len(),
                running: self.pool.total_running(),
                capacity,
                reserved,
            });
        }
    }

    /// The shape of the next worker to join, honoring the heterogeneity mix.
    fn sample_worker_spec(base: WorkerSpec, config: &SimConfig, rng: &mut StdRng) -> WorkerSpec {
        let Some(mix) = config.worker_mix else {
            return base;
        };
        if rng.gen::<f64>() >= mix.large_fraction {
            return base;
        }
        let mut capacity = base.capacity;
        for kind in tora_alloc::resources::ResourceKind::ALL {
            if kind.is_spatial() {
                capacity[kind] *= mix.scale;
            }
        }
        WorkerSpec::new(capacity)
    }

    /// Tag a joining worker with its rack. Racks are assigned round-robin
    /// over the lifetime join counter — deterministic and RNG-free, so a
    /// plan with `rack_count == 0` (rack crashes disabled) leaves the run
    /// byte-identical to one that never heard of racks.
    fn assign_rack(spec: WorkerSpec, rack_count: u32, joined: u64) -> WorkerSpec {
        if rack_count == 0 {
            spec
        } else {
            spec.with_rack((joined % rack_count as u64) as u32)
        }
    }

    /// Report an attempt outcome on the allocator's fault-feedback channel.
    /// Only wired while the fault plan is active: a fault-free run must stay
    /// byte-identical to the pre-feedback engine (no window pushes, no
    /// feedback trace events, no stats).
    fn report_outcome(&mut self, category: CategoryId, outcome: AttemptFeedback) {
        if !self.config.faults.is_active() {
            return;
        }
        self.allocator.observe_outcome(category, outcome);
        self.stats.record_feedback(category.0);
    }

    fn push_event(&mut self, time: SimTime, event: Event) {
        self.seq += 1;
        self.events.push(Reverse(QueuedEvent {
            time,
            seq: self.seq,
            event,
        }));
    }

    fn schedule_churn(&mut self) {
        if let Some(mean) = self.config.churn.mean_interval_s {
            let u: f64 = 1.0 - self.churn_rng.gen::<f64>();
            let dt = -mean * u.ln();
            self.push_event(self.now + dt.max(1e-9), Event::Churn);
        }
    }

    /// The allocation a queued task would get if dispatched right now.
    /// Allocation happens at dispatch time (§II-A note), so a queued first
    /// attempt's prediction goes stale whenever the allocator learns
    /// something new — queue scans under non-FIFO policies must not freeze a
    /// prediction made before the estimator had data. The knowledge epoch
    /// (bumped on every observation) detects exactly that, so an unchanged
    /// estimator reuses the cached prediction instead of burning a fresh
    /// one per scheduling round. Pinned allocations (retry escalations and
    /// preemption resubmits) are never re-predicted.
    fn ensure_alloc(&mut self, task_idx: usize) -> ResourceVector {
        if let Some(a) = self.tasks[task_idx].next_alloc {
            if self.tasks[task_idx].pinned
                || self.tasks[task_idx].predicted_epoch == self.alloc_epoch
            {
                return a;
            }
        }
        let category = self.specs[task_idx].category;
        let a = self.allocator.predict_first(category).into_alloc();
        self.stats.record_predict_first(category.0);
        let state = &mut self.tasks[task_idx];
        state.next_alloc = Some(a);
        state.predicted_epoch = self.alloc_epoch;
        state.pinned = false;
        a
    }

    /// Dispatch ready tasks under the configured queue policy until nothing
    /// more fits.
    fn dispatch(&mut self) {
        loop {
            if self.ready.is_empty() {
                break;
            }
            // The FIFO policy only ever inspects (and therefore allocates)
            // the queue head; the others need every queued task's predicted
            // allocation.
            let visible = match self.config.queue_policy {
                QueuePolicy::Fifo => 1,
                _ => self.ready.len(),
            };
            let mut queue = Vec::with_capacity(visible);
            for qi in 0..visible {
                let task_idx = self.ready[qi];
                let alloc = self.ensure_alloc(task_idx);
                queue.push((qi, alloc));
            }
            let pool = &self.pool;
            let Some(qi) = self
                .config
                .queue_policy
                .select(&queue, |alloc| pool.can_place(alloc))
            else {
                break; // nothing dispatchable right now
            };
            let task_idx = self.ready.remove(qi).expect("selected index in queue");
            // Transient dispatch failure: the placement RPC is lost before
            // the attempt starts. The task backs off (exponentially) and
            // re-enters the queue via a `Requeue` event — or is dead-lettered
            // once its consecutive-failure budget is spent.
            let plan = self.config.faults;
            if plan.dispatch_failure_rate > 0.0
                && self.fault_rng.gen::<f64>() < plan.dispatch_failure_rate
            {
                self.stats.faults.dispatch_failures += 1;
                let state = &mut self.tasks[task_idx];
                state.dispatch_failures += 1;
                let failures = state.dispatch_failures;
                self.log_event(SimEvent::DispatchFailed {
                    task: self.specs[task_idx].id,
                });
                if plan.max_dispatch_retries > 0 && failures > plan.max_dispatch_retries {
                    self.dead_letter(task_idx, DeadLetterCause::DispatchRetriesExhausted);
                } else {
                    let backoff = plan.dispatch_backoff_s
                        * 2f64.powi(failures.saturating_sub(1).min(10) as i32);
                    self.push_event(self.now + backoff, Event::Requeue { task_idx });
                }
                continue;
            }
            self.tasks[task_idx].dispatch_failures = 0;
            let alloc = self.tasks[task_idx].next_alloc.expect("alloc just ensured");
            let worker = self.pool.place(&alloc).expect("can_place verified");
            let task = self.specs[task_idx];
            let verdict = self.config.enforcement.judge(&task, &alloc);
            let (verdict, cause) = self.inject_straggler(verdict);
            self.dispatch_ids += 1;
            let dispatch = self.dispatch_ids;
            self.running.insert(
                dispatch,
                Running {
                    task_idx,
                    worker,
                    alloc,
                    start: self.now,
                    verdict,
                    cause,
                },
            );
            self.stats.dispatches += 1;
            self.log_event(SimEvent::TaskDispatched {
                task: self.specs[task_idx].id,
                worker,
                attempt: self.tasks[task_idx].attempts.len() + 1,
                allocation: alloc,
            });
            self.push_event(
                self.now + verdict.charged_time_s,
                Event::Finish { dispatch },
            );
        }
    }

    /// Decide at dispatch time how the attempt will end, folding the
    /// straggler model over the enforcement verdict: a straggling attempt
    /// runs at `straggler_multiplier ×` its charged time, and a watchdog
    /// kills anything that would run past `straggler_timeout_s`.
    fn inject_straggler(&mut self, verdict: AttemptVerdict) -> (AttemptVerdict, AttemptCause) {
        let plan = self.config.faults;
        let base_cause = if verdict.success {
            AttemptCause::Completed
        } else {
            AttemptCause::ResourceExhausted
        };
        if !(plan.straggler_rate > 0.0 && self.fault_rng.gen::<f64>() < plan.straggler_rate) {
            return (verdict, base_cause);
        }
        let stretched = plan.straggler_multiplier * verdict.charged_time_s;
        if stretched <= plan.straggler_timeout_s {
            // Still reaches its natural end (completion or enforcement
            // kill), just later: the extra allocation·time is drag waste.
            let cause = if verdict.success {
                AttemptCause::StragglerCompleted
            } else {
                base_cause
            };
            (
                AttemptVerdict {
                    charged_time_s: stretched,
                    ..verdict
                },
                cause,
            )
        } else {
            // Hangs past the watchdog: killed at the timeout, with nothing
            // learned about which resource (if any) was the problem.
            (
                AttemptVerdict {
                    success: false,
                    charged_time_s: plan.straggler_timeout_s,
                    exhausted: ResourceMask::NONE,
                },
                AttemptCause::StragglerTimeout,
            )
        }
    }

    /// The arrival model released a task: it becomes ready once its
    /// predecessors (if any) have completed.
    fn on_arrive(&mut self, task_idx: usize) {
        if self.tasks[task_idx].dead {
            // Dead-lettered (dependency cascade) before it ever arrived; its
            // submission was already accounted at dead-letter time.
            return;
        }
        self.log_event(SimEvent::TaskSubmitted {
            task: self.specs[task_idx].id,
        });
        self.stats.submitted += 1;
        let state = &mut self.tasks[task_idx];
        debug_assert!(!state.arrived, "duplicate arrival");
        state.arrived = true;
        if state.deps_remaining == 0 {
            self.ready.push_back(task_idx);
        }
    }

    fn on_finish(&mut self, dispatch: u64) {
        let Some(run) = self.running.remove(&dispatch) else {
            return; // stale event: the attempt was preempted or crashed
        };
        self.pool.release(run.worker, &run.alloc);
        let task = self.specs[run.task_idx];
        if run.verdict.success {
            self.log_event(SimEvent::TaskCompleted {
                task: task.id,
                worker: run.worker,
            });
            let attempt = if run.cause == AttemptCause::StragglerCompleted {
                self.stats.faults.stragglers_slow += 1;
                AttemptOutcome::success_straggled(run.alloc, run.verdict.charged_time_s)
            } else {
                AttemptOutcome::success(run.alloc, run.verdict.charged_time_s)
            };
            let state = &mut self.tasks[run.task_idx];
            state.attempts.push(attempt);
            let outcome = TaskOutcome {
                task: task.id,
                category: task.category,
                peak: task.peak,
                duration_s: task.duration_s,
                attempts: std::mem::take(&mut state.attempts),
            };
            debug_assert!(outcome.check().is_ok(), "{:?}", outcome.check());
            self.result_metrics.push(outcome);
            let plan = self.config.faults;
            if plan.record_dropout_rate > 0.0
                && self.fault_rng.gen::<f64>() < plan.record_dropout_rate
            {
                // The completion is real but its resource record never
                // reaches the allocator: nothing is learned from this task.
                self.stats.faults.record_drops += 1;
                self.log_event(SimEvent::RecordDropped { task: task.id });
            } else if self.allocator.observe(&ResourceRecord::from_task(&task)) {
                self.stats.record_observation(task.category.0);
                // The estimator just learned something: queued (unpinned)
                // first predictions are now stale.
                self.alloc_epoch += 1;
            } else {
                self.stats.faults.rejected_records += 1;
            }
            self.report_outcome(task.category, AttemptFeedback::Success);
            self.stats.completions += 1;
            self.completed += 1;
            self.completed_flags[run.task_idx] = true;
            if self.tasks[run.task_idx].replays > 0 {
                self.stats.faults.replay_successes += 1;
            }
            // Dependency resolution: completed inputs release dependents.
            let dependents = std::mem::take(&mut self.dependents[run.task_idx]);
            for d in &dependents {
                let dep_state = &mut self.tasks[*d];
                dep_state.deps_remaining -= 1;
                // A cascade-doomed dependent stays dead even if its
                // predecessor later completes via replay.
                if dep_state.deps_remaining == 0 && dep_state.arrived && !dep_state.dead {
                    self.ready.push_back(*d);
                }
            }
            self.dependents[run.task_idx] = dependents;
            // The application reacts to the result (Fig. 1's steering loop).
            if let Some(mut driver) = self.driver.take() {
                let mut api = self.submit_api();
                driver.on_task_complete(&task, &mut api);
                self.integrate_submissions(api);
                self.driver = Some(driver);
            }
        } else if run.cause == AttemptCause::StragglerTimeout {
            // Straggler watchdog kill: the allocation was not the problem,
            // so no retry prediction is made — resubmit with the same
            // (pinned) allocation, unless the attempt budget is spent.
            self.log_event(SimEvent::TaskTimedOut {
                task: task.id,
                worker: run.worker,
            });
            self.stats.faults.straggler_kills += 1;
            self.report_outcome(task.category, AttemptFeedback::Straggler);
            let state = &mut self.tasks[run.task_idx];
            state.attempts.push(AttemptOutcome::failure_with_cause(
                run.alloc,
                run.verdict.charged_time_s,
                AttemptCause::StragglerTimeout,
            ));
            let cap = self.config.faults.max_attempts;
            if cap > 0 && self.tasks[run.task_idx].attempts.len() >= cap {
                self.dead_letter(run.task_idx, DeadLetterCause::AttemptsExhausted);
            } else {
                let state = &mut self.tasks[run.task_idx];
                state.next_alloc = Some(run.alloc);
                state.pinned = true;
                self.ready.push_back(run.task_idx);
            }
        } else {
            self.log_event(SimEvent::TaskKilled {
                task: task.id,
                worker: run.worker,
            });
            let state = &mut self.tasks[run.task_idx];
            state.attempts.push(AttemptOutcome::failure(
                run.alloc,
                run.verdict.charged_time_s,
            ));
            self.stats.failures += 1;
            self.report_outcome(task.category, AttemptFeedback::Exhaustion);
            let cap = self.config.faults.max_attempts;
            if cap > 0 && self.tasks[run.task_idx].attempts.len() >= cap {
                // Attempt budget spent: dead-letter without asking the
                // allocator for a retry (`capped_retries` balances the
                // `failures = retry predictions` reconciliation identity).
                self.stats.faults.capped_retries += 1;
                self.dead_letter(run.task_idx, DeadLetterCause::AttemptsExhausted);
                return;
            }
            let escalations = self
                .allocator
                .config()
                .managed
                .iter()
                .filter(|kind| run.verdict.exhausted.contains(**kind))
                .count() as u64;
            self.stats
                .record_predict_retry(task.category.0, escalations);
            let decision =
                self.allocator
                    .predict_retry(task.category, &run.alloc, &run.verdict.exhausted);
            if decision.infeasible {
                // The retry could not grow any exhausted axis (already at
                // machine capacity): re-running would reproduce the exact
                // same kill forever.
                self.dead_letter(run.task_idx, DeadLetterCause::Infeasible);
                return;
            }
            let next = decision.into_alloc();
            let state = &mut self.tasks[run.task_idx];
            state.next_alloc = Some(next);
            // Escalations are pinned: a later, smaller prediction must not
            // undo the doubling chosen at kill time.
            state.pinned = true;
            self.ready.push_back(run.task_idx);
        }
    }

    fn on_churn(&mut self) {
        let n = self.pool.len();
        let (min, max) = (self.config.churn.min, self.config.churn.max);
        // A zero-width band that is already satisfied has nothing to churn.
        if min == max && n == min {
            self.schedule_churn();
            return;
        }
        let join = if n <= min {
            true
        } else if n >= max {
            false
        } else {
            self.churn_rng.gen::<bool>()
        };
        if join {
            let spec = Self::sample_worker_spec(self.worker, &self.config, &mut self.churn_rng);
            let spec = Self::assign_rack(spec, self.config.faults.rack_count, self.joined_workers);
            self.joined_workers += 1;
            let id = self.pool.join(spec);
            self.log_event(SimEvent::WorkerJoined { worker: id });
            self.peak_workers = self.peak_workers.max(self.pool.len());
            self.maybe_replay_dead_letters();
        } else if let Some(id) = self.pool.random_worker(&mut self.churn_rng) {
            // Preempt everything running on the departing worker.
            let mut victims: Vec<u64> = self
                .running
                .iter()
                .filter(|(_, r)| r.worker == id)
                .map(|(&d, _)| d)
                .collect();
            victims.sort_unstable();
            for d in victims {
                let run = self.running.remove(&d).expect("victim listed");
                let elapsed = self.now - run.start;
                self.preempted_alloc_time =
                    self.preempted_alloc_time.add(&run.alloc.scale(elapsed));
                self.stats.preemptions += 1;
                // Resubmit with the same (pinned) allocation: preemption
                // teaches the allocator nothing about the task's needs.
                let state = &mut self.tasks[run.task_idx];
                state.next_alloc = Some(run.alloc);
                state.pinned = true;
                self.ready.push_back(run.task_idx);
                self.log_event(SimEvent::TaskPreempted {
                    task: self.specs[run.task_idx].id,
                    worker: id,
                });
            }
            self.pool.leave(id);
            self.log_event(SimEvent::WorkerLeft { worker: id });
        }
        let n = self.pool.len();
        self.worker_range = (self.worker_range.0.min(n), self.worker_range.1.max(n));
        self.schedule_churn();
    }

    /// Schedule the next worker crash (exponential inter-arrival), when the
    /// fault plan has crashes enabled.
    fn schedule_crash(&mut self) {
        if let Some(mean) = self.config.faults.crash_mean_interval_s {
            let u: f64 = 1.0 - self.fault_rng.gen::<f64>();
            let dt = -mean * u.ln();
            self.push_event(self.now + dt.max(1e-9), Event::Crash);
        }
    }

    /// Crash one worker abruptly. Unlike a graceful churn departure, every
    /// running attempt is *lost*: it is charged for its elapsed time, counts
    /// against the task's attempt budget, and teaches the allocator nothing
    /// (the record died with the worker). Crashes ignore the churn band's
    /// minimum — an opportunistic pool offers no such guarantee.
    fn crash_worker(&mut self, id: WorkerId) {
        self.stats.faults.worker_crashes += 1;
        let mut victims: Vec<u64> = self
            .running
            .iter()
            .filter(|(_, r)| r.worker == id)
            .map(|(&d, _)| d)
            .collect();
        victims.sort_unstable();
        for d in victims {
            let run = self.running.remove(&d).expect("victim listed");
            let elapsed = self.now - run.start;
            self.stats.faults.crashed_attempts += 1;
            self.log_event(SimEvent::TaskCrashed {
                task: self.specs[run.task_idx].id,
                worker: id,
            });
            self.report_outcome(self.specs[run.task_idx].category, AttemptFeedback::Crash);
            let state = &mut self.tasks[run.task_idx];
            state.attempts.push(AttemptOutcome::failure_with_cause(
                run.alloc,
                elapsed,
                AttemptCause::WorkerCrash,
            ));
            let cap = self.config.faults.max_attempts;
            if cap > 0 && self.tasks[run.task_idx].attempts.len() >= cap {
                self.dead_letter(run.task_idx, DeadLetterCause::AttemptsExhausted);
            } else {
                // The crash says nothing about the allocation: resubmit
                // with the same (pinned) one.
                let state = &mut self.tasks[run.task_idx];
                state.next_alloc = Some(run.alloc);
                state.pinned = true;
                self.ready.push_back(run.task_idx);
            }
        }
        self.pool.leave(id);
        self.log_event(SimEvent::WorkerCrashed { worker: id });
        let n = self.pool.len();
        self.worker_range = (self.worker_range.0.min(n), self.worker_range.1.max(n));
    }

    /// An independent single-worker crash event.
    fn on_crash(&mut self) {
        if let Some(id) = self.pool.random_worker(&mut self.fault_rng) {
            self.crash_worker(id);
        }
        // Keep the crash process alive only while it can ever strike again:
        // an empty pool with churn disabled never repopulates, and an
        // eternal self-rescheduling event would keep the run alive forever.
        if !(self.pool.is_empty() && self.config.churn.mean_interval_s.is_none()) {
            self.schedule_crash();
        }
    }

    /// Schedule the next correlated rack crash, when the fault plan has
    /// them enabled.
    fn schedule_rack_crash(&mut self) {
        if let Some(mean) = self.config.faults.rack_crash_mean_interval_s {
            let u: f64 = 1.0 - self.fault_rng.gen::<f64>();
            let dt = -mean * u.ln();
            self.push_event(self.now + dt.max(1e-9), Event::RackCrash);
        }
    }

    /// A correlated failure: one random live worker is struck, and every
    /// other live worker in its rack goes down with it (shared switch,
    /// shared PDU). Each victim is a full abrupt crash — attempts lost,
    /// records lost, attempt budgets charged.
    fn on_rack_crash(&mut self) {
        if let Some(struck) = self.pool.random_worker(&mut self.fault_rng) {
            self.stats.faults.rack_crashes += 1;
            let rack = self.pool.get(struck).expect("live worker").spec.rack;
            let victims: Vec<WorkerId> = self
                .pool
                .workers()
                .filter(|(_, w)| w.spec.rack == rack)
                .map(|(id, _)| id)
                .collect();
            for id in victims {
                self.crash_worker(id);
            }
        }
        // Same liveness guard as the single-crash process.
        if !(self.pool.is_empty() && self.config.churn.mean_interval_s.is_none()) {
            self.schedule_rack_crash();
        }
    }

    /// A transiently-failed dispatch finished its backoff.
    fn on_requeue(&mut self, task_idx: usize) {
        let state = &self.tasks[task_idx];
        if !state.dead && !self.completed_flags[task_idx] {
            self.ready.push_back(task_idx);
        }
    }

    /// Terminally abandon a task: it leaves the ready queue, is recorded as
    /// a [`DeadLetter`] in the metrics, and recursively dooms every
    /// dependent (their input will never exist). Idempotent.
    fn dead_letter(&mut self, task_idx: usize, cause: DeadLetterCause) {
        if self.tasks[task_idx].dead || self.completed_flags[task_idx] {
            return;
        }
        let state = &mut self.tasks[task_idx];
        state.dead = true;
        state.dead_cause = Some(cause);
        if !state.arrived {
            // Doomed before the arrival model released it: account the
            // submission here so conservation (submitted = completed +
            // dead-lettered) holds even if the run ends before its arrival.
            state.arrived = true;
            self.stats.submitted += 1;
        }
        let attempts = std::mem::take(&mut self.tasks[task_idx].attempts);
        self.ready.retain(|&t| t != task_idx);
        let spec = self.specs[task_idx];
        let letter = DeadLetter {
            task: spec.id,
            category: spec.category,
            cause,
            attempts,
        };
        debug_assert!(letter.check().is_ok(), "{:?}", letter.check());
        self.result_metrics.push_dead_letter(letter);
        self.stats.faults.dead_lettered += 1;
        self.dead_lettered += 1;
        self.log_event(SimEvent::TaskDeadLettered {
            task: spec.id,
            cause,
        });
        let dependents = std::mem::take(&mut self.dependents[task_idx]);
        for &d in &dependents {
            self.dead_letter(d, DeadLetterCause::DependencyDeadLettered);
        }
        self.dependents[task_idx] = dependents;
    }

    /// Re-admit replayable dead letters once the pool has recovered.
    ///
    /// Called on every worker join. Replay is enabled by the plan's
    /// `replay_capacity_fraction` / `max_replay_rounds` pair: when the live
    /// pool reaches the configured fraction of the largest pool ever seen, a
    /// dead letter whose cause was an environment shortage
    /// ([`DeadLetterCause::replayable`]) and which has replay rounds left is
    /// pulled back out of the channel and re-queued. The restored task keeps
    /// its attempt history (the attempt budget still applies across the
    /// replay) but its transient-failure counters start over.
    ///
    /// Conservation: `dead_lettered` counts *currently* abandoned tasks, so
    /// a replay decrements it (and a re-dead-letter increments it again) —
    /// `submitted = completed + dead_lettered` holds at every quiescent
    /// point, and cumulatively `replay_successes ≤ replayed`. Dependents
    /// cascaded from a replayed task stay dead: their own cause
    /// (`DependencyDeadLettered`) is not replayable.
    fn maybe_replay_dead_letters(&mut self) {
        let plan = self.config.faults;
        if plan.max_replay_rounds == 0 || plan.replay_capacity_fraction <= 0.0 {
            return;
        }
        let needed = (plan.replay_capacity_fraction * self.peak_workers as f64).ceil() as usize;
        if self.pool.len() < needed.max(1) {
            return;
        }
        let candidates: Vec<usize> = (0..self.tasks.len())
            .filter(|&i| {
                let t = &self.tasks[i];
                t.dead
                    && t.replays < plan.max_replay_rounds
                    && t.dead_cause.is_some_and(|c| c.replayable())
            })
            .collect();
        for task_idx in candidates {
            let task_id = self.specs[task_idx].id;
            let letter = self
                .result_metrics
                .remove_dead_letter(task_id)
                .expect("dead task has a recorded dead letter");
            let state = &mut self.tasks[task_idx];
            state.dead = false;
            state.dead_cause = None;
            state.replays += 1;
            // Restore the attempt history: the budget spans the replay.
            state.attempts = letter.attempts;
            state.dispatch_failures = 0;
            state.unplaceable_strikes = 0;
            state.pinned = false;
            state.next_alloc = None;
            self.dead_lettered -= 1;
            self.stats.faults.dead_lettered -= 1;
            self.stats.faults.replayed += 1;
            self.log_event(SimEvent::TaskReplayed { task: task_id });
            // Replayable causes only ever strike ready (dependency-free,
            // arrived) tasks, so the task can re-enter the queue directly.
            self.ready.push_back(task_idx);
        }
    }

    /// Dead-letter ready tasks that no live worker could host even when
    /// idle, once they have been stuck that way for more than the plan's
    /// `max_unplaceable_rounds` consecutive scheduling rounds (a shrinking
    /// pool can strand an escalated allocation forever).
    fn enforce_unplaceable_strikes(&mut self) {
        let max = self.config.faults.max_unplaceable_rounds;
        if max == 0 || self.ready.is_empty() {
            return;
        }
        let ready: Vec<usize> = self.ready.iter().copied().collect();
        let mut doomed = Vec::new();
        for task_idx in ready {
            let alloc = self.ensure_alloc(task_idx);
            if self.pool.could_ever_place(&alloc) {
                self.tasks[task_idx].unplaceable_strikes = 0;
            } else {
                let state = &mut self.tasks[task_idx];
                state.unplaceable_strikes += 1;
                if state.unplaceable_strikes > max {
                    doomed.push(task_idx);
                }
            }
        }
        for task_idx in doomed {
            self.dead_letter(task_idx, DeadLetterCause::Unplaceable);
        }
    }

    /// Schedule every task's arrival according to the arrival model.
    fn schedule_arrivals(&mut self) {
        match self.config.arrival {
            ArrivalModel::Batch => {
                for task_idx in 0..self.specs.len() {
                    self.on_arrive(task_idx);
                }
            }
            ArrivalModel::Poisson { mean_interval_s } => {
                assert!(
                    mean_interval_s.is_finite() && mean_interval_s > 0.0,
                    "bad arrival interval"
                );
                let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x0A88_17E5);
                let mut t = SimTime::ZERO;
                for task_idx in 0..self.specs.len() {
                    let u: f64 = 1.0 - rng.gen::<f64>();
                    t = t + (-mean_interval_s * u.ln()).max(0.0);
                    self.push_event(t, Event::Arrive { task_idx });
                }
            }
        }
    }

    /// A fresh submission handle continuing the id sequence.
    fn submit_api(&self) -> SubmitApi {
        SubmitApi {
            submissions: Vec::new(),
            next_id: self.specs.len() as u64,
        }
    }

    /// Fold driver submissions into the live run: new tasks arrive
    /// immediately, gated only by their dependencies.
    fn integrate_submissions(&mut self, api: SubmitApi) {
        for (category, peak, duration_s, deps) in api.submissions {
            let id = self.specs.len() as u64;
            let spec = TaskSpec::new(id, category, peak, duration_s);
            assert!(
                self.worker.capacity.dominates(&spec.peak),
                "{}: peak {} exceeds worker capacity {}",
                spec.id,
                spec.peak,
                self.worker.capacity
            );
            let deps_remaining = deps
                .iter()
                .filter(|&&d| !self.completed_flags[d as usize])
                .count();
            for &d in &deps {
                if !self.completed_flags[d as usize] {
                    self.dependents[d as usize].push(id as usize);
                }
            }
            self.specs.push(spec);
            self.tasks.push(TaskState::fresh(deps_remaining, true));
            self.dependents.push(Vec::new());
            self.completed_flags.push(false);
            self.log_event(SimEvent::TaskSubmitted { task: spec.id });
            self.stats.submitted += 1;
            if deps_remaining == 0 {
                self.ready.push_back(id as usize);
            }
        }
    }

    /// Run to completion and return the result.
    pub fn run(self) -> SimResult {
        self.run_traced().0
    }

    /// Run to completion, returning the result *and* the event sink the
    /// allocator emitted into — the traced variant of [`Simulation::run`].
    pub fn run_traced(mut self) -> (SimResult, S) {
        self.schedule_churn();
        self.schedule_crash();
        self.schedule_rack_crash();
        self.schedule_arrivals();
        if let Some(mut driver) = self.driver.take() {
            let mut api = self.submit_api();
            driver.on_start(&mut api);
            self.integrate_submissions(api);
            self.driver = Some(driver);
        }
        self.dispatch();
        self.enforce_unplaceable_strikes();
        self.sample_utilization();
        while self.completed + self.dead_lettered < self.specs.len() {
            let Some(Reverse(ev)) = self.events.pop() else {
                // Without faults this is unreachable: every non-terminal
                // task has a Finish or Arrive event in flight. Under a fault
                // plan the event stream can legitimately dry up (e.g. every
                // worker crashed away); dead-letter the stranded remainder
                // so the run still terminates with conserved accounting.
                assert!(
                    self.config.faults.is_active(),
                    "tasks pending but no events scheduled"
                );
                let stranded: Vec<usize> = (0..self.tasks.len())
                    .filter(|&i| !self.completed_flags[i] && !self.tasks[i].dead)
                    .collect();
                for task_idx in stranded {
                    self.dead_letter(task_idx, DeadLetterCause::Stalled);
                }
                break;
            };
            debug_assert!(ev.time >= self.now);
            self.now = ev.time;
            match ev.event {
                Event::Finish { dispatch } => self.on_finish(dispatch),
                Event::Arrive { task_idx } => self.on_arrive(task_idx),
                Event::Churn => self.on_churn(),
                Event::Crash => self.on_crash(),
                Event::RackCrash => self.on_rack_crash(),
                Event::Requeue { task_idx } => self.on_requeue(task_idx),
            }
            self.dispatch();
            self.enforce_unplaceable_strikes();
            self.sample_utilization();
        }
        let stats = self.stats;
        let result = SimResult {
            metrics: self.result_metrics,
            makespan_s: self.now.seconds(),
            preemptions: stats.preemptions as usize,
            preempted_alloc_time: self.preempted_alloc_time,
            worker_range: self.worker_range,
            dispatches: stats.dispatches as usize,
            stats,
            log: self.log,
            utilization: self.utilization,
        };
        (result, self.allocator.into_sink())
    }
}

/// Convenience: simulate `workflow` under `algorithm` with `config`.
pub fn simulate(workflow: &Workflow, algorithm: AlgorithmKind, config: SimConfig) -> SimResult {
    Simulation::new(workflow, algorithm, config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tora_alloc::resources::ResourceKind;
    use tora_workloads::synthetic::{self, SyntheticKind};
    use tora_workloads::PaperWorkflow;

    fn small(kind: SyntheticKind) -> Workflow {
        synthetic::generate(kind, 200, 42)
    }

    #[test]
    fn every_task_completes_exactly_once() {
        let wf = small(SyntheticKind::Bimodal);
        let res = simulate(
            &wf,
            AlgorithmKind::ExhaustiveBucketing,
            SimConfig::default(),
        );
        assert_eq!(res.metrics.len(), wf.len());
        let mut ids: Vec<u64> = res.metrics.outcomes().iter().map(|o| o.task.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), wf.len());
        assert!(res.makespan_s > 0.0);
        assert!(res.dispatches >= wf.len());
    }

    #[test]
    fn whole_machine_never_retries() {
        let wf = small(SyntheticKind::Normal);
        let res = simulate(&wf, AlgorithmKind::WholeMachine, SimConfig::default());
        assert_eq!(res.metrics.total_retries(), 0);
        assert_eq!(res.dispatches, wf.len());
        // And its memory efficiency is terrible (≈ 4 GB / 64 GB).
        let awe = res.metrics.awe(ResourceKind::MemoryMb).unwrap();
        assert!(awe < 0.15, "whole machine AWE {awe}");
    }

    #[test]
    fn bucketing_beats_whole_machine_on_memory() {
        let wf = small(SyntheticKind::Normal);
        let base = simulate(&wf, AlgorithmKind::WholeMachine, SimConfig::default());
        let eb = simulate(
            &wf,
            AlgorithmKind::ExhaustiveBucketing,
            SimConfig::default(),
        );
        let k = ResourceKind::MemoryMb;
        assert!(
            eb.metrics.awe(k).unwrap() > 2.0 * base.metrics.awe(k).unwrap(),
            "EB {:?} vs WM {:?}",
            eb.metrics.awe(k),
            base.metrics.awe(k)
        );
    }

    #[test]
    fn churn_preserves_completion_and_accounting() {
        let wf = small(SyntheticKind::Uniform);
        let config = SimConfig {
            churn: ChurnConfig {
                initial: 5,
                min: 2,
                max: 8,
                mean_interval_s: Some(20.0),
            },
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::GreedyBucketing, config);
        assert_eq!(res.metrics.len(), wf.len());
        assert!(res.worker_range.0 >= 2);
        assert!(res.worker_range.1 <= 8);
        // With leaves happening, some preemptions are expected (not
        // guaranteed, but overwhelmingly likely for this seed/config).
        assert!(res.preemptions > 0, "no preemption observed");
        assert!(res.preempted_alloc_time.iter().all(|(_, v)| v >= 0.0));
    }

    #[test]
    fn deterministic_given_seed() {
        let wf = small(SyntheticKind::Exponential);
        let config = SimConfig {
            churn: ChurnConfig::paper_like(),
            seed: 9,
            ..SimConfig::default()
        };
        let a = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        let b = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        assert_eq!(
            a.metrics.awe(ResourceKind::MemoryMb),
            b.metrics.awe(ResourceKind::MemoryMb)
        );
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(a.preemptions, b.preemptions);
    }

    #[test]
    fn awe_is_worker_count_independent_without_failures() {
        // With Whole Machine (no retries, fixed allocation), AWE must be
        // identical across pool sizes — the §II-C independence claim in its
        // purest form.
        let wf = small(SyntheticKind::Bimodal);
        let awe = |n: usize| {
            let config = SimConfig {
                churn: ChurnConfig::fixed(n),
                ..SimConfig::default()
            };
            simulate(&wf, AlgorithmKind::WholeMachine, config)
                .metrics
                .awe(ResourceKind::MemoryMb)
                .unwrap()
        };
        let a = awe(5);
        let b = awe(40);
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn makespan_shrinks_with_more_workers() {
        let wf = small(SyntheticKind::Normal);
        let run = |n: usize| {
            let config = SimConfig {
                churn: ChurnConfig::fixed(n),
                ..SimConfig::default()
            };
            simulate(&wf, AlgorithmKind::MaxSeen, config).makespan_s
        };
        assert!(run(40) < run(4), "more workers should finish sooner");
    }

    #[test]
    fn event_log_is_consistent_under_churn() {
        let wf = small(SyntheticKind::Bimodal);
        let config = SimConfig {
            churn: ChurnConfig {
                initial: 4,
                min: 2,
                max: 8,
                mean_interval_s: Some(15.0),
            },
            record_log: true,
            seed: 5,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        let log = res.log.expect("log requested");
        log.check_consistency().unwrap();
        // Dispatch count in the log matches the engine's counter.
        let dispatched = log.count(|e| matches!(e, crate::log::SimEvent::TaskDispatched { .. }));
        assert_eq!(dispatched, res.dispatches);
        let completed = log.count(|e| matches!(e, crate::log::SimEvent::TaskCompleted { .. }));
        assert_eq!(completed, wf.len());
        let killed = log.count(|e| matches!(e, crate::log::SimEvent::TaskKilled { .. }));
        assert_eq!(killed, res.metrics.total_retries());
        let preempted = log.count(|e| matches!(e, crate::log::SimEvent::TaskPreempted { .. }));
        assert_eq!(preempted, res.preemptions);
        assert_eq!(dispatched, completed + killed + preempted);
        // JSONL roundtrip.
        let parsed = crate::log::EventLog::from_jsonl(&log.to_jsonl()).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn utilization_series_is_sane() {
        let wf = small(SyntheticKind::Normal);
        let config = SimConfig {
            track_utilization: true,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::MaxSeen, config);
        let series = res.utilization.expect("series requested");
        assert!(!series.is_empty());
        for s in series.samples() {
            for kind in tora_alloc::resources::ResourceKind::STANDARD {
                if let Some(u) = s.utilization(kind) {
                    assert!((0.0..=1.0 + 1e-9).contains(&u), "{kind}: {u}");
                }
            }
            assert!(s.workers >= 1);
        }
        assert!(series.peak_running() >= 1);
        let mean = series
            .mean_utilization(tora_alloc::resources::ResourceKind::Cores)
            .unwrap();
        assert!(mean > 0.0 && mean <= 1.0);
    }

    #[test]
    fn all_queue_policies_complete_the_workflow() {
        let wf = small(SyntheticKind::Bimodal);
        for policy in crate::scheduler::QueuePolicy::ALL {
            let config = SimConfig {
                queue_policy: policy,
                seed: 3,
                ..SimConfig::default()
            };
            let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
            assert_eq!(res.metrics.len(), wf.len(), "{}", policy.label());
            for o in res.metrics.outcomes() {
                o.check().unwrap();
            }
        }
    }

    #[test]
    fn backfill_is_no_slower_than_fifo() {
        // Letting small tasks around a blocked head usually helps, but a
        // backfilled task can also delay the critical path, so the property
        // only holds in aggregate: compare mean makespan across seeds
        // rather than any single draw.
        let mut fifo_total = 0.0;
        let mut backfill_total = 0.0;
        let wf = small(SyntheticKind::Exponential);
        for seed in 0..8u64 {
            let run = |policy| {
                let config = SimConfig {
                    queue_policy: policy,
                    churn: ChurnConfig::fixed(4),
                    seed: 11 + seed,
                    ..SimConfig::default()
                };
                simulate(&wf, AlgorithmKind::MaxSeen, config).makespan_s
            };
            fifo_total += run(crate::scheduler::QueuePolicy::Fifo);
            backfill_total += run(crate::scheduler::QueuePolicy::FifoBackfill);
        }
        assert!(
            backfill_total <= fifo_total * 1.05,
            "mean backfill makespan {backfill_total} should not trail fifo {fifo_total}"
        );
    }

    #[test]
    fn dependencies_gate_execution_order() {
        // A diamond: 0 → {1, 2} → 3. Completion order must respect it.
        use tora_alloc::resources::ResourceVector;
        use tora_alloc::task::TaskSpec;
        let peak = ResourceVector::new(1.0, 100.0, 10.0);
        let tasks: Vec<TaskSpec> = (0..4)
            .map(|i| TaskSpec::new(i, 0, peak, 10.0 + i as f64))
            .collect();
        let wf = Workflow::new(
            "diamond",
            vec!["t".into()],
            tasks,
            tora_alloc::resources::WorkerSpec::paper_default(),
        )
        .with_dependencies(vec![vec![], vec![0], vec![0], vec![1, 2]]);
        let config = SimConfig {
            record_log: true,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::WholeMachine, config);
        assert_eq!(res.metrics.len(), 4);
        let log = res.log.unwrap();
        log.check_consistency().unwrap();
        // Extract completion times per task id.
        let mut done = std::collections::HashMap::new();
        for e in log.entries() {
            if let crate::log::SimEvent::TaskCompleted { task, .. } = e.event {
                done.insert(task.0, e.time_s);
            }
        }
        assert!(done[&0] <= done[&1] && done[&0] <= done[&2]);
        assert!(done[&1] <= done[&3] && done[&2] <= done[&3]);
        // Dispatches of dependents happen after predecessors complete.
        let mut dispatched = std::collections::HashMap::new();
        for e in log.entries() {
            if let crate::log::SimEvent::TaskDispatched { task, .. } = e.event {
                dispatched.entry(task.0).or_insert(e.time_s);
            }
        }
        assert!(dispatched[&3] >= done[&1].max(done[&2]));
    }

    #[test]
    fn dag_workflow_completes_with_retries_and_churn() {
        let wf = tora_workloads::topeft::generate_dag(20, 160, 12, 3);
        let config = SimConfig {
            churn: ChurnConfig {
                initial: 4,
                min: 3,
                max: 8,
                mean_interval_s: Some(20.0),
            },
            record_log: true,
            seed: 3,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        assert_eq!(res.metrics.len(), wf.len());
        res.log.unwrap().check_consistency().unwrap();
        // The DAG forces accumulating tasks to finish last.
        let order: Vec<u64> = res.metrics.outcomes().iter().map(|o| o.task.0).collect();
        let _ = order; // completion set is full; per-task ordering verified above
    }

    #[test]
    fn heterogeneous_pool_hosts_more_concurrent_tasks() {
        let wf = small(SyntheticKind::Normal);
        let base = SimConfig {
            churn: ChurnConfig::fixed(6),
            track_utilization: true,
            seed: 5,
            ..SimConfig::default()
        };
        let mixed = SimConfig {
            worker_mix: Some(WorkerMix {
                large_fraction: 0.5,
                scale: 4.0,
            }),
            ..base
        };
        let plain = simulate(&wf, AlgorithmKind::MaxSeen, base);
        let big = simulate(&wf, AlgorithmKind::MaxSeen, mixed);
        assert_eq!(plain.metrics.len(), wf.len());
        assert_eq!(big.metrics.len(), wf.len());
        // Scaled workers host more attempts at once and finish sooner.
        let plain_peak = plain.utilization.unwrap().peak_running();
        let big_peak = big.utilization.unwrap().peak_running();
        assert!(big_peak > plain_peak, "{big_peak} vs {plain_peak}");
        assert!(big.makespan_s < plain.makespan_s);
        // AWE accounting is unaffected by where tasks run.
        for o in big.metrics.outcomes() {
            o.check().unwrap();
        }
    }

    #[test]
    fn worker_mix_validation() {
        assert!(WorkerMix {
            large_fraction: 0.3,
            scale: 2.0
        }
        .validate()
        .is_ok());
        assert!(WorkerMix {
            large_fraction: 1.5,
            scale: 2.0
        }
        .validate()
        .is_err());
        // Sub-unit scales are legal: they model workers smaller than the
        // workflow's base shape (shrinking-pool scenarios).
        assert!(WorkerMix {
            large_fraction: 0.5,
            scale: 0.5
        }
        .validate()
        .is_ok());
        assert!(WorkerMix {
            large_fraction: 0.5,
            scale: 0.0
        }
        .validate()
        .is_err());
    }

    /// A two-phase steering driver: submit `n` probe tasks, then — once all
    /// probes are done — submit one downstream task per probe whose memory
    /// depends on the probe's "result".
    struct TwoPhase {
        probes: usize,
        probe_done: usize,
        submitted_phase2: bool,
    }

    impl Driver for TwoPhase {
        fn on_start(&mut self, api: &mut SubmitApi) {
            use tora_alloc::resources::ResourceVector;
            for i in 0..self.probes {
                api.submit(0, ResourceVector::new(1.0, 300.0 + i as f64, 50.0), 20.0);
            }
        }

        fn on_task_complete(&mut self, task: &TaskSpec, api: &mut SubmitApi) {
            use tora_alloc::resources::ResourceVector;
            if task.category.0 == 0 {
                self.probe_done += 1;
                if self.probe_done == self.probes && !self.submitted_phase2 {
                    self.submitted_phase2 = true;
                    // Steering: the application reacts to phase-1 results.
                    for i in 0..self.probes {
                        api.submit(1, ResourceVector::new(2.0, 900.0 + i as f64, 80.0), 40.0);
                    }
                }
            }
        }
    }

    #[test]
    fn driver_generates_tasks_at_runtime() {
        let driver = Box::new(TwoPhase {
            probes: 30,
            probe_done: 0,
            submitted_phase2: false,
        });
        let config = SimConfig {
            churn: ChurnConfig::fixed(5),
            record_log: true,
            seed: 4,
            ..SimConfig::default()
        };
        let sim = Simulation::with_driver(
            driver,
            tora_alloc::resources::WorkerSpec::paper_default(),
            AlgorithmKind::ExhaustiveBucketing,
            config,
        );
        let res = sim.run();
        // 30 probes + 30 steered tasks, all completed.
        assert_eq!(res.metrics.len(), 60);
        let log = res.log.unwrap();
        log.check_consistency().unwrap();
        // Phase-2 tasks were only dispatched after the last probe finished.
        let mut last_probe_done = 0.0f64;
        let mut first_phase2_dispatch = f64::INFINITY;
        for e in log.entries() {
            match e.event {
                crate::log::SimEvent::TaskCompleted { task, .. } if task.0 < 30 => {
                    last_probe_done = last_probe_done.max(e.time_s);
                }
                crate::log::SimEvent::TaskDispatched { task, .. } if task.0 >= 30 => {
                    first_phase2_dispatch = first_phase2_dispatch.min(e.time_s);
                }
                _ => {}
            }
        }
        assert!(first_phase2_dispatch >= last_probe_done);
        // Both categories were learned independently.
        let phase2 = res
            .metrics
            .outcomes()
            .iter()
            .filter(|o| o.category.0 == 1)
            .count();
        assert_eq!(phase2, 30);
    }

    #[test]
    fn driver_submissions_can_depend_on_running_tasks() {
        struct Chained;
        impl Driver for Chained {
            fn on_start(&mut self, api: &mut SubmitApi) {
                use tora_alloc::resources::ResourceVector;
                let peak = ResourceVector::new(1.0, 100.0, 10.0);
                let a = api.submit(0, peak, 10.0);
                let b = api.submit_with_deps(0, peak, 10.0, vec![a]);
                let _c = api.submit_with_deps(0, peak, 10.0, vec![a, b]);
            }
            fn on_task_complete(&mut self, _: &TaskSpec, _: &mut SubmitApi) {}
        }
        let res = Simulation::with_driver(
            Box::new(Chained),
            tora_alloc::resources::WorkerSpec::paper_default(),
            AlgorithmKind::WholeMachine,
            SimConfig {
                record_log: true,
                ..SimConfig::default()
            },
        )
        .run();
        assert_eq!(res.metrics.len(), 3);
        res.log.unwrap().check_consistency().unwrap();
    }

    #[test]
    fn production_workflows_run_end_to_end() {
        for wf in [PaperWorkflow::ColmenaXtb, PaperWorkflow::TopEft] {
            let built = wf.build(3);
            let res = simulate(
                &built,
                AlgorithmKind::ExhaustiveBucketing,
                SimConfig::default(),
            );
            assert_eq!(res.metrics.len(), built.len(), "{}", built.name);
        }
    }

    // ---- fault injection -------------------------------------------------

    fn assert_conserved(res: &SimResult, total: usize) {
        let dead = res.stats.faults.dead_lettered;
        assert_eq!(
            res.stats.submitted,
            res.stats.completions + dead,
            "conservation: submitted = completed + dead-lettered"
        );
        assert_eq!(res.stats.submitted as usize, total);
        assert_eq!(res.metrics.len() as u64, res.stats.completions);
        assert_eq!(res.metrics.dead_lettered_count() as u64, dead);
    }

    #[test]
    fn zero_rate_fault_plan_reproduces_fault_free_run() {
        let wf = small(SyntheticKind::Bimodal);
        let config = SimConfig {
            churn: ChurnConfig::paper_like(),
            seed: 7,
            ..SimConfig::default()
        };
        let with_plan = SimConfig {
            faults: FaultPlan::none(),
            ..config
        };
        let a = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        let b = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, with_plan);
        assert_eq!(
            serde_json::to_string(&a.metrics).unwrap(),
            serde_json::to_string(&b.metrics).unwrap()
        );
        assert_eq!(a.makespan_s, b.makespan_s);
        assert!(!a.stats.faults.any());
    }

    #[test]
    fn crash_plan_conserves_tasks_and_logs_consistently() {
        let wf = small(SyntheticKind::Uniform);
        let config = SimConfig {
            churn: ChurnConfig {
                initial: 6,
                min: 3,
                max: 10,
                mean_interval_s: Some(15.0),
            },
            faults: FaultPlan::named("crashes").unwrap(),
            record_log: true,
            seed: 13,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        assert_conserved(&res, wf.len());
        assert!(res.stats.faults.worker_crashes > 0, "no crash fired");
        assert!(res.stats.faults.crashed_attempts > 0, "no attempt lost");
        res.log.unwrap().check_consistency().unwrap();
    }

    #[test]
    fn straggler_plan_slows_and_kills_attempts() {
        let wf = small(SyntheticKind::Normal);
        let config = SimConfig {
            faults: FaultPlan {
                straggler_rate: 0.3,
                straggler_multiplier: 10.0,
                straggler_timeout_s: 120.0,
                max_attempts: 8,
                ..FaultPlan::none()
            },
            record_log: true,
            seed: 3,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::MaxSeen, config);
        assert_conserved(&res, wf.len());
        let f = &res.stats.faults;
        assert!(
            f.straggler_kills > 0 || f.stragglers_slow > 0,
            "30% straggler rate drew nothing: {f:?}"
        );
        // Drag waste is attributed to faults, not to the allocator.
        let attributed = res
            .metrics
            .attributed_waste(tora_alloc::resources::ResourceKind::MemoryMb);
        if f.stragglers_slow > 0 || f.straggler_kills > 0 {
            assert!(attributed.fault_induced > 0.0, "{attributed:?}");
        }
        res.log.unwrap().check_consistency().unwrap();
    }

    #[test]
    fn record_dropout_starves_learning_but_not_completion() {
        let wf = small(SyntheticKind::Exponential);
        let config = SimConfig {
            faults: FaultPlan {
                record_dropout_rate: 0.4,
                ..FaultPlan::none()
            },
            record_log: true,
            seed: 21,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        assert_eq!(res.metrics.len(), wf.len(), "dropout must not lose tasks");
        assert!(res.stats.faults.record_drops > 0);
        // Observations + drops covers every completion.
        assert_eq!(
            res.stats.calls.observations + res.stats.faults.record_drops,
            res.stats.completions
        );
        res.log.unwrap().check_consistency().unwrap();
    }

    #[test]
    fn flaky_dispatch_backs_off_and_conserves() {
        let wf = small(SyntheticKind::Bimodal);
        let config = SimConfig {
            faults: FaultPlan::named("flaky-dispatch").unwrap(),
            record_log: true,
            seed: 2,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::MaxSeen, config);
        assert_conserved(&res, wf.len());
        assert!(
            res.stats.faults.dispatch_failures > 0,
            "25% rate drew nothing"
        );
        // Failed dispatches are not real dispatches.
        assert!(res.stats.dispatches >= res.stats.completions);
        res.log.unwrap().check_consistency().unwrap();
    }

    #[test]
    fn attempt_budget_dead_letters_instead_of_spinning() {
        // With a budget of one attempt, any first-attempt kill is terminal.
        let wf = small(SyntheticKind::Bimodal);
        let config = SimConfig {
            faults: FaultPlan {
                max_attempts: 1,
                ..FaultPlan::none()
            },
            record_log: true,
            seed: 5,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        assert_conserved(&res, wf.len());
        let dead = res.stats.faults.dead_lettered;
        assert!(dead > 0, "exploratory kills should exist under EB");
        assert_eq!(res.stats.faults.capped_retries, dead);
        assert!(res
            .metrics
            .dead_letters()
            .iter()
            .all(|l| l.cause == DeadLetterCause::AttemptsExhausted));
        // No completed task has more than one attempt.
        assert!(res.metrics.outcomes().iter().all(|o| o.attempts.len() == 1));
        res.log.unwrap().check_consistency().unwrap();
    }

    #[test]
    fn shrunken_pool_dead_letters_unplaceable_tasks() {
        // Every worker is a quarter of the base shape, so a whole-machine
        // allocation can never be placed; the unplaceable-rounds budget must
        // dead-letter the stranded tasks instead of hanging the run.
        use tora_alloc::resources::ResourceVector;
        use tora_alloc::task::TaskSpec;
        let peak = ResourceVector::new(8.0, 32768.0, 1000.0);
        let tasks: Vec<TaskSpec> = (0..4).map(|i| TaskSpec::new(i, 0, peak, 30.0)).collect();
        let wf = Workflow::new(
            "stranded",
            vec!["t".into()],
            tasks,
            tora_alloc::resources::WorkerSpec::paper_default(),
        );
        let config = SimConfig {
            churn: ChurnConfig {
                initial: 3,
                min: 3,
                max: 3,
                mean_interval_s: Some(5.0),
            },
            worker_mix: Some(WorkerMix {
                large_fraction: 1.0,
                scale: 0.25,
            }),
            faults: FaultPlan {
                max_unplaceable_rounds: 2,
                ..FaultPlan::none()
            },
            record_log: true,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::WholeMachine, config);
        assert_conserved(&res, 4);
        assert_eq!(res.stats.faults.dead_lettered, 4);
        assert!(res
            .metrics
            .dead_letters()
            .iter()
            .all(|l| l.cause == DeadLetterCause::Unplaceable));
        res.log.unwrap().check_consistency().unwrap();
    }

    #[test]
    fn dead_letter_cascades_to_dependents() {
        // 0 → 1 → 2; task 0 can never be placed, so 1 and 2 are doomed too.
        use tora_alloc::resources::ResourceVector;
        use tora_alloc::task::TaskSpec;
        let big = ResourceVector::new(8.0, 32768.0, 1000.0);
        let smallp = ResourceVector::new(1.0, 100.0, 10.0);
        let tasks = vec![
            TaskSpec::new(0, 0, big, 30.0),
            TaskSpec::new(1, 1, smallp, 10.0),
            TaskSpec::new(2, 1, smallp, 10.0),
        ];
        let wf = Workflow::new(
            "chain",
            vec!["big".into(), "small".into()],
            tasks,
            tora_alloc::resources::WorkerSpec::paper_default(),
        )
        .with_dependencies(vec![vec![], vec![0], vec![1]]);
        let config = SimConfig {
            churn: ChurnConfig {
                initial: 2,
                min: 2,
                max: 2,
                mean_interval_s: Some(5.0),
            },
            worker_mix: Some(WorkerMix {
                large_fraction: 1.0,
                scale: 0.25,
            }),
            faults: FaultPlan {
                max_unplaceable_rounds: 1,
                ..FaultPlan::none()
            },
            record_log: true,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::WholeMachine, config);
        assert_conserved(&res, 3);
        assert_eq!(res.stats.faults.dead_lettered, 3);
        let causes: Vec<DeadLetterCause> =
            res.metrics.dead_letters().iter().map(|l| l.cause).collect();
        assert_eq!(
            causes
                .iter()
                .filter(|c| **c == DeadLetterCause::Unplaceable)
                .count(),
            1
        );
        assert_eq!(
            causes
                .iter()
                .filter(|c| **c == DeadLetterCause::DependencyDeadLettered)
                .count(),
            2
        );
        res.log.unwrap().check_consistency().unwrap();
    }

    #[test]
    fn heavy_chaos_is_deterministic_given_seed() {
        let wf = small(SyntheticKind::Bimodal);
        let config = SimConfig {
            churn: ChurnConfig {
                initial: 5,
                min: 2,
                max: 9,
                mean_interval_s: Some(12.0),
            },
            faults: FaultPlan::named("heavy").unwrap(),
            seed: 77,
            ..SimConfig::default()
        };
        let a = simulate(&wf, AlgorithmKind::GreedyBucketing, config);
        let b = simulate(&wf, AlgorithmKind::GreedyBucketing, config);
        assert_conserved(&a, wf.len());
        assert_eq!(a.stats, b.stats);
        assert_eq!(
            serde_json::to_string(&a.metrics).unwrap(),
            serde_json::to_string(&b.metrics).unwrap()
        );
        let ra = crate::faults::FaultReport::from_result(&a, &config, "greedy-bucketing");
        let rb = crate::faults::FaultReport::from_result(&b, &config, "greedy-bucketing");
        assert_eq!(ra.to_json(), rb.to_json());
        assert!(ra.conservation_ok);
    }

    #[test]
    fn rack_crashes_down_correlated_workers_and_conserve() {
        // Fixed 8-worker pool over 4 racks: round-robin puts exactly two
        // workers in every rack, so the first rack crash (nothing else
        // removes workers here) must take out two workers at once.
        let wf = small(SyntheticKind::Bimodal);
        let config = SimConfig {
            churn: ChurnConfig::fixed(8),
            faults: FaultPlan {
                rack_crash_mean_interval_s: Some(20.0),
                rack_count: 4,
                max_attempts: 10,
                ..FaultPlan::none()
            },
            record_log: true,
            seed: 11,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        assert_conserved(&res, wf.len());
        let f = &res.stats.faults;
        assert!(f.rack_crashes > 0, "no rack crash fired: {f:?}");
        assert!(
            f.worker_crashes > f.rack_crashes,
            "rack crashes were not correlated: {f:?}"
        );
        let log = res.log.unwrap();
        log.check_consistency().unwrap();
        let crashed = log.count(|e| matches!(e, crate::log::SimEvent::WorkerCrashed { .. }));
        assert_eq!(crashed as u64, f.worker_crashes);
    }

    #[test]
    fn replay_readmits_dead_letters_after_pool_recovery() {
        // Flaky dispatch with a one-retry budget produces
        // DispatchRetriesExhausted dead letters; every churn join above the
        // capacity threshold pulls them back for another round.
        let wf = small(SyntheticKind::Bimodal);
        let config = SimConfig {
            churn: ChurnConfig {
                initial: 5,
                min: 2,
                max: 10,
                mean_interval_s: Some(8.0),
            },
            faults: FaultPlan {
                dispatch_failure_rate: 0.35,
                dispatch_backoff_s: 1.0,
                max_dispatch_retries: 1,
                replay_capacity_fraction: 0.5,
                max_replay_rounds: 3,
                ..FaultPlan::none()
            },
            record_log: true,
            seed: 17,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::MaxSeen, config);
        assert_conserved(&res, wf.len());
        let f = &res.stats.faults;
        assert!(f.replayed > 0, "no dead letter was replayed: {f:?}");
        assert!(f.replay_successes > 0, "replay recovered nothing: {f:?}");
        assert!(f.replay_successes <= f.replayed);
        let log = res.log.unwrap();
        log.check_consistency().unwrap();
        let replay_events = log.count(|e| matches!(e, crate::log::SimEvent::TaskReplayed { .. }));
        assert_eq!(replay_events as u64, f.replayed);
    }

    #[test]
    fn fault_policy_reports_every_terminal_attempt_outcome() {
        let wf = small(SyntheticKind::Bimodal);
        let config = SimConfig {
            faults: FaultPlan {
                straggler_rate: 0.2,
                straggler_multiplier: 8.0,
                straggler_timeout_s: 100.0,
                max_attempts: 8,
                ..FaultPlan::none()
            },
            fault_policy: Some(FaultPolicy::default()),
            seed: 3,
            ..SimConfig::default()
        };
        let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        assert_conserved(&res, wf.len());
        assert!(res.stats.calls.feedback > 0);
        // Success per completion, Exhaustion per resource kill, Straggler
        // per watchdog kill, Crash per crashed attempt — nothing else.
        assert_eq!(
            res.stats.calls.feedback,
            res.stats.completions
                + res.stats.failures
                + res.stats.faults.straggler_kills
                + res.stats.faults.crashed_attempts
        );
    }

    #[test]
    fn fault_policy_without_faults_is_a_strict_no_op() {
        // The fault-feedback channel must be invisible while the plan is
        // inactive: identical metrics, identical makespan, zero feedback.
        let wf = small(SyntheticKind::Exponential);
        let base = SimConfig {
            churn: ChurnConfig::paper_like(),
            seed: 21,
            ..SimConfig::default()
        };
        let with_policy = SimConfig {
            fault_policy: Some(FaultPolicy::default()),
            ..base
        };
        let a = simulate(&wf, AlgorithmKind::GreedyBucketing, base);
        let b = simulate(&wf, AlgorithmKind::GreedyBucketing, with_policy);
        assert_eq!(
            serde_json::to_string(&a.metrics).unwrap(),
            serde_json::to_string(&b.metrics).unwrap()
        );
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(b.stats.calls.feedback, 0);
    }
}
