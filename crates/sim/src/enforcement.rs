//! Enforcement: what happens when a task runs under a given allocation.
//!
//! §II-B assumption 4: "if a task over-consumes its allocation at any given
//! time, its execution is terminated and the task must be retried with a
//! bigger allocation". The *time at which* the kill fires determines the
//! failed attempt's charged time `tᵢ` in the waste formula; the paper's
//! testbed observes it empirically, so the simulator models it explicitly:
//!
//! * [`EnforcementModel::InstantPeak`] — the task reaches its peak
//!   immediately; a failing attempt is charged its full duration (the upper
//!   bound, equivalent to monitoring that only reacts at completion).
//! * [`EnforcementModel::LinearRamp`] — consumption of each dimension ramps
//!   linearly from 0 to its peak over the task's duration; the kill fires
//!   when the *first* dimension crosses its limit, so the attempt is charged
//!   `t · min_over_exceeded(a_k / c_k)`.
//!
//! Experiments default to `LinearRamp`; both models produce identical
//! success/failure verdicts — only the charged time of failures differs.

use serde::{Deserialize, Serialize};
use tora_alloc::resources::{ResourceMask, ResourceVector};
use tora_alloc::task::TaskSpec;

/// How failed attempts are timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EnforcementModel {
    /// Failures charged the full task duration.
    InstantPeak,
    /// Failures charged the linear-ramp kill time (default).
    #[default]
    LinearRamp,
}

/// The verdict of running `task` under `allocation`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttemptVerdict {
    /// Whether the attempt completes.
    pub success: bool,
    /// Seconds the attempt holds its allocation (duration on success,
    /// time-to-kill on failure).
    pub charged_time_s: f64,
    /// The dimensions the task over-consumed (empty on success).
    pub exhausted: ResourceMask,
}

impl EnforcementModel {
    /// Judge one attempt.
    pub fn judge(&self, task: &TaskSpec, allocation: &ResourceVector) -> AttemptVerdict {
        let exhausted = allocation.exceeded_by(&task.peak);
        if !exhausted.any() {
            return AttemptVerdict {
                success: true,
                charged_time_s: task.duration_s,
                exhausted,
            };
        }
        let charged = match self {
            EnforcementModel::InstantPeak => task.duration_s,
            EnforcementModel::LinearRamp => {
                // Consumption of dimension k at time x is peak_k · x / t; it
                // crosses alloc_k at x = t · alloc_k / peak_k. The earliest
                // crossing among exhausted dimensions kills the task.
                let frac = exhausted
                    .iter()
                    .map(|k| {
                        let peak = task.peak[k];
                        debug_assert!(peak > 0.0, "exhausted dimension with zero peak");
                        (allocation[k] / peak).clamp(0.0, 1.0)
                    })
                    .fold(1.0_f64, f64::min);
                task.duration_s * frac
            }
        };
        AttemptVerdict {
            success: false,
            charged_time_s: charged,
            exhausted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tora_alloc::resources::ResourceKind;

    fn task() -> TaskSpec {
        TaskSpec::new(0, 0, ResourceVector::new(2.0, 400.0, 100.0), 10.0)
    }

    /// An allocation with ample wall time (tests target the spatial axes).
    fn alloc(cores: f64, mem: f64, disk: f64) -> ResourceVector {
        ResourceVector::new(cores, mem, disk).with(tora_alloc::resources::ResourceKind::TimeS, 1e6)
    }

    #[test]
    fn sufficient_allocation_succeeds_with_full_duration() {
        for model in [EnforcementModel::InstantPeak, EnforcementModel::LinearRamp] {
            let v = model.judge(&task(), &alloc(2.0, 400.0, 100.0));
            assert!(v.success);
            assert_eq!(v.charged_time_s, 10.0);
            assert!(!v.exhausted.any());
        }
    }

    #[test]
    fn instant_peak_charges_full_duration_on_failure() {
        let v = EnforcementModel::InstantPeak.judge(&task(), &alloc(2.0, 100.0, 100.0));
        assert!(!v.success);
        assert_eq!(v.charged_time_s, 10.0);
        assert!(v.exhausted.contains(ResourceKind::MemoryMb));
    }

    #[test]
    fn linear_ramp_kills_at_first_crossing() {
        // Memory limited to 100 of a 400 peak → crossing at 25% of 10 s.
        let v = EnforcementModel::LinearRamp.judge(&task(), &alloc(2.0, 100.0, 100.0));
        assert!(!v.success);
        assert!((v.charged_time_s - 2.5).abs() < 1e-12);
    }

    #[test]
    fn earliest_crossing_wins_across_dimensions() {
        // Memory at 50% of peak, disk at 10% of peak → disk kills first at 1 s.
        let v = EnforcementModel::LinearRamp.judge(&task(), &alloc(2.0, 200.0, 10.0));
        assert!(!v.success);
        assert!((v.charged_time_s - 1.0).abs() < 1e-12);
        assert!(v.exhausted.contains(ResourceKind::MemoryMb));
        assert!(v.exhausted.contains(ResourceKind::DiskMb));
        assert!(!v.exhausted.contains(ResourceKind::Cores));
    }

    #[test]
    fn zero_allocation_kills_immediately_under_ramp() {
        let v = EnforcementModel::LinearRamp.judge(&task(), &ResourceVector::ZERO);
        assert!(!v.success);
        assert_eq!(v.charged_time_s, 0.0);
    }

    #[test]
    fn time_axis_is_enforced_when_allocated_short() {
        use tora_alloc::resources::ResourceKind;
        // 10 s task under a 4 s wall-time limit: killed at exactly 4 s under
        // the ramp model (time "consumption" is linear by definition).
        let a = alloc(2.0, 400.0, 100.0).with(ResourceKind::TimeS, 4.0);
        let v = EnforcementModel::LinearRamp.judge(&task(), &a);
        assert!(!v.success);
        assert!(v.exhausted.contains(ResourceKind::TimeS));
        assert!((v.charged_time_s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn verdicts_agree_on_success_across_models() {
        let allocs = [
            alloc(2.0, 400.0, 100.0),
            alloc(1.0, 400.0, 100.0),
            alloc(16.0, 65536.0, 65536.0),
            alloc(2.0, 399.9, 100.0),
        ];
        for a in allocs {
            let i = EnforcementModel::InstantPeak.judge(&task(), &a);
            let r = EnforcementModel::LinearRamp.judge(&task(), &a);
            assert_eq!(i.success, r.success, "{a}");
            assert_eq!(i.exhausted, r.exhausted, "{a}");
        }
    }
}
