//! Structured event logging for simulated runs.
//!
//! An optional, fully ordered record of everything the engine did: task
//! lifecycle transitions, worker churn, preemptions. Useful for debugging
//! allocation behaviour, for the trace-dump harnesses, and as a
//! consistency oracle in tests ([`EventLog::check_consistency`] verifies
//! conservation laws that must hold for any correct run).

use crate::workers::WorkerId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt::Write as _;
use tora_alloc::resources::ResourceVector;
use tora_alloc::task::TaskId;
use tora_metrics::DeadLetterCause;

/// One logged simulation event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SimEvent {
    /// A task was submitted (became ready for the first time).
    TaskSubmitted {
        /// The task.
        task: TaskId,
    },
    /// A task attempt was placed on a worker.
    TaskDispatched {
        /// The task.
        task: TaskId,
        /// Destination worker.
        worker: WorkerId,
        /// Attempt number (1-based).
        attempt: usize,
        /// The allocation it holds.
        allocation: ResourceVector,
    },
    /// A task attempt finished successfully.
    TaskCompleted {
        /// The task.
        task: TaskId,
        /// The worker it ran on.
        worker: WorkerId,
    },
    /// A task attempt was killed for over-consuming its allocation.
    TaskKilled {
        /// The task.
        task: TaskId,
        /// The worker it ran on.
        worker: WorkerId,
    },
    /// A task attempt was lost because its worker departed.
    TaskPreempted {
        /// The task.
        task: TaskId,
        /// The departing worker.
        worker: WorkerId,
    },
    /// A worker joined the pool.
    WorkerJoined {
        /// The worker.
        worker: WorkerId,
    },
    /// A worker left the pool.
    WorkerLeft {
        /// The worker.
        worker: WorkerId,
    },
    /// A worker crashed (abrupt departure; running attempts lost their
    /// records).
    WorkerCrashed {
        /// The worker.
        worker: WorkerId,
    },
    /// A task attempt was lost when its worker crashed.
    TaskCrashed {
        /// The task.
        task: TaskId,
        /// The crashed worker.
        worker: WorkerId,
    },
    /// A task attempt straggled past the timeout and was killed.
    TaskTimedOut {
        /// The task.
        task: TaskId,
        /// The worker it ran on.
        worker: WorkerId,
    },
    /// A dispatch attempt failed transiently; the task was re-queued with
    /// backoff.
    DispatchFailed {
        /// The task.
        task: TaskId,
    },
    /// A completion whose resource record never reached the allocator.
    RecordDropped {
        /// The task.
        task: TaskId,
    },
    /// A task was abandoned: it will never complete (unless replayed).
    TaskDeadLettered {
        /// The task.
        task: TaskId,
        /// Why it was abandoned.
        cause: DeadLetterCause,
    },
    /// A dead-lettered task was re-admitted after the pool recovered.
    TaskReplayed {
        /// The task.
        task: TaskId,
    },
    /// A crashed attempt banked a checkpoint: the salvaged share of its
    /// finished work carries forward to the retry.
    TaskCheckpointed {
        /// The task.
        task: TaskId,
        /// Nominal task-seconds salvaged by this checkpoint.
        salvaged_s: f64,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Simulated time, seconds.
    pub time_s: f64,
    /// The event.
    pub event: SimEvent,
}

/// The full ordered event log of one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EventLog {
    entries: Vec<LogEntry>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, time_s: f64, event: SimEvent) {
        debug_assert!(
            self.entries.last().is_none_or(|e| e.time_s <= time_s),
            "log must be time-ordered"
        );
        self.entries.push(LogEntry { time_s, event });
    }

    /// All entries, in time order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Count entries matching a predicate.
    pub fn count<F: Fn(&SimEvent) -> bool>(&self, pred: F) -> usize {
        self.entries.iter().filter(|e| pred(&e.event)).count()
    }

    /// Serialize as JSON Lines (one entry per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{}",
                serde_json::to_string(e).expect("log entries serialize")
            );
        }
        out
    }

    /// Parse a JSON Lines dump back into a log.
    pub fn from_jsonl(text: &str) -> Result<Self, serde_json::Error> {
        let mut log = EventLog::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            log.entries.push(serde_json::from_str(line)?);
        }
        Ok(log)
    }

    /// Verify the conservation laws of a completed run:
    ///
    /// * every dispatch terminates exactly once (completed, killed,
    ///   preempted, crashed, or timed out);
    /// * every submitted task reaches exactly one terminal state: one
    ///   completion XOR ending dead-lettered — where a dead-letter may be
    ///   withdrawn by a replay (and only then), so the dead-letter /
    ///   replay events of a task strictly alternate;
    /// * nothing dispatches, completes, or replays while *not* in the state
    ///   that permits it (no dispatch of a currently-dead task, no replay
    ///   of a live one);
    /// * a worker's events nest correctly (no dispatch after it left or
    ///   crashed).
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut open_dispatches: HashMap<TaskId, WorkerId> = HashMap::new();
        let mut completions: HashMap<TaskId, usize> = HashMap::new();
        let mut currently_dead: std::collections::HashSet<TaskId> = Default::default();
        let mut ever_dead: std::collections::HashSet<TaskId> = Default::default();
        let mut submitted: HashMap<TaskId, usize> = HashMap::new();
        let mut live_workers: HashMap<WorkerId, bool> = HashMap::new();
        for entry in &self.entries {
            match entry.event {
                SimEvent::TaskSubmitted { task } => {
                    *submitted.entry(task).or_insert(0) += 1;
                }
                SimEvent::TaskDispatched { task, worker, .. } => {
                    if !live_workers.get(&worker).copied().unwrap_or(false) {
                        return Err(format!("{task} dispatched to dead {worker:?}"));
                    }
                    if currently_dead.contains(&task) {
                        return Err(format!("{task} dispatched while dead-lettered"));
                    }
                    if open_dispatches.insert(task, worker).is_some() {
                        return Err(format!("{task} dispatched while already running"));
                    }
                }
                SimEvent::TaskCompleted { task, worker }
                | SimEvent::TaskKilled { task, worker }
                | SimEvent::TaskPreempted { task, worker }
                | SimEvent::TaskCrashed { task, worker }
                | SimEvent::TaskTimedOut { task, worker } => {
                    match open_dispatches.remove(&task) {
                        Some(w) if w == worker => {}
                        Some(w) => {
                            return Err(format!("{task} finished on {worker:?} but ran on {w:?}"))
                        }
                        None => return Err(format!("{task} finished without dispatch")),
                    }
                    if matches!(entry.event, SimEvent::TaskCompleted { .. }) {
                        if currently_dead.contains(&task) {
                            return Err(format!("{task} completed while dead-lettered"));
                        }
                        *completions.entry(task).or_insert(0) += 1;
                    }
                }
                SimEvent::TaskDeadLettered { task, .. } => {
                    if open_dispatches.contains_key(&task) {
                        return Err(format!("{task} dead-lettered while running"));
                    }
                    if !currently_dead.insert(task) {
                        return Err(format!("{task} dead-lettered twice without a replay"));
                    }
                    ever_dead.insert(task);
                }
                SimEvent::TaskReplayed { task } => {
                    if !currently_dead.remove(&task) {
                        return Err(format!("{task} replayed while not dead-lettered"));
                    }
                }
                SimEvent::DispatchFailed { .. }
                | SimEvent::RecordDropped { .. }
                | SimEvent::TaskCheckpointed { .. } => {}
                SimEvent::WorkerJoined { worker } => {
                    live_workers.insert(worker, true);
                }
                SimEvent::WorkerLeft { worker } | SimEvent::WorkerCrashed { worker } => {
                    live_workers.insert(worker, false);
                }
            }
        }
        if !open_dispatches.is_empty() {
            return Err(format!(
                "{} dispatches never terminated",
                open_dispatches.len()
            ));
        }
        for (task, count) in &submitted {
            if *count != 1 {
                return Err(format!("{task} submitted {count} times"));
            }
            let done = completions.get(task).copied().unwrap_or(0);
            let dead = usize::from(currently_dead.contains(task));
            if done + dead != 1 {
                return Err(format!(
                    "{task} reached {done} completions and ended \
                     {}dead-lettered (want exactly one terminal state)",
                    if dead == 1 { "" } else { "not " }
                ));
            }
        }
        for task in completions.keys() {
            if !submitted.contains_key(task) {
                return Err(format!("{task} completed without submission"));
            }
        }
        for task in &ever_dead {
            // A dependent dead-lettered by cascade may never have arrived
            // (so never logged a submission), but it must still end in
            // exactly one terminal state like everything else.
            if !submitted.contains_key(task) && !currently_dead.contains(task) {
                return Err(format!(
                    "unsubmitted {task} was dead-lettered but did not stay dead"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> ResourceVector {
        ResourceVector::new(1.0, 1024.0, 1024.0)
    }

    fn well_formed() -> EventLog {
        let mut log = EventLog::new();
        let (t0, w0) = (TaskId(0), WorkerId(0));
        log.push(0.0, SimEvent::WorkerJoined { worker: w0 });
        log.push(0.0, SimEvent::TaskSubmitted { task: t0 });
        log.push(
            0.0,
            SimEvent::TaskDispatched {
                task: t0,
                worker: w0,
                attempt: 1,
                allocation: alloc(),
            },
        );
        log.push(
            5.0,
            SimEvent::TaskKilled {
                task: t0,
                worker: w0,
            },
        );
        log.push(
            5.0,
            SimEvent::TaskDispatched {
                task: t0,
                worker: w0,
                attempt: 2,
                allocation: alloc().scale(2.0),
            },
        );
        log.push(
            15.0,
            SimEvent::TaskCompleted {
                task: t0,
                worker: w0,
            },
        );
        log
    }

    #[test]
    fn consistent_log_passes() {
        well_formed().check_consistency().unwrap();
    }

    #[test]
    fn jsonl_roundtrip() {
        let log = well_formed();
        let text = log.to_jsonl();
        assert_eq!(text.lines().count(), log.len());
        let parsed = EventLog::from_jsonl(&text).unwrap();
        assert_eq!(parsed, log);
        assert!(EventLog::from_jsonl("").unwrap().is_empty());
    }

    #[test]
    fn detects_double_dispatch() {
        let mut log = EventLog::new();
        log.push(
            0.0,
            SimEvent::WorkerJoined {
                worker: WorkerId(0),
            },
        );
        log.push(0.0, SimEvent::TaskSubmitted { task: TaskId(1) });
        for _ in 0..2 {
            log.push(
                0.0,
                SimEvent::TaskDispatched {
                    task: TaskId(1),
                    worker: WorkerId(0),
                    attempt: 1,
                    allocation: alloc(),
                },
            );
        }
        assert!(log.check_consistency().is_err());
    }

    #[test]
    fn detects_dispatch_to_dead_worker() {
        let mut log = EventLog::new();
        log.push(
            0.0,
            SimEvent::WorkerJoined {
                worker: WorkerId(0),
            },
        );
        log.push(
            1.0,
            SimEvent::WorkerLeft {
                worker: WorkerId(0),
            },
        );
        log.push(1.0, SimEvent::TaskSubmitted { task: TaskId(0) });
        log.push(
            2.0,
            SimEvent::TaskDispatched {
                task: TaskId(0),
                worker: WorkerId(0),
                attempt: 1,
                allocation: alloc(),
            },
        );
        assert!(log.check_consistency().is_err());
    }

    #[test]
    fn detects_unterminated_dispatch_and_missing_completion() {
        let mut log = EventLog::new();
        log.push(
            0.0,
            SimEvent::WorkerJoined {
                worker: WorkerId(0),
            },
        );
        log.push(0.0, SimEvent::TaskSubmitted { task: TaskId(0) });
        log.push(
            0.0,
            SimEvent::TaskDispatched {
                task: TaskId(0),
                worker: WorkerId(0),
                attempt: 1,
                allocation: alloc(),
            },
        );
        assert!(log.check_consistency().is_err());
    }

    #[test]
    fn replay_cycle_is_consistent() {
        use tora_metrics::DeadLetterCause;
        let mut log = EventLog::new();
        let (t0, w0) = (TaskId(0), WorkerId(0));
        log.push(0.0, SimEvent::WorkerJoined { worker: w0 });
        log.push(0.0, SimEvent::TaskSubmitted { task: t0 });
        log.push(
            1.0,
            SimEvent::TaskDeadLettered {
                task: t0,
                cause: DeadLetterCause::Unplaceable,
            },
        );
        log.push(2.0, SimEvent::TaskReplayed { task: t0 });
        log.push(
            3.0,
            SimEvent::TaskDispatched {
                task: t0,
                worker: w0,
                attempt: 1,
                allocation: alloc(),
            },
        );
        log.push(
            4.0,
            SimEvent::TaskCompleted {
                task: t0,
                worker: w0,
            },
        );
        log.check_consistency().unwrap();
        // Ending dead after a replayed round is also a valid terminal state.
        let mut redead = log.clone();
        redead.entries.truncate(3);
        redead.push(2.0, SimEvent::TaskReplayed { task: t0 });
        redead.push(
            3.0,
            SimEvent::TaskDeadLettered {
                task: t0,
                cause: DeadLetterCause::Unplaceable,
            },
        );
        redead.check_consistency().unwrap();
    }

    #[test]
    fn detects_replay_and_dead_letter_misuse() {
        use tora_metrics::DeadLetterCause;
        let base = || {
            let mut log = EventLog::new();
            log.push(
                0.0,
                SimEvent::WorkerJoined {
                    worker: WorkerId(0),
                },
            );
            log.push(0.0, SimEvent::TaskSubmitted { task: TaskId(0) });
            log
        };
        // Replaying a live task.
        let mut log = base();
        log.push(1.0, SimEvent::TaskReplayed { task: TaskId(0) });
        assert!(log.check_consistency().is_err());
        // Double dead-letter without a replay between.
        let mut log = base();
        for t in [1.0, 2.0] {
            log.push(
                t,
                SimEvent::TaskDeadLettered {
                    task: TaskId(0),
                    cause: DeadLetterCause::Unplaceable,
                },
            );
        }
        assert!(log.check_consistency().is_err());
        // Dispatching a task that is currently dead-lettered.
        let mut log = base();
        log.push(
            1.0,
            SimEvent::TaskDeadLettered {
                task: TaskId(0),
                cause: DeadLetterCause::Unplaceable,
            },
        );
        log.push(
            2.0,
            SimEvent::TaskDispatched {
                task: TaskId(0),
                worker: WorkerId(0),
                attempt: 1,
                allocation: alloc(),
            },
        );
        assert!(log.check_consistency().is_err());
    }

    #[test]
    fn count_filters_event_kinds() {
        let log = well_formed();
        assert_eq!(
            log.count(|e| matches!(e, SimEvent::TaskDispatched { .. })),
            2
        );
        assert_eq!(log.count(|e| matches!(e, SimEvent::TaskKilled { .. })), 1);
        assert_eq!(
            log.count(|e| matches!(e, SimEvent::TaskCompleted { .. })),
            1
        );
    }
}
