//! Deterministic fault injection: crashes, stragglers, lost records,
//! flaky dispatch — and the dead-letter safety net that bounds them.
//!
//! Opportunistic pools do not merely *preempt* politely (§II-B): workers
//! crash and take the attempt's record with them, tasks hang, completion
//! records get lost in flight, and dispatch RPCs fail transiently. A
//! [`FaultPlan`] describes such an environment as a set of seeded rates;
//! the engine draws every fault from a dedicated RNG stream so a plan of
//! all-zero rates reproduces the fault-free run byte for byte.
//!
//! The plan also carries the *resilience* knobs that keep a faulty run
//! terminating: a per-task attempt budget, a dispatch-retry budget, and an
//! unplaceable-rounds budget. Exceeding any of them routes the task to the
//! dead-letter channel (a terminal, accounted state) instead of spinning
//! forever. [`FaultReport`] summarizes a run under a plan: per-cause fault
//! counts, the dead-letter breakdown, degraded efficiency, and the
//! conservation identity `submitted = completed + dead-lettered`.

use serde::{Deserialize, Serialize};
use tora_alloc::resources::ResourceKind;
use tora_metrics::{pct, CriticalPathStats, Table};

use crate::engine::{SimConfig, SimResult};
use crate::stats::FaultCounts;

/// A seeded description of the fault environment plus the resilience
/// budgets that bound its damage. `FaultPlan::none()` (also the `Default`)
/// disables everything and reproduces the legacy fault-free engine
/// behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Mean seconds between worker crashes (exponential), `None` = never.
    /// A crash is an abrupt departure: running attempts are charged and
    /// counted as failed, unlike a graceful preemption.
    pub crash_mean_interval_s: Option<f64>,
    /// Probability that a dispatched attempt straggles.
    pub straggler_rate: f64,
    /// Runtime stretch factor applied to straggling attempts (≥ 1).
    pub straggler_multiplier: f64,
    /// Wall-clock cap after which a straggling attempt is killed.
    pub straggler_timeout_s: f64,
    /// Probability that a completion's resource record is lost before it
    /// reaches the allocator.
    pub record_dropout_rate: f64,
    /// Probability that a dispatch attempt fails transiently.
    pub dispatch_failure_rate: f64,
    /// Base backoff before a failed dispatch is retried (doubles per
    /// consecutive failure, capped at 2¹⁰×).
    pub dispatch_backoff_s: f64,
    /// Consecutive dispatch failures tolerated per task before it is
    /// dead-lettered. `0` = unbounded.
    pub max_dispatch_retries: usize,
    /// Total attempts (kills, crashes, timeouts) tolerated per task before
    /// it is dead-lettered. `0` = unbounded (legacy behaviour).
    pub max_attempts: usize,
    /// Consecutive engine rounds a ready task may be unplaceable on *every*
    /// live worker before it is dead-lettered. `0` = disabled.
    pub max_unplaceable_rounds: usize,
    /// Mean seconds between *correlated* crash events (exponential),
    /// `None` = never. One event picks a victim worker and takes out every
    /// live worker sharing its rack at once — burst loss, not attrition.
    #[serde(default)]
    pub rack_crash_mean_interval_s: Option<f64>,
    /// Number of failure-domain groups (racks) workers are spread over,
    /// round-robin by join order. `0` = racks disabled (every worker in the
    /// default rack `0`). Required ≥ 2 when rack crashes are enabled, so a
    /// correlated crash never trivially empties the pool.
    #[serde(default)]
    pub rack_count: u32,
    /// Pool-recovery threshold for dead-letter replay, as a fraction of the
    /// largest pool seen so far. When a worker joins and the live pool is at
    /// least `fraction × peak`, replayable dead letters (unplaceable or
    /// dispatch-retries-exhausted) are re-admitted. `0` = replay disabled.
    #[serde(default)]
    pub replay_capacity_fraction: f64,
    /// Times one task may be re-admitted from the dead-letter channel
    /// before it stays dead for good. `0` = replay disabled.
    #[serde(default)]
    pub max_replay_rounds: usize,
    /// Checkpoint/restart: the fraction of a crashed attempt's *finished*
    /// work that survives the crash and is banked toward the retry, in
    /// `[0, 1]`. The retry then runs only the remaining duration, and the
    /// salvaged share is subtracted from the attempt's fault waste. `0`
    /// (the default) disables checkpointing and is byte-inert: a run with
    /// the knob at zero is identical to one that never heard of it.
    #[serde(default)]
    pub checkpointed_fraction: f64,
}

/// Nominal task-seconds a checkpoint can salvage from a dying attempt:
/// the wall-clock it ran, priced at its work rate, clamped to the work the
/// attempt actually had left to do.
pub fn checkpoint_progress_s(elapsed_s: f64, work_rate: f64, remaining_s: f64) -> f64 {
    (elapsed_s * work_rate).min(remaining_s)
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// No faults, no budgets: byte-identical to the pre-fault engine.
    pub fn none() -> Self {
        FaultPlan {
            crash_mean_interval_s: None,
            straggler_rate: 0.0,
            straggler_multiplier: 1.0,
            straggler_timeout_s: 0.0,
            record_dropout_rate: 0.0,
            dispatch_failure_rate: 0.0,
            dispatch_backoff_s: 0.0,
            max_dispatch_retries: 0,
            max_attempts: 0,
            max_unplaceable_rounds: 0,
            rack_crash_mean_interval_s: None,
            rack_count: 0,
            replay_capacity_fraction: 0.0,
            max_replay_rounds: 0,
            checkpointed_fraction: 0.0,
        }
    }

    /// Whether any fault source or resilience budget is enabled.
    pub fn is_active(&self) -> bool {
        *self != FaultPlan::none()
    }

    /// Validate rates and the cross-field requirements (a straggler rate
    /// needs a multiplier and a timeout; a dispatch-failure rate needs a
    /// backoff; a crash interval must be positive and finite).
    pub fn validate(&self) -> Result<(), String> {
        let unit = |label: &str, v: f64| -> Result<(), String> {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{label} must be in [0, 1], got {v}"));
            }
            Ok(())
        };
        unit("straggler_rate", self.straggler_rate)?;
        unit("record_dropout_rate", self.record_dropout_rate)?;
        unit("dispatch_failure_rate", self.dispatch_failure_rate)?;
        if let Some(mean) = self.crash_mean_interval_s {
            if !(mean.is_finite() && mean > 0.0) {
                return Err(format!(
                    "crash_mean_interval_s must be finite and positive, got {mean}"
                ));
            }
        }
        if self.straggler_rate > 0.0 {
            if !(self.straggler_multiplier.is_finite() && self.straggler_multiplier >= 1.0) {
                return Err(format!(
                    "straggler_multiplier must be >= 1, got {}",
                    self.straggler_multiplier
                ));
            }
            if !(self.straggler_timeout_s.is_finite() && self.straggler_timeout_s > 0.0) {
                return Err(format!(
                    "straggler_timeout_s must be positive, got {}",
                    self.straggler_timeout_s
                ));
            }
        }
        if self.dispatch_failure_rate > 0.0
            && !(self.dispatch_backoff_s.is_finite() && self.dispatch_backoff_s > 0.0)
        {
            return Err(format!(
                "dispatch_backoff_s must be positive, got {}",
                self.dispatch_backoff_s
            ));
        }
        if let Some(mean) = self.rack_crash_mean_interval_s {
            if !(mean.is_finite() && mean > 0.0) {
                return Err(format!(
                    "rack_crash_mean_interval_s must be finite and positive, got {mean}"
                ));
            }
            if self.rack_count < 2 {
                return Err(format!(
                    "rack crashes need rack_count >= 2 (one crash must not \
                     trivially empty the pool), got {}",
                    self.rack_count
                ));
            }
        }
        if !(0.0..=1.0).contains(&self.checkpointed_fraction) {
            return Err(format!(
                "checkpointed_fraction must be in [0, 1], got {}",
                self.checkpointed_fraction
            ));
        }
        let replay_on = self.max_replay_rounds > 0 || self.replay_capacity_fraction > 0.0;
        if replay_on {
            if self.max_replay_rounds == 0 {
                return Err("replay needs max_replay_rounds >= 1".to_string());
            }
            if !(self.replay_capacity_fraction > 0.0
                && self.replay_capacity_fraction <= 1.0
                && self.replay_capacity_fraction.is_finite())
            {
                return Err(format!(
                    "replay_capacity_fraction must be in (0, 1], got {}",
                    self.replay_capacity_fraction
                ));
            }
        }
        Ok(())
    }

    /// A named preset, for the CLI. `None` for an unknown name; see
    /// [`FaultPlan::PRESETS`] for the catalogue.
    pub fn named(name: &str) -> Option<Self> {
        let base = FaultPlan {
            max_dispatch_retries: 5,
            max_attempts: 10,
            max_unplaceable_rounds: 3,
            dispatch_backoff_s: 2.0,
            straggler_multiplier: 4.0,
            straggler_timeout_s: 600.0,
            ..FaultPlan::none()
        };
        let plan = match name {
            "none" => FaultPlan::none(),
            "light" => FaultPlan {
                crash_mean_interval_s: Some(120.0),
                straggler_rate: 0.02,
                record_dropout_rate: 0.02,
                dispatch_failure_rate: 0.02,
                ..base
            },
            "heavy" => FaultPlan {
                crash_mean_interval_s: Some(30.0),
                straggler_rate: 0.10,
                straggler_multiplier: 8.0,
                straggler_timeout_s: 300.0,
                record_dropout_rate: 0.10,
                dispatch_failure_rate: 0.10,
                dispatch_backoff_s: 1.0,
                max_attempts: 6,
                ..base
            },
            "crashes" => FaultPlan {
                crash_mean_interval_s: Some(20.0),
                ..base
            },
            "stragglers" => FaultPlan {
                straggler_rate: 0.20,
                straggler_multiplier: 6.0,
                straggler_timeout_s: 240.0,
                ..base
            },
            "flaky-dispatch" => FaultPlan {
                dispatch_failure_rate: 0.25,
                ..base
            },
            "lossy-records" => FaultPlan {
                record_dropout_rate: 0.25,
                ..base
            },
            "rack-outages" => FaultPlan {
                rack_crash_mean_interval_s: Some(90.0),
                rack_count: 4,
                replay_capacity_fraction: 0.75,
                max_replay_rounds: 2,
                ..base
            },
            _ => return None,
        };
        debug_assert!(plan.validate().is_ok());
        Some(plan)
    }

    /// The names accepted by [`FaultPlan::named`].
    pub const PRESETS: [&'static str; 8] = [
        "none",
        "light",
        "heavy",
        "crashes",
        "stragglers",
        "flaky-dispatch",
        "lossy-records",
        "rack-outages",
    ];

    /// A plan whose every fault source scales with one intensity knob in
    /// `[0, 1]` — the x-axis of the `chaos_sweep` degradation curve.
    pub fn with_intensity(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault intensity must be in [0, 1], got {rate}"
        );
        FaultPlan {
            crash_mean_interval_s: (rate > 0.0).then_some(30.0 / rate),
            straggler_rate: rate,
            straggler_multiplier: 4.0,
            straggler_timeout_s: 600.0,
            record_dropout_rate: rate,
            dispatch_failure_rate: rate,
            dispatch_backoff_s: 2.0,
            // A tighter dispatch budget than the presets: at high intensity
            // it produces enough dispatch-retries-exhausted dead letters for
            // the replay path to have something to recover.
            max_dispatch_retries: 3,
            max_attempts: 10,
            max_unplaceable_rounds: 3,
            rack_crash_mean_interval_s: (rate > 0.0).then_some(240.0 / rate),
            rack_count: if rate > 0.0 { 4 } else { 0 },
            replay_capacity_fraction: if rate > 0.0 { 0.6 } else { 0.0 },
            max_replay_rounds: if rate > 0.0 { 2 } else { 0 },
            checkpointed_fraction: 0.0,
        }
    }
}

/// Summary of one run under a [`FaultPlan`]: what was injected, what it
/// cost, and whether the books balance. Serializes deterministically, so
/// two same-seed runs must produce byte-identical JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// The plan the run executed under.
    pub plan: FaultPlan,
    /// The engine seed (faults draw from `seed ^ FAULT_STREAM`).
    pub seed: u64,
    /// Allocation algorithm label.
    pub algorithm: String,
    /// Tasks submitted to the engine.
    pub submitted: u64,
    /// Tasks that completed successfully.
    pub completed: u64,
    /// Tasks abandoned to the dead-letter channel (final count, after any
    /// replays: a replayed-then-completed task is not counted here).
    pub dead_lettered: u64,
    /// Dead-letter re-admissions performed by the replay path (a task
    /// replayed twice counts twice).
    #[serde(default)]
    pub replayed: u64,
    /// Replayed tasks that went on to complete.
    #[serde(default)]
    pub replay_successes: u64,
    /// `submitted == completed + dead_lettered` — every submitted task
    /// reached exactly one terminal state. With replay, the cumulative form
    /// `submitted = completed + (dead_lettered + replayed) − replayed`
    /// reduces to the same identity because `dead_lettered` is the *final*
    /// count; `replay_successes <= replayed` is checked alongside.
    pub conservation_ok: bool,
    /// Per-cause injected-fault tallies.
    pub faults: FaultCounts,
    /// Dead-letter tallies keyed by cause label, sorted by label.
    pub dead_letter_causes: Vec<(String, u64)>,
    /// Failed attempts of *completed* tasks (fault- and allocation-kills).
    pub retries: u64,
    /// Memory AWE over completed tasks only.
    pub awe_memory: Option<f64>,
    /// Memory AWE charging dead-lettered consumption too (degraded mode).
    pub degraded_awe_memory: Option<f64>,
    /// Simulated makespan, seconds.
    pub makespan_s: f64,
    /// Crashed attempts that banked a checkpoint (zero unless the plan's
    /// `checkpointed_fraction` is on).
    #[serde(default)]
    pub checkpointed_attempts: u64,
    /// Total nominal task-seconds salvaged by checkpoint/restart.
    #[serde(default)]
    pub salvaged_work_s: f64,
    /// Critical-path accounting, present only for structured (DAG)
    /// workloads so flat-workload reports stay byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub critical_path: Option<CriticalPathStats>,
}

impl FaultReport {
    /// Build the report from a finished run.
    pub fn from_result(result: &SimResult, config: &SimConfig, algorithm: &str) -> Self {
        let stats = &result.stats;
        let dead_lettered = stats.faults.dead_lettered;
        let mut causes: Vec<(String, u64)> = Vec::new();
        for letter in result.metrics.dead_letters() {
            let label = letter.cause.label().to_string();
            match causes.iter_mut().find(|(l, _)| *l == label) {
                Some((_, n)) => *n += 1,
                None => causes.push((label, 1)),
            }
        }
        causes.sort();
        FaultReport {
            plan: config.faults,
            seed: config.seed,
            algorithm: algorithm.to_string(),
            submitted: stats.submitted,
            completed: stats.completions,
            dead_lettered,
            replayed: stats.faults.replayed,
            replay_successes: stats.faults.replay_successes,
            conservation_ok: stats.submitted == stats.completions + dead_lettered
                && result.metrics.dead_lettered_count() as u64 == dead_lettered
                && stats.faults.replay_successes <= stats.faults.replayed,
            faults: stats.faults,
            dead_letter_causes: causes,
            retries: result.metrics.total_retries() as u64,
            awe_memory: result.metrics.awe(ResourceKind::MemoryMb),
            degraded_awe_memory: result.metrics.degraded_awe(ResourceKind::MemoryMb),
            makespan_s: result.makespan_s,
            checkpointed_attempts: stats.faults.checkpointed_attempts,
            salvaged_work_s: stats.salvaged_work_s,
            critical_path: stats.critical_path,
        }
    }

    /// Deterministic JSON rendering (field order fixed by the struct).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// Aligned-text rendering for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut head = Table::new(
            format!("fault report — {} (seed {})", self.algorithm, self.seed),
            &["metric", "value"],
        );
        head.row(&["submitted".to_string(), self.submitted.to_string()]);
        head.row(&["completed".to_string(), self.completed.to_string()]);
        head.row(&["dead-lettered".to_string(), self.dead_lettered.to_string()]);
        head.row(&["replayed".to_string(), self.replayed.to_string()]);
        head.row(&[
            "replay successes".to_string(),
            self.replay_successes.to_string(),
        ]);
        head.row(&[
            "conservation".to_string(),
            if self.conservation_ok {
                "ok (submitted = completed + dead-lettered)".to_string()
            } else {
                "VIOLATED".to_string()
            },
        ]);
        head.row(&[
            "retries (completed tasks)".to_string(),
            self.retries.to_string(),
        ]);
        let fmt_awe = |v: Option<f64>| v.map(pct).unwrap_or_else(|| "-".to_string());
        head.row(&["memory AWE".to_string(), fmt_awe(self.awe_memory)]);
        head.row(&[
            "memory AWE (degraded)".to_string(),
            fmt_awe(self.degraded_awe_memory),
        ]);
        head.row(&["makespan".to_string(), format!("{:.1} s", self.makespan_s)]);
        if self.plan.checkpointed_fraction > 0.0 {
            head.row(&[
                "checkpointed attempts".to_string(),
                self.checkpointed_attempts.to_string(),
            ]);
            head.row(&[
                "salvaged work".to_string(),
                format!("{:.1} task-s", self.salvaged_work_s),
            ]);
        }
        if let Some(cp) = &self.critical_path {
            head.row(&[
                "critical path (submit)".to_string(),
                format!(
                    "{:.1} s over {} tasks",
                    cp.longest_path_s, cp.longest_path_tasks
                ),
            ]);
            head.row(&[
                "critical path (realized)".to_string(),
                format!("{:.1} s ({:.2}x inflation)", cp.realized_s, cp.inflation),
            ]);
            head.row(&[
                "waste on / off path".to_string(),
                format!(
                    "{:.1} / {:.1} MB*s",
                    cp.on_path_waste_mb_s, cp.off_path_waste_mb_s
                ),
            ]);
        }
        out.push_str(&head.render());

        let f = &self.faults;
        let mut injected = Table::new("injected faults", &["cause", "count"]);
        for (label, count) in [
            ("worker crashes", f.worker_crashes),
            ("rack crashes", f.rack_crashes),
            ("crashed attempts", f.crashed_attempts),
            ("straggler kills", f.straggler_kills),
            ("stragglers (slow, completed)", f.stragglers_slow),
            ("record drops", f.record_drops),
            ("dispatch failures", f.dispatch_failures),
            ("rejected records", f.rejected_records),
            ("capped retries", f.capped_retries),
        ] {
            injected.row(&[label.to_string(), count.to_string()]);
        }
        out.push('\n');
        out.push_str(&injected.render());

        if !self.dead_letter_causes.is_empty() {
            let mut dead = Table::new("dead letters by cause", &["cause", "count"]);
            for (label, count) in &self.dead_letter_causes {
                dead.row(&[label.clone(), count.to_string()]);
            }
            out.push('\n');
            out.push_str(&dead.render());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_valid() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert_eq!(plan, FaultPlan::default());
        plan.validate().unwrap();
    }

    #[test]
    fn presets_are_valid_and_active() {
        for name in FaultPlan::PRESETS {
            let plan = FaultPlan::named(name).unwrap();
            plan.validate().unwrap();
            assert_eq!(plan.is_active(), name != "none", "{name}");
        }
        assert!(FaultPlan::named("nope").is_none());
    }

    #[test]
    fn validation_rejects_bad_rates() {
        let mut plan = FaultPlan::none();
        plan.straggler_rate = 1.5;
        assert!(plan.validate().is_err());
        let mut plan = FaultPlan::none();
        plan.straggler_rate = 0.1; // needs multiplier/timeout
        plan.straggler_multiplier = 0.5;
        assert!(plan.validate().is_err());
        plan.straggler_multiplier = 2.0;
        assert!(plan.validate().is_err(), "timeout still missing");
        plan.straggler_timeout_s = 60.0;
        plan.validate().unwrap();
        let mut plan = FaultPlan::none();
        plan.dispatch_failure_rate = 0.1; // needs backoff
        assert!(plan.validate().is_err());
        plan.dispatch_backoff_s = 1.0;
        plan.validate().unwrap();
        let mut plan = FaultPlan::none();
        plan.crash_mean_interval_s = Some(0.0);
        assert!(plan.validate().is_err());
    }

    #[test]
    fn validation_rejects_bad_rack_and_replay_config() {
        let mut plan = FaultPlan::none();
        plan.rack_crash_mean_interval_s = Some(60.0); // needs rack_count >= 2
        assert!(plan.validate().is_err());
        plan.rack_count = 1;
        assert!(plan.validate().is_err());
        plan.rack_count = 2;
        plan.validate().unwrap();
        plan.rack_crash_mean_interval_s = Some(f64::INFINITY);
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.max_replay_rounds = 1; // needs a capacity fraction
        assert!(plan.validate().is_err());
        plan.replay_capacity_fraction = 1.5;
        assert!(plan.validate().is_err());
        plan.replay_capacity_fraction = 0.5;
        plan.validate().unwrap();
        plan.max_replay_rounds = 0; // fraction without rounds
        assert!(plan.validate().is_err());
    }

    #[test]
    fn intensity_enables_rack_crashes_and_replay_only_when_nonzero() {
        let off = FaultPlan::with_intensity(0.0);
        assert!(off.rack_crash_mean_interval_s.is_none());
        assert_eq!(off.rack_count, 0);
        assert_eq!(off.max_replay_rounds, 0);
        let on = FaultPlan::with_intensity(0.2);
        on.validate().unwrap();
        assert!(on.rack_crash_mean_interval_s.unwrap() > on.crash_mean_interval_s.unwrap());
        assert!(on.rack_count >= 2);
        assert!(on.max_replay_rounds > 0);
        assert!(on.replay_capacity_fraction > 0.0);
    }

    #[test]
    fn intensity_scales_monotonically() {
        FaultPlan::with_intensity(0.0).validate().unwrap();
        let lo = FaultPlan::with_intensity(0.1);
        let hi = FaultPlan::with_intensity(0.4);
        lo.validate().unwrap();
        hi.validate().unwrap();
        assert!(lo.crash_mean_interval_s.unwrap() > hi.crash_mean_interval_s.unwrap());
        assert!(lo.straggler_rate < hi.straggler_rate);
        assert!(lo.record_dropout_rate < hi.record_dropout_rate);
        assert!(FaultPlan::with_intensity(0.0)
            .crash_mean_interval_s
            .is_none());
    }

    #[test]
    fn plan_serde_round_trip() {
        let plan = FaultPlan::named("heavy").unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn checkpoint_fraction_validates_and_defaults_off() {
        // Absent from serialized plans written before the knob existed.
        let legacy: FaultPlan = serde_json::from_str(
            "{
            \"crash_mean_interval_s\": null, \"straggler_rate\": 0.0,
            \"straggler_multiplier\": 1.0, \"straggler_timeout_s\": 0.0,
            \"record_dropout_rate\": 0.0, \"dispatch_failure_rate\": 0.0,
            \"dispatch_backoff_s\": 0.0, \"max_dispatch_retries\": 0,
            \"max_attempts\": 0, \"max_unplaceable_rounds\": 0
        }",
        )
        .unwrap();
        assert_eq!(legacy.checkpointed_fraction, 0.0);
        assert!(!legacy.is_active());
        let mut plan = FaultPlan::none();
        plan.checkpointed_fraction = 0.5;
        plan.validate().unwrap();
        assert!(plan.is_active());
        plan.checkpointed_fraction = 1.5;
        assert!(plan.validate().is_err());
        plan.checkpointed_fraction = f64::NAN;
        assert!(plan.validate().is_err());
    }

    #[test]
    fn checkpoint_progress_prices_and_clamps() {
        // Full speed: salvage is the elapsed wall-clock, capped by what
        // was left to do.
        assert_eq!(checkpoint_progress_s(10.0, 1.0, 30.0), 10.0);
        assert_eq!(checkpoint_progress_s(50.0, 1.0, 30.0), 30.0);
        // A straggler at quarter speed finished a quarter of the time.
        assert_eq!(checkpoint_progress_s(20.0, 0.25, 30.0), 5.0);
        // A hung attempt salvages nothing.
        assert_eq!(checkpoint_progress_s(100.0, 0.0, 30.0), 0.0);
    }
}
