//! Analytic serial replay: the fast path for metric computation.
//!
//! Because Absolute Workflow Efficiency is independent of the worker pool
//! (§II-C), the figure-level experiments do not need the full event engine:
//! replaying the task stream *serially* — predict, enforce, retry until
//! success, observe — produces the same accounting the paper measures, in
//! microseconds instead of a full pool simulation. The integration tests
//! cross-check replay against [`crate::engine`] runs.

use crate::enforcement::EnforcementModel;
use tora_alloc::allocator::{AlgorithmKind, Allocator, AllocatorConfig};
use tora_alloc::task::ResourceRecord;
use tora_metrics::{AttemptOutcome, TaskOutcome, WorkflowMetrics};
use tora_workloads::Workflow;

/// Maximum attempts per task before the replay declares the configuration
/// broken (a correct allocator doubles its way to the machine cap in well
/// under this many steps).
const MAX_ATTEMPTS: usize = 64;

/// Serially replay `workflow` under `algorithm`.
pub fn replay(
    workflow: &Workflow,
    algorithm: AlgorithmKind,
    enforcement: EnforcementModel,
    seed: u64,
) -> WorkflowMetrics {
    let config = AllocatorConfig {
        machine: workflow.worker,
        ..AllocatorConfig::default()
    };
    replay_with_config(workflow, algorithm, config, enforcement, seed)
}

/// Serial replay with an explicit allocator configuration (ablations).
pub fn replay_with_config(
    workflow: &Workflow,
    algorithm: AlgorithmKind,
    config: AllocatorConfig,
    enforcement: EnforcementModel,
    seed: u64,
) -> WorkflowMetrics {
    let mut allocator = Allocator::with_config(algorithm, config, seed);
    let mut metrics = WorkflowMetrics::new();
    for task in &workflow.tasks {
        let mut attempts = Vec::new();
        let mut alloc = allocator.predict_first(task.context()).into_alloc();
        loop {
            let verdict = enforcement.judge(task, &alloc);
            if verdict.success {
                attempts.push(AttemptOutcome::success(alloc, verdict.charged_time_s));
                break;
            }
            attempts.push(AttemptOutcome::failure(alloc, verdict.charged_time_s));
            assert!(
                attempts.len() < MAX_ATTEMPTS,
                "{}: allocation never converged (alloc {alloc}, peak {})",
                task.id,
                task.peak
            );
            alloc = allocator
                .predict_retry(task.context(), &alloc, &verdict.exhausted)
                .into_alloc();
        }
        metrics.push(TaskOutcome {
            task: task.id,
            category: task.category,
            peak: task.peak,
            duration_s: task.duration_s,
            attempts,
        });
        allocator.observe(&ResourceRecord::from_task(task));
    }
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use tora_alloc::resources::ResourceKind;
    use tora_workloads::synthetic::SyntheticKind;
    use tora_workloads::PaperWorkflow;

    #[test]
    fn replay_completes_every_task_for_every_algorithm() {
        let wf = SyntheticKind::Bimodal
            .catalog_workflow()
            .spec(5)
            .tasks(300)
            .materialize()
            .unwrap();
        for alg in AlgorithmKind::PAPER_SET {
            let m = replay(&wf, alg, EnforcementModel::LinearRamp, 1);
            assert_eq!(m.len(), wf.len(), "{alg}");
            for kind in ResourceKind::STANDARD {
                let awe = m.awe(kind).unwrap();
                assert!(awe > 0.0 && awe <= 1.0, "{alg}/{kind}: AWE {awe}");
            }
        }
    }

    #[test]
    fn oracle_style_bound_holds() {
        // No algorithm can beat AWE = 1; whole machine is the floor among
        // sensible ones on memory for these workloads.
        let wf = SyntheticKind::Normal
            .catalog_workflow()
            .spec(8)
            .tasks(400)
            .materialize()
            .unwrap();
        let wm = replay(
            &wf,
            AlgorithmKind::WholeMachine,
            EnforcementModel::LinearRamp,
            1,
        );
        let eb = replay(
            &wf,
            AlgorithmKind::ExhaustiveBucketing,
            EnforcementModel::LinearRamp,
            1,
        );
        let k = ResourceKind::MemoryMb;
        assert!(eb.awe(k).unwrap() > wm.awe(k).unwrap());
    }

    #[test]
    fn enforcement_model_changes_only_failure_charging() {
        let wf = SyntheticKind::Exponential
            .catalog_workflow()
            .spec(2)
            .tasks(300)
            .materialize()
            .unwrap();
        let ramp = replay(
            &wf,
            AlgorithmKind::QuantizedBucketing,
            EnforcementModel::LinearRamp,
            3,
        );
        let instant = replay(
            &wf,
            AlgorithmKind::QuantizedBucketing,
            EnforcementModel::InstantPeak,
            3,
        );
        // Same retries (verdicts agree), ...
        assert_eq!(ramp.total_retries(), instant.total_retries());
        // ...but instant-peak charges failures more, so waste is ≥ ramp's.
        let k = ResourceKind::MemoryMb;
        assert!(instant.waste(k).failed_allocation >= ramp.waste(k).failed_allocation);
        assert!(instant.awe(k).unwrap() <= ramp.awe(k).unwrap());
    }

    #[test]
    fn topeft_disk_is_near_perfect_for_bucketing() {
        // §V-C: constant 306 MB disk → bucketing algorithms reach ≈100%
        // disk efficiency in the steady state.
        let wf = PaperWorkflow::TopEft.build(1);
        let m = replay(
            &wf,
            AlgorithmKind::ExhaustiveBucketing,
            EnforcementModel::LinearRamp,
            1,
        );
        let awe = m.awe(ResourceKind::DiskMb).unwrap();
        assert!(awe > 0.9, "TopEFT disk AWE {awe}");
    }

    #[test]
    fn colmena_disk_is_poor_for_comparators_even_serially() {
        // §V-C: ~10 MB disk usage. The comparators explore with a whole
        // worker (64 GB disk), and Max Seen's 250 MB rounding keeps even
        // its steady state at ≈4% — single-digit efficiency already in a
        // serial replay. (The bucketing algorithms only drop to single
        // digits under *concurrent* exploration, where hundreds of in-flight
        // tasks hold the 1 GB probe — covered by the engine tests.)
        let wf = PaperWorkflow::ColmenaXtb.build(1);
        for alg in [
            AlgorithmKind::WholeMachine,
            AlgorithmKind::MaxSeen,
            AlgorithmKind::MinWaste,
            AlgorithmKind::MaxThroughput,
        ] {
            let m = replay(&wf, alg, EnforcementModel::LinearRamp, 1);
            let awe = m.awe(ResourceKind::DiskMb).unwrap();
            assert!(awe < 0.12, "{alg}: ColmenaXTB disk AWE {awe}");
        }
    }

    #[test]
    #[should_panic(expected = "allocation never converged")]
    fn bails_out_when_a_task_can_never_fit() {
        // A task bigger than the machine violates §II-B assumption 4: every
        // retry escalates to the full worker and still dies, so the replay
        // must fail loudly at MAX_ATTEMPTS instead of spinning forever.
        // `Workflow::new` would reject the task, so build the struct raw.
        use tora_alloc::resources::{ResourceVector, WorkerSpec};
        use tora_alloc::task::TaskSpec;
        let worker = WorkerSpec::paper_default();
        let over = ResourceVector::new(1.0, 2.0 * worker.capacity.memory_mb(), 10.0);
        let wf = Workflow {
            name: "impossible".into(),
            categories: vec!["main".into()],
            tasks: vec![TaskSpec::new(0, 0, over, 30.0)],
            worker,
            dependencies: Vec::new(),
        };
        let _ = replay(
            &wf,
            AlgorithmKind::ExhaustiveBucketing,
            EnforcementModel::LinearRamp,
            1,
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let wf = SyntheticKind::Uniform
            .catalog_workflow()
            .spec(6)
            .tasks(200)
            .materialize()
            .unwrap();
        let a = replay(
            &wf,
            AlgorithmKind::GreedyBucketing,
            EnforcementModel::LinearRamp,
            5,
        );
        let b = replay(
            &wf,
            AlgorithmKind::GreedyBucketing,
            EnforcementModel::LinearRamp,
            5,
        );
        assert_eq!(a.awe(ResourceKind::MemoryMb), b.awe(ResourceKind::MemoryMb));
    }
}
