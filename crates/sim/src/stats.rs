//! Pool utilization time-series.
//!
//! The administrator-side motivation of the paper (§I) is cluster
//! utilization: opportunistic workers plus tight allocations keep granted
//! resources busy. This module samples the pool at every engine event and
//! summarizes reserved-versus-granted capacity over time.

use serde::{Deserialize, Serialize};
use tora_alloc::resources::{ResourceKind, ResourceVector};

/// One utilization sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Simulated time, seconds.
    pub time_s: f64,
    /// Live workers.
    pub workers: usize,
    /// Running task attempts.
    pub running: usize,
    /// Capacity currently granted by the pool.
    pub capacity: ResourceVector,
    /// Capacity currently reserved by allocations.
    pub reserved: ResourceVector,
}

impl UtilizationSample {
    /// Reserved share of granted capacity for one dimension (`None` when no
    /// capacity is granted).
    pub fn utilization(&self, kind: ResourceKind) -> Option<f64> {
        let cap = self.capacity[kind];
        if cap <= 0.0 {
            return None;
        }
        Some(self.reserved[kind] / cap)
    }
}

/// A time-ordered utilization series.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSeries {
    samples: Vec<UtilizationSample>,
}

impl UtilizationSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample (samples must arrive in time order).
    pub fn push(&mut self, sample: UtilizationSample) {
        debug_assert!(
            self.samples.last().is_none_or(|s| s.time_s <= sample.time_s),
            "series must be time-ordered"
        );
        self.samples.push(sample);
    }

    /// All samples.
    pub fn samples(&self) -> &[UtilizationSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Time-weighted mean utilization of one dimension over the series
    /// (each sample holds until the next one). `None` for an empty or
    /// zero-capacity series.
    pub fn mean_utilization(&self, kind: ResourceKind) -> Option<f64> {
        if self.samples.len() < 2 {
            return self.samples.first().and_then(|s| s.utilization(kind));
        }
        let mut weighted = 0.0;
        let mut total = 0.0;
        for w in self.samples.windows(2) {
            let dt = w[1].time_s - w[0].time_s;
            if dt <= 0.0 {
                continue;
            }
            if let Some(u) = w[0].utilization(kind) {
                weighted += u * dt;
                total += dt;
            }
        }
        if total > 0.0 {
            Some(weighted / total)
        } else {
            None
        }
    }

    /// Peak concurrent running attempts.
    pub fn peak_running(&self) -> usize {
        self.samples.iter().map(|s| s.running).max().unwrap_or(0)
    }

    /// Peak live workers.
    pub fn peak_workers(&self) -> usize {
        self.samples.iter().map(|s| s.workers).max().unwrap_or(0)
    }

    /// Downsample to at most `n` evenly spaced points (for plotting).
    pub fn downsample(&self, n: usize) -> UtilizationSeries {
        if n == 0 || self.samples.len() <= n {
            return self.clone();
        }
        let step = self.samples.len() as f64 / n as f64;
        let samples = (0..n)
            .map(|i| self.samples[(i as f64 * step) as usize])
            .collect();
        UtilizationSeries { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, reserved_cores: f64) -> UtilizationSample {
        UtilizationSample {
            time_s: t,
            workers: 2,
            running: reserved_cores as usize,
            capacity: ResourceVector::new(32.0, 131072.0, 131072.0),
            reserved: ResourceVector::new(reserved_cores, 0.0, 0.0),
        }
    }

    #[test]
    fn utilization_per_sample() {
        let s = sample(0.0, 16.0);
        assert_eq!(s.utilization(ResourceKind::Cores), Some(0.5));
        assert_eq!(s.utilization(ResourceKind::MemoryMb), Some(0.0));
        assert_eq!(s.utilization(ResourceKind::Gpus), None); // zero capacity
    }

    #[test]
    fn time_weighted_mean() {
        let mut series = UtilizationSeries::new();
        // 0.25 utilization for 10 s, then 0.75 for 30 s → mean 0.625.
        series.push(sample(0.0, 8.0));
        series.push(sample(10.0, 24.0));
        series.push(sample(40.0, 0.0));
        let mean = series.mean_utilization(ResourceKind::Cores).unwrap();
        assert!((mean - 0.625).abs() < 1e-12, "{mean}");
    }

    #[test]
    fn single_sample_mean_is_its_value() {
        let mut series = UtilizationSeries::new();
        series.push(sample(3.0, 16.0));
        assert_eq!(series.mean_utilization(ResourceKind::Cores), Some(0.5));
        assert!(UtilizationSeries::new()
            .mean_utilization(ResourceKind::Cores)
            .is_none());
    }

    #[test]
    fn peaks_and_downsampling() {
        let mut series = UtilizationSeries::new();
        for i in 0..100 {
            series.push(sample(i as f64, (i % 32) as f64));
        }
        assert_eq!(series.peak_running(), 31);
        assert_eq!(series.peak_workers(), 2);
        let down = series.downsample(10);
        assert_eq!(down.len(), 10);
        assert_eq!(down.samples()[0].time_s, 0.0);
        // Downsampling a short series is identity.
        assert_eq!(series.downsample(1000).len(), 100);
        assert_eq!(series.downsample(0).len(), 100);
    }
}
