//! Pool utilization time-series and engine-side allocation bookkeeping.
//!
//! The administrator-side motivation of the paper (§I) is cluster
//! utilization: opportunistic workers plus tight allocations keep granted
//! resources busy. This module samples the pool at every engine event and
//! summarizes reserved-versus-granted capacity over time.
//!
//! It also defines [`SimStats`]: the engine's own tally of how often it
//! called into the allocator. Because the allocator's tracing layer counts
//! the same interactions from the other side ([`TraceStats`]), the two can
//! be reconciled exactly — [`SimStats::reconcile`] is the correctness check
//! behind the `tora trace` subcommand.

use serde::{Deserialize, Serialize};
use tora_alloc::resources::{ResourceKind, ResourceVector};
use tora_alloc::task::CategoryId;
use tora_alloc::trace::TraceStats;
use tora_metrics::CriticalPathStats;

/// Allocator-call counters, engine-side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocCallCounts {
    /// `predict_first` calls (exploratory and steady-state alike).
    pub predictions_first: u64,
    /// `predict_retry` calls (exactly one per resource-exhaustion kill).
    pub predictions_retry: u64,
    /// `observe` calls (exactly one per completed task).
    pub observations: u64,
    /// Exhausted *managed* axes summed over all kills — the number of
    /// per-axis escalations the retries asked for.
    pub escalations: u64,
    /// `observe_outcome` calls (one per attempt outcome reported through
    /// the fault-feedback channel; zero without an active fault plan).
    #[serde(default)]
    pub feedback: u64,
}

/// Per-cause tallies of injected faults and their consequences. All zero
/// for a run without a fault plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounts {
    /// Worker crash events (abrupt departures).
    pub worker_crashes: u64,
    /// Running attempts lost to crashes.
    pub crashed_attempts: u64,
    /// Attempts killed at the straggler timeout.
    pub straggler_kills: u64,
    /// Attempts that straggled but still completed within the timeout.
    pub stragglers_slow: u64,
    /// Completions whose resource record never reached the allocator.
    pub record_drops: u64,
    /// Transient dispatch failures (attempt re-queued with backoff).
    pub dispatch_failures: u64,
    /// Records the allocator rejected at the observe validation boundary.
    pub rejected_records: u64,
    /// Tasks abandoned to the dead-letter path.
    pub dead_lettered: u64,
    /// Allocation kills that dead-lettered the task instead of predicting a
    /// retry (attempt budget exhausted). Balances the `failures = retry
    /// predictions` identity under a fault plan.
    pub capped_retries: u64,
    /// Correlated crash events (each takes out one whole rack).
    #[serde(default)]
    pub rack_crashes: u64,
    /// Dead-letter re-admissions performed by the replay path.
    #[serde(default)]
    pub replayed: u64,
    /// Replayed tasks that went on to complete.
    #[serde(default)]
    pub replay_successes: u64,
    /// Crashed attempts that banked a checkpoint (zero unless the plan's
    /// `checkpointed_fraction` is on).
    #[serde(default)]
    pub checkpointed_attempts: u64,
}

impl FaultCounts {
    /// Whether any fault was recorded.
    pub fn any(&self) -> bool {
        *self != FaultCounts::default()
    }
}

/// The engine's record of a run, counted at the call sites.
///
/// `failures` counts resource-exhaustion kills only; preempted attempts are
/// under `preemptions` (a departing worker is an infrastructure artifact,
/// not an allocation failure), and fault-induced attempt losses (crashes,
/// straggler timeouts) are under [`FaultCounts`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Tasks submitted to the engine (the conservation check's left side).
    #[serde(default)]
    pub submitted: u64,
    /// Task attempts placed on workers.
    pub dispatches: u64,
    /// Attempts that ran to success.
    pub completions: u64,
    /// Attempts killed for exceeding their allocation.
    pub failures: u64,
    /// Attempts lost to departing workers.
    pub preemptions: u64,
    /// Injected-fault tallies, per cause.
    #[serde(default)]
    pub faults: FaultCounts,
    /// Total nominal task-seconds salvaged by checkpoint/restart across
    /// every crashed attempt (zero with checkpointing off).
    #[serde(default)]
    pub salvaged_work_s: f64,
    /// Allocator calls, across all categories.
    pub calls: AllocCallCounts,
    /// Allocator calls per task category, keyed by raw category id.
    pub by_category: Vec<(u32, AllocCallCounts)>,
    /// Critical-path accounting, present only for structured (DAG)
    /// workloads so flat-run stats stay byte-identical on the wire.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub critical_path: Option<CriticalPathStats>,
}

impl SimStats {
    /// A fresh, all-zero tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// The call counters for one category, if the engine ever touched it.
    pub fn category(&self, category: CategoryId) -> Option<&AllocCallCounts> {
        self.by_category
            .iter()
            .find(|(id, _)| *id == category.0)
            .map(|(_, c)| c)
    }

    fn category_mut(&mut self, category: u32) -> &mut AllocCallCounts {
        let idx = match self.by_category.iter().position(|(id, _)| *id == category) {
            Some(i) => i,
            None => {
                self.by_category
                    .push((category, AllocCallCounts::default()));
                self.by_category.len() - 1
            }
        };
        &mut self.by_category[idx].1
    }

    /// Record one `predict_first` call.
    pub fn record_predict_first(&mut self, category: u32) {
        self.calls.predictions_first += 1;
        self.category_mut(category).predictions_first += 1;
    }

    /// Record one `predict_retry` call escalating `escalations` managed axes.
    pub fn record_predict_retry(&mut self, category: u32, escalations: u64) {
        self.calls.predictions_retry += 1;
        self.calls.escalations += escalations;
        let c = self.category_mut(category);
        c.predictions_retry += 1;
        c.escalations += escalations;
    }

    /// Record one `observe` call.
    pub fn record_observation(&mut self, category: u32) {
        self.calls.observations += 1;
        self.category_mut(category).observations += 1;
    }

    /// Record one `observe_outcome` call (fault-feedback channel).
    pub fn record_feedback(&mut self, category: u32) {
        self.calls.feedback += 1;
        self.category_mut(category).feedback += 1;
    }

    /// Cross-check this engine-side tally against the allocator's own
    /// [`TraceStats`]. Every mismatch produces one human-readable line;
    /// `Ok(())` means the two bookkeepers agree exactly, overall and per
    /// category.
    pub fn reconcile(&self, trace: &TraceStats) -> Result<(), Vec<String>> {
        let mut mismatches = Vec::new();
        let mut check = |label: String, engine: u64, traced: u64| {
            if engine != traced {
                mismatches.push(format!("{label}: engine counted {engine}, trace {traced}"));
            }
        };
        check(
            "predictions_first".into(),
            self.calls.predictions_first,
            trace.overall.predictions_first(),
        );
        check(
            "predictions_retry".into(),
            self.calls.predictions_retry,
            trace.overall.retry,
        );
        check(
            "observations".into(),
            self.calls.observations,
            trace.overall.observe,
        );
        check(
            "escalations".into(),
            self.calls.escalations,
            trace.overall.escalate,
        );
        check(
            "feedback".into(),
            self.calls.feedback,
            trace.overall.feedback,
        );
        // Structural identities of the engine loop: one retry prediction per
        // kill — except kills that dead-lettered the task instead of
        // retrying — and one observation per completion whose record was
        // neither dropped in flight nor rejected at the observe boundary.
        check(
            "failures=retry events".into(),
            self.failures,
            trace.overall.retry + self.faults.capped_retries,
        );
        check(
            "completions=observe events".into(),
            self.completions,
            trace.overall.observe + self.faults.record_drops + self.faults.rejected_records,
        );
        // Per-category, over the union of both key sets.
        let mut categories: Vec<u32> = self
            .by_category
            .iter()
            .map(|(id, _)| *id)
            .chain(trace.by_category.iter().map(|(id, _)| *id))
            .collect();
        categories.sort_unstable();
        categories.dedup();
        for id in categories {
            let engine = self.category(CategoryId(id)).copied().unwrap_or_default();
            let traced = trace.category(CategoryId(id)).copied().unwrap_or_default();
            check(
                format!("category {id} predictions_first"),
                engine.predictions_first,
                traced.predictions_first(),
            );
            check(
                format!("category {id} predictions_retry"),
                engine.predictions_retry,
                traced.retry,
            );
            check(
                format!("category {id} observations"),
                engine.observations,
                traced.observe,
            );
            check(
                format!("category {id} escalations"),
                engine.escalations,
                traced.escalate,
            );
            check(
                format!("category {id} feedback"),
                engine.feedback,
                traced.feedback,
            );
        }
        if mismatches.is_empty() {
            Ok(())
        } else {
            Err(mismatches)
        }
    }
}

/// One utilization sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Simulated time, seconds.
    pub time_s: f64,
    /// Live workers.
    pub workers: usize,
    /// Running task attempts.
    pub running: usize,
    /// Capacity currently granted by the pool.
    pub capacity: ResourceVector,
    /// Capacity currently reserved by allocations.
    pub reserved: ResourceVector,
}

impl UtilizationSample {
    /// Reserved share of granted capacity for one dimension (`None` when no
    /// capacity is granted).
    pub fn utilization(&self, kind: ResourceKind) -> Option<f64> {
        let cap = self.capacity[kind];
        if cap <= 0.0 {
            return None;
        }
        Some(self.reserved[kind] / cap)
    }
}

/// A time-ordered utilization series.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSeries {
    samples: Vec<UtilizationSample>,
}

impl UtilizationSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample (samples must arrive in time order).
    pub fn push(&mut self, sample: UtilizationSample) {
        debug_assert!(
            self.samples
                .last()
                .is_none_or(|s| s.time_s <= sample.time_s),
            "series must be time-ordered"
        );
        self.samples.push(sample);
    }

    /// All samples.
    pub fn samples(&self) -> &[UtilizationSample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Time-weighted mean utilization of one dimension over the series
    /// (each sample holds until the next one). `None` for an empty or
    /// zero-capacity series.
    pub fn mean_utilization(&self, kind: ResourceKind) -> Option<f64> {
        if self.samples.len() < 2 {
            return self.samples.first().and_then(|s| s.utilization(kind));
        }
        let mut weighted = 0.0;
        let mut total = 0.0;
        for w in self.samples.windows(2) {
            let dt = w[1].time_s - w[0].time_s;
            if dt <= 0.0 {
                continue;
            }
            if let Some(u) = w[0].utilization(kind) {
                weighted += u * dt;
                total += dt;
            }
        }
        if total > 0.0 {
            Some(weighted / total)
        } else {
            None
        }
    }

    /// Peak concurrent running attempts.
    pub fn peak_running(&self) -> usize {
        self.samples.iter().map(|s| s.running).max().unwrap_or(0)
    }

    /// Peak live workers.
    pub fn peak_workers(&self) -> usize {
        self.samples.iter().map(|s| s.workers).max().unwrap_or(0)
    }

    /// Downsample to at most `n` evenly spaced points (for plotting).
    pub fn downsample(&self, n: usize) -> UtilizationSeries {
        if n == 0 || self.samples.len() <= n {
            return self.clone();
        }
        let step = self.samples.len() as f64 / n as f64;
        let samples = (0..n)
            .map(|i| self.samples[(i as f64 * step) as usize])
            .collect();
        UtilizationSeries { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, reserved_cores: f64) -> UtilizationSample {
        UtilizationSample {
            time_s: t,
            workers: 2,
            running: reserved_cores as usize,
            capacity: ResourceVector::new(32.0, 131072.0, 131072.0),
            reserved: ResourceVector::new(reserved_cores, 0.0, 0.0),
        }
    }

    #[test]
    fn utilization_per_sample() {
        let s = sample(0.0, 16.0);
        assert_eq!(s.utilization(ResourceKind::Cores), Some(0.5));
        assert_eq!(s.utilization(ResourceKind::MemoryMb), Some(0.0));
        assert_eq!(s.utilization(ResourceKind::Gpus), None); // zero capacity
    }

    #[test]
    fn time_weighted_mean() {
        let mut series = UtilizationSeries::new();
        // 0.25 utilization for 10 s, then 0.75 for 30 s → mean 0.625.
        series.push(sample(0.0, 8.0));
        series.push(sample(10.0, 24.0));
        series.push(sample(40.0, 0.0));
        let mean = series.mean_utilization(ResourceKind::Cores).unwrap();
        assert!((mean - 0.625).abs() < 1e-12, "{mean}");
    }

    #[test]
    fn single_sample_mean_is_its_value() {
        let mut series = UtilizationSeries::new();
        series.push(sample(3.0, 16.0));
        assert_eq!(series.mean_utilization(ResourceKind::Cores), Some(0.5));
        assert!(UtilizationSeries::new()
            .mean_utilization(ResourceKind::Cores)
            .is_none());
    }

    #[test]
    fn peaks_and_downsampling() {
        let mut series = UtilizationSeries::new();
        for i in 0..100 {
            series.push(sample(i as f64, (i % 32) as f64));
        }
        assert_eq!(series.peak_running(), 31);
        assert_eq!(series.peak_workers(), 2);
        let down = series.downsample(10);
        assert_eq!(down.len(), 10);
        assert_eq!(down.samples()[0].time_s, 0.0);
        // Downsampling a short series is identity.
        assert_eq!(series.downsample(1000).len(), 100);
        assert_eq!(series.downsample(0).len(), 100);
    }
}

#[cfg(test)]
mod sim_stats_tests {
    use super::*;
    use tora_alloc::trace::{AllocEvent, EventSink, PredictKind, TraceStats};

    fn matching_pair() -> (SimStats, TraceStats) {
        let mut stats = SimStats::new();
        let mut trace = TraceStats::new();
        let alloc = ResourceVector::new(1.0, 100.0, 10.0);
        // Category 0: explore, first, one retry escalating two axes, one
        // completion.
        stats.record_predict_first(0);
        trace.emit(AllocEvent::predict(
            CategoryId(0),
            PredictKind::Explore,
            alloc,
            Vec::new(),
        ));
        stats.record_predict_first(0);
        trace.emit(AllocEvent::predict(
            CategoryId(0),
            PredictKind::First,
            alloc,
            Vec::new(),
        ));
        stats.failures += 1;
        stats.record_predict_retry(0, 2);
        trace.emit(AllocEvent::escalate(
            CategoryId(0),
            ResourceKind::Cores,
            1.0,
            2.0,
        ));
        trace.emit(AllocEvent::escalate(
            CategoryId(0),
            ResourceKind::MemoryMb,
            100.0,
            200.0,
        ));
        trace.emit(AllocEvent::predict(
            CategoryId(0),
            PredictKind::Retry,
            alloc,
            Vec::new(),
        ));
        stats.completions += 1;
        stats.record_observation(0);
        trace.emit(AllocEvent::observe(CategoryId(0), alloc, 1.0));
        // One fault-feedback report on the completion.
        stats.record_feedback(0);
        trace.emit(AllocEvent::feedback(
            CategoryId(0),
            tora_alloc::feedback::AttemptFeedback::Success,
            0.0,
            1.0,
        ));
        // Category 3: a lone exploratory prediction.
        stats.record_predict_first(3);
        trace.emit(AllocEvent::predict(
            CategoryId(3),
            PredictKind::Explore,
            alloc,
            Vec::new(),
        ));
        (stats, trace)
    }

    #[test]
    fn reconcile_accepts_matching_tallies() {
        let (stats, trace) = matching_pair();
        stats.reconcile(&trace).unwrap();
        assert_eq!(stats.calls.predictions_first, 3);
        assert_eq!(stats.category(CategoryId(3)).unwrap().predictions_first, 1);
        assert!(stats.category(CategoryId(9)).is_none());
    }

    #[test]
    fn reconcile_reports_every_mismatch() {
        let (mut stats, trace) = matching_pair();
        stats.record_predict_first(0); // engine claims an extra prediction
        stats.calls.escalations += 1; // and an extra escalation
        let errs = stats.reconcile(&trace).unwrap_err();
        assert!(errs.len() >= 3, "{errs:?}"); // overall x2 + category 0
        assert!(errs.iter().any(|e| e.contains("predictions_first")));
        assert!(errs.iter().any(|e| e.contains("escalations")));
    }

    #[test]
    fn reconcile_catches_category_only_skew() {
        // Overall totals agree but the per-category split does not.
        let (mut stats, trace) = matching_pair();
        // Move a first-prediction from category 0 to category 3.
        stats.category_mut(0).predictions_first -= 1;
        stats.category_mut(3).predictions_first += 1;
        let errs = stats.reconcile(&trace).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("category 0")));
        assert!(errs.iter().any(|e| e.contains("category 3")));
    }

    #[test]
    fn sim_stats_serde_round_trip() {
        let (stats, _) = matching_pair();
        let json = serde_json::to_string(&stats).unwrap();
        let back: SimStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }
}
