//! Ready-queue scheduling policies.
//!
//! The paper's contribution acts at *allocation* time and is deliberately
//! orthogonal to task ordering (§II-D1 lists "arbitrary ordering of task
//! execution" as a stochasticity source the allocator must tolerate). The
//! engine therefore supports several queue policies, both to exercise that
//! robustness in tests and to let ablations measure how much ordering
//! interacts with allocation quality.

use serde::{Deserialize, Serialize};
use tora_alloc::resources::ResourceVector;

/// How the scheduler picks the next ready task to dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueuePolicy {
    /// Strict submission order with head-of-line blocking: if the oldest
    /// ready task does not fit, nothing dispatches (Work Queue's default
    /// behaviour, and the paper's setting).
    #[default]
    Fifo,
    /// Submission order, but a blocked head does not stop later tasks that
    /// fit (backfilling).
    FifoBackfill,
    /// Dispatch the task with the smallest predicted memory allocation
    /// first (packs more tasks, risks starving big tasks).
    SmallestFirst,
    /// Dispatch the task with the largest predicted memory allocation first
    /// (drains big tasks early).
    LargestFirst,
}

impl QueuePolicy {
    /// All policies, for sweep harnesses.
    pub const ALL: [QueuePolicy; 4] = [
        QueuePolicy::Fifo,
        QueuePolicy::FifoBackfill,
        QueuePolicy::SmallestFirst,
        QueuePolicy::LargestFirst,
    ];

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            QueuePolicy::Fifo => "fifo",
            QueuePolicy::FifoBackfill => "fifo-backfill",
            QueuePolicy::SmallestFirst => "smallest-first",
            QueuePolicy::LargestFirst => "largest-first",
        }
    }

    /// Choose the queue position to dispatch next, given each queued task's
    /// predicted allocation and a placement test. Returns `None` when
    /// nothing dispatchable exists under this policy.
    ///
    /// `queue` yields `(position, allocation)` in queue order; `fits` tests
    /// whether an allocation can be placed right now.
    pub fn select<F>(&self, queue: &[(usize, ResourceVector)], mut fits: F) -> Option<usize>
    where
        F: FnMut(&ResourceVector) -> bool,
    {
        match self {
            QueuePolicy::Fifo => {
                let (pos, alloc) = queue.first()?;
                fits(alloc).then_some(*pos)
            }
            QueuePolicy::FifoBackfill => queue
                .iter()
                .find(|(_, alloc)| fits(alloc))
                .map(|(pos, _)| *pos),
            QueuePolicy::SmallestFirst => queue
                .iter()
                .filter(|(_, alloc)| fits(alloc))
                .min_by(|a, b| {
                    a.1.memory_mb()
                        .partial_cmp(&b.1.memory_mb())
                        .expect("finite allocations")
                })
                .map(|(pos, _)| *pos),
            QueuePolicy::LargestFirst => queue
                .iter()
                .filter(|(_, alloc)| fits(alloc))
                .max_by(|a, b| {
                    a.1.memory_mb()
                        .partial_cmp(&b.1.memory_mb())
                        .expect("finite allocations")
                })
                .map(|(pos, _)| *pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue() -> Vec<(usize, ResourceVector)> {
        vec![
            (0, ResourceVector::new(1.0, 4000.0, 10.0)),
            (1, ResourceVector::new(1.0, 500.0, 10.0)),
            (2, ResourceVector::new(1.0, 9000.0, 10.0)),
        ]
    }

    #[test]
    fn fifo_blocks_on_head() {
        let q = queue();
        // Head (4000 MB) fits: dispatch it.
        assert_eq!(QueuePolicy::Fifo.select(&q, |_| true), Some(0));
        // Head does not fit: nothing dispatches even though task 1 would.
        let fits_small = |a: &ResourceVector| a.memory_mb() < 1000.0;
        assert_eq!(QueuePolicy::Fifo.select(&q, fits_small), None);
    }

    #[test]
    fn backfill_skips_blocked_head() {
        let q = queue();
        let fits_small = |a: &ResourceVector| a.memory_mb() < 1000.0;
        assert_eq!(QueuePolicy::FifoBackfill.select(&q, fits_small), Some(1));
        // Order preserved when head fits.
        assert_eq!(QueuePolicy::FifoBackfill.select(&q, |_| true), Some(0));
    }

    #[test]
    fn smallest_and_largest_first() {
        let q = queue();
        assert_eq!(QueuePolicy::SmallestFirst.select(&q, |_| true), Some(1));
        assert_eq!(QueuePolicy::LargestFirst.select(&q, |_| true), Some(2));
        // Size policies respect the fit test.
        let fits_mid = |a: &ResourceVector| a.memory_mb() < 5000.0;
        assert_eq!(QueuePolicy::LargestFirst.select(&q, fits_mid), Some(0));
    }

    #[test]
    fn empty_queue_selects_nothing() {
        for p in QueuePolicy::ALL {
            assert_eq!(p.select(&[], |_| true), None, "{}", p.label());
        }
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            QueuePolicy::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), QueuePolicy::ALL.len());
    }
}
