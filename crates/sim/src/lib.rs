//! # tora-sim — a dynamic-workflow execution simulator
//!
//! Reproduces the execution substrate of Phung & Thain (IPDPS 2024): the
//! Work-Queue-style manager/scheduler/worker loop of Figure 1, running on
//! *opportunistic* workers that join and leave mid-run, with the §II-B
//! enforcement semantics (tasks killed on over-consumption, retried with
//! bigger allocations).
//!
//! Two execution paths are provided:
//!
//! * [`engine`] — the full discrete-event simulation with a worker pool,
//!   first-fit placement, churn and preemption;
//! * [`mod@replay`] — a serial analytic replay producing the same §II-C
//!   accounting in a fraction of the time (AWE is worker-count independent,
//!   which the integration tests verify against the engine).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod enforcement;
pub mod engine;
pub mod faults;
pub mod log;
pub mod replay;
pub mod sampling;
pub mod scheduler;
pub mod stats;
pub mod time;
pub mod workers;

pub use enforcement::{AttemptVerdict, EnforcementModel};
pub use engine::{
    simulate, ArrivalModel, Driver, IllegalTransition, SimConfig, SimResult, Simulation, SubmitApi,
    TaskPhase, WorkerMix,
};
pub use faults::{FaultPlan, FaultReport};
pub use log::{EventLog, LogEntry, SimEvent};
pub use replay::{replay, replay_with_config};
pub use scheduler::QueuePolicy;
pub use stats::{AllocCallCounts, FaultCounts, SimStats, UtilizationSample, UtilizationSeries};
pub use time::SimTime;
pub use workers::{ChurnConfig, Worker, WorkerId, WorkerPool};
