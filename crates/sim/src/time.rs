//! Simulation time: a totally ordered wrapper over `f64` seconds.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Sub};

/// A point in simulated time, in seconds since the run started.
///
/// Wraps `f64` with `Ord` via `total_cmp` so it can key the event queue.
/// Construction rejects NaN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Wrap a number of seconds.
    ///
    /// # Panics
    /// On NaN or negative values.
    pub fn new(seconds: f64) -> Self {
        assert!(seconds.is_finite() && seconds >= 0.0, "bad time {seconds}");
        SimTime(seconds)
    }

    /// Seconds since the run started.
    pub fn seconds(self) -> f64 {
        self.0
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::new(self.0 + rhs)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.5);
        assert!(a < b);
        assert_eq!(b - a, 1.5);
        assert_eq!((a + 1.5).seconds(), 2.5);
        assert_eq!(SimTime::ZERO.seconds(), 0.0);
    }

    #[test]
    #[should_panic(expected = "bad time")]
    fn nan_rejected() {
        SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "bad time")]
    fn negative_rejected() {
        SimTime::new(-1.0);
    }
}
