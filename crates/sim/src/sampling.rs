//! Shared interval sampling for the engine's Poisson processes.
//!
//! Worker churn, independent worker crashes, correlated rack crashes and
//! Poisson task arrivals are all renewal processes with exponential
//! inter-arrival times. They draw from *different* seeded streams (so an
//! all-zero fault plan consumes nothing from the churn or arrival streams),
//! but the transformation from a uniform draw to an interval is one and the
//! same — and it must stay bit-identical across call sites, because golden
//! tests pin the resulting event timelines byte for byte.

use rand::Rng;

/// One exponential inter-arrival interval with the given mean, in seconds.
///
/// Inverse-CDF sampling on `1 - U` (never zero, so the log is finite):
/// `-mean * ln(1 - U)`. The caller applies its own floor — event processes
/// clamp to a small positive step to guarantee forward progress, while the
/// arrival pre-roll tolerates zero-length gaps.
pub fn exponential_interval_s<R: Rng>(rng: &mut R, mean_s: f64) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean_s * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampler_is_deterministic_given_seed() {
        let draw = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..64)
                .map(|_| exponential_interval_s(&mut rng, 12.5))
                .collect::<Vec<f64>>()
        };
        assert_eq!(draw(7), draw(7), "same seed must replay the same stream");
        assert_ne!(draw(7), draw(8), "different seeds must diverge");
    }

    #[test]
    fn sampler_matches_the_engine_idiom_bit_for_bit() {
        // The engine historically inlined `-mean * (1 - U).ln()` at three
        // call sites; the shared helper must reproduce that transformation
        // exactly so refactored schedules stay byte-identical.
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..128 {
            let u: f64 = 1.0 - a.gen::<f64>();
            let want = -20.0 * u.ln();
            let got = exponential_interval_s(&mut b, 20.0);
            assert!(got.to_bits() == want.to_bits(), "{got} vs {want}");
        }
    }

    #[test]
    fn intervals_are_positive_finite_and_scale_with_the_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum_short = 0.0;
        let mut sum_long = 0.0;
        for _ in 0..2000 {
            let dt = exponential_interval_s(&mut rng, 5.0);
            assert!(dt.is_finite() && dt >= 0.0, "{dt}");
            sum_short += dt;
            sum_long += exponential_interval_s(&mut rng, 50.0);
        }
        // Sample means land near the configured means (loose tolerance).
        let mean_short = sum_short / 2000.0;
        let mean_long = sum_long / 2000.0;
        assert!((4.0..6.0).contains(&mean_short), "{mean_short}");
        assert!((45.0..55.0).contains(&mean_long), "{mean_long}");
    }
}
