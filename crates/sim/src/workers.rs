//! The opportunistic worker pool.
//!
//! Workers join and leave over a run — the defining property of
//! opportunistic deployment (HTCondor backfill slots, spot instances). The
//! pool tracks per-worker available capacity, places allocations first-fit,
//! and supports preemption: a departing worker kills its running tasks,
//! which the engine resubmits.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tora_alloc::resources::{ResourceKind, ResourceVector, WorkerSpec};

/// Zero out temporal axes: what a task actually occupies on a worker.
fn spatial(alloc: &ResourceVector) -> ResourceVector {
    let mut out = *alloc;
    for kind in ResourceKind::ALL {
        if !kind.is_spatial() {
            out[kind] = 0.0;
        }
    }
    out
}

/// Identifies a worker within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u64);

/// One live worker.
#[derive(Debug, Clone)]
pub struct Worker {
    /// Shape of the worker.
    pub spec: WorkerSpec,
    /// Currently unreserved capacity.
    pub available: ResourceVector,
    /// Number of allocations currently placed here.
    pub running: usize,
}

impl Worker {
    fn new(spec: WorkerSpec) -> Self {
        Worker {
            spec,
            available: spec.capacity,
            running: 0,
        }
    }

    /// Whether `alloc` fits in the remaining capacity. Only spatial axes
    /// occupy a worker; a time allocation is an enforcement limit, not a
    /// reservation.
    pub fn fits(&self, alloc: &ResourceVector) -> bool {
        self.available.dominates(&spatial(alloc))
    }

    fn reserve(&mut self, alloc: &ResourceVector) {
        debug_assert!(self.fits(alloc));
        self.available = self.available.sub(&spatial(alloc));
        self.running += 1;
    }

    fn release(&mut self, alloc: &ResourceVector) {
        self.available = self.available.add(&spatial(alloc));
        self.running -= 1;
        // Guard against reservation-accounting bugs, with a small tolerance
        // for the float round-trip of subtract-then-add.
        debug_assert!(
            self.spec
                .capacity
                .scale(1.0 + 1e-9)
                .add(&ResourceVector::new(1e-6, 1e-6, 1e-6))
                .dominates(&self.available),
            "released past capacity: {} vs {}",
            self.available,
            self.spec.capacity
        );
        // Snap so float drift never accumulates: an idle worker is exactly
        // full again (drift below capacity would otherwise stop
        // whole-machine allocations from ever fitting).
        if self.running == 0 {
            self.available = self.spec.capacity;
        } else {
            self.available = self.available.min(&self.spec.capacity);
        }
    }
}

/// The worker pool.
///
/// Workers live in a `BTreeMap` so first-fit placement and random victim
/// selection iterate ids in order directly, instead of collecting and
/// sorting every id on every call (formerly O(n log n) per placement).
#[derive(Debug, Default)]
pub struct WorkerPool {
    workers: BTreeMap<WorkerId, Worker>,
    next_id: u64,
}

impl WorkerPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a worker; returns its id.
    pub fn join(&mut self, spec: WorkerSpec) -> WorkerId {
        let id = WorkerId(self.next_id);
        self.next_id += 1;
        self.workers.insert(id, Worker::new(spec));
        id
    }

    /// Remove a worker. Returns `None` if it was already gone. The engine is
    /// responsible for preempting whatever ran there.
    pub fn leave(&mut self, id: WorkerId) -> Option<Worker> {
        self.workers.remove(&id)
    }

    /// Number of live workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether no workers are alive.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Look up a worker.
    pub fn get(&self, id: WorkerId) -> Option<&Worker> {
        self.workers.get(&id)
    }

    /// Iterate live workers in ascending id order (the same order every
    /// other pool operation uses, so callers stay deterministic).
    pub fn workers(&self) -> impl Iterator<Item = (WorkerId, &Worker)> {
        self.workers.iter().map(|(&id, w)| (id, w))
    }

    /// First-fit placement: reserve `alloc` on the lowest-id worker with
    /// room. Deterministic given the pool state.
    pub fn place(&mut self, alloc: &ResourceVector) -> Option<WorkerId> {
        for (&id, w) in self.workers.iter_mut() {
            if w.fits(alloc) {
                w.reserve(alloc);
                return Some(id);
            }
        }
        None
    }

    /// First-fit placement that deprioritizes the `avoid` racks: the
    /// lowest-id fitting worker *outside* them wins; only when no other
    /// worker has room does an avoided rack take the task (capacity is
    /// never forfeited to suspicion). With an empty avoid list this is
    /// byte-identical to [`place`](Self::place) — the fault-free path pays
    /// nothing.
    pub fn place_avoiding(&mut self, alloc: &ResourceVector, avoid: &[u32]) -> Option<WorkerId> {
        if avoid.is_empty() {
            return self.place(alloc);
        }
        let mut fallback = None;
        let mut chosen = None;
        for (&id, w) in self.workers.iter() {
            if !w.fits(alloc) {
                continue;
            }
            if avoid.contains(&w.spec.rack) {
                if fallback.is_none() {
                    fallback = Some(id);
                }
            } else {
                chosen = Some(id);
                break;
            }
        }
        let id = chosen.or(fallback)?;
        self.workers
            .get_mut(&id)
            .expect("chosen worker exists")
            .reserve(alloc);
        Some(id)
    }

    /// Release a previously placed allocation.
    ///
    /// # Panics
    /// If the worker does not exist (releases must precede departure).
    pub fn release(&mut self, id: WorkerId, alloc: &ResourceVector) {
        self.workers
            .get_mut(&id)
            .expect("release on departed worker")
            .release(alloc);
    }

    /// Pick a uniformly random live worker (for departure events).
    pub fn random_worker(&self, rng: &mut StdRng) -> Option<WorkerId> {
        if self.workers.is_empty() {
            return None;
        }
        let index = rng.gen_range(0..self.workers.len());
        self.workers.keys().nth(index).copied()
    }

    /// Whether `alloc` would fit on some worker right now (no reservation).
    pub fn can_place(&self, alloc: &ResourceVector) -> bool {
        self.workers.values().any(|w| w.fits(alloc))
    }

    /// Whether `alloc` could fit on some live worker *even if idle* — i.e.
    /// against total capacity rather than current availability. False for
    /// an empty pool. A queued allocation failing this check can never be
    /// dispatched until the pool changes shape.
    pub fn could_ever_place(&self, alloc: &ResourceVector) -> bool {
        let demand = spatial(alloc);
        self.workers
            .values()
            .any(|w| w.spec.capacity.dominates(&demand))
    }

    /// Total available capacity across workers (diagnostics).
    pub fn total_available(&self) -> ResourceVector {
        self.workers
            .values()
            .fold(ResourceVector::ZERO, |acc, w| acc.add(&w.available))
    }

    /// Total granted capacity across workers.
    pub fn total_capacity(&self) -> ResourceVector {
        self.workers
            .values()
            .fold(ResourceVector::ZERO, |acc, w| acc.add(&w.spec.capacity))
    }

    /// Total running attempts across workers.
    pub fn total_running(&self) -> usize {
        self.workers.values().map(|w| w.running).sum()
    }
}

/// Worker churn configuration: how the opportunistic pool evolves.
///
/// §V-A: "The number of workers varies from 20 to 50 depending on the
/// availability of the local HTCondor cluster." [`ChurnConfig::paper_like`]
/// reproduces that band, including the ramp-up of an opportunistic
/// deployment: pilot jobs are granted by the batch system *over time*, so a
/// run starts with a handful of workers and grows into the band (`initial`
/// may sit below `min`; churn joins until the floor is reached).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Workers at time zero (may be below `min`: the ramp-up phase).
    pub initial: usize,
    /// Pool size floor once ramped up (churn joins while below; ≥ 1).
    pub min: usize,
    /// Pool size ceiling.
    pub max: usize,
    /// Mean seconds between churn events (exponential); `None` disables
    /// churn entirely.
    pub mean_interval_s: Option<f64>,
}

impl ChurnConfig {
    /// A fixed pool of `n` workers, no churn.
    pub fn fixed(n: usize) -> Self {
        assert!(n >= 1);
        ChurnConfig {
            initial: n,
            min: n,
            max: n,
            mean_interval_s: None,
        }
    }

    /// The paper's opportunistic band: ramp up from 8 pilot workers into
    /// 20–50, with a churn event every ~15 s on average.
    pub fn paper_like() -> Self {
        ChurnConfig {
            initial: 8,
            min: 20,
            max: 50,
            mean_interval_s: Some(15.0),
        }
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.min < 1 {
            return Err("min workers must be ≥ 1".into());
        }
        if self.initial < 1 {
            return Err("initial workers must be ≥ 1".into());
        }
        if self.min > self.max {
            return Err(format!("min {} > max {}", self.min, self.max));
        }
        if self.initial > self.max {
            return Err(format!("initial {} > max {}", self.initial, self.max));
        }
        if self.initial < self.min && self.mean_interval_s.is_none() {
            return Err(format!(
                "initial {} below min {} with churn disabled: the pool could never ramp up",
                self.initial, self.min
            ));
        }
        if let Some(m) = self.mean_interval_s {
            if !(m.is_finite() && m > 0.0) {
                return Err(format!("bad mean interval {m}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn spec() -> WorkerSpec {
        WorkerSpec::paper_default()
    }

    #[test]
    fn join_place_release_leave_cycle() {
        let mut pool = WorkerPool::new();
        let a = pool.join(spec());
        let b = pool.join(spec());
        assert_eq!(pool.len(), 2);
        let alloc = ResourceVector::new(8.0, 1024.0, 1024.0);
        // First fit is the lowest id.
        let placed = pool.place(&alloc).unwrap();
        assert_eq!(placed, a);
        assert_eq!(pool.get(a).unwrap().running, 1);
        // Second placement of 8 cores still fits worker a (16 cores).
        assert_eq!(pool.place(&alloc).unwrap(), a);
        // Third goes to b.
        assert_eq!(pool.place(&alloc).unwrap(), b);
        pool.release(a, &alloc);
        pool.release(a, &alloc);
        assert_eq!(pool.get(a).unwrap().running, 0);
        assert_eq!(pool.get(a).unwrap().available, spec().capacity);
        assert!(pool.leave(b).is_some());
        assert!(pool.leave(b).is_none());
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn workers_iterates_in_id_order() {
        let mut pool = WorkerPool::new();
        for rack in 0..4u32 {
            pool.join(spec().with_rack(rack));
        }
        pool.leave(WorkerId(1));
        let seen: Vec<(WorkerId, u32)> = pool.workers().map(|(id, w)| (id, w.spec.rack)).collect();
        assert_eq!(
            seen,
            vec![(WorkerId(0), 0), (WorkerId(2), 2), (WorkerId(3), 3)]
        );
    }

    #[test]
    fn place_avoiding_prefers_healthy_racks_but_never_strands_work() {
        let mut pool = WorkerPool::new();
        let a = pool.join(spec().with_rack(0));
        let b = pool.join(spec().with_rack(1));
        let alloc = ResourceVector::new(8.0, 1024.0, 1024.0);
        // An empty avoid list is plain first fit: lowest id.
        assert_eq!(pool.place_avoiding(&alloc, &[]), Some(a));
        pool.release(a, &alloc);
        // Rack 0 flagged: the higher-id worker on rack 1 wins.
        assert_eq!(pool.place_avoiding(&alloc, &[0]), Some(b));
        // Both racks flagged: first fit again rather than refusing.
        assert_eq!(pool.place_avoiding(&alloc, &[0, 1]), Some(a));
        // Fill rack 1 completely; an avoided rack still takes the task.
        let whole = spec().capacity;
        pool.release(a, &alloc);
        pool.release(b, &alloc);
        assert_eq!(pool.place_avoiding(&whole, &[0]), Some(b));
        assert_eq!(pool.place_avoiding(&whole, &[0]), Some(a));
        assert_eq!(pool.place_avoiding(&whole, &[0]), None);
    }

    #[test]
    fn place_fails_when_everything_full() {
        let mut pool = WorkerPool::new();
        pool.join(spec());
        let whole = spec().capacity;
        assert!(pool.place(&whole).is_some());
        assert_eq!(pool.place(&ResourceVector::new(1.0, 1.0, 1.0)), None);
    }

    #[test]
    fn random_worker_covers_pool() {
        let mut pool = WorkerPool::new();
        let ids: Vec<WorkerId> = (0..5).map(|_| pool.join(spec())).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(pool.random_worker(&mut rng).unwrap());
        }
        for id in ids {
            assert!(seen.contains(&id));
        }
        assert_eq!(WorkerPool::new().random_worker(&mut rng), None);
    }

    #[test]
    fn total_available_tracks_reservations() {
        let mut pool = WorkerPool::new();
        pool.join(spec());
        pool.join(spec());
        let before = pool.total_available();
        let alloc = ResourceVector::new(4.0, 2048.0, 512.0);
        pool.place(&alloc).unwrap();
        let after = pool.total_available();
        assert_eq!(before.sub(&after), alloc);
    }

    #[test]
    fn placement_order_is_lowest_id_first_fit_under_churn() {
        // Pins the placement contract: first fit by ascending worker id,
        // including after departures and re-joins (ids are never reused).
        let mut pool = WorkerPool::new();
        let a = pool.join(spec());
        let b = pool.join(spec());
        let c = pool.join(spec());
        let whole = spec().capacity;
        assert_eq!(pool.place(&whole), Some(a));
        // a is full → next lowest id wins.
        assert_eq!(pool.place(&whole), Some(b));
        // b departs mid-run; c is now the only worker with room.
        pool.leave(b);
        assert_eq!(pool.place(&whole), Some(c));
        // A re-join gets a fresh id above every previous one.
        let d = pool.join(spec());
        assert!(d > c);
        assert_eq!(pool.place(&whole), Some(d));
        pool.release(a, &whole);
        // Freed capacity on the lowest id is preferred again.
        assert_eq!(pool.place(&whole), Some(a));
    }

    #[test]
    fn random_worker_is_deterministic_given_seed() {
        let build = || {
            let mut pool = WorkerPool::new();
            for _ in 0..7 {
                pool.join(spec());
            }
            pool.leave(WorkerId(2));
            pool.leave(WorkerId(5));
            pool
        };
        let draw = |pool: &WorkerPool| {
            let mut rng = StdRng::seed_from_u64(17);
            (0..50)
                .map(|_| pool.random_worker(&mut rng).unwrap())
                .collect::<Vec<_>>()
        };
        let picks = draw(&build());
        assert_eq!(picks, draw(&build()));
        // Departed workers are never picked.
        assert!(!picks.contains(&WorkerId(2)));
        assert!(!picks.contains(&WorkerId(5)));
    }

    #[test]
    fn could_ever_place_checks_total_capacity_not_availability() {
        let mut pool = WorkerPool::new();
        assert!(!pool.could_ever_place(&ResourceVector::new(1.0, 1.0, 1.0)));
        pool.join(spec());
        let whole = spec().capacity;
        pool.place(&whole).unwrap();
        // Nothing fits *now*, but an idle worker of this shape could take it.
        assert!(!pool.can_place(&whole));
        assert!(pool.could_ever_place(&whole));
        // A demand exceeding every worker's total shape can never place.
        let oversized = whole.scale(2.0);
        assert!(!pool.could_ever_place(&oversized));
        // Temporal axes are enforcement limits, not reservations: a huge
        // time request does not make an allocation unplaceable.
        let long = whole.with(ResourceKind::TimeS, 1e12);
        assert!(pool.could_ever_place(&long));
    }

    #[test]
    fn churn_config_validation() {
        assert!(ChurnConfig::fixed(10).validate().is_ok());
        assert!(ChurnConfig::paper_like().validate().is_ok());
        // Ramp-up (initial below min) is fine when churn can grow the pool…
        let ramp = ChurnConfig {
            initial: 5,
            min: 10,
            max: 20,
            mean_interval_s: Some(15.0),
        };
        assert!(ramp.validate().is_ok());
        // …but not when churn is disabled.
        let stuck = ChurnConfig {
            mean_interval_s: None,
            ..ramp
        };
        assert!(stuck.validate().is_err());
        let above_max = ChurnConfig {
            initial: 25,
            min: 10,
            max: 20,
            mean_interval_s: None,
        };
        assert!(above_max.validate().is_err());
        let zero_min = ChurnConfig {
            initial: 1,
            min: 0,
            max: 2,
            mean_interval_s: None,
        };
        assert!(zero_min.validate().is_err());
        let bad_interval = ChurnConfig {
            mean_interval_s: Some(0.0),
            ..ChurnConfig::fixed(3)
        };
        assert!(bad_interval.validate().is_err());
    }
}
