//! Streaming workload generation.
//!
//! A [`TaskSource`] yields a workflow one [`TaskSpec`] at a time instead of
//! materializing the whole trace up front. The engine pulls specs on demand
//! (each task is generated just before its arrival fires), so generation
//! overlaps simulation and a million-task workload never exists as one
//! giant allocation on the generator side.
//!
//! [`CatalogSource`] is the streaming form of every catalog workflow. It
//! shares the per-task samplers (and the per-family RNG streams) with the
//! materialized path, so draining a source yields *byte-identical* specs to
//! [`crate::spec::WorkloadSpec::materialize`] — a property the simulation
//! parity suite pins down to the event log.

use crate::catalog::PaperWorkflow;
use crate::{colmena, synthetic, topeft};
use rand::rngs::StdRng;
use tora_alloc::resources::WorkerSpec;
use tora_alloc::task::TaskSpec;

/// A workload produced one task at a time, in submission order.
///
/// Contract: [`TaskSource::next_task`] yields exactly
/// [`TaskSource::total_tasks`] specs whose ids are `0..total` in order, each
/// fitting [`TaskSource::worker`]. Dependencies are *bounded-lookahead*: a
/// source declares a window `W` via [`TaskSource::dependency_window`] and
/// guarantees every id in [`TaskSource::deps_of`]`(i)` lies in `[i - W, i)`,
/// so the engine can resolve dependency cascades while materializing at
/// most `W` tasks ahead of a dying one. Flat sources keep the defaults
/// (`W = 0`, no deps). Only the TopEFT Coffea trace, whose dependency lists
/// index into the full task range, still has to materialize.
pub trait TaskSource: Send {
    /// Workflow name as used in reports.
    fn name(&self) -> &str;
    /// Category display names; index is the category id.
    fn categories(&self) -> &[String];
    /// Worker shape the tasks are meant to run on.
    fn worker(&self) -> WorkerSpec;
    /// Exact number of tasks this source will yield in total (not
    /// remaining — the value is constant over the source's lifetime).
    fn total_tasks(&self) -> usize;
    /// The next task, or `None` once `total_tasks()` have been yielded.
    fn next_task(&mut self) -> Option<TaskSpec>;
    /// The category the task at `index` belongs to, without generating it.
    ///
    /// Must equal `next_task()`'s category for that index, consume no RNG
    /// state, and stay valid for indices not yet pulled — the engine uses it
    /// to dead-letter a declared-but-unpulled tail without materializing
    /// `TaskSpec`s. Catalog families satisfy this for free: their category
    /// is a pure function of the index and the per-category counts.
    fn category_of(&self, index: usize) -> u32;
    /// Dependency ids of the task at `index`, ascending.
    ///
    /// Like [`TaskSource::category_of`] this must be RNG-free and valid for
    /// indices not yet pulled, and every returned id must lie in
    /// `[index - W, index)` for `W =` [`TaskSource::dependency_window`].
    /// Flat sources keep the default empty list.
    fn deps_of(&self, index: usize) -> Vec<u64> {
        let _ = index;
        Vec::new()
    }
    /// The bounded dependency lookahead `W` (see [`TaskSource::deps_of`]);
    /// `0` means the source is dependency-free.
    fn dependency_window(&self) -> usize {
        0
    }
}

/// The streaming form of a catalog workflow (see
/// [`crate::spec::WorkloadSpec::stream`]).
pub struct CatalogSource {
    workflow: PaperWorkflow,
    categories: Vec<String>,
    worker: WorkerSpec,
    /// Resolved per-category task counts, in category-id order.
    counts: Vec<usize>,
    total: usize,
    next: usize,
    rng: StdRng,
}

impl CatalogSource {
    pub(crate) fn new(workflow: PaperWorkflow, counts: Vec<usize>, seed: u64) -> Self {
        let total = counts.iter().sum();
        CatalogSource {
            workflow,
            categories: workflow.category_names(),
            worker: WorkerSpec::paper_default(),
            counts,
            total,
            next: 0,
            rng: match workflow {
                PaperWorkflow::ColmenaXtb => colmena::stream_rng(seed),
                PaperWorkflow::TopEft => topeft::stream_rng(seed),
                _ => synthetic::stream_rng(seed),
            },
        }
    }
}

impl TaskSource for CatalogSource {
    fn name(&self) -> &str {
        self.workflow.name()
    }

    fn categories(&self) -> &[String] {
        &self.categories
    }

    fn worker(&self) -> WorkerSpec {
        self.worker
    }

    fn total_tasks(&self) -> usize {
        self.total
    }

    fn next_task(&mut self) -> Option<TaskSpec> {
        if self.next >= self.total {
            return None;
        }
        let i = self.next;
        self.next += 1;
        Some(match self.workflow {
            PaperWorkflow::ColmenaXtb => colmena::sample_task(i, self.counts[0], &mut self.rng),
            PaperWorkflow::TopEft => {
                topeft::sample_task(i, self.counts[0], self.counts[1], &mut self.rng)
            }
            synth => {
                let kind = synth.synthetic_kind().expect("catalog family");
                synthetic::sample_task(kind, i, self.total, &self.worker, &mut self.rng)
            }
        })
    }

    /// Every catalog family assigns categories by contiguous index range
    /// (evaluate/compute for Colmena, pre/proc/acc for TopEFT, a single
    /// category for the synthetics), so the category is the cumulative-count
    /// bracket the index falls into.
    fn category_of(&self, index: usize) -> u32 {
        debug_assert!(index < self.total, "{index} out of range ({})", self.total);
        let mut cumulative = 0usize;
        for (category, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if index < cumulative {
                return category as u32;
            }
        }
        panic!("index {index} beyond the declared total {}", self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    #[test]
    fn every_catalog_source_drains_to_its_materialized_trace() {
        for wf in PaperWorkflow::ALL {
            let spec = WorkloadSpec::new(wf, 11);
            let built = spec.materialize().unwrap();
            let mut source = spec.stream().unwrap();
            assert_eq!(source.total_tasks(), built.len(), "{}", wf.name());
            assert_eq!(source.name(), built.name);
            assert_eq!(source.categories(), built.categories.as_slice());
            assert_eq!(source.worker(), built.worker);
            let drained: Vec<_> = std::iter::from_fn(|| source.next_task()).collect();
            assert_eq!(drained, built.tasks, "{}", wf.name());
            assert!(source.next_task().is_none(), "source is exhausted");
        }
    }

    #[test]
    fn category_of_matches_the_generated_specs() {
        for wf in PaperWorkflow::ALL {
            let spec = WorkloadSpec::new(wf, 23);
            let mut source = spec.stream().unwrap();
            // Query before pulling anything: the answer must not depend on
            // how much of the source has been consumed.
            let upfront: Vec<u32> = (0..source.total_tasks())
                .map(|i| source.category_of(i))
                .collect();
            let drained: Vec<u32> = std::iter::from_fn(|| source.next_task())
                .map(|t| t.category.0)
                .collect();
            assert_eq!(upfront, drained, "{}", wf.name());
        }
    }

    #[test]
    fn sources_are_deterministic_per_seed() {
        let drain = |seed| {
            let mut s = WorkloadSpec::new(PaperWorkflow::TopEft, seed)
                .stream()
                .unwrap();
            std::iter::from_fn(move || s.next_task()).collect::<Vec<_>>()
        };
        assert_eq!(drain(3), drain(3));
        assert_ne!(drain(3), drain(4));
    }

    #[test]
    fn scaled_sources_honor_the_category_split() {
        let mut source = WorkloadSpec::new(PaperWorkflow::ColmenaXtb, 5)
            .category_tasks(vec![10, 40])
            .stream()
            .unwrap();
        assert_eq!(source.total_tasks(), 50);
        let drained: Vec<_> = std::iter::from_fn(|| source.next_task()).collect();
        assert_eq!(drained.iter().filter(|t| t.category.0 == 0).count(), 10);
        assert_eq!(drained.iter().filter(|t| t.category.0 == 1).count(), 40);
    }
}
