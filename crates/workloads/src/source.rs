//! Streaming workload generation.
//!
//! A [`TaskSource`] yields a workflow one [`TaskSpec`] at a time instead of
//! materializing the whole trace up front. The engine pulls specs on demand
//! (each task is generated just before its arrival fires), so generation
//! overlaps simulation and a million-task workload never exists as one
//! giant allocation on the generator side.
//!
//! [`CatalogSource`] is the streaming form of every catalog workflow. It
//! shares the per-task samplers (and the per-family RNG streams) with the
//! materialized path, so draining a source yields *byte-identical* specs to
//! [`crate::spec::WorkloadSpec::materialize`] — a property the simulation
//! parity suite pins down to the event log.

use crate::catalog::PaperWorkflow;
use crate::dag::splitmix64;
use crate::{colmena, synthetic, topeft};
use rand::rngs::StdRng;
use tora_alloc::resources::WorkerSpec;
use tora_alloc::task::{TaskFeatures, TaskSpec};

/// Hash stream for the input-size signal's generator jitter.
const SIGNAL_SALT: u64 = 0x51_6E_A1_00_7A_5C_F3_0D;

/// The deterministic pre-run input-size signal of task `id`: the log-scaled
/// memory footprint relative to worker capacity, blurred by a small hash
/// jitter so the signal behaves like a real pre-run proxy (input file size)
/// rather than an oracle of the peak. Hash-derived, not RNG-drawn — minting
/// features consumes no sampler state, so feature-stamped workloads are
/// byte-identical to pre-feature ones everywhere except the feature fields.
pub(crate) fn input_signal(seed: u64, id: u64, peak_mem_mb: f64, cap_mem_mb: f64) -> f64 {
    let h = splitmix64(seed ^ SIGNAL_SALT ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    // 53 uniform bits in [0, 1).
    let jitter = (h >> 11) as f64 / (1u64 << 53) as f64;
    let base = (1.0 + peak_mem_mb.max(0.0)).ln() / (1.0 + cap_mem_mb.max(1.0)).ln();
    (base + 0.06 * (jitter - 0.5)).clamp(0.0, 1.0)
}

/// A workload produced one task at a time, in submission order.
///
/// Contract: [`TaskSource::next_task`] yields exactly
/// [`TaskSource::total_tasks`] specs whose ids are `0..total` in order, each
/// fitting [`TaskSource::worker`]. Dependencies are *bounded-lookahead*: a
/// source declares a window `W` via [`TaskSource::dependency_window`] and
/// guarantees every id in [`TaskSource::deps_of`]`(i)` lies in `[i - W, i)`,
/// so the engine can resolve dependency cascades while materializing at
/// most `W` tasks ahead of a dying one. Flat sources keep the defaults
/// (`W = 0`, no deps). Only the TopEFT Coffea trace, whose dependency lists
/// index into the full task range, still has to materialize.
pub trait TaskSource: Send {
    /// Workflow name as used in reports.
    fn name(&self) -> &str;
    /// Category display names; index is the category id.
    fn categories(&self) -> &[String];
    /// Worker shape the tasks are meant to run on.
    fn worker(&self) -> WorkerSpec;
    /// Exact number of tasks this source will yield in total (not
    /// remaining — the value is constant over the source's lifetime).
    fn total_tasks(&self) -> usize;
    /// The next task, or `None` once `total_tasks()` have been yielded.
    fn next_task(&mut self) -> Option<TaskSpec>;
    /// The category the task at `index` belongs to, without generating it.
    ///
    /// Must equal `next_task()`'s category for that index, consume no RNG
    /// state, and stay valid for indices not yet pulled — the engine uses it
    /// to dead-letter a declared-but-unpulled tail without materializing
    /// `TaskSpec`s. Catalog families satisfy this for free: their category
    /// is a pure function of the index and the per-category counts.
    fn category_of(&self, index: usize) -> u32;
    /// Dependency ids of the task at `index`, ascending.
    ///
    /// Like [`TaskSource::category_of`] this must be RNG-free and valid for
    /// indices not yet pulled, and every returned id must lie in
    /// `[index - W, index)` for `W =` [`TaskSource::dependency_window`].
    /// Flat sources keep the default empty list.
    fn deps_of(&self, index: usize) -> Vec<u64> {
        let _ = index;
        Vec::new()
    }
    /// The bounded dependency lookahead `W` (see [`TaskSource::deps_of`]);
    /// `0` means the source is dependency-free.
    fn dependency_window(&self) -> usize {
        0
    }
}

/// The streaming form of a catalog workflow (see
/// [`crate::spec::WorkloadSpec::stream`]).
pub struct CatalogSource {
    workflow: PaperWorkflow,
    categories: Vec<String>,
    worker: WorkerSpec,
    /// Resolved per-category task counts, in category-id order.
    counts: Vec<usize>,
    total: usize,
    next: usize,
    seed: u64,
    rng: StdRng,
}

impl CatalogSource {
    pub(crate) fn new(workflow: PaperWorkflow, counts: Vec<usize>, seed: u64) -> Self {
        let total = counts.iter().sum();
        CatalogSource {
            workflow,
            categories: workflow.category_names(),
            worker: WorkerSpec::paper_default(),
            counts,
            total,
            next: 0,
            seed,
            rng: match workflow {
                PaperWorkflow::ColmenaXtb => colmena::stream_rng(seed),
                PaperWorkflow::TopEft => topeft::stream_rng(seed),
                _ => synthetic::stream_rng(seed),
            },
        }
    }
}

impl TaskSource for CatalogSource {
    fn name(&self) -> &str {
        self.workflow.name()
    }

    fn categories(&self) -> &[String] {
        &self.categories
    }

    fn worker(&self) -> WorkerSpec {
        self.worker
    }

    fn total_tasks(&self) -> usize {
        self.total
    }

    fn next_task(&mut self) -> Option<TaskSpec> {
        if self.next >= self.total {
            return None;
        }
        let i = self.next;
        self.next += 1;
        let task = match self.workflow {
            PaperWorkflow::ColmenaXtb => colmena::sample_task(i, self.counts[0], &mut self.rng),
            PaperWorkflow::TopEft => {
                topeft::sample_task(i, self.counts[0], self.counts[1], &mut self.rng)
            }
            synth => {
                let kind = synth.synthetic_kind().expect("catalog family");
                synthetic::sample_task(kind, i, self.total, &self.worker, &mut self.rng)
            }
        };
        // Mint the pre-run feature vector after sampling: the signal is a
        // hash of `(seed, id)` and the sampled peak, so it consumes no RNG
        // state and the task bytes stay identical across stream/materialize.
        let signal = input_signal(
            self.seed,
            task.id.0,
            task.peak.memory_mb(),
            self.worker.capacity.memory_mb(),
        );
        Some(task.with_features(TaskFeatures::with_input_signal(signal)))
    }

    /// Every catalog family assigns categories by contiguous index range
    /// (evaluate/compute for Colmena, pre/proc/acc for TopEFT, a single
    /// category for the synthetics), so the category is the cumulative-count
    /// bracket the index falls into.
    fn category_of(&self, index: usize) -> u32 {
        debug_assert!(index < self.total, "{index} out of range ({})", self.total);
        let mut cumulative = 0usize;
        for (category, &n) in self.counts.iter().enumerate() {
            cumulative += n;
            if index < cumulative {
                return category as u32;
            }
        }
        panic!("index {index} beyond the declared total {}", self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;

    #[test]
    fn every_catalog_source_drains_to_its_materialized_trace() {
        for wf in PaperWorkflow::ALL {
            let spec = WorkloadSpec::new(wf, 11);
            let built = spec.materialize().unwrap();
            let mut source = spec.stream().unwrap();
            assert_eq!(source.total_tasks(), built.len(), "{}", wf.name());
            assert_eq!(source.name(), built.name);
            assert_eq!(source.categories(), built.categories.as_slice());
            assert_eq!(source.worker(), built.worker);
            let drained: Vec<_> = std::iter::from_fn(|| source.next_task()).collect();
            assert_eq!(drained, built.tasks, "{}", wf.name());
            assert!(source.next_task().is_none(), "source is exhausted");
        }
    }

    #[test]
    fn category_of_matches_the_generated_specs() {
        for wf in PaperWorkflow::ALL {
            let spec = WorkloadSpec::new(wf, 23);
            let mut source = spec.stream().unwrap();
            // Query before pulling anything: the answer must not depend on
            // how much of the source has been consumed.
            let upfront: Vec<u32> = (0..source.total_tasks())
                .map(|i| source.category_of(i))
                .collect();
            let drained: Vec<u32> = std::iter::from_fn(|| source.next_task())
                .map(|t| t.category.0)
                .collect();
            assert_eq!(upfront, drained, "{}", wf.name());
        }
    }

    #[test]
    fn sources_are_deterministic_per_seed() {
        let drain = |seed| {
            let mut s = WorkloadSpec::new(PaperWorkflow::TopEft, seed)
                .stream()
                .unwrap();
            std::iter::from_fn(move || s.next_task()).collect::<Vec<_>>()
        };
        assert_eq!(drain(3), drain(3));
        assert_ne!(drain(3), drain(4));
    }

    #[test]
    fn input_signal_is_deterministic_bounded_and_tracks_memory() {
        let cap = 65536.0;
        // Pure function of (seed, id, peak, cap).
        assert_eq!(
            input_signal(7, 3, 2000.0, cap),
            input_signal(7, 3, 2000.0, cap)
        );
        // Different seeds jitter differently; different ids too.
        assert_ne!(
            input_signal(7, 3, 2000.0, cap),
            input_signal(8, 3, 2000.0, cap)
        );
        assert_ne!(
            input_signal(7, 3, 2000.0, cap),
            input_signal(7, 4, 2000.0, cap)
        );
        for mem in [0.0, 1.0, 100.0, 2000.0, 6000.0, cap] {
            for id in 0..50u64 {
                let s = input_signal(11, id, mem, cap);
                assert!((0.0..=1.0).contains(&s), "signal {s} for mem {mem}");
            }
        }
        // The jitter never swamps the log-memory separation that the
        // bimodal workload's two modes produce (~2 GB vs ~6 GB).
        for id in 0..100u64 {
            let low = input_signal(11, id, 2000.0, cap);
            let high = input_signal(11, id, 6000.0, cap);
            assert!(high > low, "id {id}: {high} <= {low}");
        }
    }

    #[test]
    fn generated_tasks_carry_a_minted_input_signal() {
        let mut source = WorkloadSpec::new(PaperWorkflow::Bimodal, 7)
            .stream()
            .unwrap();
        let drained: Vec<_> = std::iter::from_fn(|| source.next_task()).collect();
        assert!(drained.iter().all(|t| t.features.input_signal > 0.0));
        assert!(
            drained.iter().all(|t| t.features.depth == 0),
            "flat => depth 0"
        );
        // The signal is informative: tasks of the two memory modes separate.
        let cap = WorkerSpec::paper_default().capacity.memory_mb();
        for t in &drained {
            let expected = input_signal(7, t.id.0, t.peak.memory_mb(), cap);
            assert_eq!(t.features.input_signal, expected, "{}", t.id);
        }
    }

    #[test]
    fn scaled_sources_honor_the_category_split() {
        let mut source = WorkloadSpec::new(PaperWorkflow::ColmenaXtb, 5)
            .category_tasks(vec![10, 40])
            .stream()
            .unwrap();
        assert_eq!(source.total_tasks(), 50);
        let drained: Vec<_> = std::iter::from_fn(|| source.next_task()).collect();
        assert_eq!(drained.iter().filter(|t| t.category.0 == 0).count(), 10);
        assert_eq!(drained.iter().filter(|t| t.category.0 == 1).count(), 40);
    }
}
