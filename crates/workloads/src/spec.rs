//! The one entry point for building catalog workloads.
//!
//! A [`WorkloadSpec`] names a catalog workflow, a seed and a scale, and
//! yields the workload either fully materialized
//! ([`WorkloadSpec::materialize`]) or as a streaming
//! [`CatalogSource`] ([`WorkloadSpec::stream`]). Both paths share the same
//! per-task samplers and RNG streams, so for a given spec they produce the
//! identical task sequence.
//!
//! This replaced the per-family free constructors
//! (`synthetic::generate`, `colmena::generate`, `topeft::generate_dag`, …);
//! their deprecated shims have since been removed.

use crate::catalog::PaperWorkflow;
use crate::dag::{DagShape, DagSource};
use crate::error::WorkloadError;
use crate::source::{CatalogSource, TaskSource};
use crate::topeft;
use crate::workflow::Workflow;
use serde::{Deserialize, Serialize};

/// How many tasks a [`WorkloadSpec`] generates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
enum Scale {
    /// The paper's task counts (e.g. 1000 for a synthetic workflow,
    /// 363/3994/212 for TopEFT).
    #[default]
    Paper,
    /// A total task count, split across categories in proportion to the
    /// paper's counts.
    Total(usize),
    /// Explicit per-category counts, in category-id order.
    PerCategory(Vec<usize>),
}

/// A catalog workflow plus the knobs that shape it: seed, scale and
/// structure — a generated [`DagShape`] for any workflow, or (TopEFT only)
/// the Coffea dependency structure.
///
/// ```
/// use tora_workloads::{DagShape, PaperWorkflow, WorkloadSpec};
///
/// // The paper's 1000-task bimodal workflow, materialized.
/// let wf = PaperWorkflow::Bimodal.spec(42).materialize().unwrap();
/// assert_eq!(wf.len(), 1000);
///
/// // The same distribution scaled to 10k tasks, streamed.
/// let mut source = PaperWorkflow::Bimodal.spec(42).tasks(10_000).stream().unwrap();
///
/// // A diamond-shaped bimodal workload; generated shapes stream too.
/// let shaped = PaperWorkflow::Bimodal.spec(42).dag_shape(DagShape::diamond(4, 8));
/// assert!(shaped.stream().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    workflow: PaperWorkflow,
    seed: u64,
    scale: Scale,
    dag: bool,
    /// Generated DAG topology; fixes the task count when set.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    shape: Option<DagShape>,
}

impl WorkloadSpec {
    /// A spec for `workflow` at the paper's task counts.
    pub fn new(workflow: PaperWorkflow, seed: u64) -> Self {
        WorkloadSpec {
            workflow,
            seed,
            scale: Scale::Paper,
            dag: false,
            shape: None,
        }
    }

    /// Scale to `n` tasks in total, split across the workflow's categories
    /// in proportion to the paper's counts.
    pub fn tasks(mut self, n: usize) -> Self {
        self.scale = Scale::Total(n);
        self
    }

    /// Scale with explicit per-category task counts (must match the
    /// workflow's category count — checked at build time).
    pub fn category_tasks(mut self, counts: Vec<usize>) -> Self {
        self.scale = Scale::PerCategory(counts);
        self
    }

    /// Attach the Coffea dependency structure (TopEFT only — checked at
    /// build time): each processing task reads one preprocessing task's
    /// dataset, each accumulating task merges a block of processing tasks.
    pub fn dag(mut self) -> Self {
        self.dag = true;
        self
    }

    /// Attach a generated DAG topology (works for every catalog workflow).
    /// The shape fixes the task count — its expanded node count, split
    /// across categories in proportion to the paper's counts — so it
    /// conflicts with `tasks(..)`/`category_tasks(..)` and with the Coffea
    /// `dag()` structure (checked at build time). Shaped specs stream:
    /// dependencies stay within a bounded lookahead window.
    pub fn dag_shape(mut self, shape: DagShape) -> Self {
        self.shape = Some(shape);
        self
    }

    /// The catalog workflow this spec shapes.
    pub fn workflow(&self) -> PaperWorkflow {
        self.workflow
    }

    /// Check the spec without building it.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.dag && self.workflow != PaperWorkflow::TopEft {
            return Err(WorkloadError::DagUnsupported {
                workflow: self.workflow.name().to_string(),
            });
        }
        if self.shape.is_some() {
            if self.dag {
                return Err(WorkloadError::ShapeConflict {
                    reason: "dag_shape(..) and the Coffea dag() structure are \
                             mutually exclusive"
                        .to_string(),
                });
            }
            if self.scale != Scale::Paper {
                return Err(WorkloadError::ShapeConflict {
                    reason: "a DAG shape fixes the task count; drop tasks(..) \
                             or category_tasks(..)"
                        .to_string(),
                });
            }
        }
        self.category_counts()?;
        Ok(())
    }

    /// Resolved per-category task counts, in category-id order.
    pub fn category_counts(&self) -> Result<Vec<usize>, WorkloadError> {
        let paper = self.workflow.paper_category_counts();
        if let Some(shape) = &self.shape {
            // The shape fixes the total; the paper's mix fixes the split.
            let total = shape.structure(self.seed).total_tasks();
            return Ok(split_proportionally(total, &paper));
        }
        match &self.scale {
            Scale::Paper => Ok(paper),
            Scale::Total(n) => Ok(split_proportionally(*n, &paper)),
            Scale::PerCategory(counts) => {
                if counts.len() != paper.len() {
                    return Err(WorkloadError::CategoryArity {
                        workflow: self.workflow.name().to_string(),
                        given: counts.len(),
                        expected: paper.len(),
                    });
                }
                Ok(counts.clone())
            }
        }
    }

    /// The workload as a streaming [`TaskSource`]. Generated shapes stream
    /// with a bounded dependency-lookahead window; only the Coffea trace
    /// (`dag()`) must materialize instead (its dependency lists index the
    /// full range).
    pub fn stream(&self) -> Result<Box<dyn TaskSource>, WorkloadError> {
        self.validate()?;
        if self.dag {
            return Err(WorkloadError::DagCannotStream);
        }
        let catalog = CatalogSource::new(self.workflow, self.category_counts()?, self.seed);
        Ok(match &self.shape {
            Some(shape) => Box::new(DagSource::new(catalog, shape.structure(self.seed))),
            None => Box::new(catalog),
        })
    }

    /// The workload as a fully materialized [`Workflow`] trace.
    pub fn materialize(&self) -> Result<Workflow, WorkloadError> {
        self.validate()?;
        let counts = self.category_counts()?;
        let mut source = CatalogSource::new(self.workflow, counts.clone(), self.seed);
        let mut tasks = Vec::with_capacity(source.total_tasks());
        while let Some(task) = source.next_task() {
            tasks.push(task);
        }
        let wf = Workflow::new(
            source.name().to_string(),
            source.categories().to_vec(),
            tasks,
            source.worker(),
        );
        Ok(if self.dag {
            wf.with_dependencies(topeft::dag_dependencies(counts[0], counts[1], counts[2]))
        } else if let Some(shape) = &self.shape {
            let structure = shape.structure(self.seed);
            let n = wf.len();
            wf.with_dependencies((0..n).map(|i| structure.deps_of(i)).collect())
        } else {
            wf
        })
    }
}

/// Split `n` across categories in proportion to `weights`, exactly:
/// cumulative rounding keeps the sum at `n` and every split deterministic.
fn split_proportionally(n: usize, weights: &[usize]) -> Vec<usize> {
    let total: usize = weights.iter().sum();
    if total == 0 {
        return vec![0; weights.len()];
    }
    let mut out = Vec::with_capacity(weights.len());
    let (mut acc, mut wacc) = (0usize, 0usize);
    for &w in weights {
        wacc += w;
        let target = n * wacc / total;
        out.push(target - acc);
        acc = target;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_match_the_catalog_builds() {
        for wf in PaperWorkflow::ALL {
            let built = wf.spec(1).materialize().unwrap();
            assert_eq!(built.name, wf.name());
            assert_eq!(built.category_counts(), wf.paper_category_counts());
            built.validate().unwrap();
        }
    }

    #[test]
    fn total_scaling_splits_proportionally_and_exactly() {
        let wf = PaperWorkflow::TopEft.spec(2).tasks(10_000);
        let counts = wf.category_counts().unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
        // Processing dominates TopEFT 3994/4569 ≈ 87%.
        assert!(counts[1] > 8_500 && counts[1] < 9_000, "{counts:?}");
        let built = wf.materialize().unwrap();
        assert_eq!(built.len(), 10_000);
        assert_eq!(built.category_counts(), counts);
    }

    #[test]
    fn dag_is_topeft_only() {
        assert!(PaperWorkflow::Bimodal.spec(1).dag().validate().is_err());
        let dag = PaperWorkflow::TopEft.spec(1).dag().materialize().unwrap();
        assert!(dag.has_dependencies());
        dag.validate().unwrap();
        assert!(PaperWorkflow::TopEft.spec(1).dag().stream().is_err());
    }

    #[test]
    fn category_count_arity_is_checked() {
        assert!(PaperWorkflow::ColmenaXtb
            .spec(1)
            .category_tasks(vec![5])
            .validate()
            .is_err());
        let wf = PaperWorkflow::ColmenaXtb
            .spec(1)
            .category_tasks(vec![5, 20])
            .materialize()
            .unwrap();
        assert_eq!(wf.category_counts(), vec![5, 20]);
    }

    #[test]
    fn scaled_dag_keeps_the_coffea_shape() {
        let wf = PaperWorkflow::TopEft
            .spec(9)
            .category_tasks(vec![20, 160, 12])
            .dag()
            .materialize()
            .unwrap();
        wf.validate().unwrap();
        for j in 0..160 {
            assert_eq!(wf.deps_of(20 + j).len(), 1);
        }
    }

    #[test]
    fn dag_shapes_attach_to_any_workflow_and_stream() {
        use crate::dag::DagShape;
        let shape = DagShape::diamond(3, 5).with_loopback(2);
        for wf in PaperWorkflow::ALL {
            let spec = wf.spec(7).dag_shape(shape);
            let expected = shape.structure(7).total_tasks();
            let built = spec.materialize().unwrap();
            assert_eq!(built.len(), expected, "{}", wf.name());
            assert!(built.has_dependencies(), "{}", wf.name());
            built.validate().unwrap();
            let source = spec.stream().expect("generated shapes stream");
            assert!(source.dependency_window() >= 1);
            assert_eq!(source.total_tasks(), expected);
        }
    }

    #[test]
    fn shape_conflicts_are_rejected_with_a_stable_code() {
        use crate::dag::DagShape;
        let shape = DagShape::pipeline(6);
        let with_tasks = PaperWorkflow::Bimodal.spec(1).tasks(50).dag_shape(shape);
        let err = with_tasks.validate().unwrap_err();
        assert_eq!(err.code(), "shape-conflict");
        let with_dag = PaperWorkflow::TopEft.spec(1).dag().dag_shape(shape);
        assert_eq!(with_dag.validate().unwrap_err().code(), "shape-conflict");
    }

    #[test]
    fn split_handles_edge_cases() {
        assert_eq!(split_proportionally(0, &[228, 1000]), vec![0, 0]);
        assert_eq!(split_proportionally(7, &[1]), vec![7]);
        let s = split_proportionally(1, &[363, 3994, 212]);
        assert_eq!(s.iter().sum::<usize>(), 1);
    }
}
