//! Parametric DAG shapes with bounded loop-back iteration edges.
//!
//! Every shipped workload used to be a flat bag of tasks (plus the TopEFT
//! trace), so nothing could exercise the engine under *structural* pressure:
//! allocation errors on the critical path cost more than the same errors off
//! it, and only a workload with depth can show that. A [`DagShape`] is a
//! small parametric description — fan-out/fan-in, pipeline, diamond, or
//! random-layered, with width/depth knobs — that any [`PaperWorkflow`] can
//! carry via [`WorkloadSpec::dag_shape`]: the shape fixes the task count and
//! the dependency lists while the catalog keeps sampling categories,
//! durations, and resource peaks exactly as it would for a flat workload of
//! the same size (structure consumes no RNG draws).
//!
//! Loop-back iteration edges follow the workgraph design: a back-edge is a
//! *guard* plus a max iteration count, and each triggered iteration
//! instantiates a fresh task that depends on its predecessor instance. The
//! guard is evaluated at build time from a hash of `(seed, node)`, so the
//! expansion is fixed up front, the scheduler still sees a DAG, and the
//! `submitted = completed + dead-lettered` conservation law holds counting
//! instantiated iterations.
//!
//! Generated shapes *stream*: every dependency id lies within a bounded
//! window of earlier ids ([`DagStructure::window`]), which a streaming
//! source declares via [`TaskSource::dependency_window`] so the engine can
//! resolve cascades without materializing the whole workflow.
//!
//! [`PaperWorkflow`]: crate::PaperWorkflow
//! [`WorkloadSpec::dag_shape`]: crate::WorkloadSpec::dag_shape
//! [`TaskSource::dependency_window`]: crate::TaskSource::dependency_window

use serde::{Deserialize, Serialize};
use tora_alloc::resources::WorkerSpec;
use tora_alloc::task::TaskSpec;

use crate::source::{CatalogSource, TaskSource};
use crate::workflow::Workflow;

/// Hash stream for loop-back iteration guards.
const ITER_SALT: u64 = 0x17E4_A71F_0000_5EED;
/// Hash stream for random-layered dependency choices.
const DEP_SALT: u64 = 0x0D46_0000_FA17_57A4;

/// splitmix64: a tiny, high-quality mixer. Structure derives everything
/// from hashes of `(seed, node)` instead of consuming an RNG stream, so a
/// shaped workload's task bytes are identical to the equivalent flat one.
/// The feature minter in [`crate::source`] reuses it for the same reason.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The four generated topologies. Dimensions are clamped at construction so
/// every shape has at least one dependency edge — a "DAG" with no edges
/// would stream with a zero lookahead window and dodge the structured path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum ShapeKind {
    /// One source fanning out to `width` parallel middles, all joined by a
    /// sink: `width + 2` nodes.
    FanOutFanIn {
        /// Parallel middle tasks (≥ 1).
        width: u32,
    },
    /// A single chain of `depth` nodes (≥ 2).
    Pipeline {
        /// Chain length.
        depth: u32,
    },
    /// A source, `width` independent chains of `depth` nodes each, and a
    /// sink joining the chain ends: `width * depth + 2` nodes. The chains
    /// give off-critical-path tasks real float, which is what the
    /// critical-path experiments need.
    Diamond {
        /// Parallel chains (≥ 1).
        width: u32,
        /// Tasks per chain (≥ 1).
        depth: u32,
    },
    /// `depth` layers of `width` nodes; each node past the first layer
    /// draws 1–3 hash-chosen dependencies from the previous layer.
    RandomLayered {
        /// Nodes per layer (≥ 1).
        width: u32,
        /// Layers (≥ 2).
        depth: u32,
    },
}

/// A parametric DAG topology plus an optional loop-back iteration bound.
///
/// Attach one to any catalog workflow with
/// [`WorkloadSpec::dag_shape`](crate::WorkloadSpec::dag_shape); the shape
/// fixes the task count, so it conflicts with explicit `tasks(..)` scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DagShape {
    kind: ShapeKind,
    /// Max loop-back iterations per node (workgraph-style guard bound);
    /// `0` disables iteration edges.
    loopback: u32,
}

/// Shape names accepted by [`DagShape::by_name`], for CLI help text.
pub const SHAPE_NAMES: [&str; 4] = ["fan-out-fan-in", "pipeline", "diamond", "random-layered"];

impl DagShape {
    /// One source, `width` parallel middles, one sink.
    pub fn fan_out_fan_in(width: u32) -> Self {
        DagShape {
            kind: ShapeKind::FanOutFanIn {
                width: width.max(1),
            },
            loopback: 0,
        }
    }

    /// A single chain of `depth` tasks.
    pub fn pipeline(depth: u32) -> Self {
        DagShape {
            kind: ShapeKind::Pipeline {
                depth: depth.max(2),
            },
            loopback: 0,
        }
    }

    /// `width` independent chains of `depth` tasks between a source and a
    /// sink.
    pub fn diamond(width: u32, depth: u32) -> Self {
        DagShape {
            kind: ShapeKind::Diamond {
                width: width.max(1),
                depth: depth.max(1),
            },
            loopback: 0,
        }
    }

    /// `depth` layers of `width` nodes with hash-chosen inter-layer edges.
    pub fn random_layered(width: u32, depth: u32) -> Self {
        DagShape {
            kind: ShapeKind::RandomLayered {
                width: width.max(1),
                depth: depth.max(2),
            },
            loopback: 0,
        }
    }

    /// Allow up to `max` loop-back iterations per node. Each node's actual
    /// iteration count is a build-time hash guard in `0..=max`; every
    /// triggered iteration instantiates a fresh task chained onto the
    /// node's previous instance.
    pub fn with_loopback(mut self, max: u32) -> Self {
        self.loopback = max;
        self
    }

    /// Look a shape up by CLI name (see [`SHAPE_NAMES`]). `width` and
    /// `depth` are applied where the shape uses them.
    pub fn by_name(name: &str, width: u32, depth: u32) -> Option<Self> {
        match name {
            "fan-out-fan-in" => Some(Self::fan_out_fan_in(width)),
            "pipeline" => Some(Self::pipeline(depth)),
            "diamond" => Some(Self::diamond(width, depth)),
            "random-layered" => Some(Self::random_layered(width, depth)),
            _ => None,
        }
    }

    /// Base node count before loop-back expansion.
    fn node_count(&self) -> usize {
        match self.kind {
            ShapeKind::FanOutFanIn { width } => width as usize + 2,
            ShapeKind::Pipeline { depth } => depth as usize,
            ShapeKind::Diamond { width, depth } => (width * depth) as usize + 2,
            ShapeKind::RandomLayered { width, depth } => (width * depth) as usize,
        }
    }

    /// The guard: how many loop-back iterations node `node` triggers, in
    /// `0..=loopback`, fixed by a hash of `(seed, node)`.
    fn iterations(&self, seed: u64, node: usize) -> u32 {
        if self.loopback == 0 {
            return 0;
        }
        let h = splitmix64(seed ^ ITER_SALT ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        (h % (u64::from(self.loopback) + 1)) as u32
    }

    /// Base dependency list of node `node`, ascending, pre-expansion.
    fn node_deps(&self, seed: u64, node: usize) -> Vec<usize> {
        match self.kind {
            ShapeKind::FanOutFanIn { width } => {
                let w = width as usize;
                if node == 0 {
                    Vec::new()
                } else if node == w + 1 {
                    (1..=w).collect()
                } else {
                    vec![0]
                }
            }
            ShapeKind::Pipeline { .. } => {
                if node == 0 {
                    Vec::new()
                } else {
                    vec![node - 1]
                }
            }
            ShapeKind::Diamond { width, depth } => {
                let (w, d) = (width as usize, depth as usize);
                if node == 0 {
                    Vec::new()
                } else if node == 1 + w * d {
                    // Sink: joins the end of every chain.
                    (0..w).map(|c| 1 + (d - 1) * w + c).collect()
                } else {
                    let (p, c) = ((node - 1) / w, (node - 1) % w);
                    if p == 0 {
                        vec![0]
                    } else {
                        vec![1 + (p - 1) * w + c]
                    }
                }
            }
            ShapeKind::RandomLayered { width, .. } => {
                let w = width as usize;
                let layer = node / w;
                if layer == 0 {
                    return Vec::new();
                }
                let fan_in = 1 + (splitmix64(seed ^ DEP_SALT ^ node as u64) as usize) % 3.min(w);
                let mut deps: Vec<usize> = (0..fan_in)
                    .map(|j| {
                        let h =
                            splitmix64(seed ^ DEP_SALT ^ ((node as u64) << 16) ^ (j as u64 + 1));
                        (layer - 1) * w + (h as usize) % w
                    })
                    .collect();
                deps.sort_unstable();
                deps.dedup();
                deps
            }
        }
    }

    /// Expand the shape for `seed`: evaluate every loop-back guard, lay the
    /// instances out, and compute the exact streaming lookahead window.
    pub fn structure(&self, seed: u64) -> DagStructure {
        let nodes = self.node_count();
        let mut starts = Vec::with_capacity(nodes + 1);
        let mut total = 0u64;
        for node in 0..nodes {
            starts.push(total);
            total += 1 + u64::from(self.iterations(seed, node));
        }
        starts.push(total);
        // Chain edges (iteration instances, pipeline links) look back 1;
        // base edges look back from a node's first instance to its
        // dependency's last instance.
        let mut window = 1usize;
        for node in 0..nodes {
            for d in self.node_deps(seed, node) {
                window = window.max((starts[node] - (starts[d + 1] - 1)) as usize);
            }
        }
        // First-instance depth per node: a node's first instance depends on
        // the *last* instance of each base dependency, and each loop-back
        // iteration adds one level on top.
        let mut depths = vec![0u32; nodes];
        for node in 0..nodes {
            let mut d = 0u32;
            for dep in self.node_deps(seed, node) {
                let last = depths[dep] + (starts[dep + 1] - starts[dep] - 1) as u32;
                d = d.max(last + 1);
            }
            depths[node] = d;
        }
        DagStructure {
            shape: *self,
            seed,
            starts,
            depths,
            window,
        }
    }
}

/// A [`DagShape`] expanded for one seed: loop-back guards evaluated, node
/// instances laid out contiguously, dependency lists answerable for any
/// task id without materializing anything.
#[derive(Debug, Clone)]
pub struct DagStructure {
    shape: DagShape,
    seed: u64,
    /// `starts[n]` is the task id of node `n`'s first instance;
    /// `starts[nodes]` is the total task count.
    starts: Vec<u64>,
    /// DAG depth of each node's first instance (longest dependency chain
    /// below it).
    depths: Vec<u32>,
    /// Exact bounded lookahead: every dependency of task `t` has an id in
    /// `[t - window, t)`.
    window: usize,
}

impl DagStructure {
    /// Total tasks after loop-back expansion.
    pub fn total_tasks(&self) -> usize {
        *self.starts.last().expect("starts is never empty") as usize
    }

    /// Base nodes before expansion.
    pub fn node_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// Loop-back iterations the guard triggered for `node` (instances
    /// beyond the first). Always `<=` the shape's configured max.
    pub fn iterations_of(&self, node: usize) -> u32 {
        (self.starts[node + 1] - self.starts[node] - 1) as u32
    }

    /// The streaming lookahead bound: every dependency id of task `t` lies
    /// in `[t - window, t)`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// DAG depth of task `task`: the longest dependency chain below it, in
    /// edges. Matches the depth DP over [`DagStructure::deps_of`], answered
    /// in O(log nodes) without materializing anything.
    pub fn depth_of(&self, task: usize) -> u32 {
        let t = task as u64;
        debug_assert!(t < *self.starts.last().unwrap(), "task {task} out of range");
        let node = self.starts.partition_point(|&s| s <= t) - 1;
        self.depths[node] + (t - self.starts[node]) as u32
    }

    /// Dependency ids of task `task`, ascending. Iteration instances chain
    /// onto their predecessor instance; a node's first instance depends on
    /// the *last* instance of each base dependency (the iteration that
    /// finally passed the guard).
    pub fn deps_of(&self, task: usize) -> Vec<u64> {
        let t = task as u64;
        debug_assert!(t < *self.starts.last().unwrap(), "task {task} out of range");
        let node = self.starts.partition_point(|&s| s <= t) - 1;
        if t > self.starts[node] {
            vec![t - 1]
        } else {
            self.shape
                .node_deps(self.seed, node)
                .into_iter()
                .map(|d| self.starts[d + 1] - 1)
                .collect()
        }
    }
}

/// A streaming source for a shaped workload: the wrapped [`CatalogSource`]
/// samples task bytes exactly as it would for a flat workload of the same
/// size, and the [`DagStructure`] answers dependencies and the lookahead
/// window on the side.
pub struct DagSource {
    catalog: CatalogSource,
    structure: DagStructure,
}

impl DagSource {
    pub(crate) fn new(catalog: CatalogSource, structure: DagStructure) -> Self {
        debug_assert_eq!(catalog.total_tasks(), structure.total_tasks());
        DagSource { catalog, structure }
    }
}

impl TaskSource for DagSource {
    fn name(&self) -> &str {
        self.catalog.name()
    }

    fn categories(&self) -> &[String] {
        self.catalog.categories()
    }

    fn worker(&self) -> WorkerSpec {
        self.catalog.worker()
    }

    fn total_tasks(&self) -> usize {
        self.catalog.total_tasks()
    }

    fn next_task(&mut self) -> Option<TaskSpec> {
        // The catalog stamps the input-size signal; the structure supplies
        // the depth. Materialized shaped builds stamp the identical depth in
        // `Workflow::with_dependencies`, so both paths yield the same bytes.
        let task = self.catalog.next_task()?;
        let features = task
            .features
            .at_depth(self.structure.depth_of(task.id.0 as usize));
        Some(task.with_features(features))
    }

    fn category_of(&self, index: usize) -> u32 {
        self.catalog.category_of(index)
    }

    fn deps_of(&self, index: usize) -> Vec<u64> {
        self.structure.deps_of(index)
    }

    fn dependency_window(&self) -> usize {
        self.structure.window()
    }
}

/// Longest dependency chain of a workflow by summed nominal durations: the
/// submit-time critical path. Returns the chain length in seconds and the
/// task ids along it, source first. Ties break toward the smallest task id
/// (matching the engine's tracker).
pub fn longest_path(workflow: &Workflow) -> (f64, Vec<u64>) {
    let n = workflow.len();
    if n == 0 {
        return (0.0, Vec::new());
    }
    let mut dist = vec![0.0f64; n];
    let mut pred = vec![u64::MAX; n];
    for i in 0..n {
        let mut best = 0.0f64;
        let mut best_pred = u64::MAX;
        for &d in workflow.deps_of(i) {
            if dist[d as usize] > best {
                best = dist[d as usize];
                best_pred = d;
            }
        }
        dist[i] = best + workflow.tasks[i].duration_s;
        pred[i] = best_pred;
    }
    let mut sink = 0usize;
    for i in 1..n {
        if dist[i] > dist[sink] {
            sink = i;
        }
    }
    let mut path = Vec::new();
    let mut cur = sink as u64;
    loop {
        path.push(cur);
        let p = pred[cur as usize];
        if p == u64::MAX {
            break;
        }
        cur = p;
    }
    path.reverse();
    (dist[sink], path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PaperWorkflow;

    #[test]
    fn shapes_have_the_documented_node_counts_and_edges() {
        let cases = [
            (DagShape::fan_out_fan_in(5), 7),
            (DagShape::pipeline(9), 9),
            (DagShape::diamond(3, 4), 14),
            (DagShape::random_layered(4, 3), 12),
        ];
        for (shape, nodes) in cases {
            let s = shape.structure(42);
            assert_eq!(s.node_count(), nodes, "{shape:?}");
            assert_eq!(s.total_tasks(), nodes, "no loopback => no expansion");
            let edges: usize = (0..nodes).map(|t| s.deps_of(t).len()).sum();
            assert!(edges >= 1, "{shape:?} must have at least one edge");
            assert!(s.window() >= 1, "{shape:?}");
        }
    }

    #[test]
    fn degenerate_dimensions_are_clamped_to_keep_an_edge() {
        for shape in [
            DagShape::fan_out_fan_in(0),
            DagShape::pipeline(0),
            DagShape::diamond(0, 0),
            DagShape::random_layered(0, 1),
        ] {
            let s = shape.structure(7);
            let edges: usize = (0..s.total_tasks()).map(|t| s.deps_of(t).len()).sum();
            assert!(edges >= 1, "{shape:?} clamped shape still has no edges");
        }
    }

    #[test]
    fn deps_are_strictly_earlier_and_within_the_window() {
        for shape in [
            DagShape::fan_out_fan_in(6).with_loopback(3),
            DagShape::pipeline(8).with_loopback(2),
            DagShape::diamond(4, 5).with_loopback(2),
            DagShape::random_layered(5, 4).with_loopback(1),
        ] {
            for seed in [1u64, 7, 42] {
                let s = shape.structure(seed);
                for t in 0..s.total_tasks() {
                    let deps = s.deps_of(t);
                    assert!(deps.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
                    for &d in &deps {
                        assert!(d < t as u64, "dep {d} of task {t} is not earlier");
                        assert!(
                            (t as u64 - d) as usize <= s.window(),
                            "dep {d} of task {t} breaks window {}",
                            s.window()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn loopback_guard_never_exceeds_the_max_and_expands_totals() {
        let shape = DagShape::diamond(3, 4).with_loopback(3);
        let s = shape.structure(11);
        let mut expanded = 0u64;
        for node in 0..s.node_count() {
            assert!(s.iterations_of(node) <= 3, "node {node}");
            expanded += 1 + u64::from(s.iterations_of(node));
        }
        assert_eq!(expanded as usize, s.total_tasks());
        assert!(
            s.total_tasks() > s.node_count(),
            "a 3-iteration bound over 14 nodes should trigger somewhere"
        );
        // Iteration instances chain onto their predecessor.
        for node in 0..s.node_count() {
            let first = s.starts[node] as usize;
            for k in 1..=s.iterations_of(node) as usize {
                assert_eq!(s.deps_of(first + k), vec![(first + k - 1) as u64]);
            }
        }
    }

    #[test]
    fn structure_is_a_pure_function_of_shape_and_seed() {
        let shape = DagShape::random_layered(4, 4).with_loopback(2);
        let a = shape.structure(9);
        let b = shape.structure(9);
        assert_eq!(a.starts, b.starts);
        assert_eq!(a.window(), b.window());
        for t in 0..a.total_tasks() {
            assert_eq!(a.deps_of(t), b.deps_of(t));
        }
        let c = shape.structure(10);
        assert!(
            a.starts != c.starts || (0..a.total_tasks()).any(|t| a.deps_of(t) != c.deps_of(t)),
            "different seeds should perturb the structure"
        );
    }

    #[test]
    fn depth_of_matches_the_dependency_dp() {
        for shape in [
            DagShape::fan_out_fan_in(5).with_loopback(2),
            DagShape::pipeline(7).with_loopback(3),
            DagShape::diamond(3, 4).with_loopback(2),
            DagShape::random_layered(4, 4).with_loopback(1),
        ] {
            let s = shape.structure(13);
            let mut dp = vec![0u32; s.total_tasks()];
            for t in 0..s.total_tasks() {
                dp[t] = s
                    .deps_of(t)
                    .iter()
                    .map(|&d| dp[d as usize] + 1)
                    .max()
                    .unwrap_or(0);
                assert_eq!(s.depth_of(t), dp[t], "{shape:?} task {t}");
            }
            assert!(dp.iter().any(|&d| d > 0), "{shape:?} has depth somewhere");
        }
    }

    #[test]
    fn shaped_streams_stamp_the_same_features_as_materialized_builds() {
        let shape = DagShape::random_layered(4, 5).with_loopback(2);
        for wf in [PaperWorkflow::Bimodal, PaperWorkflow::TopEft] {
            let spec = wf.spec(19).dag_shape(shape);
            let built = spec.materialize().unwrap();
            let mut source = spec.stream().unwrap();
            let drained: Vec<_> = std::iter::from_fn(|| source.next_task()).collect();
            assert_eq!(drained, built.tasks, "{}", wf.name());
            assert!(
                built.tasks.iter().any(|t| t.features.depth > 0),
                "{}: depth was stamped",
                wf.name()
            );
        }
    }

    #[test]
    fn by_name_covers_every_published_shape() {
        for name in SHAPE_NAMES {
            assert!(DagShape::by_name(name, 3, 4).is_some(), "{name}");
        }
        assert!(DagShape::by_name("moebius", 3, 4).is_none());
    }

    #[test]
    fn longest_path_walks_the_heavy_chain_of_a_diamond() {
        let wf = PaperWorkflow::Bimodal
            .spec(5)
            .dag_shape(DagShape::diamond(3, 6))
            .materialize()
            .expect("diamond materializes");
        let (len, path) = longest_path(&wf);
        assert!(len > 0.0);
        assert_eq!(path.first(), Some(&0), "starts at the source");
        assert_eq!(
            path.last().copied(),
            Some(wf.len() as u64 - 1),
            "ends at the sink"
        );
        let sum: f64 = path.iter().map(|&t| wf.tasks[t as usize].duration_s).sum();
        assert!((sum - len).abs() < 1e-9, "length is the path's sum");
        // Consecutive path entries are real edges.
        for w in path.windows(2) {
            assert!(wf.deps_of(w[1] as usize).contains(&w[0]));
        }
    }

    #[test]
    fn shapes_serialize_round_trip() {
        let shape = DagShape::diamond(4, 7).with_loopback(2);
        let json = serde_json::to_string(&shape).expect("serializes");
        let back: DagShape = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, shape);
    }
}
