//! A declarative workflow builder: compose multi-category workloads from
//! distribution specs.
//!
//! The built-in generators cover the paper's seven workflows; downstream
//! users studying their own applications need the same machinery with their
//! own numbers. A [`WorkflowBuilder`] stacks [`CategorySpec`]s — each a
//! (count, cores, memory, disk, duration) bundle — in submission order,
//! optionally interleaved, and produces a validated [`Workflow`].
//!
//! ```
//! use tora_workloads::builder::{CategorySpec, WorkflowBuilder};
//! use tora_workloads::dist::Dist;
//!
//! let wf = WorkflowBuilder::new("etl")
//!     .category(CategorySpec {
//!         name: "extract".into(),
//!         count: 50,
//!         cores: Dist::Constant(1.0),
//!         memory_mb: Dist::Normal { mean: 512.0, std_dev: 64.0, min: 64.0 },
//!         disk_mb: Dist::Constant(2048.0),
//!         duration_s: Dist::Uniform { lo: 20.0, hi: 60.0 },
//!     })
//!     .category(CategorySpec {
//!         name: "transform".into(),
//!         count: 200,
//!         cores: Dist::Uniform { lo: 1.0, hi: 4.0 },
//!         memory_mb: Dist::Exponential { offset: 256.0, mean: 512.0, max: 16384.0 },
//!         disk_mb: Dist::Constant(512.0),
//!         duration_s: Dist::Uniform { lo: 60.0, hi: 300.0 },
//!     })
//!     .interleave(true)
//!     .build(42);
//! assert_eq!(wf.len(), 250);
//! assert_eq!(wf.categories, vec!["extract".to_string(), "transform".to_string()]);
//! ```

use crate::dist::Dist;
use crate::workflow::Workflow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tora_alloc::resources::{ResourceVector, WorkerSpec};
use tora_alloc::task::TaskSpec;

/// One task category's generation recipe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategorySpec {
    /// Display name.
    pub name: String,
    /// Number of tasks.
    pub count: usize,
    /// Peak core consumption.
    pub cores: Dist,
    /// Peak memory consumption, MB.
    pub memory_mb: Dist,
    /// Peak disk consumption, MB.
    pub disk_mb: Dist,
    /// Execution time, seconds (sampled values are floored at 1 ms).
    pub duration_s: Dist,
}

/// Builds multi-category workflows from [`CategorySpec`]s.
#[derive(Debug, Clone)]
pub struct WorkflowBuilder {
    name: String,
    categories: Vec<CategorySpec>,
    worker: WorkerSpec,
    interleave: bool,
}

impl WorkflowBuilder {
    /// Start a builder for a named workflow on the paper's worker shape.
    pub fn new(name: impl Into<String>) -> Self {
        WorkflowBuilder {
            name: name.into(),
            categories: Vec::new(),
            worker: WorkerSpec::paper_default(),
            interleave: false,
        }
    }

    /// Append a category (submitted after the previous ones unless
    /// [`interleave`](Self::interleave) is set).
    pub fn category(mut self, spec: CategorySpec) -> Self {
        self.categories.push(spec);
        self
    }

    /// Override the worker shape.
    pub fn worker(mut self, worker: WorkerSpec) -> Self {
        self.worker = worker;
        self
    }

    /// Shuffle all categories together in the submission order instead of
    /// submitting them phase-by-phase.
    pub fn interleave(mut self, yes: bool) -> Self {
        self.interleave = yes;
        self
    }

    /// Materialize the workflow (deterministic in `seed`).
    ///
    /// # Panics
    /// If no category was added, or a sampled peak exceeds the worker (the
    /// builder clamps to capacity, so this only fires for zero/negative
    /// capacities).
    pub fn build(&self, seed: u64) -> Workflow {
        assert!(!self.categories.is_empty(), "no categories specified");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB111_D3E5);
        // Draw the category sequence first so per-category sample streams
        // stay stable under reordering.
        let mut order: Vec<u32> = self
            .categories
            .iter()
            .enumerate()
            .flat_map(|(c, spec)| std::iter::repeat_n(c as u32, spec.count))
            .collect();
        if self.interleave {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
        }
        let cap = self.worker.capacity;
        let tasks: Vec<TaskSpec> = order
            .iter()
            .enumerate()
            .map(|(id, &c)| {
                let spec = &self.categories[c as usize];
                let peak = ResourceVector::new(
                    spec.cores.sample(&mut rng).max(0.0),
                    spec.memory_mb.sample(&mut rng).max(0.0),
                    spec.disk_mb.sample(&mut rng).max(0.0),
                )
                .clamp_to(&cap);
                let duration = spec.duration_s.sample(&mut rng).max(1e-3);
                TaskSpec::new(id as u64, c, peak, duration)
            })
            .collect();
        Workflow::new(
            self.name.clone(),
            self.categories.iter().map(|c| c.name.clone()).collect(),
            tasks,
            self.worker,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tora_alloc::task::CategoryId;

    fn two_category_builder() -> WorkflowBuilder {
        WorkflowBuilder::new("demo")
            .category(CategorySpec {
                name: "small".into(),
                count: 60,
                cores: Dist::Constant(1.0),
                memory_mb: Dist::Normal {
                    mean: 200.0,
                    std_dev: 20.0,
                    min: 50.0,
                },
                disk_mb: Dist::Constant(306.0),
                duration_s: Dist::Uniform { lo: 10.0, hi: 50.0 },
            })
            .category(CategorySpec {
                name: "big".into(),
                count: 40,
                cores: Dist::Uniform { lo: 2.0, hi: 6.0 },
                memory_mb: Dist::Normal {
                    mean: 4000.0,
                    std_dev: 300.0,
                    min: 1000.0,
                },
                disk_mb: Dist::Constant(306.0),
                duration_s: Dist::Uniform {
                    lo: 60.0,
                    hi: 120.0,
                },
            })
    }

    #[test]
    fn phased_build_orders_categories() {
        let wf = two_category_builder().build(1);
        wf.validate().unwrap();
        assert_eq!(wf.len(), 100);
        assert_eq!(wf.category_counts(), vec![60, 40]);
        // Phase order preserved without interleaving.
        assert!(wf.tasks[..60].iter().all(|t| t.category == CategoryId(0)));
        assert!(wf.tasks[60..].iter().all(|t| t.category == CategoryId(1)));
    }

    #[test]
    fn interleaved_build_mixes_categories() {
        let wf = two_category_builder().interleave(true).build(1);
        wf.validate().unwrap();
        assert_eq!(wf.category_counts(), vec![60, 40]);
        let first_60_smalls = wf.tasks[..60]
            .iter()
            .filter(|t| t.category == CategoryId(0))
            .count();
        assert!(first_60_smalls < 60, "interleave left the phases intact");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let b = two_category_builder();
        let a1 = b.build(9);
        let a2 = b.build(9);
        let other = b.build(10);
        assert_eq!(a1.tasks, a2.tasks);
        assert_ne!(a1.tasks, other.tasks);
    }

    #[test]
    fn peaks_clamped_to_custom_worker() {
        let tiny = WorkerSpec::new(
            ResourceVector::new(2.0, 1000.0, 1000.0)
                .with(tora_alloc::resources::ResourceKind::TimeS, 1e7),
        );
        let wf = two_category_builder().worker(tiny).build(3);
        wf.validate().unwrap();
        assert!(wf.tasks.iter().all(|t| t.peak.memory_mb() <= 1000.0));
        assert!(wf.tasks.iter().all(|t| t.peak.cores() <= 2.0));
    }

    #[test]
    #[should_panic(expected = "no categories")]
    fn empty_builder_rejected() {
        WorkflowBuilder::new("empty").build(1);
    }
}
