//! The catalog of the paper's seven evaluation workflows (Figures 5 and 6).

use crate::synthetic::{self, SyntheticKind};
use crate::workflow::Workflow;
use crate::{colmena, topeft};
use serde::{Deserialize, Serialize};

/// One of the seven workflows of §V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperWorkflow {
    /// Synthetic, memory ~ Normal.
    Normal,
    /// Synthetic, memory ~ Uniform.
    Uniform,
    /// Synthetic, memory ~ Exponential (outliers).
    Exponential,
    /// Synthetic, memory ~ Bimodal (task specialization).
    Bimodal,
    /// Synthetic, phasing trimodal (moving distribution).
    Trimodal,
    /// Production trace: ColmenaXTB.
    ColmenaXtb,
    /// Production trace: TopEFT.
    TopEft,
}

impl PaperWorkflow {
    /// All seven, in the paper's figure order.
    pub const ALL: [PaperWorkflow; 7] = [
        PaperWorkflow::Normal,
        PaperWorkflow::Uniform,
        PaperWorkflow::Exponential,
        PaperWorkflow::Bimodal,
        PaperWorkflow::Trimodal,
        PaperWorkflow::ColmenaXtb,
        PaperWorkflow::TopEft,
    ];

    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            PaperWorkflow::Normal => "normal",
            PaperWorkflow::Uniform => "uniform",
            PaperWorkflow::Exponential => "exponential",
            PaperWorkflow::Bimodal => "bimodal",
            PaperWorkflow::Trimodal => "trimodal",
            PaperWorkflow::ColmenaXtb => "colmena-xtb",
            PaperWorkflow::TopEft => "topeft",
        }
    }

    /// Materialize the workflow trace for a seed.
    pub fn build(self, seed: u64) -> Workflow {
        match self {
            PaperWorkflow::Normal => synthetic::paper_workflow(SyntheticKind::Normal, seed),
            PaperWorkflow::Uniform => synthetic::paper_workflow(SyntheticKind::Uniform, seed),
            PaperWorkflow::Exponential => {
                synthetic::paper_workflow(SyntheticKind::Exponential, seed)
            }
            PaperWorkflow::Bimodal => synthetic::paper_workflow(SyntheticKind::Bimodal, seed),
            PaperWorkflow::Trimodal => {
                synthetic::paper_workflow(SyntheticKind::PhasingTrimodal, seed)
            }
            PaperWorkflow::ColmenaXtb => colmena::paper_workflow(seed),
            PaperWorkflow::TopEft => topeft::paper_workflow(seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_build_and_validate() {
        for wf in PaperWorkflow::ALL {
            let built = wf.build(1);
            built.validate().unwrap();
            assert_eq!(built.name, wf.name());
            assert!(!built.is_empty());
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            PaperWorkflow::ALL.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 7);
    }
}
