//! The catalog of the paper's seven evaluation workflows (Figures 5 and 6).

use crate::spec::WorkloadSpec;
use crate::synthetic::SyntheticKind;
use crate::workflow::Workflow;
use crate::{colmena, topeft};
use serde::{Deserialize, Serialize};

/// One of the seven workflows of §V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperWorkflow {
    /// Synthetic, memory ~ Normal.
    Normal,
    /// Synthetic, memory ~ Uniform.
    Uniform,
    /// Synthetic, memory ~ Exponential (outliers).
    Exponential,
    /// Synthetic, memory ~ Bimodal (task specialization).
    Bimodal,
    /// Synthetic, phasing trimodal (moving distribution).
    Trimodal,
    /// Production trace: ColmenaXTB.
    ColmenaXtb,
    /// Production trace: TopEFT.
    TopEft,
}

impl PaperWorkflow {
    /// All seven, in the paper's figure order.
    pub const ALL: [PaperWorkflow; 7] = [
        PaperWorkflow::Normal,
        PaperWorkflow::Uniform,
        PaperWorkflow::Exponential,
        PaperWorkflow::Bimodal,
        PaperWorkflow::Trimodal,
        PaperWorkflow::ColmenaXtb,
        PaperWorkflow::TopEft,
    ];

    /// Report label.
    pub fn name(self) -> &'static str {
        match self {
            PaperWorkflow::Normal => "normal",
            PaperWorkflow::Uniform => "uniform",
            PaperWorkflow::Exponential => "exponential",
            PaperWorkflow::Bimodal => "bimodal",
            PaperWorkflow::Trimodal => "trimodal",
            PaperWorkflow::ColmenaXtb => "colmena-xtb",
            PaperWorkflow::TopEft => "topeft",
        }
    }

    /// A [`WorkloadSpec`] for this workflow — the entry point for scaling,
    /// DAG structure and streaming generation.
    pub fn spec(self, seed: u64) -> WorkloadSpec {
        WorkloadSpec::new(self, seed)
    }

    /// Materialize the workflow trace for a seed at the paper's task counts.
    pub fn build(self, seed: u64) -> Workflow {
        self.spec(seed)
            .materialize()
            .expect("paper spec is always valid")
    }

    /// The synthetic distribution behind this workflow, if it is one of the
    /// five §V-B synthetics.
    pub fn synthetic_kind(self) -> Option<SyntheticKind> {
        match self {
            PaperWorkflow::Normal => Some(SyntheticKind::Normal),
            PaperWorkflow::Uniform => Some(SyntheticKind::Uniform),
            PaperWorkflow::Exponential => Some(SyntheticKind::Exponential),
            PaperWorkflow::Bimodal => Some(SyntheticKind::Bimodal),
            PaperWorkflow::Trimodal => Some(SyntheticKind::PhasingTrimodal),
            PaperWorkflow::ColmenaXtb | PaperWorkflow::TopEft => None,
        }
    }

    /// Category display names, in category-id order.
    pub fn category_names(self) -> Vec<String> {
        match self {
            PaperWorkflow::ColmenaXtb => vec![
                "evaluate_mpnn".to_string(),
                "compute_atomization_energy".to_string(),
            ],
            PaperWorkflow::TopEft => vec![
                "preprocessing".to_string(),
                "processing".to_string(),
                "accumulating".to_string(),
            ],
            synth => vec![synth.name().to_string()],
        }
    }

    /// The paper's per-category task counts, in category-id order.
    pub fn paper_category_counts(self) -> Vec<usize> {
        match self {
            PaperWorkflow::ColmenaXtb => {
                vec![colmena::EVALUATE_MPNN_TASKS, colmena::COMPUTE_ENERGY_TASKS]
            }
            PaperWorkflow::TopEft => vec![
                topeft::PREPROCESSING_TASKS,
                topeft::PROCESSING_TASKS,
                topeft::ACCUMULATING_TASKS,
            ],
            _ => vec![crate::synthetic::PAPER_TASK_COUNT],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_seven_build_and_validate() {
        for wf in PaperWorkflow::ALL {
            let built = wf.build(1);
            built.validate().unwrap();
            assert_eq!(built.name, wf.name());
            assert!(!built.is_empty());
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            PaperWorkflow::ALL.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), 7);
    }
}
