//! Distribution samplers for workload generation.
//!
//! The synthetic workflows of §V-B sample task resource consumption from
//! Normal, Uniform, Exponential and mixture distributions. These samplers
//! are hand-written on top of `rand`'s uniform source (Box–Muller for the
//! normal, inverse CDF for the exponential) so the workload crate needs no
//! further dependencies and results are reproducible from a seed alone.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Draw from a normal distribution via the Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    debug_assert!(std_dev >= 0.0);
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std_dev * z
}

/// Draw from an exponential distribution with the given mean (inverse CDF).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

/// Draw uniformly from `[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    debug_assert!(hi >= lo);
    lo + (hi - lo) * rng.gen::<f64>()
}

/// Draw from a log-normal distribution with the given *underlying* normal
/// parameters.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// A serializable distribution description, used by the workload generators
/// so experiment configurations can be recorded alongside results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// A fixed value.
    Constant(f64),
    /// Normal(mean, std dev), truncated below at `min`.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
        /// Truncation floor.
        min: f64,
    },
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f64,
        /// Upper bound (exclusive).
        hi: f64,
    },
    /// `offset + Exponential(mean)`, truncated above at `max`.
    Exponential {
        /// Additive offset (the distribution's minimum).
        offset: f64,
        /// Mean of the exponential part.
        mean: f64,
        /// Truncation ceiling.
        max: f64,
    },
    /// Two-component normal mixture: with probability `p_low` draw
    /// `Normal(low_mean, low_std)`, otherwise `Normal(high_mean, high_std)`;
    /// truncated below at `min`.
    Bimodal {
        /// Probability of the low mode.
        p_low: f64,
        /// Low-mode mean.
        low_mean: f64,
        /// Low-mode std dev.
        low_std: f64,
        /// High-mode mean.
        high_mean: f64,
        /// High-mode std dev.
        high_std: f64,
        /// Truncation floor.
        min: f64,
    },
}

impl Dist {
    /// Sample one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Normal { mean, std_dev, min } => normal(rng, mean, std_dev).max(min),
            Dist::Uniform { lo, hi } => uniform(rng, lo, hi),
            Dist::Exponential { offset, mean, max } => (offset + exponential(rng, mean)).min(max),
            Dist::Bimodal {
                p_low,
                low_mean,
                low_std,
                high_mean,
                high_std,
                min,
            } => {
                let v = if rng.gen::<f64>() < p_low {
                    normal(rng, low_mean, low_std)
                } else {
                    normal(rng, high_mean, high_std)
                };
                v.max(min)
            }
        }
    }

    /// The theoretical mean (truncation ignored; used only for sanity tests
    /// and documentation).
    pub fn untruncated_mean(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Normal { mean, .. } => mean,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exponential { offset, mean, .. } => offset + mean,
            Dist::Bimodal {
                p_low,
                low_mean,
                high_mean,
                ..
            } => p_low * low_mean + (1.0 - p_low) * high_mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xD15C0)
    }

    fn sample_mean(dist: &Dist, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| dist.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn normal_sample_mean_and_spread() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 8.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 8.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_sample_mean() {
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| exponential(&mut r, 3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
        // Exponential values are strictly positive.
        assert!((0..1000).all(|_| exponential(&mut r, 3.0) > 0.0));
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = uniform(&mut r, 2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
        }
    }

    #[test]
    fn lognormal_is_positive_and_skewed() {
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| lognormal(&mut r, 0.0, 1.0)).collect();
        assert!(samples.iter().all(|&v| v > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "lognormal should be right-skewed");
    }

    #[test]
    fn dist_enum_means_track_theory() {
        let cases = [
            (Dist::Constant(5.0), 5.0),
            (
                Dist::Normal {
                    mean: 4000.0,
                    std_dev: 500.0,
                    min: 0.0,
                },
                4000.0,
            ),
            (Dist::Uniform { lo: 10.0, hi: 20.0 }, 15.0),
            (
                Dist::Exponential {
                    offset: 100.0,
                    mean: 400.0,
                    max: 1e12,
                },
                500.0,
            ),
            (
                Dist::Bimodal {
                    p_low: 0.5,
                    low_mean: 100.0,
                    low_std: 5.0,
                    high_mean: 300.0,
                    high_std: 5.0,
                    min: 0.0,
                },
                200.0,
            ),
        ];
        for (d, expect) in cases {
            assert_eq!(d.untruncated_mean(), expect);
            let m = sample_mean(&d, 20_000);
            assert!(
                (m - expect).abs() / expect < 0.05,
                "{d:?}: sample mean {m}, expected {expect}"
            );
        }
    }

    #[test]
    fn truncations_apply() {
        let mut r = rng();
        let floor = Dist::Normal {
            mean: 0.0,
            std_dev: 10.0,
            min: 0.5,
        };
        assert!((0..2000).all(|_| floor.sample(&mut r) >= 0.5));
        let cap = Dist::Exponential {
            offset: 0.0,
            mean: 100.0,
            max: 50.0,
        };
        assert!((0..2000).all(|_| cap.sample(&mut r) <= 50.0));
    }

    #[test]
    fn bimodal_produces_two_modes() {
        let d = Dist::Bimodal {
            p_low: 0.5,
            low_mean: 100.0,
            low_std: 5.0,
            high_mean: 1000.0,
            high_std: 5.0,
            min: 0.0,
        };
        let mut r = rng();
        let (mut low, mut high) = (0usize, 0usize);
        for _ in 0..4000 {
            let v = d.sample(&mut r);
            if v < 500.0 {
                low += 1;
            } else {
                high += 1;
            }
        }
        assert!(low > 1500 && high > 1500, "low {low}, high {high}");
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let d = Dist::Normal {
            mean: 10.0,
            std_dev: 2.0,
            min: 0.0,
        };
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let va: Vec<f64> = (0..100).map(|_| d.sample(&mut a)).collect();
        let vb: Vec<f64> = (0..100).map(|_| d.sample(&mut b)).collect();
        assert_eq!(va, vb);
    }
}
