//! ColmenaXTB trace synthesizer.
//!
//! ColmenaXTB (§III) drives a molecular search campaign with two functions:
//! `evaluate_mpnn` (neural-network ranking of candidate molecules) and
//! `compute_atomization_energy` (energy computation for top-ranked
//! molecules). The real resource logs are not redistributable, so this
//! module synthesizes a statistically matched trace from every quantitative
//! detail in §III-B and Figure 2 (top row):
//!
//! * 228 `evaluate_mpnn` tasks followed by 1000
//!   `compute_atomization_energy` tasks — the *phasing* behaviour (the
//!   application first ranks all molecules, then processes the top ranked);
//! * `evaluate_mpnn` memory 1.0–1.2 GB; `compute_atomization_energy`
//!   memory ≈ 200 MB — *specialization of tasks*;
//! * `compute_atomization_energy` cores "not consistent at all, ranging
//!   from 0.9 to 3.6 cores" — *inherent stochasticity*;
//! * disk ≈ 10 MB for all tasks (§V-C: "the low disk consumption of tasks
//!   in ColmenaXTB (around 10 MBs)"), which drives the single-digit disk
//!   efficiency every algorithm shows on this workflow.

use crate::dist::{lognormal, uniform, Dist};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tora_alloc::resources::ResourceVector;
use tora_alloc::task::TaskSpec;

/// `evaluate_mpnn` task count in the paper's trace.
pub const EVALUATE_MPNN_TASKS: usize = 228;
/// `compute_atomization_energy` task count in the paper's trace.
pub const COMPUTE_ENERGY_TASKS: usize = 1000;

/// Category id of `evaluate_mpnn`.
pub const CAT_EVALUATE_MPNN: u32 = 0;
/// Category id of `compute_atomization_energy`.
pub const CAT_COMPUTE_ENERGY: u32 = 1;

/// The dedicated ColmenaXTB-generation RNG stream for a seed.
pub(crate) fn stream_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0xC01_3EA)
}

/// Sample task `index` given the phase split — the single canonical draw
/// order shared by the materialized and streaming paths. Tasks before
/// `n_evaluate` are `evaluate_mpnn`, the rest `compute_atomization_energy`.
pub(crate) fn sample_task(index: usize, n_evaluate: usize, rng: &mut StdRng) -> TaskSpec {
    if index < n_evaluate {
        // Phase 1: evaluate_mpnn — memory 1.0–1.2 GB, ~1 core, ~10 MB disk.
        let mpnn_mem = Dist::Uniform {
            lo: 1024.0,
            hi: 1228.0,
        };
        let mpnn_cores = Dist::Normal {
            mean: 1.0,
            std_dev: 0.05,
            min: 0.5,
        };
        let peak = ResourceVector::new(mpnn_cores.sample(rng), mpnn_mem.sample(rng), disk_mb(rng));
        // GPU-accelerated inference batches: a couple of minutes each.
        let duration = lognormal(rng, 120.0f64.ln(), 0.3).clamp(30.0, 600.0);
        TaskSpec::new(index as u64, CAT_EVALUATE_MPNN, peak, duration)
    } else {
        // Phase 2: compute_atomization_energy — ~200 MB memory, wildly
        // varying core usage (0.9–3.6), ~10 MB disk.
        let energy_mem = Dist::Normal {
            mean: 200.0,
            std_dev: 15.0,
            min: 120.0,
        };
        let peak =
            ResourceVector::new(uniform(rng, 0.9, 3.6), energy_mem.sample(rng), disk_mb(rng));
        // Molecular-dynamics runs: broad duration spread.
        let duration = lognormal(rng, 180.0f64.ln(), 0.6).clamp(20.0, 1800.0);
        TaskSpec::new(index as u64, CAT_COMPUTE_ENERGY, peak, duration)
    }
}

/// All ColmenaXTB tasks use roughly 10 MB of disk.
fn disk_mb(rng: &mut StdRng) -> f64 {
    uniform(rng, 8.0, 12.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::PaperWorkflow;
    use tora_alloc::task::CategoryId;

    #[test]
    fn paper_counts_and_structure() {
        let wf = PaperWorkflow::ColmenaXtb.build(1);
        assert_eq!(wf.len(), 1228);
        assert_eq!(wf.category_counts(), vec![228, 1000]);
        wf.validate().unwrap();
        // Phasing: every evaluate_mpnn precedes every compute task.
        let last_mpnn = wf
            .tasks
            .iter()
            .filter(|t| t.category == CategoryId(CAT_EVALUATE_MPNN))
            .map(|t| t.id.0)
            .max()
            .unwrap();
        let first_energy = wf
            .tasks
            .iter()
            .filter(|t| t.category == CategoryId(CAT_COMPUTE_ENERGY))
            .map(|t| t.id.0)
            .min()
            .unwrap();
        assert!(last_mpnn < first_energy);
    }

    #[test]
    fn memory_specialization_between_categories() {
        let wf = PaperWorkflow::ColmenaXtb.build(2);
        for t in wf.tasks_of(CategoryId(CAT_EVALUATE_MPNN)) {
            assert!(
                (1024.0..1228.0).contains(&t.peak.memory_mb()),
                "{}: {}",
                t.id,
                t.peak.memory_mb()
            );
        }
        let energy_mean = wf
            .tasks_of(CategoryId(CAT_COMPUTE_ENERGY))
            .map(|t| t.peak.memory_mb())
            .sum::<f64>()
            / 1000.0;
        assert!((energy_mean - 200.0).abs() < 10.0, "{energy_mean}");
    }

    #[test]
    fn energy_cores_span_the_documented_range() {
        let wf = PaperWorkflow::ColmenaXtb.build(3);
        let cores: Vec<f64> = wf
            .tasks_of(CategoryId(CAT_COMPUTE_ENERGY))
            .map(|t| t.peak.cores())
            .collect();
        let min = cores.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = cores.iter().cloned().fold(0.0, f64::max);
        assert!((0.9..1.2).contains(&min), "min {min}");
        assert!(max > 3.2 && max <= 3.6, "max {max}");
    }

    #[test]
    fn disk_is_tiny_everywhere() {
        let wf = PaperWorkflow::ColmenaXtb.build(4);
        assert!(wf.tasks.iter().all(|t| t.peak.disk_mb() < 12.5));
        assert!(wf.tasks.iter().all(|t| t.peak.disk_mb() >= 8.0));
    }

    #[test]
    fn determinism_and_custom_sizes() {
        assert_eq!(
            PaperWorkflow::ColmenaXtb.build(5).tasks,
            PaperWorkflow::ColmenaXtb.build(5).tasks
        );
        let big = PaperWorkflow::ColmenaXtb
            .spec(6)
            .category_tasks(vec![500, 10_000])
            .materialize()
            .unwrap();
        assert_eq!(big.len(), 10_500);
        big.validate().unwrap();
    }
}
