//! The workflow container: a named, ordered stream of tasks plus category
//! metadata and the worker shape the workflow expects.

use crate::error::WorkloadError;
use serde::{Deserialize, Serialize};
use tora_alloc::resources::WorkerSpec;
use tora_alloc::task::{CategoryId, TaskSpec};

/// A fully materialized workflow trace: every task's (hidden) ground truth in
/// submission order.
///
/// The allocator never sees the peaks directly — only completed-task records
/// — so generating the whole trace up front does not violate the paper's
/// online setting; it simply plays the role of the physical experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workflow {
    /// Workflow name as used in the paper's figures (e.g. `normal`,
    /// `colmena-xtb`).
    pub name: String,
    /// Category display names; index is the [`CategoryId`].
    pub categories: Vec<String>,
    /// Tasks in submission order; `tasks[i].id == i`.
    pub tasks: Vec<TaskSpec>,
    /// Worker shape tasks are meant to run on (16 cores / 64 GB / 64 GB in
    /// every paper experiment).
    pub worker: WorkerSpec,
    /// Dependency lists: `dependencies[i]` holds the predecessor task ids of
    /// task `i`, each strictly smaller than `i` (dynamic workflows generate
    /// dependents after their inputs, so the submission order is always a
    /// topological order — Fig. 1's workflow manager "constructs a
    /// dependency graph between tasks and passes ready tasks on"). Empty
    /// when the workflow is a bag of independent tasks.
    #[serde(default)]
    pub dependencies: Vec<Vec<u64>>,
}

impl Workflow {
    /// Build and validate a workflow.
    ///
    /// # Panics
    /// If task ids are not `0..n` in order, a category id is out of range,
    /// or any task does not fit the worker (such a task could never succeed
    /// under §II-B assumption 4).
    pub fn new(
        name: impl Into<String>,
        categories: Vec<String>,
        tasks: Vec<TaskSpec>,
        worker: WorkerSpec,
    ) -> Self {
        let wf = Workflow {
            name: name.into(),
            categories,
            tasks,
            worker,
            dependencies: Vec::new(),
        };
        wf.validate().expect("invalid workflow");
        wf
    }

    /// Attach dependency lists (`deps[i]` = predecessor ids of task `i`)
    /// and stamp each task's DAG depth (longest dependency chain below it)
    /// into its feature vector, so depth-conditioned estimators see the
    /// same features here as on the streaming path.
    ///
    /// # Panics
    /// If the result is invalid (wrong length, forward/self dependencies).
    pub fn with_dependencies(mut self, dependencies: Vec<Vec<u64>>) -> Self {
        self.dependencies = dependencies;
        self.validate().expect("invalid dependencies");
        let mut depth = vec![0u32; self.tasks.len()];
        for i in 0..self.tasks.len() {
            let d = self
                .deps_of(i)
                .iter()
                .map(|&p| depth[p as usize] + 1)
                .max()
                .unwrap_or(0);
            depth[i] = d;
            self.tasks[i].features.depth = d;
        }
        self
    }

    /// Predecessors of one task (empty for independent tasks).
    pub fn deps_of(&self, task: usize) -> &[u64] {
        self.dependencies
            .get(task)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Whether any task has predecessors.
    pub fn has_dependencies(&self) -> bool {
        self.dependencies.iter().any(|d| !d.is_empty())
    }

    /// Check the structural invariants described on [`Workflow::new`].
    pub fn validate(&self) -> Result<(), WorkloadError> {
        for (i, t) in self.tasks.iter().enumerate() {
            if t.id.0 != i as u64 {
                return Err(WorkloadError::invalid(format!(
                    "task at position {i} has id {}",
                    t.id
                )));
            }
            if t.category.0 as usize >= self.categories.len() {
                return Err(WorkloadError::invalid(format!(
                    "{}: category {} unknown",
                    t.id, t.category
                )));
            }
            if !self.worker.capacity.dominates(&t.peak) {
                return Err(WorkloadError::invalid(format!(
                    "{}: peak {} exceeds worker capacity {}",
                    t.id, t.peak, self.worker.capacity
                )));
            }
        }
        if !self.dependencies.is_empty() {
            if self.dependencies.len() != self.tasks.len() {
                return Err(WorkloadError::invalid(format!(
                    "dependency lists cover {} of {} tasks",
                    self.dependencies.len(),
                    self.tasks.len()
                )));
            }
            for (i, deps) in self.dependencies.iter().enumerate() {
                for &d in deps {
                    if d >= i as u64 {
                        return Err(WorkloadError::invalid(format!(
                            "task {i} depends on {d}: predecessors must be \
                             earlier submissions (the submission order is the \
                             topological order)"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the workflow has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Display name of a category.
    pub fn category_name(&self, category: CategoryId) -> &str {
        &self.categories[category.0 as usize]
    }

    /// Tasks of one category, in submission order.
    pub fn tasks_of(&self, category: CategoryId) -> impl Iterator<Item = &TaskSpec> {
        self.tasks.iter().filter(move |t| t.category == category)
    }

    /// Count tasks per category.
    pub fn category_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.categories.len()];
        for t in &self.tasks {
            counts[t.category.0 as usize] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tora_alloc::resources::ResourceVector;

    fn task(id: u64, category: u32) -> TaskSpec {
        TaskSpec::new(id, category, ResourceVector::new(1.0, 100.0, 10.0), 5.0)
    }

    #[test]
    fn valid_workflow_roundtrip() {
        let wf = Workflow::new(
            "demo",
            vec!["a".into(), "b".into()],
            vec![task(0, 0), task(1, 1), task(2, 0)],
            WorkerSpec::paper_default(),
        );
        assert_eq!(wf.len(), 3);
        assert_eq!(wf.category_counts(), vec![2, 1]);
        assert_eq!(wf.category_name(CategoryId(1)), "b");
        assert_eq!(wf.tasks_of(CategoryId(0)).count(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid workflow")]
    fn out_of_order_ids_rejected() {
        Workflow::new(
            "bad",
            vec!["a".into()],
            vec![task(1, 0)],
            WorkerSpec::paper_default(),
        );
    }

    #[test]
    #[should_panic(expected = "invalid workflow")]
    fn unknown_category_rejected() {
        Workflow::new(
            "bad",
            vec!["a".into()],
            vec![task(0, 3)],
            WorkerSpec::paper_default(),
        );
    }

    #[test]
    fn oversized_task_rejected() {
        let huge = TaskSpec::new(0, 0, ResourceVector::new(64.0, 100.0, 10.0), 5.0);
        let wf = Workflow {
            name: "bad".into(),
            categories: vec!["a".into()],
            tasks: vec![huge],
            worker: WorkerSpec::paper_default(),
            dependencies: Vec::new(),
        };
        assert!(wf.validate().is_err());
    }

    #[test]
    fn dependencies_validate_and_query() {
        let wf = Workflow::new(
            "dag",
            vec!["a".into()],
            vec![task(0, 0), task(1, 0), task(2, 0)],
            WorkerSpec::paper_default(),
        )
        .with_dependencies(vec![vec![], vec![0], vec![0, 1]]);
        assert!(wf.has_dependencies());
        assert_eq!(wf.deps_of(0), &[] as &[u64]);
        assert_eq!(wf.deps_of(2), &[0, 1]);
        // A dependency-free workflow reports none.
        let free = Workflow::new(
            "flat",
            vec!["a".into()],
            vec![task(0, 0)],
            WorkerSpec::paper_default(),
        );
        assert!(!free.has_dependencies());
        assert_eq!(free.deps_of(0), &[] as &[u64]);
    }

    #[test]
    #[should_panic(expected = "invalid dependencies")]
    fn forward_dependency_rejected() {
        Workflow::new(
            "bad-dag",
            vec!["a".into()],
            vec![task(0, 0), task(1, 0)],
            WorkerSpec::paper_default(),
        )
        .with_dependencies(vec![vec![1], vec![]]);
    }

    #[test]
    #[should_panic(expected = "invalid dependencies")]
    fn self_dependency_rejected() {
        Workflow::new(
            "bad-dag",
            vec!["a".into()],
            vec![task(0, 0)],
            WorkerSpec::paper_default(),
        )
        .with_dependencies(vec![vec![0]]);
    }

    #[test]
    #[should_panic(expected = "invalid dependencies")]
    fn wrong_length_dependency_list_rejected() {
        Workflow::new(
            "bad-dag",
            vec!["a".into()],
            vec![task(0, 0), task(1, 0)],
            WorkerSpec::paper_default(),
        )
        .with_dependencies(vec![vec![]]);
    }
}
