//! Workflow trace serialization.
//!
//! Traces are stored as JSON so experiment inputs can be pinned, shared, and
//! re-run bit-for-bit — the role the paper's published log archive plays
//! (the footnote in §V links the original logs; ours regenerate from seeds
//! but can also be exported and re-imported through this module).

use crate::error::WorkloadError;
use crate::workflow::Workflow;
use std::io::{Read, Write};
use std::path::Path;

/// Serialize a workflow to pretty-printed JSON.
pub fn to_json(workflow: &Workflow) -> serde_json::Result<String> {
    serde_json::to_string_pretty(workflow)
}

/// Parse a workflow from JSON and validate it.
pub fn from_json(text: &str) -> Result<Workflow, WorkloadError> {
    let wf: Workflow = serde_json::from_str(text).map_err(|e| WorkloadError::Parse {
        reason: e.to_string(),
    })?;
    wf.validate()?;
    Ok(wf)
}

/// Write a workflow to a file.
pub fn save(workflow: &Workflow, path: &Path) -> Result<(), WorkloadError> {
    let io_err = |e: std::io::Error| WorkloadError::Io {
        path: path.display().to_string(),
        reason: e.to_string(),
    };
    let json = to_json(workflow).map_err(|e| WorkloadError::Parse {
        reason: e.to_string(),
    })?;
    let mut file = std::fs::File::create(path).map_err(io_err)?;
    file.write_all(json.as_bytes()).map_err(io_err)
}

/// Read and validate a workflow from a file.
pub fn load(path: &Path) -> Result<Workflow, WorkloadError> {
    let io_err = |e: std::io::Error| WorkloadError::Io {
        path: path.display().to_string(),
        reason: e.to_string(),
    };
    let mut text = String::new();
    std::fs::File::open(path)
        .map_err(io_err)?
        .read_to_string(&mut text)
        .map_err(io_err)?;
    from_json(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticKind;

    #[test]
    fn json_roundtrip_preserves_everything() {
        let wf = SyntheticKind::Bimodal
            .catalog_workflow()
            .spec(3)
            .tasks(50)
            .materialize()
            .unwrap();
        let json = to_json(&wf).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back.name, wf.name);
        assert_eq!(back.tasks, wf.tasks);
        assert_eq!(back.categories, wf.categories);
        assert_eq!(back.worker, wf.worker);
    }

    #[test]
    fn file_roundtrip() {
        let wf = SyntheticKind::Normal
            .catalog_workflow()
            .spec(9)
            .tasks(20)
            .materialize()
            .unwrap();
        let dir = std::env::temp_dir().join("tora-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        save(&wf, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.tasks, wf.tasks);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn invalid_traces_are_rejected() {
        assert!(from_json("not json").is_err());
        // Structurally valid JSON but semantically broken (bad task id).
        let wf = SyntheticKind::Normal
            .catalog_workflow()
            .spec(1)
            .tasks(3)
            .materialize()
            .unwrap();
        let mut json = to_json(&wf).unwrap();
        json = json.replacen("\"id\": 0", "\"id\": 7", 1);
        assert!(from_json(&json).is_err());
        assert!(load(Path::new("/nonexistent/trace.json")).is_err());
    }
}
