//! # tora-workloads — workload generators for the evaluation
//!
//! Generates the seven workflows of the paper's evaluation (§V):
//!
//! * five [`synthetic`] workflows — *Normal*, *Uniform*, *Exponential*,
//!   *Bimodal*, *Phasing Trimodal* — each 1000 single-category tasks whose
//!   consumption is sampled from the eponymous distribution (Figure 4);
//! * two production-trace synthesizers, [`colmena`] (ColmenaXTB) and
//!   [`topeft`] (TopEFT), statistically matched to the per-category counts,
//!   ranges, modes and outliers documented in §III-B / Figure 2 (the real
//!   logs are not redistributable — see DESIGN.md's substitution table).
//!
//! All generation is deterministic in a `u64` seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod catalog;
pub mod colmena;
pub mod dag;
pub mod dist;
pub mod error;
pub mod io;
pub mod perturb;
pub mod source;
pub mod spec;
pub mod synthetic;
pub mod topeft;
pub mod validate;
pub mod workflow;

pub use builder::{CategorySpec, WorkflowBuilder};
pub use catalog::PaperWorkflow;
pub use dag::{DagShape, DagSource, DagStructure};
pub use dist::Dist;
pub use error::WorkloadError;
pub use source::{CatalogSource, TaskSource};
pub use spec::WorkloadSpec;
pub use synthetic::SyntheticKind;
pub use workflow::Workflow;
