//! The five synthetic workflows of §V-B (Figure 4).
//!
//! Each workflow holds 1000 tasks of a *single* category — the paper's
//! worst case, where a category's internal spread is the whole story — and
//! samples every task's resource consumption from a characteristic
//! distribution:
//!
//! * **Normal** and **Uniform** — common randomness;
//! * **Exponential** — outliers;
//! * **Bimodal** — specialization of tasks;
//! * **Phasing Trimodal** — a moving resource distribution across three
//!   consecutive phases.
//!
//! Per §V-B, disk follows the same distribution as memory (sampled
//! independently) and cores follow a slightly different (rescaled) one.

use crate::catalog::PaperWorkflow;
use crate::dist::{lognormal, Dist};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tora_alloc::resources::{ResourceVector, WorkerSpec};
use tora_alloc::task::TaskSpec;

/// Task count used by every §V-B synthetic workflow.
pub const PAPER_TASK_COUNT: usize = 1000;

/// Which synthetic workflow to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyntheticKind {
    /// Memory ~ Normal(4000 MB, 800 MB).
    Normal,
    /// Memory ~ Uniform(1000 MB, 8000 MB).
    Uniform,
    /// Memory ~ 500 MB + Exponential(mean 2000 MB) — heavy right tail.
    Exponential,
    /// Memory ~ ½·N(2000, 250) + ½·N(6000, 400).
    Bimodal,
    /// Three consecutive phases: N(2000, 250) → N(5000, 350) → N(8000, 450).
    PhasingTrimodal,
}

impl SyntheticKind {
    /// All five, in Figure 4/5 order.
    pub const ALL: [SyntheticKind; 5] = [
        SyntheticKind::Normal,
        SyntheticKind::Uniform,
        SyntheticKind::Exponential,
        SyntheticKind::Bimodal,
        SyntheticKind::PhasingTrimodal,
    ];

    /// Workflow name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            SyntheticKind::Normal => "normal",
            SyntheticKind::Uniform => "uniform",
            SyntheticKind::Exponential => "exponential",
            SyntheticKind::Bimodal => "bimodal",
            SyntheticKind::PhasingTrimodal => "trimodal",
        }
    }

    /// The memory/disk distribution (MB) for a task at position `index` of
    /// `n` (the index only matters for the phasing workflow).
    ///
    /// Footprints sit in the single-digit-GB range (cf. the §IV-A example,
    /// memory ~ N(8 GB, 2 GB)): a couple of doublings above the 1 GB
    /// exploratory probe, and far enough below the 64 GB worker that the
    /// comparators' whole-machine exploration is costly but not fatal. The
    /// Exponential tail reaches tens of GB, supplying the outliers that make
    /// that workflow the hardest.
    pub fn memory_dist(self, index: usize, n: usize) -> Dist {
        match self {
            SyntheticKind::Normal => Dist::Normal {
                mean: 4000.0,
                std_dev: 800.0,
                min: 100.0,
            },
            SyntheticKind::Uniform => Dist::Uniform {
                lo: 1000.0,
                hi: 8000.0,
            },
            SyntheticKind::Exponential => Dist::Exponential {
                offset: 500.0,
                mean: 2000.0,
                max: 60_000.0,
            },
            SyntheticKind::Bimodal => Dist::Bimodal {
                p_low: 0.5,
                low_mean: 2000.0,
                low_std: 250.0,
                high_mean: 6000.0,
                high_std: 400.0,
                min: 100.0,
            },
            SyntheticKind::PhasingTrimodal => {
                let (mean, std_dev) = match 3 * index / n.max(1) {
                    0 => (2000.0, 250.0),
                    1 => (5000.0, 350.0),
                    _ => (8000.0, 450.0),
                };
                Dist::Normal {
                    mean,
                    std_dev,
                    min: 100.0,
                }
            }
        }
    }

    /// The cores distribution for a task at position `index` of `n` — the
    /// memory shape rescaled into the fractional-core range (§V-B: "cores
    /// have a slightly different distribution").
    pub fn cores_dist(self, index: usize, n: usize) -> Dist {
        match self {
            SyntheticKind::Normal => Dist::Normal {
                mean: 2.0,
                std_dev: 0.4,
                min: 0.1,
            },
            SyntheticKind::Uniform => Dist::Uniform { lo: 0.5, hi: 4.0 },
            SyntheticKind::Exponential => Dist::Exponential {
                offset: 0.25,
                mean: 2.5,
                max: 16.0,
            },
            SyntheticKind::Bimodal => Dist::Bimodal {
                p_low: 0.5,
                low_mean: 1.0,
                low_std: 0.15,
                high_mean: 3.0,
                high_std: 0.3,
                min: 0.1,
            },
            SyntheticKind::PhasingTrimodal => {
                let (mean, std_dev) = match 3 * index / n.max(1) {
                    0 => (1.0, 0.12),
                    1 => (2.0, 0.2),
                    _ => (3.0, 0.3),
                };
                Dist::Normal {
                    mean,
                    std_dev,
                    min: 0.1,
                }
            }
        }
    }
}

impl SyntheticKind {
    /// The catalog entry this distribution backs.
    pub fn catalog_workflow(self) -> PaperWorkflow {
        match self {
            SyntheticKind::Normal => PaperWorkflow::Normal,
            SyntheticKind::Uniform => PaperWorkflow::Uniform,
            SyntheticKind::Exponential => PaperWorkflow::Exponential,
            SyntheticKind::Bimodal => PaperWorkflow::Bimodal,
            SyntheticKind::PhasingTrimodal => PaperWorkflow::Trimodal,
        }
    }
}

/// The dedicated synthetic-generation RNG stream for a seed.
pub(crate) fn stream_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0x5EED_0000)
}

/// Sample task `index` of `n` — the single canonical draw order (memory,
/// disk, cores, duration) shared by the materialized and streaming paths.
pub(crate) fn sample_task(
    kind: SyntheticKind,
    index: usize,
    n: usize,
    worker: &WorkerSpec,
    rng: &mut StdRng,
) -> TaskSpec {
    let mem = kind.memory_dist(index, n).sample(rng);
    let disk = kind.memory_dist(index, n).sample(rng);
    let cores = kind.cores_dist(index, n).sample(rng);
    // Durations: log-normal around ~60 s, clamped to [5 s, 600 s].
    let duration = lognormal(rng, 60.0f64.ln(), 0.5).clamp(5.0, 600.0);
    let peak = ResourceVector::new(cores, mem, disk).clamp_to(&worker.capacity);
    TaskSpec::new(index as u64, 0, peak, duration)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tora_alloc::resources::ResourceKind;

    #[test]
    fn all_five_generate_valid_paper_workflows() {
        for kind in SyntheticKind::ALL {
            let wf = kind.catalog_workflow().spec(7).materialize().unwrap();
            assert_eq!(wf.len(), PAPER_TASK_COUNT, "{}", wf.name);
            assert_eq!(wf.categories.len(), 1);
            wf.validate().unwrap();
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticKind::Bimodal
            .catalog_workflow()
            .spec(11)
            .materialize()
            .unwrap();
        let b = SyntheticKind::Bimodal
            .catalog_workflow()
            .spec(11)
            .materialize()
            .unwrap();
        let c = SyntheticKind::Bimodal
            .catalog_workflow()
            .spec(12)
            .materialize()
            .unwrap();
        assert_eq!(a.tasks, b.tasks);
        assert_ne!(a.tasks, c.tasks);
    }

    #[test]
    fn normal_memory_centers_on_its_mean() {
        let wf = SyntheticKind::Normal
            .catalog_workflow()
            .spec(3)
            .materialize()
            .unwrap();
        let mean = wf.tasks.iter().map(|t| t.peak.memory_mb()).sum::<f64>() / wf.len() as f64;
        assert!((mean - 4000.0).abs() < 150.0, "mean {mean}");
    }

    #[test]
    fn exponential_has_heavy_tail() {
        let wf = SyntheticKind::Exponential
            .catalog_workflow()
            .spec(5)
            .materialize()
            .unwrap();
        let mems: Vec<f64> = wf.tasks.iter().map(|t| t.peak.memory_mb()).collect();
        let max = mems.iter().cloned().fold(0.0, f64::max);
        let mut sorted = mems.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(
            max > 4.0 * median,
            "expected outliers: max {max}, median {median}"
        );
    }

    #[test]
    fn bimodal_memory_has_two_clusters() {
        let wf = SyntheticKind::Bimodal
            .catalog_workflow()
            .spec(9)
            .materialize()
            .unwrap();
        let (low, high): (Vec<f64>, Vec<f64>) = wf
            .tasks
            .iter()
            .map(|t| t.peak.memory_mb())
            .partition(|&m| m < 4000.0);
        assert!(low.len() > 350 && high.len() > 350);
        // Hardly anything in the valley between the modes.
        let valley = wf
            .tasks
            .iter()
            .filter(|t| (3000.0..5000.0).contains(&t.peak.memory_mb()))
            .count();
        assert!(valley < 50, "valley count {valley}");
    }

    #[test]
    fn trimodal_phases_increase_in_order() {
        let wf = SyntheticKind::PhasingTrimodal
            .catalog_workflow()
            .spec(2)
            .materialize()
            .unwrap();
        let phase_mean = |lo: usize, hi: usize| {
            wf.tasks[lo..hi]
                .iter()
                .map(|t| t.peak.memory_mb())
                .sum::<f64>()
                / (hi - lo) as f64
        };
        let p1 = phase_mean(0, 333);
        let p2 = phase_mean(334, 666);
        let p3 = phase_mean(667, 1000);
        assert!((p1 - 2000.0).abs() < 120.0, "{p1}");
        assert!((p2 - 5000.0).abs() < 120.0, "{p2}");
        assert!((p3 - 8000.0).abs() < 120.0, "{p3}");
    }

    #[test]
    fn every_task_fits_the_worker() {
        for kind in SyntheticKind::ALL {
            let wf = kind.catalog_workflow().spec(1).materialize().unwrap();
            for t in &wf.tasks {
                assert!(wf.worker.capacity.dominates(&t.peak), "{}", t.id);
                assert!(t.peak[ResourceKind::Cores] > 0.0);
                assert!(t.duration_s >= 5.0 && t.duration_s <= 600.0);
            }
        }
    }

    #[test]
    fn custom_task_counts() {
        let wf = SyntheticKind::Uniform
            .catalog_workflow()
            .spec(4)
            .tasks(12_000)
            .materialize()
            .unwrap();
        assert_eq!(wf.len(), 12_000);
        wf.validate().unwrap();
    }
}
