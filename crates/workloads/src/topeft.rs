//! TopEFT trace synthesizer.
//!
//! TopEFT (§III) applies effective-field-theory fits to LHC collision events
//! through three Coffea-driven functions: `preprocessing` (metadata scans),
//! `processing` (event analysis) and `accumulating` (histogram merges). As
//! with ColmenaXTB, the real logs are synthesized from the quantitative
//! details of §III-B and Figure 2 (bottom row):
//!
//! * 363 preprocessing, 3994 processing, 212 accumulating tasks;
//! * preprocessing and accumulating memory ≈ 180 MB — *equivalent across
//!   different categories*, the paper's argument for allocating categories
//!   independently;
//! * processing memory splits into two clusters ≈ 450 MB and ≈ 580 MB;
//! * cores mostly ≤ 1 with rare outliers up to 3 — the outliers §V-C blames
//!   for the bucketing algorithms' weaker cores efficiency on this workflow;
//! * disk constant at 306 MB (§V-C: "TopEFT tasks always consume 306 MBs of
//!   disk"), the detail behind the near-100% disk efficiency of the
//!   bucketing algorithms and Max Seen's 500 MB rounding.

use crate::dist::{lognormal, uniform, Dist};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tora_alloc::resources::ResourceVector;
use tora_alloc::task::TaskSpec;

/// Preprocessing task count in the paper's trace.
pub const PREPROCESSING_TASKS: usize = 363;
/// Processing task count in the paper's trace.
pub const PROCESSING_TASKS: usize = 3994;
/// Accumulating task count in the paper's trace.
pub const ACCUMULATING_TASKS: usize = 212;

/// Category id of `preprocessing`.
pub const CAT_PREPROCESSING: u32 = 0;
/// Category id of `processing`.
pub const CAT_PROCESSING: u32 = 1;
/// Category id of `accumulating`.
pub const CAT_ACCUMULATING: u32 = 2;

/// Every TopEFT task consumes exactly this much disk (MB).
pub const DISK_MB: f64 = 306.0;

/// The dedicated TopEFT-generation RNG stream for a seed.
pub(crate) fn stream_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0x70_9EF7)
}

/// Sample task `index` given the phase splits — the single canonical draw
/// order shared by the materialized and streaming paths. Indices run
/// preprocessing, then processing, then accumulating.
pub(crate) fn sample_task(index: usize, n_pre: usize, n_proc: usize, rng: &mut StdRng) -> TaskSpec {
    let light_mem = Dist::Normal {
        mean: 180.0,
        std_dev: 10.0,
        min: 120.0,
    };
    if index < n_pre {
        // Phase 1: preprocessing — metadata fetches, short.
        let peak = ResourceVector::new(cores(rng), light_mem.sample(rng), DISK_MB);
        let duration = lognormal(rng, 45.0f64.ln(), 0.4).clamp(10.0, 300.0);
        TaskSpec::new(index as u64, CAT_PREPROCESSING, peak, duration)
    } else if index < n_pre + n_proc {
        // Phase 2: processing — the event-analysis bulk.
        let processing_mem = Dist::Bimodal {
            p_low: 0.45,
            low_mean: 450.0,
            low_std: 18.0,
            high_mean: 580.0,
            high_std: 18.0,
            min: 300.0,
        };
        let peak = ResourceVector::new(cores(rng), processing_mem.sample(rng), DISK_MB);
        let duration = lognormal(rng, 150.0f64.ln(), 0.5).clamp(20.0, 1200.0);
        TaskSpec::new(index as u64, CAT_PROCESSING, peak, duration)
    } else {
        // Phase 3: accumulating — histogram merges.
        let peak = ResourceVector::new(cores(rng), light_mem.sample(rng), DISK_MB);
        let duration = lognormal(rng, 60.0f64.ln(), 0.4).clamp(10.0, 400.0);
        TaskSpec::new(index as u64, CAT_ACCUMULATING, peak, duration)
    }
}

/// Cores irrespective of category: "most tasks ... use one core or less
/// during execution, some tasks go as high as three cores" (§III-B).
fn cores(rng: &mut StdRng) -> f64 {
    if rng.gen::<f64>() < 0.02 {
        uniform(rng, 1.5, 3.0)
    } else {
        uniform(rng, 0.4, 1.0)
    }
}

/// The Coffea dependency lists for the given category counts (Fig. 1's
/// workflow manager view): each processing task reads the dataset located
/// by one preprocessing task (round-robin), and each accumulating task
/// merges the partial results of a contiguous block of processing tasks.
pub(crate) fn dag_dependencies(n_pre: usize, n_proc: usize, n_acc: usize) -> Vec<Vec<u64>> {
    let mut deps: Vec<Vec<u64>> = vec![Vec::new(); n_pre + n_proc + n_acc];
    // processing task j (global id n_pre + j) depends on preprocessing
    // j % n_pre.
    if n_pre > 0 {
        for j in 0..n_proc {
            deps[n_pre + j] = vec![(j % n_pre) as u64];
        }
    }
    // accumulating task k merges a balanced block of processing tasks
    // (every accumulator gets at least one input when n_proc ≥ n_acc).
    if n_acc > 0 && n_proc > 0 {
        let base = n_proc / n_acc;
        let rem = n_proc % n_acc;
        let mut lo = 0usize;
        for k in 0..n_acc {
            let len = base + usize::from(k < rem);
            let hi = (lo + len).min(n_proc);
            deps[n_pre + n_proc + k] = (lo..hi).map(|j| (n_pre + j) as u64).collect();
            lo = hi;
        }
    }
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::PaperWorkflow;
    use tora_alloc::task::CategoryId;

    #[test]
    fn paper_counts_and_phases() {
        let wf = PaperWorkflow::TopEft.build(1);
        assert_eq!(wf.len(), 363 + 3994 + 212);
        assert_eq!(wf.category_counts(), vec![363, 3994, 212]);
        wf.validate().unwrap();
        // Phase order: pre < proc < acc by id ranges.
        let max_id = |c: u32| wf.tasks_of(CategoryId(c)).map(|t| t.id.0).max().unwrap();
        let min_id = |c: u32| wf.tasks_of(CategoryId(c)).map(|t| t.id.0).min().unwrap();
        assert!(max_id(CAT_PREPROCESSING) < min_id(CAT_PROCESSING));
        assert!(max_id(CAT_PROCESSING) < min_id(CAT_ACCUMULATING));
    }

    #[test]
    fn disk_is_exactly_306() {
        let wf = PaperWorkflow::TopEft.build(2);
        assert!(wf.tasks.iter().all(|t| t.peak.disk_mb() == DISK_MB));
    }

    #[test]
    fn light_categories_share_memory_profile() {
        let wf = PaperWorkflow::TopEft.build(3);
        let mean = |c: u32| {
            let v: Vec<f64> = wf
                .tasks_of(CategoryId(c))
                .map(|t| t.peak.memory_mb())
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let pre = mean(CAT_PREPROCESSING);
        let acc = mean(CAT_ACCUMULATING);
        assert!((pre - 180.0).abs() < 8.0, "{pre}");
        assert!((acc - 180.0).abs() < 8.0, "{acc}");
    }

    #[test]
    fn processing_memory_is_bimodal() {
        let wf = PaperWorkflow::TopEft.build(4);
        let (low, high): (Vec<f64>, Vec<f64>) = wf
            .tasks_of(CategoryId(CAT_PROCESSING))
            .map(|t| t.peak.memory_mb())
            .partition(|&m| m < 515.0);
        assert!(low.len() > 1400, "low cluster {}", low.len());
        assert!(high.len() > 1700, "high cluster {}", high.len());
        let valley = wf
            .tasks_of(CategoryId(CAT_PROCESSING))
            .filter(|t| (495.0..535.0).contains(&t.peak.memory_mb()))
            .count();
        assert!(valley < 120, "valley {valley}");
    }

    #[test]
    fn cores_mostly_small_with_outliers() {
        let wf = PaperWorkflow::TopEft.build(5);
        let total = wf.len();
        let small = wf.tasks.iter().filter(|t| t.peak.cores() <= 1.0).count();
        let outliers = wf.tasks.iter().filter(|t| t.peak.cores() > 1.5).count();
        assert!(small as f64 / total as f64 > 0.9);
        assert!(outliers > 0);
        assert!(wf.tasks.iter().all(|t| t.peak.cores() <= 3.0));
    }

    #[test]
    fn dag_structure_is_valid_and_layered() {
        let wf = PaperWorkflow::TopEft.spec(1).dag().materialize().unwrap();
        wf.validate().unwrap();
        assert!(wf.has_dependencies());
        // Every processing task depends on exactly one preprocessing task.
        for j in 0..PROCESSING_TASKS {
            let deps = wf.deps_of(PREPROCESSING_TASKS + j);
            assert_eq!(deps.len(), 1);
            assert!((deps[0] as usize) < PREPROCESSING_TASKS);
        }
        // Accumulating deps partition the processing tasks.
        let mut covered = std::collections::HashSet::new();
        for k in 0..ACCUMULATING_TASKS {
            for &d in wf.deps_of(PREPROCESSING_TASKS + PROCESSING_TASKS + k) {
                assert!(covered.insert(d), "processing task {d} merged twice");
                let idx = d as usize;
                assert!(
                    (PREPROCESSING_TASKS..PREPROCESSING_TASKS + PROCESSING_TASKS).contains(&idx)
                );
            }
        }
        assert_eq!(covered.len(), PROCESSING_TASKS);
        // Preprocessing tasks are roots.
        for i in 0..PREPROCESSING_TASKS {
            assert!(wf.deps_of(i).is_empty());
        }
    }

    #[test]
    fn determinism_and_custom_sizes() {
        assert_eq!(
            PaperWorkflow::TopEft.build(6).tasks,
            PaperWorkflow::TopEft.build(6).tasks
        );
        let big = PaperWorkflow::TopEft
            .spec(7)
            .category_tasks(vec![100, 12_000, 50])
            .materialize()
            .unwrap();
        assert_eq!(big.len(), 12_150);
        big.validate().unwrap();
    }
}
