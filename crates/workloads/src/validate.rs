//! Statistical validation of generated workloads.
//!
//! The trace synthesizers claim to match the distributions documented in
//! §III-B and §V-B; this module makes the claim testable with a
//! Kolmogorov–Smirnov statistic against the intended CDF, plus moment
//! helpers. Used by the generator test suites and available to downstream
//! users validating their own trace synthesizers.

use crate::dist::Dist;

/// The one-sample Kolmogorov–Smirnov statistic `D_n = sup |F_n(x) − F(x)|`
/// of `samples` against the reference `cdf`.
pub fn ks_statistic<F: Fn(f64) -> f64>(samples: &[f64], cdf: F) -> f64 {
    assert!(!samples.is_empty(), "KS statistic of an empty sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        // Empirical CDF jumps at each sample: compare both sides.
        let below = i as f64 / n;
        let above = (i + 1) as f64 / n;
        d = d.max((f - below).abs()).max((above - f).abs());
    }
    d
}

/// The asymptotic KS critical value at significance `alpha` for sample size
/// `n` (`D > critical` rejects the hypothesis). Uses the standard
/// `c(α)·√(1/n)` approximation, valid for `n ≳ 35`.
pub fn ks_critical(n: usize, alpha: f64) -> f64 {
    assert!(n > 0);
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    c / (n as f64).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (|error| < 1.5e-7 — far below KS resolution at our sample sizes).
pub fn normal_cdf(x: f64, mean: f64, std_dev: f64) -> f64 {
    let z = (x - mean) / (std_dev * std::f64::consts::SQRT_2);
    0.5 * (1.0 + erf(z))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// CDF of a [`Dist`], ignoring truncation (adequate for validation away
/// from the clamp points). Mixtures and phases compose the component CDFs.
pub fn dist_cdf(dist: &Dist, x: f64) -> f64 {
    match *dist {
        Dist::Constant(v) => {
            if x >= v {
                1.0
            } else {
                0.0
            }
        }
        Dist::Normal { mean, std_dev, .. } => normal_cdf(x, mean, std_dev),
        Dist::Uniform { lo, hi } => ((x - lo) / (hi - lo)).clamp(0.0, 1.0),
        Dist::Exponential { offset, mean, .. } => {
            if x <= offset {
                0.0
            } else {
                1.0 - (-(x - offset) / mean).exp()
            }
        }
        Dist::Bimodal {
            p_low,
            low_mean,
            low_std,
            high_mean,
            high_std,
            ..
        } => {
            p_low * normal_cdf(x, low_mean, low_std)
                + (1.0 - p_low) * normal_cdf(x, high_mean, high_std)
        }
    }
}

/// Sample mean.
pub fn mean(samples: &[f64]) -> f64 {
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Sample standard deviation (population form).
pub fn std_dev(samples: &[f64]) -> f64 {
    let m = mean(samples);
    (samples.iter().map(|x| (x - m).powi(2)).sum::<f64>() / samples.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erf_reference_values() {
        // erf(0)=0, erf(1)≈0.8427, erf(−1)≈−0.8427, erf(2)≈0.9953
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_27).abs() < 2e-7);
    }

    #[test]
    fn ks_accepts_matching_distribution() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..5000)
            .map(|_| dist::normal(&mut rng, 10.0, 2.0))
            .collect();
        let d = ks_statistic(&samples, |x| normal_cdf(x, 10.0, 2.0));
        let crit = ks_critical(samples.len(), 0.01);
        assert!(d < crit, "D {d} ≥ critical {crit}");
    }

    #[test]
    fn ks_rejects_wrong_distribution() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..5000)
            .map(|_| dist::normal(&mut rng, 10.0, 2.0))
            .collect();
        // Against a shifted reference, the statistic must blow past critical.
        let d = ks_statistic(&samples, |x| normal_cdf(x, 12.0, 2.0));
        let crit = ks_critical(samples.len(), 0.01);
        assert!(d > 3.0 * crit, "D {d} should reject");
    }

    #[test]
    fn generator_samples_pass_ks_against_their_dist() {
        let cases = [
            Dist::Normal {
                mean: 4000.0,
                std_dev: 800.0,
                min: 0.0,
            },
            Dist::Uniform {
                lo: 1000.0,
                hi: 8000.0,
            },
            Dist::Exponential {
                offset: 500.0,
                mean: 2000.0,
                max: 1e12,
            },
            Dist::Bimodal {
                p_low: 0.5,
                low_mean: 2000.0,
                low_std: 250.0,
                high_mean: 6000.0,
                high_std: 400.0,
                min: 0.0,
            },
        ];
        let mut rng = StdRng::seed_from_u64(3);
        for d in cases {
            let samples: Vec<f64> = (0..4000).map(|_| d.sample(&mut rng)).collect();
            let stat = ks_statistic(&samples, |x| dist_cdf(&d, x));
            let crit = ks_critical(samples.len(), 0.01);
            assert!(stat < crit, "{d:?}: D {stat} ≥ {crit}");
        }
    }

    #[test]
    fn critical_value_shrinks_with_n() {
        assert!(ks_critical(100, 0.05) > ks_critical(10_000, 0.05));
        // Known value: c(0.05) ≈ 1.358 ⇒ n=100 → ≈0.1358.
        assert!((ks_critical(100, 0.05) - 0.1358).abs() < 1e-3);
    }

    #[test]
    fn moments() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&v), 5.0);
        assert_eq!(std_dev(&v), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_rejected() {
        ks_statistic(&[], |_| 0.5);
    }
}
