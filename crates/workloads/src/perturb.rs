//! Workflow perturbations for robustness experiments.
//!
//! §II-D2 (*external stochasticity*) argues allocators must survive
//! workflows that *change between runs*: input-distribution shifts, software
//! updates, noisy shared infrastructure. These transformations synthesize
//! such changes from a base trace, so the ablation harness can measure how
//! gracefully each algorithm degrades:
//!
//! * [`scale`] — multiply one resource dimension (a new input dataset or a
//!   fatter software stack);
//! * [`jitter`] — multiplicative log-normal noise per task (noisy shared
//!   nodes);
//! * [`shuffle`] — permute submission order (arbitrary execution order);
//! * [`phase_shift`] — swap the halves of the submission order (a phase
//!   structure the recency weighting must re-learn);
//! * [`inject_outliers`] — give a random subset of tasks a multiplied
//!   footprint (stragglers / pathological inputs).

use crate::workflow::Workflow;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tora_alloc::resources::ResourceKind;
use tora_alloc::task::TaskSpec;

/// Re-number tasks 0..n in their (new) submission order.
fn renumber(mut tasks: Vec<TaskSpec>) -> Vec<TaskSpec> {
    for (i, t) in tasks.iter_mut().enumerate() {
        t.id = tora_alloc::task::TaskId(i as u64);
    }
    tasks
}

fn rebuild(base: &Workflow, suffix: &str, tasks: Vec<TaskSpec>) -> Workflow {
    Workflow::new(
        format!("{}-{suffix}", base.name),
        base.categories.clone(),
        renumber(tasks),
        base.worker,
    )
}

/// Multiply one dimension of every task's peak by `factor` (clamped to the
/// worker capacity).
pub fn scale(base: &Workflow, kind: ResourceKind, factor: f64) -> Workflow {
    assert!(factor > 0.0 && factor.is_finite());
    let cap = base.worker.capacity;
    let tasks = base
        .tasks
        .iter()
        .map(|t| {
            let mut peak = t.peak;
            peak[kind] = (peak[kind] * factor).min(cap[kind]);
            TaskSpec { peak, ..*t }
        })
        .collect();
    rebuild(base, "scaled", tasks)
}

/// Apply multiplicative log-normal noise (`sigma` in log space) to every
/// managed dimension of every task, independently.
pub fn jitter(base: &Workflow, sigma: f64, seed: u64) -> Workflow {
    assert!(sigma >= 0.0 && sigma.is_finite());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x717_7E4);
    let cap = base.worker.capacity;
    let tasks = base
        .tasks
        .iter()
        .map(|t| {
            let mut peak = t.peak;
            for kind in ResourceKind::STANDARD {
                let noise = crate::dist::lognormal(&mut rng, 0.0, sigma);
                peak[kind] = (peak[kind] * noise).min(cap[kind]).max(1e-3);
            }
            TaskSpec { peak, ..*t }
        })
        .collect();
    rebuild(base, "jittered", tasks)
}

/// Permute the submission order uniformly at random (Fisher–Yates).
pub fn shuffle(base: &Workflow, seed: u64) -> Workflow {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5_4FF1E);
    let mut tasks = base.tasks.clone();
    for i in (1..tasks.len()).rev() {
        let j = rng.gen_range(0..=i);
        tasks.swap(i, j);
    }
    rebuild(base, "shuffled", tasks)
}

/// Swap the first and second halves of the submission order — an abrupt
/// phase change mid-run.
pub fn phase_shift(base: &Workflow) -> Workflow {
    let mid = base.tasks.len() / 2;
    let mut tasks: Vec<TaskSpec> = base.tasks[mid..].to_vec();
    tasks.extend_from_slice(&base.tasks[..mid]);
    rebuild(base, "phase-shifted", tasks)
}

/// Multiply the peak of a random `fraction` of tasks by `factor` (clamped to
/// capacity) — injected stragglers.
pub fn inject_outliers(base: &Workflow, fraction: f64, factor: f64, seed: u64) -> Workflow {
    assert!((0.0..=1.0).contains(&fraction));
    assert!(factor >= 1.0 && factor.is_finite());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0007_11e5);
    let cap = base.worker.capacity;
    let tasks = base
        .tasks
        .iter()
        .map(|t| {
            if rng.gen::<f64>() < fraction {
                let mut peak = t.peak;
                for kind in ResourceKind::STANDARD {
                    peak[kind] = (peak[kind] * factor).min(cap[kind]);
                }
                TaskSpec { peak, ..*t }
            } else {
                *t
            }
        })
        .collect();
    rebuild(base, "outliers", tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticKind;

    fn base() -> Workflow {
        SyntheticKind::Normal
            .catalog_workflow()
            .spec(5)
            .tasks(100)
            .materialize()
            .unwrap()
    }

    #[test]
    fn scale_multiplies_one_dimension_only() {
        let wf = base();
        let scaled = scale(&wf, ResourceKind::MemoryMb, 2.0);
        scaled.validate().unwrap();
        for (a, b) in wf.tasks.iter().zip(&scaled.tasks) {
            assert!((b.peak.memory_mb() - (a.peak.memory_mb() * 2.0).min(65536.0)).abs() < 1e-9);
            assert_eq!(a.peak.cores(), b.peak.cores());
            assert_eq!(a.peak.disk_mb(), b.peak.disk_mb());
            assert_eq!(a.duration_s, b.duration_s);
        }
    }

    #[test]
    fn jitter_preserves_validity_and_changes_values() {
        let wf = base();
        let jittered = jitter(&wf, 0.2, 1);
        jittered.validate().unwrap();
        let changed = wf
            .tasks
            .iter()
            .zip(&jittered.tasks)
            .filter(|(a, b)| a.peak != b.peak)
            .count();
        assert!(changed > 90, "only {changed} tasks changed");
        // Zero sigma is identity on the peaks.
        let same = jitter(&wf, 0.0, 1);
        for (a, b) in wf.tasks.iter().zip(&same.tasks) {
            assert!((a.peak.memory_mb() - b.peak.memory_mb()).abs() < 1e-9);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let wf = base();
        let shuffled = shuffle(&wf, 7);
        shuffled.validate().unwrap();
        let mut a: Vec<f64> = wf.tasks.iter().map(|t| t.peak.memory_mb()).collect();
        let mut b: Vec<f64> = shuffled.tasks.iter().map(|t| t.peak.memory_mb()).collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
        // Ids renumbered in the new order.
        for (i, t) in shuffled.tasks.iter().enumerate() {
            assert_eq!(t.id.0, i as u64);
        }
        assert_ne!(
            wf.tasks
                .iter()
                .map(|t| t.peak.memory_mb())
                .collect::<Vec<_>>(),
            shuffled
                .tasks
                .iter()
                .map(|t| t.peak.memory_mb())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn phase_shift_swaps_halves() {
        let wf = SyntheticKind::PhasingTrimodal
            .catalog_workflow()
            .spec(2)
            .tasks(90)
            .materialize()
            .unwrap();
        let shifted = phase_shift(&wf);
        shifted.validate().unwrap();
        assert_eq!(shifted.tasks[0].peak, wf.tasks[45].peak);
        assert_eq!(shifted.tasks[45].peak, wf.tasks[0].peak);
        assert_eq!(shifted.len(), wf.len());
    }

    #[test]
    fn outliers_affect_roughly_the_requested_fraction() {
        let wf = base();
        let spiked = inject_outliers(&wf, 0.1, 4.0, 3);
        spiked.validate().unwrap();
        let changed = wf
            .tasks
            .iter()
            .zip(&spiked.tasks)
            .filter(|(a, b)| a.peak != b.peak)
            .count();
        assert!((4..=20).contains(&changed), "{changed} outliers");
        // All changed tasks grew.
        for (a, b) in wf.tasks.iter().zip(&spiked.tasks) {
            assert!(b.peak.dominates(&a.peak.min(&b.peak)));
        }
    }

    #[test]
    #[should_panic]
    fn scale_rejects_nonpositive_factor() {
        scale(&base(), ResourceKind::Cores, 0.0);
    }
}
