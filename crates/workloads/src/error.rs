//! Typed workload errors with stable machine-readable codes.
//!
//! Everything fallible in this crate used to answer `Result<_, String>`,
//! which forced callers that need to *dispatch* on a failure — most
//! pressingly the `tora serve` wire protocol, which maps submission
//! failures to stable error codes — to match on prose. A [`WorkloadError`]
//! names the failure class as a variant and keeps the human-readable detail
//! inside it; [`WorkloadError::code`] is the stable identifier wire
//! protocols and logs key on, guaranteed never to change meaning once
//! shipped.

use std::fmt;

/// Why a workload could not be built, streamed, or loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The Coffea trace's DAG was asked to stream: its dependency lists
    /// index into the full task range (no bounded lookahead window), so it
    /// must materialize. Generated shapes ([`crate::DagShape`]) stream.
    DagCannotStream,
    /// The Coffea dependency structure was requested for a workflow that
    /// does not define one (only TopEFT does). Generated structure via
    /// `dag_shape(..)` works for every workflow.
    DagUnsupported {
        /// The offending workflow's catalog name.
        workflow: String,
    },
    /// A generated DAG shape was combined with an incompatible knob: the
    /// Coffea `dag()` structure, or an explicit task-count scale (the shape
    /// fixes the task count).
    ShapeConflict {
        /// What clashed.
        reason: String,
    },
    /// Explicit per-category counts do not match the workflow's category
    /// count.
    CategoryArity {
        /// The workflow's catalog name.
        workflow: String,
        /// Counts supplied by the caller.
        given: usize,
        /// Categories the workflow actually has.
        expected: usize,
    },
    /// A workflow trace violated a structural invariant (non-sequential
    /// ids, unknown category, peak over worker capacity, forward
    /// dependency, ...).
    InvalidTrace {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
    /// A trace file could not be read or written.
    Io {
        /// The path involved.
        path: String,
        /// The underlying I/O error, rendered.
        reason: String,
    },
    /// A trace file was not valid JSON (or not a workflow at all).
    Parse {
        /// The underlying parse error, rendered.
        reason: String,
    },
}

impl WorkloadError {
    /// The stable machine-readable code for this failure class. Wire
    /// protocols (`tora serve`) and logs key on these; they never change
    /// meaning once shipped.
    pub fn code(&self) -> &'static str {
        match self {
            WorkloadError::DagCannotStream => "dag-cannot-stream",
            WorkloadError::DagUnsupported { .. } => "dag-unsupported",
            WorkloadError::ShapeConflict { .. } => "shape-conflict",
            WorkloadError::CategoryArity { .. } => "category-arity",
            WorkloadError::InvalidTrace { .. } => "invalid-trace",
            WorkloadError::Io { .. } => "io",
            WorkloadError::Parse { .. } => "parse",
        }
    }

    /// Shorthand for an [`WorkloadError::InvalidTrace`].
    pub fn invalid(reason: impl Into<String>) -> Self {
        WorkloadError::InvalidTrace {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::DagCannotStream => {
                write!(
                    f,
                    "the Coffea DAG trace cannot stream (its dependencies are \
                     not window-bounded); materialize it"
                )
            }
            WorkloadError::DagUnsupported { workflow } => {
                write!(
                    f,
                    "{workflow}: the Coffea dag() structure is only defined for \
                     topeft; use dag_shape(..) for generated structure"
                )
            }
            WorkloadError::ShapeConflict { reason } => {
                write!(f, "conflicting DAG shape: {reason}")
            }
            WorkloadError::CategoryArity {
                workflow,
                given,
                expected,
            } => write!(
                f,
                "{workflow}: {given} category counts given, the workflow has {expected}"
            ),
            WorkloadError::InvalidTrace { reason } => write!(f, "invalid workflow: {reason}"),
            WorkloadError::Io { path, reason } => write!(f, "{path}: {reason}"),
            WorkloadError::Parse { reason } => write!(f, "trace parse error: {reason}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_distinct() {
        let all = [
            WorkloadError::DagCannotStream,
            WorkloadError::DagUnsupported {
                workflow: "bimodal".into(),
            },
            WorkloadError::ShapeConflict {
                reason: "shape and tasks(..) both fix the count".into(),
            },
            WorkloadError::CategoryArity {
                workflow: "colmena-xtb".into(),
                given: 1,
                expected: 2,
            },
            WorkloadError::invalid("task 3 has id 7"),
            WorkloadError::Io {
                path: "/nope".into(),
                reason: "missing".into(),
            },
            WorkloadError::Parse {
                reason: "not json".into(),
            },
        ];
        let codes: Vec<&str> = all.iter().map(|e| e.code()).collect();
        assert_eq!(
            codes,
            vec![
                "dag-cannot-stream",
                "dag-unsupported",
                "shape-conflict",
                "category-arity",
                "invalid-trace",
                "io",
                "parse"
            ]
        );
        for e in &all {
            assert!(!e.to_string().is_empty());
        }
    }
}
