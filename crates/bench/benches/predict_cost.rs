//! Steady-state per-allocation prediction cost of every algorithm.
//!
//! Complements Table I: once the bucketing state is cached (the lazy
//! batching discussed under Table I — no new record arrived since the last
//! request), a prediction is a probability-weighted sample over at most ten
//! buckets, so it should cost nanoseconds regardless of history size. The
//! comparators' costs are shown on the same scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tora_alloc::allocator::{AlgorithmKind, Allocator};
use tora_alloc::resources::ResourceVector;
use tora_alloc::task::{CategoryId, ResourceRecord, TaskSpec};
use tora_bench::timing::sample_values;

fn loaded_allocator(alg: AlgorithmKind, n: usize) -> Allocator {
    let mut a = Allocator::new(alg, 42);
    for (i, v) in sample_values(n, 7).into_iter().enumerate() {
        let task = TaskSpec::new(
            i as u64,
            0,
            ResourceVector::new(1.0 + (v / 8192.0), v, v / 2.0),
            30.0,
        );
        a.observe(&ResourceRecord::from_task(&task));
    }
    a
}

fn bench_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state_predict");
    for alg in AlgorithmKind::PAPER_SET {
        // The cached path: 1000 records already bucketed, no new arrivals.
        let mut allocator = loaded_allocator(alg.fast_equivalent(), 1000);
        // Prime any lazy caches.
        let _ = allocator.predict_first(CategoryId(0));
        group.bench_with_input(BenchmarkId::new("cached", alg.label()), &alg, |b, _| {
            b.iter(|| allocator.predict_first(CategoryId(0)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_predict);
criterion_main!(benches);
