//! Engine throughput: simulated tasks per second of wall time.
//!
//! Not a paper artifact — a regression guard for the simulator substrate, so
//! the figure-level harnesses stay fast as the engine grows features. Runs a
//! 500-task bimodal workflow end-to-end per iteration, with and without the
//! optional observability (event log + utilization series).

use criterion::{criterion_group, criterion_main, Criterion};
use tora_alloc::allocator::AlgorithmKind;
use tora_sim::{simulate, ChurnConfig, SimConfig};
use tora_workloads::SyntheticKind;

fn bench_engine(c: &mut Criterion) {
    let wf = SyntheticKind::Bimodal
        .catalog_workflow()
        .spec(9)
        .tasks(500)
        .materialize()
        .unwrap();
    let mut group = c.benchmark_group("engine_end_to_end");
    group.sample_size(10);

    group.bench_function("bare", |b| {
        b.iter(|| {
            simulate(
                &wf,
                AlgorithmKind::ExhaustiveBucketing,
                SimConfig {
                    churn: ChurnConfig::fixed(20),
                    seed: 9,
                    ..SimConfig::default()
                },
            )
            .metrics
            .len()
        })
    });

    group.bench_function("paper_like_pool", |b| {
        b.iter(|| {
            simulate(
                &wf,
                AlgorithmKind::ExhaustiveBucketing,
                SimConfig::paper_like(9),
            )
            .metrics
            .len()
        })
    });

    group.bench_function("with_observability", |b| {
        b.iter(|| {
            let config = SimConfig {
                record_log: true,
                track_utilization: true,
                ..SimConfig::paper_like(9)
            };
            simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config)
                .metrics
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
