//! Criterion version of Table I: time to compute a new bucketing state and
//! derive an allocation, at the paper's record counts.
//!
//! The faithful Greedy Bucketing scan is quadratic per interval, so its
//! large sizes are capped here to keep `cargo bench` wall time reasonable —
//! the `table1_timing` binary prints the full table including the 2000- and
//! 5000-record GB points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tora_alloc::exhaustive::ExhaustiveBucketing;
use tora_alloc::greedy::GreedyBucketing;
use tora_alloc::partition::Partitioner;
use tora_alloc::ValueEstimator;
use tora_bench::timing::loaded_estimator;

const GOLDEN: f64 = 0.618_033_988_749_894_8;

fn bench_state_compute(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_state_compute");
    group.sample_size(10);

    // The "greedy-faithful" / "exhaustive" rows must keep timing the
    // paper's implementation cost, not the prefix-sum production default.
    let gb_faithful = GreedyBucketing::faithful();
    assert_eq!(gb_faithful.name(), "greedy-bucketing-faithful");
    let eb_faithful = ExhaustiveBucketing::faithful();
    assert_eq!(eb_faithful.name(), "exhaustive-bucketing-faithful");

    for &n in &[10usize, 200, 1000, 2000, 5000] {
        // Greedy Bucketing, faithful scan (the paper's implementation cost).
        if n <= 1000 {
            let mut est = loaded_estimator(gb_faithful, n, 42);
            let mut u = 0.0f64;
            group.bench_with_input(BenchmarkId::new("greedy-faithful", n), &n, |b, _| {
                b.iter(|| {
                    u = (u + GOLDEN).fract();
                    est.first(u).unwrap()
                })
            });
        }

        // Greedy Bucketing, prefix-sum fast scan (the production default).
        let mut est = loaded_estimator(GreedyBucketing::new(), n, 42);
        let mut u = 0.0f64;
        group.bench_with_input(BenchmarkId::new("greedy-fast", n), &n, |b, _| {
            b.iter(|| {
                u = (u + GOLDEN).fract();
                est.first(u).unwrap()
            })
        });

        // Greedy Bucketing, incremental-scan ablation (identical output).
        let mut est = loaded_estimator(GreedyBucketing::incremental(), n, 42);
        let mut u = 0.0f64;
        group.bench_with_input(BenchmarkId::new("greedy-incremental", n), &n, |b, _| {
            b.iter(|| {
                u = (u + GOLDEN).fract();
                est.first(u).unwrap()
            })
        });

        // Exhaustive Bucketing, faithful costing (the paper's cost).
        let mut est = loaded_estimator(eb_faithful, n, 42);
        let mut u = 0.0f64;
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &n, |b, _| {
            b.iter(|| {
                u = (u + GOLDEN).fract();
                est.first(u).unwrap()
            })
        });

        // Exhaustive Bucketing, prefix-sum fast costing (the default).
        let mut est = loaded_estimator(ExhaustiveBucketing::new(), n, 42);
        let mut u = 0.0f64;
        group.bench_with_input(BenchmarkId::new("exhaustive-fast", n), &n, |b, _| {
            b.iter(|| {
                u = (u + GOLDEN).fract();
                est.first(u).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_state_compute);
criterion_main!(benches);
