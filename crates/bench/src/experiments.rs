//! The experiment matrix shared by the figure-level harness binaries.
//!
//! One *cell* is (workflow × algorithm): the workflow is executed through the
//! discrete-event engine on an opportunistic pool (the paper's setting —
//! §V-A: 20–50 workers of 16 cores / 64 GB / 64 GB), and the cell keeps the
//! §II-C accounting for all three resource dimensions. Figure 5 reads the
//! AWE values out of the cells; Figure 6 reads the waste breakdown.
//!
//! The bucketing algorithms run through their prefix-sum fast kernels here
//! (the production default; `AlgorithmKind::fast_equivalent` is now the
//! identity); the paper-faithful quadratic scans are exercised by the
//! Table I harness, whose *subject* is that compute cost. Cells fan across
//! cores via [`crate::pool::run_parallel`].

use serde::{Deserialize, Serialize};
use tora_alloc::allocator::AlgorithmKind;
use tora_alloc::resources::ResourceKind;
use tora_metrics::WasteBreakdown;
use tora_sim::{simulate, ChurnConfig, SimConfig};
use tora_workloads::PaperWorkflow;

/// Per-dimension numbers of one cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DimensionStats {
    /// The dimension.
    pub kind: ResourceKind,
    /// Absolute Workflow Efficiency.
    pub awe: f64,
    /// Total consumption `Σ C(Tᵢ)` (resource·seconds).
    pub consumption: f64,
    /// Total allocation `Σ A(Tᵢ)` (resource·seconds).
    pub allocation: f64,
    /// Waste split.
    pub waste: WasteBreakdown,
}

/// One (workflow × algorithm) cell of the evaluation matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixCell {
    /// The workflow.
    pub workflow: PaperWorkflow,
    /// The algorithm.
    pub algorithm: AlgorithmKind,
    /// Cores / memory / disk stats.
    pub dims: Vec<DimensionStats>,
    /// Total failed allocations across tasks.
    pub retries: usize,
    /// Simulated makespan, seconds.
    pub makespan_s: f64,
    /// Observed worker-pool band.
    pub worker_range: (usize, usize),
}

impl MatrixCell {
    /// Stats of one dimension.
    pub fn dim(&self, kind: ResourceKind) -> &DimensionStats {
        self.dims
            .iter()
            .find(|d| d.kind == kind)
            .expect("standard dimension present")
    }
}

/// Matrix configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MatrixConfig {
    /// Seed for workload generation, allocation sampling and churn.
    pub seed: u64,
    /// Worker-pool behaviour (paper-like churn by default).
    pub churn: ChurnConfig,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        MatrixConfig {
            seed: 42,
            churn: ChurnConfig::paper_like(),
        }
    }
}

/// Run one cell.
pub fn run_cell(
    workflow: PaperWorkflow,
    algorithm: AlgorithmKind,
    config: &MatrixConfig,
) -> MatrixCell {
    let wf = workflow.build(config.seed);
    let sim_config = SimConfig {
        churn: config.churn,
        ..SimConfig::paper_like(config.seed)
    };
    let result = simulate(&wf, algorithm.fast_equivalent(), sim_config);
    let dims = ResourceKind::STANDARD
        .iter()
        .map(|&kind| DimensionStats {
            kind,
            awe: result.metrics.awe(kind).unwrap_or(0.0),
            consumption: result.metrics.total_consumption(kind),
            allocation: result.metrics.total_allocation(kind),
            waste: result.metrics.waste(kind),
        })
        .collect();
    MatrixCell {
        workflow,
        algorithm,
        dims,
        retries: result.metrics.total_retries(),
        makespan_s: result.makespan_s,
        worker_range: result.worker_range,
    }
}

/// Run the full 7×7 matrix, parallelized across cells with scoped threads.
pub fn run_matrix(config: &MatrixConfig) -> Vec<MatrixCell> {
    run_matrix_for(&PaperWorkflow::ALL, &AlgorithmKind::PAPER_SET, config)
}

/// Run an arbitrary sub-matrix on the detected thread count.
pub fn run_matrix_for(
    workflows: &[PaperWorkflow],
    algorithms: &[AlgorithmKind],
    config: &MatrixConfig,
) -> Vec<MatrixCell> {
    let jobs = workflows.len() * algorithms.len();
    run_matrix_on(
        workflows,
        algorithms,
        config,
        crate::pool::thread_count(jobs),
    )
}

/// Run an arbitrary sub-matrix on an explicit worker-thread count
/// (`threads = 1` is the sequential reference; output is identical at any
/// value).
pub fn run_matrix_on(
    workflows: &[PaperWorkflow],
    algorithms: &[AlgorithmKind],
    config: &MatrixConfig,
    threads: usize,
) -> Vec<MatrixCell> {
    let pairs: Vec<(PaperWorkflow, AlgorithmKind)> = workflows
        .iter()
        .flat_map(|&w| algorithms.iter().map(move |&a| (w, a)))
        .collect();
    crate::pool::run_parallel_on(&pairs, threads, |&(w, a)| run_cell(w, a, config))
}

/// Write cells as JSON into `$TORA_RESULTS_DIR/<name>.json` when that
/// environment variable is set; otherwise do nothing. Returns the path
/// written, if any.
pub fn maybe_dump_json(name: &str, cells: &[MatrixCell]) -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("TORA_RESULTS_DIR")?;
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(cells).ok()?;
    std::fs::write(&path, json).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_runs_and_reports_three_dims() {
        let config = MatrixConfig {
            seed: 1,
            churn: ChurnConfig::fixed(10),
        };
        let cell = run_cell(
            PaperWorkflow::Normal,
            AlgorithmKind::ExhaustiveBucketing,
            &config,
        );
        assert_eq!(cell.dims.len(), 3);
        for kind in ResourceKind::STANDARD {
            let d = cell.dim(kind);
            assert!(d.awe > 0.0 && d.awe <= 1.0, "{kind}: {}", d.awe);
            assert!(d.allocation >= d.consumption);
            // AWE consistency with the raw totals.
            assert!((d.awe - d.consumption / d.allocation).abs() < 1e-12);
        }
    }

    #[test]
    fn sub_matrix_covers_all_pairs() {
        let config = MatrixConfig {
            seed: 2,
            churn: ChurnConfig::fixed(10),
        };
        let cells = run_matrix_for(
            &[PaperWorkflow::Uniform, PaperWorkflow::Bimodal],
            &[AlgorithmKind::WholeMachine, AlgorithmKind::MaxSeen],
            &config,
        );
        assert_eq!(cells.len(), 4);
        let keys: std::collections::HashSet<_> = cells
            .iter()
            .map(|c| (c.workflow.name(), c.algorithm.label()))
            .collect();
        assert_eq!(keys.len(), 4);
    }
}
