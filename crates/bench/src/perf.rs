//! `tora bench`: a self-contained performance report for the hot paths.
//!
//! Three layers, mirroring the performance architecture in DESIGN.md:
//!
//! 1. **prediction throughput** — steady-state `first()` allocations per
//!    second against a warm (already-bucketed) estimator, where the fast
//!    kernels have amortized everything away and a request is a table walk;
//! 2. **rebucket latency** — one full `partition()` of n pre-sorted records
//!    at Table I scales, fast kernel vs the paper-faithful quadratic scan,
//!    with the speedup ratio (the headline number of this report);
//! 3. **end-to-end and matrix throughput** — simulated tasks per second
//!    through the discrete-event engine, and the wall-clock speedup of the
//!    parallel experiment runner over a forced-sequential run of the same
//!    matrix, cross-checked byte-identical.
//!
//! [`run_bench`] produces a serializable [`BenchReport`]; the `tora bench`
//! subcommand renders it and writes `BENCH.json`.

use std::time::{Duration, Instant};

use serde::Serialize;
use tora_alloc::exhaustive::ExhaustiveBucketing;
use tora_alloc::greedy::GreedyBucketing;
use tora_alloc::partition::Partitioner;
use tora_alloc::policy::BucketingEstimator;
use tora_alloc::record::{RecordList, ScalarRecord};
use tora_alloc::ValueEstimator;
use tora_sim::{simulate, SimConfig, Simulation};
use tora_workloads::SyntheticKind;

use crate::experiments::{run_matrix_on, MatrixConfig};
use crate::figdag::{fig_dag_rows, FigDagRow};
use crate::figlearned::{fig_learned_rows, FigLearnedRow};
use crate::timing::sample_values;
use tora_alloc::allocator::{AlgorithmKind, Allocator};
use tora_alloc::resources::ResourceVector;
use tora_alloc::task::{ResourceRecord, TaskSpec};
use tora_workloads::PaperWorkflow;

/// Steady-state prediction throughput of one warm estimator.
#[derive(Debug, Clone, Serialize)]
pub struct PredictionRate {
    /// Partitioner name behind the estimator.
    pub algorithm: String,
    /// Records loaded before timing.
    pub records: usize,
    /// `first()` allocations per second with a warm bucketing state.
    pub allocs_per_sec: f64,
}

/// Fast vs faithful `partition()` latency at one record count.
#[derive(Debug, Clone, Serialize)]
pub struct RebucketRow {
    /// Partitioner family ("greedy-bucketing" / "exhaustive-bucketing").
    pub partitioner: String,
    /// Record count.
    pub records: usize,
    /// Mean fast-kernel partition latency, microseconds.
    pub fast_us: f64,
    /// Mean paper-faithful partition latency, microseconds.
    pub faithful_us: f64,
    /// `faithful_us / fast_us`.
    pub speedup: f64,
}

/// End-to-end engine throughput.
#[derive(Debug, Clone, Serialize)]
pub struct EndToEndRow {
    /// Workflow name.
    pub workflow: String,
    /// Task count.
    pub tasks: usize,
    /// Wall-clock seconds for one engine run.
    pub wall_s: f64,
    /// Simulated tasks per wall-clock second.
    pub tasks_per_sec: f64,
}

/// One point on the engine scaling curve.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Task count of the streamed workload.
    pub tasks: usize,
    /// Wall-clock seconds for one engine run (generation included — the
    /// source streams into the engine on demand).
    pub wall_s: f64,
    /// Simulated tasks per wall-clock second.
    pub tasks_per_sec: f64,
}

/// Parallel experiment-runner speedup over a sequential reference run
/// (both with explicit thread counts — no environment mutation).
#[derive(Debug, Clone, Serialize)]
pub struct MatrixSpeedup {
    /// Cells in the measured matrix.
    pub cells: usize,
    /// Worker threads the parallel run used.
    pub threads: usize,
    /// Sequential wall-clock seconds (explicit `threads = 1`).
    pub sequential_s: f64,
    /// Parallel wall-clock seconds.
    pub parallel_s: f64,
    /// `sequential_s / parallel_s`.
    pub speedup: f64,
    /// Whether both runs serialized to byte-identical JSON.
    pub identical: bool,
}

/// Serial vs category-sharded rebucket wall time at one record count: one
/// allocator with its records spread over `categories` categories, forced
/// through a full [`Allocator::rebucket_all`] sweep at `threads = 1` and
/// at the detected thread count.
#[derive(Debug, Clone, Serialize)]
pub struct RebucketParallelRow {
    /// Total records across all categories.
    pub records: usize,
    /// Category shards the records are spread over.
    pub categories: usize,
    /// Worker threads the sharded run used.
    pub threads: usize,
    /// Wall-clock milliseconds for the serial (`threads = 1`) sweep.
    pub serial_ms: f64,
    /// Wall-clock milliseconds for the sharded sweep.
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
    /// Whether both sweeps returned identical rebucket results.
    pub identical: bool,
}

/// Per-request prediction latency of a warm serve-style allocator: the
/// quantiles a `tora serve` tenant sees when every answer comes from
/// [`Allocator::predict_first_batch`] against a 10k-record estimator bank.
#[derive(Debug, Clone, Serialize)]
pub struct ServeLatencyRow {
    /// Categories in the requested batch (1 = a single `Submit`, larger =
    /// a `Workload` burst or `Predict` batch).
    pub batch: usize,
    /// Records loaded (and committed) before timing.
    pub records: usize,
    /// Category shards the records are spread over.
    pub categories: usize,
    /// Worker threads the batch call used.
    pub threads: usize,
    /// Timed request count.
    pub samples: usize,
    /// Median per-request latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-request latency, microseconds.
    pub p99_us: f64,
    /// Worst observed per-request latency, microseconds.
    pub max_us: f64,
}

/// The full `tora bench` report, serialized to `BENCH.json`.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Seed behind every measurement.
    pub seed: u64,
    /// Whether this was a `--quick` run (fewer iterations, smaller matrix).
    pub quick: bool,
    /// Steady-state prediction throughput per bucketing estimator.
    pub prediction: Vec<PredictionRate>,
    /// Rebucket latency, fast vs faithful, at Table I-like scales.
    pub rebucket: Vec<RebucketRow>,
    /// Serial vs category-sharded rebucket sweep, with the identity
    /// cross-check.
    pub rebucket_parallel: Vec<RebucketParallelRow>,
    /// Engine throughput.
    pub end_to_end: EndToEndRow,
    /// Engine scaling curve over the streaming workload path
    /// (quick: 10k/100k; full adds the million-task point).
    pub scaling: Vec<ScalingRow>,
    /// Worker threads detected on this machine (`TORA_THREADS` override,
    /// else the available parallelism capped by the cgroup CPU quota).
    pub threads_detected: usize,
    /// Worker threads the parallel measurements actually ran on (detected,
    /// capped by the widest fan-out). On a 1-core box this honestly reads
    /// `1` — the speedups alongside it are measured, not assumed.
    pub threads_used: usize,
    /// Parallel-runner speedup with the byte-identical cross-check.
    pub matrix: MatrixSpeedup,
    /// Per-request prediction latency quantiles of a warm serve-style
    /// allocator (the `tora serve` hot path).
    pub serve_latency: Vec<ServeLatencyRow>,
    /// Critical-path sensitivity on a diamond DAG: the same allocation
    /// error on vs off the critical chain, per bucketing algorithm.
    pub fig_dag: Vec<FigDagRow>,
    /// Feature-conditioning payoff on the bimodal workload: memory AWE of
    /// the category-global baselines vs the TaskContext-reading comparators.
    pub fig_learned: Vec<FigLearnedRow>,
}

fn sorted_records(n: usize, seed: u64) -> RecordList {
    sample_values(n, seed)
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64))
        .collect()
}

fn partition_time<P: Partitioner>(p: &P, records: &[ScalarRecord], iters: usize) -> Duration {
    // One warm-up outside the window so allocator effects don't skew iters=1.
    std::hint::black_box(p.partition(records));
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(p.partition(records));
    }
    start.elapsed() / iters as u32
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn prediction_rate<P: Partitioner>(
    partitioner: P,
    n: usize,
    iters: usize,
    seed: u64,
) -> PredictionRate {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let algorithm = partitioner.name().to_string();
    let mut est = BucketingEstimator::new(partitioner);
    for (i, v) in sample_values(n, seed).into_iter().enumerate() {
        est.observe(v, (i + 1) as f64);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA110C);
    // First request commits the records and builds the bucketing state; the
    // timed window below measures the steady-state per-allocation cost.
    let _ = est.first(rng.gen());
    let start = Instant::now();
    let mut sink = 0.0;
    for _ in 0..iters {
        sink += est.first(rng.gen()).unwrap_or(0.0);
    }
    let elapsed = start.elapsed();
    std::hint::black_box(sink);
    PredictionRate {
        algorithm,
        records: n,
        allocs_per_sec: iters as f64 / elapsed.as_secs_f64(),
    }
}

fn rebucket_rows(quick: bool, seed: u64) -> Vec<RebucketRow> {
    let sizes: &[usize] = if quick {
        &[1000, 5000]
    } else {
        &[1000, 5000, 10_000]
    };
    let mut rows = Vec::new();
    for &n in sizes {
        let list = sorted_records(n, seed);
        let records = list.sorted();
        // Keep iteration counts small at large n: the faithful greedy scan is
        // quadratic, which is the very thing being measured.
        let iters = if quick { 1 } else { (10_000 / n).max(1) };
        let fast_iters = iters * 16;
        type PartitionerPair = (&'static str, Box<dyn Partitioner>, Box<dyn Partitioner>);
        let pairs: [PartitionerPair; 2] = [
            (
                "greedy-bucketing",
                Box::new(GreedyBucketing::new()),
                Box::new(GreedyBucketing::faithful()),
            ),
            (
                "exhaustive-bucketing",
                Box::new(ExhaustiveBucketing::new()),
                Box::new(ExhaustiveBucketing::faithful()),
            ),
        ];
        for (name, fast, faithful) in pairs {
            let fast_us = micros(partition_time(&fast, records, fast_iters));
            let faithful_us = micros(partition_time(&faithful, records, iters));
            rows.push(RebucketRow {
                partitioner: name.to_string(),
                records: n,
                fast_us,
                faithful_us,
                speedup: faithful_us / fast_us.max(f64::MIN_POSITIVE),
            });
        }
    }
    rows
}

fn end_to_end(quick: bool, seed: u64) -> EndToEndRow {
    let tasks = if quick { 600 } else { 2000 };
    let wf = SyntheticKind::Bimodal
        .catalog_workflow()
        .spec(seed)
        .tasks(tasks)
        .materialize()
        .unwrap();
    let config = SimConfig::paper_like(seed);
    // Warm-up run so the report measures steady-state engine throughput.
    std::hint::black_box(simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config));
    let start = Instant::now();
    let result = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
    let wall_s = start.elapsed().as_secs_f64();
    std::hint::black_box(result.makespan_s);
    EndToEndRow {
        workflow: wf.name.clone(),
        tasks,
        wall_s,
        tasks_per_sec: tasks as f64 / wall_s.max(f64::MIN_POSITIVE),
    }
}

/// The scaling curve: stream a bimodal workload through the engine at
/// growing task counts. Streaming means generation overlaps simulation and
/// the curve measures the whole pipeline, not just the event loop.
fn scaling_curve(quick: bool, seed: u64) -> Vec<ScalingRow> {
    let sizes: &[usize] = if quick {
        &[10_000, 100_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    sizes
        .iter()
        .map(|&tasks| {
            let source = SyntheticKind::Bimodal
                .catalog_workflow()
                .spec(seed)
                .tasks(tasks)
                .stream()
                .expect("synthetic workloads stream");
            let config = SimConfig::paper_like(seed);
            let start = Instant::now();
            let result =
                Simulation::from_source(source, AlgorithmKind::ExhaustiveBucketing, config).run();
            let wall_s = start.elapsed().as_secs_f64();
            std::hint::black_box(result.makespan_s);
            ScalingRow {
                tasks,
                wall_s,
                tasks_per_sec: tasks as f64 / wall_s.max(f64::MIN_POSITIVE),
            }
        })
        .collect()
}

/// An allocator with `n` records spread round-robin over `categories`
/// category shards, estimators still holding everything as pending — the
/// state a full rebucket sweep starts from.
fn sharded_allocator(n: usize, categories: usize, seed: u64) -> Allocator {
    let mut allocator = Allocator::new(AlgorithmKind::ExhaustiveBucketing, seed);
    for (i, v) in sample_values(n, seed).into_iter().enumerate() {
        let peak = ResourceVector::new(1.0 + (i % 4) as f64, v, v * 0.5);
        let task = TaskSpec::new(i as u64, (i % categories) as u32, peak, 10.0);
        allocator.observe(&ResourceRecord::from_task(&task));
    }
    allocator
}

/// Serial vs category-sharded full-rebucket sweep at growing record
/// counts. Identically-fed allocators, identical results enforced; only
/// the wall clock differs.
fn rebucket_parallel_rows(quick: bool, seed: u64, threads: usize) -> Vec<RebucketParallelRow> {
    let sizes: &[usize] = if quick {
        &[1000, 5000]
    } else {
        &[1000, 5000, 10_000]
    };
    let categories = 8;
    sizes
        .iter()
        .map(|&n| {
            let mut serial = sharded_allocator(n, categories, seed);
            let start = Instant::now();
            let serial_result = serial.rebucket_all(1);
            let serial_ms = start.elapsed().as_secs_f64() * 1e3;
            let mut sharded = sharded_allocator(n, categories, seed);
            let start = Instant::now();
            let sharded_result = sharded.rebucket_all(threads);
            let parallel_ms = start.elapsed().as_secs_f64() * 1e3;
            RebucketParallelRow {
                records: n,
                categories,
                threads,
                serial_ms,
                parallel_ms,
                speedup: serial_ms / parallel_ms.max(f64::MIN_POSITIVE),
                identical: serial_result == sharded_result,
            }
        })
        .collect()
}

/// The `tora serve` hot path: per-request latency quantiles of
/// `predict_first_batch` against a warm 10k-record, 8-category allocator.
/// The bank is rebucketed before timing (a daemon's steady state — pending
/// records committed, bucket tables built), then each timed request is one
/// batch call, exactly what a `Submit`/`Predict` line costs the daemon.
fn serve_latency_rows(quick: bool, seed: u64, threads: usize) -> Vec<ServeLatencyRow> {
    use tora_alloc::task::CategoryId;
    let records = 10_000;
    let categories = 8;
    let samples = if quick { 300 } else { 3000 };
    let mut allocator = sharded_allocator(records, categories, seed);
    // Commit the pending records and build every bucket table up front;
    // the first prediction would otherwise pay the one-time rebucket cost.
    std::hint::black_box(allocator.rebucket_all(threads));
    [1usize, 64]
        .into_iter()
        .map(|batch| {
            let requests: Vec<CategoryId> = (0..batch)
                .map(|i| CategoryId((i % categories) as u32))
                .collect();
            // Warm-up outside the window.
            for _ in 0..8 {
                std::hint::black_box(allocator.predict_first_batch(&requests, threads));
            }
            let mut lat_us: Vec<f64> = (0..samples)
                .map(|_| {
                    let start = Instant::now();
                    std::hint::black_box(allocator.predict_first_batch(&requests, threads));
                    micros(start.elapsed())
                })
                .collect();
            lat_us.sort_by(f64::total_cmp);
            let at = |q: f64| lat_us[((lat_us.len() as f64 * q) as usize).min(lat_us.len() - 1)];
            ServeLatencyRow {
                batch,
                records,
                categories,
                threads,
                samples,
                p50_us: at(0.50),
                p99_us: at(0.99),
                max_us: *lat_us.last().expect("samples > 0"),
            }
        })
        .collect()
}

fn matrix_speedup(quick: bool, seed: u64) -> MatrixSpeedup {
    let (workflows, algorithms): (&[PaperWorkflow], &[AlgorithmKind]) = if quick {
        (
            &[PaperWorkflow::Uniform, PaperWorkflow::Bimodal],
            &[
                AlgorithmKind::MaxSeen,
                AlgorithmKind::GreedyBucketing,
                AlgorithmKind::ExhaustiveBucketing,
            ],
        )
    } else {
        (&PaperWorkflow::ALL, &AlgorithmKind::PAPER_SET)
    };
    let config = MatrixConfig {
        seed,
        ..MatrixConfig::default()
    };
    let threads = crate::pool::thread_count(workflows.len() * algorithms.len());

    // Sequential reference run and parallel run take their worker counts as
    // explicit parameters — mutating `TORA_THREADS` around a call was a
    // race waiting for a second thread (and unsound under Rust 2024 env
    // semantics).
    let start = Instant::now();
    let sequential = run_matrix_on(workflows, algorithms, &config, 1);
    let sequential_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = run_matrix_on(workflows, algorithms, &config, threads);
    let parallel_s = start.elapsed().as_secs_f64();

    let identical =
        serde_json::to_string(&sequential).ok() == serde_json::to_string(&parallel).ok();
    MatrixSpeedup {
        cells: sequential.len(),
        threads,
        sequential_s,
        parallel_s,
        speedup: sequential_s / parallel_s.max(f64::MIN_POSITIVE),
        identical,
    }
}

/// Run the full benchmark suite. `quick` shrinks iteration counts and the
/// matrix so the whole thing finishes in a few seconds (the CI smoke mode).
pub fn run_bench(quick: bool, seed: u64) -> BenchReport {
    run_bench_on(quick, seed, 0)
}

/// [`run_bench`] with an explicit worker-thread count for the sharded
/// measurements (`tora bench --threads`); `0` auto-detects.
pub fn run_bench_on(quick: bool, seed: u64, threads: usize) -> BenchReport {
    let (pred_n, pred_iters) = if quick {
        (1000, 20_000)
    } else {
        (5000, 200_000)
    };
    let prediction = vec![
        prediction_rate(GreedyBucketing::new(), pred_n, pred_iters, seed),
        prediction_rate(ExhaustiveBucketing::new(), pred_n, pred_iters, seed),
    ];
    let threads_detected = tora_alloc::par::detected_threads();
    let threads = if threads == 0 {
        threads_detected
    } else {
        threads
    };
    let matrix = matrix_speedup(quick, seed);
    // What the parallel measurements actually got to run on: the requested
    // count capped by the widest fan-out. `1` on a 1-core box — honest.
    let threads_used = threads.min(matrix.cells.max(1)).max(1);
    BenchReport {
        seed,
        quick,
        prediction,
        rebucket: rebucket_rows(quick, seed),
        rebucket_parallel: rebucket_parallel_rows(quick, seed, threads),
        end_to_end: end_to_end(quick, seed),
        scaling: scaling_curve(quick, seed),
        threads_detected,
        threads_used,
        matrix,
        serve_latency: serve_latency_rows(quick, seed, threads),
        // Cheap either way (6 runs of a 34-task diamond) — quick keeps it.
        fig_dag: fig_dag_rows(seed),
        // Four serial replays of a 600-task workload — also cheap enough
        // for quick runs, and ci.sh asserts its directional result.
        fig_learned: fig_learned_rows(seed),
    }
}

impl BenchReport {
    /// Render the report as the tables `tora bench` prints.
    pub fn render(&self) -> String {
        use tora_metrics::Table;
        let mut out = String::new();
        let mut t = Table::new(
            "steady-state prediction throughput",
            &["estimator", "records", "allocs/sec"],
        );
        for p in &self.prediction {
            t.row(&[
                p.algorithm.clone(),
                p.records.to_string(),
                format!("{:.2e}", p.allocs_per_sec),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
        let mut t = Table::new(
            "rebucket latency: fast kernel vs paper-faithful scan",
            &[
                "partitioner",
                "records",
                "fast (µs)",
                "faithful (µs)",
                "speedup",
            ],
        );
        for r in &self.rebucket {
            t.row(&[
                r.partitioner.clone(),
                r.records.to_string(),
                format!("{:.1}", r.fast_us),
                format!("{:.1}", r.faithful_us),
                format!("{:.1}×", r.speedup),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
        let e = &self.end_to_end;
        out.push_str(&format!(
            "end-to-end engine: {} × {} tasks in {:.2} s = {:.0} simulated tasks/sec\n",
            e.workflow, e.tasks, e.wall_s, e.tasks_per_sec
        ));
        let mut t = Table::new(
            "engine scaling (streamed bimodal workload)",
            &["tasks", "wall (s)", "tasks/sec"],
        );
        for r in &self.scaling {
            t.row(&[
                r.tasks.to_string(),
                format!("{:.2}", r.wall_s),
                format!("{:.0}", r.tasks_per_sec),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
        let mut t = Table::new(
            "rebucket sweep: serial vs category-sharded",
            &[
                "records",
                "categories",
                "threads",
                "serial (ms)",
                "sharded (ms)",
                "speedup",
                "identical",
            ],
        );
        for r in &self.rebucket_parallel {
            t.row(&[
                r.records.to_string(),
                r.categories.to_string(),
                r.threads.to_string(),
                format!("{:.2}", r.serial_ms),
                format!("{:.2}", r.parallel_ms),
                format!("{:.1}×", r.speedup),
                if r.identical { "yes" } else { "NO (bug!)" }.to_string(),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
        let mut t = Table::new(
            "serve prediction latency (warm 10k-record bank)",
            &["batch", "samples", "p50 (µs)", "p99 (µs)", "max (µs)"],
        );
        for r in &self.serve_latency {
            t.row(&[
                r.batch.to_string(),
                r.samples.to_string(),
                format!("{:.1}", r.p50_us),
                format!("{:.1}", r.p99_us),
                format!("{:.1}", r.max_us),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
        let mut t = Table::new(
            "fig_dag: critical-path sensitivity (depth-dominated diamond)",
            &[
                "algorithm",
                "scenario",
                "makespan (s)",
                "vs baseline",
                "inflation",
                "waste on/off path (MB·s)",
            ],
        );
        for r in &self.fig_dag {
            t.row(&[
                r.algorithm.clone(),
                r.scenario.clone(),
                format!("{:.1}", r.makespan_s),
                format!("{:.3}×", r.makespan_vs_baseline),
                format!("{:.2}×", r.inflation),
                format!("{:.0} / {:.0}", r.on_path_waste_mb_s, r.off_path_waste_mb_s),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
        let mut t = Table::new(
            "fig_learned: feature conditioning on the bimodal workload",
            &[
                "algorithm",
                "features",
                "memory AWE",
                "retries",
                "vs greedy",
            ],
        );
        for r in &self.fig_learned {
            t.row(&[
                r.algorithm.clone(),
                if r.feature_conditioned { "yes" } else { "no" }.to_string(),
                format!("{:.4}", r.memory_awe),
                r.retries.to_string(),
                format!("{:.3}×", r.awe_vs_greedy),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
        out.push_str(&format!(
            "threads detected: {} / used: {}\n",
            self.threads_detected, self.threads_used
        ));
        let m = &self.matrix;
        out.push_str(&format!(
            "parallel runner: {} cells on {} threads — {:.2} s sequential vs {:.2} s \
             parallel ({:.1}× speedup), outputs {}\n",
            m.cells,
            m.threads,
            m.sequential_s,
            m.parallel_s,
            m.speedup,
            if m.identical {
                "byte-identical"
            } else {
                "DIFFER (bug!)"
            }
        ));
        out
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_produces_consistent_report() {
        let report = run_bench(true, 7);
        assert_eq!(report.prediction.len(), 2);
        assert!(report
            .prediction
            .iter()
            .all(|p| p.allocs_per_sec > 0.0 && p.allocs_per_sec.is_finite()));
        // quick: 2 sizes × 2 partitioner families.
        assert_eq!(report.rebucket.len(), 4);
        for r in &report.rebucket {
            assert!(r.fast_us > 0.0 && r.faithful_us > 0.0, "{r:?}");
            assert!(r.speedup.is_finite());
        }
        assert!(report.end_to_end.tasks_per_sec > 0.0);
        // quick: 10k and 100k scaling points, streamed.
        assert_eq!(
            report.scaling.iter().map(|r| r.tasks).collect::<Vec<_>>(),
            vec![10_000, 100_000]
        );
        assert!(report
            .scaling
            .iter()
            .all(|r| r.tasks_per_sec > 0.0 && r.wall_s > 0.0));
        assert!(report.threads_detected >= 1);
        assert!(report.threads_used >= 1);
        assert!(report.threads_used <= report.threads_detected);
        // quick: 2 record counts, each with the serial-vs-sharded identity
        // cross-check holding.
        assert_eq!(report.rebucket_parallel.len(), 2);
        for r in &report.rebucket_parallel {
            assert!(r.serial_ms > 0.0 && r.parallel_ms > 0.0, "{r:?}");
            assert!(
                r.identical,
                "serial and sharded rebucket sweeps must agree: {r:?}"
            );
        }
        assert_eq!(report.matrix.cells, 6);
        assert!(
            report.matrix.identical,
            "sequential and parallel matrix runs must agree byte-for-byte"
        );
        // Serve latency: batch-of-1 and batch-of-64 rows over a warm
        // 10k-record bank, quantiles ordered and positive.
        assert_eq!(
            report
                .serve_latency
                .iter()
                .map(|r| r.batch)
                .collect::<Vec<_>>(),
            vec![1, 64]
        );
        for r in &report.serve_latency {
            assert_eq!(r.records, 10_000);
            assert!(r.p50_us > 0.0, "{r:?}");
            assert!(r.p50_us <= r.p99_us && r.p99_us <= r.max_us, "{r:?}");
        }
        // fig_learned rides in every report, with the headline comparison
        // (the directional assertion itself lives in `figlearned::tests`).
        assert_eq!(report.fig_learned.len(), 4);
        let json = report.to_json().expect("serializes");
        assert!(json.contains("\"rebucket\""));
        assert!(json.contains("\"fig_dag\""));
        assert!(json.contains("\"fig_learned\""));
        assert!(!report.render().is_empty());
    }
}
