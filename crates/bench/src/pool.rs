//! A scoped-thread job pool for the experiment harnesses.
//!
//! The (workflow × algorithm × seed) cells of every figure harness are
//! independent simulations — exactly the "granular sub-problem" shape POP
//! exploits — so they fan out across cores with plain `std::thread::scope`:
//! no external dependencies, no long-lived pool state.
//!
//! Work distribution is a chunked atomic queue: each worker claims a small
//! contiguous chunk of indices at a time (amortizing the atomic traffic)
//! and writes results into the slot matching the item's index, so the
//! output order is deterministic and independent of scheduling.
//!
//! Thread-count *detection* lives in [`tora_alloc::par`] (one precedence
//! for the whole workspace: `TORA_THREADS` override, then hardware
//! parallelism capped by the cgroup CPU quota). Harnesses that need an
//! explicit worker count — the perf harness comparing sequential vs
//! parallel runs — pass it via [`run_parallel_on`] instead of mutating the
//! environment mid-process.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers to use for `jobs` items: the workspace-wide detected
/// thread count ([`tora_alloc::par::detected_threads`]), never more than
/// the job count.
pub fn thread_count(jobs: usize) -> usize {
    tora_alloc::par::thread_count(jobs)
}

/// Map `f` over `items` on a scoped thread pool sized by
/// [`thread_count`], returning results in item order regardless of which
/// worker computed what.
pub fn run_parallel<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_parallel_on(items, thread_count(items.len()), f)
}

/// [`run_parallel`] with an explicit worker count — the harness-facing
/// entry point for sequential-vs-parallel comparisons (`threads = 1` is
/// the reference run; no environment mutation involved).
///
/// The chunk size grows with the queue so workers touch the shared counter
/// O(threads) times, not O(items); with one worker (or one item) the loop
/// degenerates to a plain sequential map over the same code path.
pub fn run_parallel_on<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    // Small chunks keep the tail balanced even when item costs vary wildly
    // (a 5000-task Exhaustive cell vs a 600-task Whole Machine cell).
    let chunk = (n / (threads * 4)).max(1);
    let next = AtomicUsize::new(0);
    let results = Mutex::new((0..n).map(|_| None).collect::<Vec<Option<R>>>());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                // Compute outside the lock; store under it.
                let batch: Vec<(usize, R)> = (start..end).map(|i| (i, f(&items[i]))).collect();
                let mut slots = results.lock().expect("no poisoned results");
                for (i, r) in batch {
                    slots[i] = Some(r);
                }
            });
        }
    });
    results
        .into_inner()
        .expect("no poisoned results")
        .into_iter()
        .map(|r| r.expect("all items computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_item_order() {
        let items: Vec<usize> = (0..257).collect();
        let out = run_parallel(&items, |&i| i * 3);
        assert_eq!(out, items.iter().map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_parallel(&empty, |&x| x).is_empty());
        assert_eq!(run_parallel(&[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn uneven_costs_still_complete() {
        // Wildly imbalanced items must all be computed exactly once.
        let items: Vec<u64> = (0..64).collect();
        let out = run_parallel(&items, |&i| {
            let mut acc = i;
            for _ in 0..(i % 7) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i, acc)
        });
        assert_eq!(out.len(), 64);
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(*i, idx as u64);
        }
    }

    #[test]
    fn thread_count_never_exceeds_jobs() {
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(2) <= 2);
        assert!(thread_count(0) >= 1);
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let items: Vec<usize> = (0..100).collect();
        let want: Vec<usize> = items.iter().map(|i| i * 3).collect();
        for threads in [1, 2, 4, 200] {
            assert_eq!(run_parallel_on(&items, threads, |&i| i * 3), want);
        }
    }
}
