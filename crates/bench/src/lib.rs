//! # tora-bench — experiment harnesses and benchmarks
//!
//! Regenerates every table and figure of the paper's evaluation (§V):
//!
//! | Paper artifact | Binary | What it prints |
//! |---|---|---|
//! | Figure 2 | `fig2_traces` | per-task peak scatter data for ColmenaXTB and TopEFT |
//! | Figure 4 | `fig4_synthetic` | per-task memory of the five synthetic workflows |
//! | Figure 5 | `fig5_awe` | AWE (cores/memory/disk), 7 workflows × 7 algorithms |
//! | Figure 6 | `fig6_waste` | waste breakdown (IF vs FA), 7 workflows × 6 algorithms |
//! | Table I | `table1_timing` | µs per bucketing-state compute at 10–5000 records |
//! | ablations | `ablation_sweep` | design-choice sweeps called out in DESIGN.md |
//! | resilience | `chaos_sweep` | GB/EB AWE degradation versus injected fault rate |
//!
//! Criterion benches (`cargo bench -p tora-bench`) cover the Table I
//! measurement (`table1_state_compute`) and steady-state per-allocation
//! prediction cost across all seven algorithms (`predict_cost`).
//!
//! Set `TORA_RESULTS_DIR=<dir>` to also dump each harness's raw cells as
//! JSON/CSV for post-processing. The harnesses fan independent cells across
//! cores via [`pool::run_parallel`]; `TORA_THREADS` caps the worker count
//! (`TORA_THREADS=1` forces a sequential run with identical output).
//! [`perf::run_bench`] backs the `tora bench` subcommand and writes
//! `BENCH.json`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chaos;
pub mod experiments;
pub mod figdag;
pub mod figlearned;
pub mod perf;
pub mod pool;
pub mod timing;

pub use chaos::{run_chaos_cell, run_chaos_sweep, ChaosCell};
pub use experiments::{run_cell, run_matrix, run_matrix_for, MatrixCell, MatrixConfig};
pub use perf::{run_bench, run_bench_on, BenchReport};
pub use pool::run_parallel;
pub use timing::{loaded_estimator, sample_values, state_compute_time, TABLE1_SIZES};
