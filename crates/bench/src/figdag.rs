//! The `fig_dag` cell of `tora bench`: critical-path sensitivity.
//!
//! Task-oriented allocation is structure-blind — the paper's estimators
//! see a stream of (category, peak) records and never the dependency
//! graph. This experiment measures what that blindness costs: the same
//! allocation error injected on vs off the critical path of a
//! depth-dominated diamond, with everything else held symmetric. The
//! directional result (on-path errors inflate the makespan more) is
//! asserted by a test here and by ci.sh on every quick bench run.

use serde::Serialize;
use tora_alloc::allocator::AlgorithmKind;
use tora_alloc::resources::{ResourceKind, ResourceVector, WorkerSpec};
use tora_alloc::task::TaskSpec;
use tora_sim::{simulate, ChurnConfig, SimConfig};
use tora_workloads::Workflow;

/// One cell of the critical-path sensitivity experiment (`fig_dag`): a
/// diamond-shaped workflow where the *same* allocation error is injected
/// either into the critical chain or into the slackest parallel chain.
/// Task-oriented allocation is structure-blind; this row quantifies what
/// that blindness costs when the error lands on the path that sets the
/// makespan.
#[derive(Debug, Clone, Serialize)]
pub struct FigDagRow {
    /// Allocator under test.
    pub algorithm: String,
    /// `baseline`, `on-path` (critical-chain victims), or `off-path`
    /// (shallow-chain victims).
    pub scenario: String,
    /// Task count of the diamond workflow.
    pub tasks: usize,
    /// Simulated makespan, seconds.
    pub makespan_s: f64,
    /// `makespan_s / baseline makespan_s` for the same algorithm.
    pub makespan_vs_baseline: f64,
    /// Submit-time longest path through the DAG, seconds.
    pub longest_path_s: f64,
    /// Realized critical-path span (first submit → last on-path finish).
    pub realized_s: f64,
    /// `realized_s / longest_path_s`.
    pub inflation: f64,
    /// Waste charged to tasks on the submit-time critical path, MB·s.
    pub on_path_waste_mb_s: f64,
    /// Waste charged to everything else, MB·s.
    pub off_path_waste_mb_s: f64,
}

/// Clone `wf` with the memory peaks of `victims` inflated to 95% of the
/// worker's capacity — a task the estimator will badly under-allocate until
/// the exhaustion-retry ladder reaches it. Dependencies are preserved.
fn inflate_peaks(wf: &Workflow, victims: &[u64]) -> Workflow {
    let target = wf.worker.capacity.memory_mb() * 0.95;
    let mut tasks = wf.tasks.clone();
    for &t in victims {
        let peak = &mut tasks[t as usize].peak;
        if peak[ResourceKind::MemoryMb] < target {
            peak[ResourceKind::MemoryMb] = target;
        }
    }
    Workflow::new(wf.name.clone(), wf.categories.clone(), tasks, wf.worker)
        .with_dependencies(wf.dependencies.clone())
}

/// The depth-dominated diamond behind `fig_dag`: one source, a deep chain
/// (`DEEP` tasks — the critical path), a shallow chain (`SHALLOW` tasks —
/// pure float), one sink, every task an identical 50 s / 4 GB spec in one
/// category. Uniform specs are the point: the two chains differ *only* in
/// depth, so a victim set of `SHALLOW` tasks costs the estimator exactly
/// the same retries wherever it lands, and any makespan asymmetry between
/// the scenarios is attributable to structure alone.
fn fig_dag_workflow() -> Workflow {
    const DEEP: usize = 24;
    const SHALLOW: usize = 8;
    let n = DEEP + SHALLOW + 2;
    let peak = ResourceVector::new(2.0, 4.0 * 1024.0, 1024.0);
    let tasks: Vec<TaskSpec> = (0..n)
        .map(|i| TaskSpec::new(i as u64, 0, peak, 50.0))
        .collect();
    // Task ids: 0 = source, 1..=DEEP = deep chain, DEEP+1..=DEEP+SHALLOW =
    // shallow chain, n-1 = sink.
    let deps: Vec<Vec<u64>> = (0..n)
        .map(|i| match i {
            0 => Vec::new(),
            _ if i == DEEP + 1 => vec![0], // shallow chain starts at the source
            _ if i == n - 1 => vec![DEEP as u64, (DEEP + SHALLOW) as u64],
            _ => vec![(i - 1) as u64],
        })
        .collect();
    Workflow::new(
        "fig-dag-diamond",
        vec!["work".to_string()],
        tasks,
        WorkerSpec::paper_default(),
    )
    .with_dependencies(deps)
}

/// The critical-path sensitivity experiment: a depth-dominated diamond
/// (one chain three times deeper than the other) where the same allocation
/// error — eight tasks whose true memory peak is 95% of the worker, so the
/// estimator under-allocates them until the exhaustion-retry ladder climbs
/// to them — is injected either into the middle of the critical chain or
/// into the shallow chain. The victim sets have identical sizes, specs,
/// and retry cost; only their structural position differs. On the critical
/// chain the retries extend the path that sets the makespan, on the
/// shallow chain its float absorbs them. The asymmetry is the figure.
pub fn fig_dag_rows(seed: u64) -> Vec<FigDagRow> {
    let wf = fig_dag_workflow();
    let sink = wf.len() as u64 - 1;

    // Sanity-check the structure against the generic longest-path walk:
    // the deep chain (tasks 1..=24) is the submit-time critical path.
    let (_, critical) = tora_workloads::dag::longest_path(&wf);
    assert_eq!(critical.len(), 26, "deep chain + source + sink");

    // Victims: eight mid-chain tasks of the deep chain vs the whole
    // shallow chain (tasks 25..=32).
    let on_path: Vec<u64> = (9..17).collect();
    let off_path: Vec<u64> = (25..33).collect();
    debug_assert!(on_path.iter().all(|t| critical.contains(t)));
    debug_assert!(off_path.iter().all(|t| !critical.contains(t) && *t < sink));

    let scenarios: [(&str, Workflow); 3] = [
        ("baseline", wf.clone()),
        ("on-path", inflate_peaks(&wf, &on_path)),
        ("off-path", inflate_peaks(&wf, &off_path)),
    ];
    let config = SimConfig {
        churn: ChurnConfig::fixed(16),
        ..SimConfig::paper_like(seed)
    };
    let mut rows = Vec::new();
    for algorithm in [
        AlgorithmKind::GreedyBucketing,
        AlgorithmKind::ExhaustiveBucketing,
    ] {
        let mut baseline_makespan = f64::NAN;
        for (scenario, wf) in &scenarios {
            let result = simulate(wf, algorithm, config);
            let cp = result
                .stats
                .critical_path
                .expect("structured runs carry critical-path stats");
            if *scenario == "baseline" {
                baseline_makespan = result.makespan_s;
            }
            rows.push(FigDagRow {
                algorithm: algorithm.label().to_string(),
                scenario: scenario.to_string(),
                tasks: wf.len(),
                makespan_s: result.makespan_s,
                makespan_vs_baseline: result.makespan_s / baseline_makespan.max(f64::MIN_POSITIVE),
                longest_path_s: cp.longest_path_s,
                realized_s: cp.realized_s,
                inflation: cp.inflation,
                on_path_waste_mb_s: cp.on_path_waste_mb_s,
                off_path_waste_mb_s: cp.off_path_waste_mb_s,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The point of the fig_dag cell: the same allocation error costs more
    /// makespan on the critical chain than on the slackest chain. This is
    /// the acceptance criterion of the DAG milestone — assert it
    /// directionally per algorithm, not just that the numbers exist.
    #[test]
    fn fig_dag_shows_on_path_errors_hurt_more() {
        let rows = fig_dag_rows(7);
        assert_eq!(rows.len(), 6);
        for algorithm in ["greedy-bucketing", "exhaustive-bucketing"] {
            let find = |scenario: &str| {
                rows.iter()
                    .find(|r| r.algorithm == algorithm && r.scenario == scenario)
                    .unwrap_or_else(|| panic!("{algorithm}/{scenario} row missing"))
            };
            let baseline = find("baseline");
            let on = find("on-path");
            let off = find("off-path");
            assert!(baseline.longest_path_s > 0.0, "{baseline:?}");
            assert!((baseline.makespan_vs_baseline - 1.0).abs() < 1e-9);
            // Both error scenarios burn retries somewhere, but only the
            // on-path one spends them on the chain that sets the makespan.
            assert!(
                on.makespan_vs_baseline > off.makespan_vs_baseline,
                "{algorithm}: on-path {:.3} !> off-path {:.3}",
                on.makespan_vs_baseline,
                off.makespan_vs_baseline
            );
            // The inflated critical chain also shows up in the realized
            // path: it stretches relative to its submit-time bound.
            assert!(
                on.inflation >= baseline.inflation,
                "{algorithm}: on-path inflation {:.3} < baseline {:.3}",
                on.inflation,
                baseline.inflation
            );
        }
    }
}
