//! Table I support: timing the bucketing-state computation.
//!
//! Table I reports "the average time to compute a new bucketing state and
//! derive a new allocation" at 10 / 200 / 1000 / 2000 / 5000 records,
//! assuming the worst case where every allocation request recomputes the
//! state. [`state_compute_time`] reproduces exactly that: an estimator in
//! `recompute_always` mode, pre-loaded with `n` records sampled from the
//! §IV-A example distribution (memory ~ N(8 GB, 2 GB)), timed over repeated
//! first-allocation requests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use tora_alloc::partition::Partitioner;
use tora_alloc::policy::BucketingEstimator;
use tora_alloc::ValueEstimator;
use tora_workloads::dist::normal;

/// The record-list sizes of Table I.
pub const TABLE1_SIZES: [usize; 5] = [10, 200, 1000, 2000, 5000];

/// Sample `n` record values from the §IV-A example distribution
/// (N(8192 MB, 2048 MB), truncated at 64 MB).
pub fn sample_values(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7AB1E1);
    (0..n)
        .map(|_| normal(&mut rng, 8192.0, 2048.0).max(64.0))
        .collect()
}

/// Build a worst-case (recompute-per-request) estimator pre-loaded with `n`
/// records.
pub fn loaded_estimator<P: Partitioner>(
    partitioner: P,
    n: usize,
    seed: u64,
) -> BucketingEstimator<P> {
    let mut est = BucketingEstimator::new(partitioner).recompute_always();
    for (i, v) in sample_values(n, seed).into_iter().enumerate() {
        est.observe(v, (i + 1) as f64);
    }
    est
}

/// Mean time per state-compute + allocation over `iters` requests.
pub fn state_compute_time<P: Partitioner>(
    partitioner: P,
    n: usize,
    iters: usize,
    seed: u64,
) -> Duration {
    let mut est = loaded_estimator(partitioner, n, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x11ED);
    // Warm-up request outside the timed window.
    let _ = est.first(rng.gen());
    let start = Instant::now();
    let mut sink = 0.0;
    for _ in 0..iters {
        sink += est.first(rng.gen()).unwrap_or(0.0);
    }
    let elapsed = start.elapsed();
    std::hint::black_box(sink);
    elapsed / iters as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use tora_alloc::exhaustive::ExhaustiveBucketing;
    use tora_alloc::greedy::GreedyBucketing;

    #[test]
    fn sampled_values_match_the_example_distribution() {
        let values = sample_values(5000, 1);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((mean - 8192.0).abs() < 150.0, "mean {mean}");
        assert!(values.iter().all(|&v| v >= 64.0));
    }

    #[test]
    fn timing_returns_positive_durations() {
        let d = state_compute_time(ExhaustiveBucketing::new(), 200, 3, 1);
        assert!(d > Duration::ZERO);
        let g = state_compute_time(GreedyBucketing::incremental(), 200, 3, 1);
        assert!(g > Duration::ZERO);
    }

    #[test]
    fn greedy_faithful_costs_more_than_incremental_at_scale() {
        // The Table I growth driver: the faithful scan is quadratic per
        // interval, the incremental one linear.
        let n = 1000;
        let faithful = state_compute_time(GreedyBucketing::faithful(), n, 2, 1);
        let incremental = state_compute_time(GreedyBucketing::incremental(), n, 2, 1);
        assert!(
            faithful > incremental,
            "faithful {faithful:?} vs incremental {incremental:?}"
        );
    }
}
