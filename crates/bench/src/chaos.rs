//! The fault-rate degradation sweep behind the `chaos_sweep` binary.
//!
//! Runs a workload under [`FaultPlan::with_intensity`] at a series of fault
//! rates, for GB and EB, and records how the §II-C efficiency degrades:
//! headline AWE over completed tasks, the degraded-mode AWE that also
//! charges dead-lettered consumption, and the fault-vs-allocation waste
//! attribution. This is the resilience analogue of the Figure 5 matrix —
//! the paper's algorithms are only useful if their efficiency edge survives
//! an unreliable pool.

use serde::{Deserialize, Serialize};
use tora_alloc::allocator::AlgorithmKind;
use tora_alloc::resources::ResourceKind;
use tora_sim::{simulate, ChurnConfig, FaultPlan, SimConfig};
use tora_workloads::PaperWorkflow;

/// One (algorithm × fault-rate) cell of the degradation sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosCell {
    /// The algorithm.
    pub algorithm: AlgorithmKind,
    /// The intensity knob handed to [`FaultPlan::with_intensity`].
    pub fault_rate: f64,
    /// Tasks submitted / completed / dead-lettered.
    pub submitted: u64,
    /// Completed tasks.
    pub completed: u64,
    /// Dead-lettered tasks (final count, after any replays).
    pub dead_lettered: u64,
    /// Dead letters re-admitted after the pool recovered.
    #[serde(default)]
    pub replayed: u64,
    /// Replayed tasks that went on to complete.
    #[serde(default)]
    pub replay_successes: u64,
    /// Memory AWE over completed tasks.
    pub awe_memory: f64,
    /// Memory AWE charging dead-lettered consumption too.
    pub degraded_awe_memory: f64,
    /// Fault-induced memory waste (crash/timeout attempts + straggler drag).
    pub fault_waste_memory: f64,
    /// Allocation-induced memory waste (IF + FA minus the fault share).
    pub alloc_waste_memory: f64,
    /// Simulated makespan, seconds.
    pub makespan_s: f64,
}

/// The default rate axis of the sweep.
pub const DEFAULT_RATES: [f64; 5] = [0.0, 0.05, 0.1, 0.2, 0.3];

/// Sweep GB and EB across `rates`, fanning cells over cores.
pub fn run_chaos_sweep(rates: &[f64], seed: u64) -> Vec<ChaosCell> {
    let algorithms = [
        AlgorithmKind::GreedyBucketing,
        AlgorithmKind::ExhaustiveBucketing,
    ];
    let pairs: Vec<(AlgorithmKind, f64)> = algorithms
        .iter()
        .flat_map(|&a| rates.iter().map(move |&r| (a, r)))
        .collect();
    crate::pool::run_parallel(&pairs, |&(algorithm, rate)| {
        run_chaos_cell(algorithm, rate, seed)
    })
}

/// Run one cell of the sweep.
pub fn run_chaos_cell(algorithm: AlgorithmKind, fault_rate: f64, seed: u64) -> ChaosCell {
    let wf = PaperWorkflow::Bimodal.build(seed);
    let config = SimConfig {
        churn: ChurnConfig::paper_like(),
        faults: FaultPlan::with_intensity(fault_rate),
        ..SimConfig::paper_like(seed)
    };
    let result = simulate(&wf, algorithm.fast_equivalent(), config);
    let kind = ResourceKind::MemoryMb;
    let attribution = result.metrics.attributed_waste(kind);
    ChaosCell {
        algorithm,
        fault_rate,
        submitted: result.stats.submitted,
        completed: result.stats.completions,
        dead_lettered: result.stats.faults.dead_lettered,
        replayed: result.stats.faults.replayed,
        replay_successes: result.stats.faults.replay_successes,
        awe_memory: result.metrics.awe(kind).unwrap_or(0.0),
        degraded_awe_memory: result.metrics.degraded_awe(kind).unwrap_or(0.0),
        fault_waste_memory: attribution.fault_induced,
        alloc_waste_memory: attribution.allocation_induced,
        makespan_s: result.makespan_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_cell_matches_fault_free_run() {
        let cell = run_chaos_cell(AlgorithmKind::GreedyBucketing, 0.0, 5);
        assert_eq!(cell.dead_lettered, 0);
        assert_eq!(cell.submitted, cell.completed);
        assert!((cell.awe_memory - cell.degraded_awe_memory).abs() < 1e-12);
        assert_eq!(cell.fault_waste_memory, 0.0);
    }

    #[test]
    fn sweep_covers_all_pairs_and_conserves_tasks() {
        let cells = run_chaos_sweep(&[0.0, 0.2], 9);
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            assert_eq!(
                cell.submitted,
                cell.completed + cell.dead_lettered,
                "{:?} rate {}",
                cell.algorithm,
                cell.fault_rate
            );
            assert!(cell.awe_memory > 0.0);
            assert!(cell.degraded_awe_memory <= cell.awe_memory + 1e-12);
        }
    }

    #[test]
    fn faults_induce_fault_attributed_waste() {
        let cell = run_chaos_cell(AlgorithmKind::ExhaustiveBucketing, 0.3, 11);
        assert!(cell.fault_waste_memory > 0.0, "{cell:?}");
    }

    #[test]
    fn heavy_chaos_replays_and_recovers_some_tasks() {
        // `with_intensity` enables dead-letter replay at any nonzero rate;
        // under heavy chaos the recovered pool must actually win back work.
        let cell = run_chaos_cell(AlgorithmKind::GreedyBucketing, 0.3, 11);
        assert!(cell.replayed > 0, "{cell:?}");
        assert!(cell.replay_successes > 0, "{cell:?}");
        assert!(cell.replay_successes <= cell.replayed);
        // Conservation uses the *final* dead-letter count, so it is
        // unchanged by replay bookkeeping.
        assert_eq!(cell.submitted, cell.completed + cell.dead_lettered);
    }
}
