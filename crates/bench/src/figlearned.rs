//! The `fig_learned` cell of `tora bench`: what feature conditioning buys.
//!
//! The paper's estimators key every resource state on the task's category
//! alone, so a category that mixes small and large inputs forces a
//! category-global algorithm to either over-allocate the small mode or
//! retry the large one. The TaskContext refactor threads a pre-run
//! input-size signal to the estimators; this experiment measures what the
//! feature-conditioned comparators recover on exactly that workload — the
//! bimodal synthetic family, whose two memory modes the minted signal
//! separates. The directional result (feature-binned strictly beats Greedy
//! Bucketing on memory AWE) is asserted by a test here and by ci.sh on
//! every quick bench run.

use serde::Serialize;
use tora_alloc::allocator::AlgorithmKind;
use tora_alloc::resources::ResourceKind;
use tora_sim::{replay, EnforcementModel};
use tora_workloads::SyntheticKind;

/// One allocator's score on the heterogeneous (bimodal) workload.
#[derive(Debug, Clone, Serialize)]
pub struct FigLearnedRow {
    /// Allocator under test.
    pub algorithm: String,
    /// Whether the allocator reads the task's feature vector.
    pub feature_conditioned: bool,
    /// Task count of the bimodal workload.
    pub tasks: usize,
    /// Absolute Workflow Efficiency on memory (§II-C).
    pub memory_awe: f64,
    /// Total retry attempts across the workflow.
    pub retries: usize,
    /// `memory_awe / greedy-bucketing memory_awe` — above 1 means the
    /// feature bought efficiency the category-global baseline left behind.
    pub awe_vs_greedy: f64,
}

/// The feature-conditioning experiment: serial replays of one bimodal
/// workload (small and large input modes mixed in a single category) under
/// the category-global paper baseline and the two feature-conditioned
/// comparators. The minted input-size signal tracks the memory mode, so an
/// estimator conditioning on it can allocate each mode near its own peak
/// instead of hedging across both.
pub fn fig_learned_rows(seed: u64) -> Vec<FigLearnedRow> {
    const TASKS: usize = 600;
    let wf = SyntheticKind::Bimodal
        .catalog_workflow()
        .spec(seed)
        .tasks(TASKS)
        .materialize()
        .expect("catalog spec is valid");

    let algorithms = [
        AlgorithmKind::GreedyBucketing,
        AlgorithmKind::ExhaustiveBucketing,
        AlgorithmKind::FeatureBinned,
        AlgorithmKind::SemiBandit,
    ];
    let mut rows: Vec<FigLearnedRow> = algorithms
        .into_iter()
        .map(|algorithm| {
            let m = replay(&wf, algorithm, EnforcementModel::default(), seed);
            FigLearnedRow {
                algorithm: algorithm.label().to_string(),
                feature_conditioned: matches!(
                    algorithm,
                    AlgorithmKind::FeatureBinned | AlgorithmKind::SemiBandit
                ),
                tasks: TASKS,
                memory_awe: m.awe(ResourceKind::MemoryMb).expect("non-empty metrics"),
                retries: m.total_retries(),
                awe_vs_greedy: f64::NAN,
            }
        })
        .collect();
    let greedy_awe = rows
        .iter()
        .find(|r| r.algorithm == "greedy-bucketing")
        .expect("greedy row present")
        .memory_awe;
    for row in &mut rows {
        row.awe_vs_greedy = row.memory_awe / greedy_awe.max(f64::MIN_POSITIVE);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion of the TaskContext milestone: on the
    /// heterogeneous workload the input-size signal separates, the
    /// feature-binned estimator strictly beats the category-global Greedy
    /// Bucketing baseline on memory AWE.
    #[test]
    fn feature_conditioning_beats_the_category_global_baseline() {
        let rows = fig_learned_rows(7);
        assert_eq!(rows.len(), 4);
        let find = |algorithm: &str| {
            rows.iter()
                .find(|r| r.algorithm == algorithm)
                .unwrap_or_else(|| panic!("{algorithm} row missing"))
        };
        let greedy = find("greedy-bucketing");
        let binned = find("feature-binned");
        assert!((greedy.awe_vs_greedy - 1.0).abs() < 1e-12);
        for row in &rows {
            assert!(
                row.memory_awe > 0.0 && row.memory_awe <= 1.0,
                "{row:?}: AWE out of range"
            );
        }
        assert!(
            binned.memory_awe > greedy.memory_awe,
            "feature-binned {:.4} !> greedy-bucketing {:.4}",
            binned.memory_awe,
            greedy.memory_awe
        );
    }

    /// The directional result is a property of the signal, not of one lucky
    /// seed: it must hold across independent workload draws.
    #[test]
    fn the_advantage_is_seed_robust() {
        for seed in [1, 7, 23, 42] {
            let rows = fig_learned_rows(seed);
            let awe = |algorithm: &str| {
                rows.iter()
                    .find(|r| r.algorithm == algorithm)
                    .map(|r| r.memory_awe)
                    .unwrap()
            };
            assert!(
                awe("feature-binned") > awe("greedy-bucketing"),
                "seed {seed}: feature-binned {:.4} !> greedy {:.4}",
                awe("feature-binned"),
                awe("greedy-bucketing")
            );
        }
    }
}
