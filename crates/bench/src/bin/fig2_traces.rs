//! Figure 2: per-task peak resource consumption of the two production-trace
//! workflows (ColmenaXTB top row, TopEFT bottom row).
//!
//! Prints per-category summary statistics for each resource dimension and,
//! when `TORA_RESULTS_DIR` is set, dumps the full per-task scatter data as
//! CSV (`fig2_<workflow>.csv`: task id, category, cores, memory, disk,
//! time) — exactly the points the paper plots.

use tora_alloc::resources::ResourceKind;
use tora_metrics::Table;
use tora_workloads::{PaperWorkflow, Workflow};

fn summarize(wf: &Workflow) {
    let mut table = Table::new(
        format!("Figure 2 — {} task resource consumption", wf.name),
        &["category", "tasks", "resource", "min", "p50", "mean", "max"],
    );
    for (cat_idx, cat_name) in wf.categories.iter().enumerate() {
        for kind in [
            ResourceKind::Cores,
            ResourceKind::MemoryMb,
            ResourceKind::DiskMb,
        ] {
            let mut values: Vec<f64> = wf
                .tasks
                .iter()
                .filter(|t| t.category.0 as usize == cat_idx)
                .map(|t| t.peak[kind])
                .collect();
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            push_stats(&mut table, cat_name, kind.label(), &values);
        }
        let mut durations: Vec<f64> = wf
            .tasks
            .iter()
            .filter(|t| t.category.0 as usize == cat_idx)
            .map(|t| t.duration_s)
            .collect();
        durations.sort_by(|a, b| a.partial_cmp(b).unwrap());
        push_stats(&mut table, cat_name, "time(s)", &durations);
    }
    print!("{}", table.render());
    println!();
}

fn push_stats(table: &mut Table, category: &str, resource: &str, sorted: &[f64]) {
    if sorted.is_empty() {
        return;
    }
    let n = sorted.len();
    let mean = sorted.iter().sum::<f64>() / n as f64;
    table.row(&[
        category.to_string(),
        n.to_string(),
        resource.to_string(),
        format!("{:.2}", sorted[0]),
        format!("{:.2}", sorted[n / 2]),
        format!("{mean:.2}"),
        format!("{:.2}", sorted[n - 1]),
    ]);
}

fn dump_csv(wf: &Workflow) {
    let Some(dir) = std::env::var_os("TORA_RESULTS_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let mut table = Table::new(
        "",
        &[
            "task",
            "category",
            "cores",
            "memory_mb",
            "disk_mb",
            "time_s",
        ],
    );
    for t in &wf.tasks {
        table.row(&[
            t.id.0.to_string(),
            wf.category_name(t.category).to_string(),
            format!("{:.3}", t.peak.cores()),
            format!("{:.1}", t.peak.memory_mb()),
            format!("{:.1}", t.peak.disk_mb()),
            format!("{:.1}", t.duration_s),
        ]);
    }
    let path = dir.join(format!("fig2_{}.csv", wf.name));
    if std::fs::write(&path, table.to_csv()).is_ok() {
        println!("wrote {}", path.display());
    }
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    for wf in [PaperWorkflow::ColmenaXtb, PaperWorkflow::TopEft] {
        let built = wf.build(seed);
        summarize(&built);
        dump_csv(&built);
    }
}
