//! Figure 4: memory consumption of tasks in the five synthetic workflows.
//!
//! Prints a per-workflow histogram sketch plus phase statistics (the
//! trimodal workflow's signature), and dumps per-task series as CSV when
//! `TORA_RESULTS_DIR` is set.

use tora_metrics::Table;
use tora_workloads::SyntheticKind;
use tora_workloads::Workflow;

fn histogram(wf: &Workflow, buckets: usize) {
    let values: Vec<f64> = wf.tasks.iter().map(|t| t.peak.memory_mb()).collect();
    let max = values.iter().cloned().fold(0.0, f64::max);
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let width = ((max - min) / buckets as f64).max(1.0);
    let mut counts = vec![0usize; buckets];
    for &v in &values {
        let idx = (((v - min) / width) as usize).min(buckets - 1);
        counts[idx] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    println!(
        "== Figure 4 — {} (memory MB, {} tasks) ==",
        wf.name,
        wf.len()
    );
    for (i, &c) in counts.iter().enumerate() {
        let lo = min + width * i as f64;
        let bar = "#".repeat(c * 50 / peak);
        println!("{lo:>9.0}–{:<9.0} {c:>5} {bar}", lo + width);
    }
    println!();
}

fn phase_table(wf: &Workflow) {
    let n = wf.len();
    let mut table = Table::new(
        format!("{} — thirds of the submission order", wf.name),
        &["phase", "tasks", "memory mean (MB)", "memory max (MB)"],
    );
    for (phase, range) in [(1, 0..n / 3), (2, n / 3..2 * n / 3), (3, 2 * n / 3..n)] {
        let slice = &wf.tasks[range];
        let mean = slice.iter().map(|t| t.peak.memory_mb()).sum::<f64>() / slice.len() as f64;
        let max = slice.iter().map(|t| t.peak.memory_mb()).fold(0.0, f64::max);
        table.row(&[
            phase.to_string(),
            slice.len().to_string(),
            format!("{mean:.0}"),
            format!("{max:.0}"),
        ]);
    }
    print!("{}", table.render());
    println!();
}

fn dump_csv(wf: &Workflow) {
    let Some(dir) = std::env::var_os("TORA_RESULTS_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let mut table = Table::new("", &["task", "memory_mb"]);
    for t in &wf.tasks {
        table.row(&[t.id.0.to_string(), format!("{:.1}", t.peak.memory_mb())]);
    }
    let path = dir.join(format!("fig4_{}.csv", wf.name));
    if std::fs::write(&path, table.to_csv()).is_ok() {
        println!("wrote {}", path.display());
    }
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    // Generate the five workflows in parallel; render in deterministic order.
    let workflows = tora_bench::pool::run_parallel(&SyntheticKind::ALL, |&kind| {
        (kind, kind.catalog_workflow().build(seed))
    });
    for (kind, wf) in &workflows {
        histogram(wf, 16);
        if *kind == SyntheticKind::PhasingTrimodal {
            phase_table(wf);
        }
        dump_csv(wf);
    }
}
