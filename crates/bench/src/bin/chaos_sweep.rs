//! Chaos sweep: AWE degradation of GB and EB versus fault rate.
//!
//! Runs the bimodal workload under [`tora_sim::FaultPlan::with_intensity`]
//! at increasing fault rates (crashes, rack crashes, stragglers, record
//! dropout, flaky dispatch all scale together, and dead-letter replay is
//! armed) and prints, per algorithm and rate, the completed/dead-lettered/
//! replayed split, the headline and degraded-mode memory AWE, and the
//! fault-vs-allocation waste attribution. Usage:
//!
//! ```text
//! chaos_sweep [seed]
//! ```

use tora_bench::chaos::{run_chaos_sweep, DEFAULT_RATES};
use tora_metrics::{pct, Table};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    eprintln!(
        "sweeping fault rates {DEFAULT_RATES:?} over GB/EB on the bimodal workload \
         (seed {seed})..."
    );
    let cells = run_chaos_sweep(&DEFAULT_RATES, seed);
    let mut table = Table::new(
        format!("chaos sweep — memory AWE vs fault rate (seed {seed})"),
        &[
            "algorithm",
            "rate",
            "completed",
            "dead-lettered",
            "replayed",
            "recovered",
            "AWE",
            "AWE (degraded)",
            "fault waste",
            "alloc waste",
            "makespan",
        ],
    );
    for cell in &cells {
        table.row(&[
            cell.algorithm.label().to_string(),
            format!("{:.2}", cell.fault_rate),
            cell.completed.to_string(),
            cell.dead_lettered.to_string(),
            cell.replayed.to_string(),
            cell.replay_successes.to_string(),
            pct(cell.awe_memory),
            pct(cell.degraded_awe_memory),
            format!("{:.3e}", cell.fault_waste_memory),
            format!("{:.3e}", cell.alloc_waste_memory),
            format!("{:.0} s", cell.makespan_s),
        ]);
    }
    print!("{}", table.render());
    for cell in &cells {
        assert_eq!(
            cell.submitted,
            cell.completed + cell.dead_lettered,
            "conservation violated at {:?} rate {}",
            cell.algorithm,
            cell.fault_rate
        );
        assert!(
            cell.replay_successes <= cell.replayed,
            "replay accounting violated at {:?} rate {}",
            cell.algorithm,
            cell.fault_rate
        );
    }
    println!(
        "conservation OK: submitted = completed + dead-lettered \
         (and recovered <= replayed) in every cell"
    );
}
