//! Figure 5: Absolute Workflow Efficiency in cores, memory and disk of the
//! 7 workflows across the 7 allocation algorithms.
//!
//! Runs the full matrix through the discrete-event engine on a paper-like
//! opportunistic pool (20–50 churning workers) and prints one table per
//! resource dimension, rows = algorithms, columns = workflows — the same
//! cells as the paper's bar chart.

use tora_alloc::allocator::AlgorithmKind;
use tora_alloc::resources::ResourceKind;
use tora_bench::experiments::{maybe_dump_json, run_cell, MatrixCell, MatrixConfig};
use tora_bench::pool::run_parallel;
use tora_metrics::{pct, Table};
use tora_workloads::PaperWorkflow;

/// Mean and spread of one cell's AWE over the seed sweep.
fn cell_stats(
    sweeps: &[Vec<MatrixCell>],
    wf: PaperWorkflow,
    alg: AlgorithmKind,
    kind: ResourceKind,
) -> (f64, f64) {
    let values: Vec<f64> = sweeps
        .iter()
        .map(|cells| {
            cells
                .iter()
                .find(|c| c.workflow == wf && c.algorithm == alg)
                .expect("matrix is complete")
                .dim(kind)
                .awe
        })
        .collect();
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let seeds: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let base = MatrixConfig {
        seed,
        ..MatrixConfig::default()
    };
    eprintln!(
        "running 7 workflows x 7 algorithms on an opportunistic pool \
         ({}-{} workers, {} seed(s) from {seed})...",
        base.churn.min, base.churn.max, seeds
    );
    // One flat (seed × workflow × algorithm) job list: the whole sweep fans
    // across cores in a single pool pass instead of seed-by-seed barriers.
    let jobs: Vec<(u64, PaperWorkflow, AlgorithmKind)> = (0..seeds)
        .flat_map(|i| {
            PaperWorkflow::ALL.iter().flat_map(move |&w| {
                AlgorithmKind::PAPER_SET
                    .iter()
                    .map(move |&a| (seed + i, w, a))
            })
        })
        .collect();
    let per_seed = PaperWorkflow::ALL.len() * AlgorithmKind::PAPER_SET.len();
    let flat = run_parallel(&jobs, |&(s, w, a)| {
        run_cell(w, a, &MatrixConfig { seed: s, ..base })
    });
    let sweeps: Vec<Vec<MatrixCell>> = flat.chunks(per_seed).map(|chunk| chunk.to_vec()).collect();
    let cells = &sweeps[0];

    for kind in ResourceKind::STANDARD {
        let mut headers = vec!["algorithm"];
        let names: Vec<&str> = PaperWorkflow::ALL.iter().map(|w| w.name()).collect();
        headers.extend(names.iter());
        let mut table = Table::new(
            if seeds > 1 {
                format!(
                    "Figure 5 — Absolute Workflow Efficiency ({}), mean±sd over {seeds} seeds",
                    kind.label()
                )
            } else {
                format!("Figure 5 — Absolute Workflow Efficiency ({})", kind.label())
            },
            &headers,
        );
        for alg in AlgorithmKind::PAPER_SET {
            let mut row = vec![alg.label().to_string()];
            for wf in PaperWorkflow::ALL {
                let (mean, sd) = cell_stats(&sweeps, wf, alg, kind);
                if seeds > 1 {
                    row.push(format!("{}±{:.1}", pct(mean), sd * 100.0));
                } else {
                    row.push(pct(mean));
                }
            }
            table.push_row(row);
        }
        print!("{}", table.render());
        println!();
    }

    // Paper-shape summary: who wins each (workflow, dimension) cell.
    let mut wins = Table::new(
        "Best algorithm per (workflow, resource)",
        &["workflow", "cores", "memory", "disk"],
    );
    for wf in PaperWorkflow::ALL {
        let best = |kind: ResourceKind| {
            cells
                .iter()
                .filter(|c| c.workflow == wf)
                .max_by(|a, b| {
                    a.dim(kind)
                        .awe
                        .partial_cmp(&b.dim(kind).awe)
                        .expect("finite AWE")
                })
                .map(|c| c.algorithm.label().to_string())
                .unwrap_or_default()
        };
        wins.row(&[
            wf.name().to_string(),
            best(ResourceKind::Cores),
            best(ResourceKind::MemoryMb),
            best(ResourceKind::DiskMb),
        ]);
    }
    print!("{}", wins.render());

    if let Some(path) = maybe_dump_json("fig5_awe", cells) {
        println!("\nwrote {}", path.display());
    }
}
