//! Figure 6: resource waste in cores, memory and disk of the 7 workflows
//! across 6 allocation algorithms (Whole Machine dropped, as in the paper,
//! for better visualization), broken down into *internal fragmentation* and
//! *failed allocation*.
//!
//! Prints one table per resource dimension: each cell shows total waste
//! (resource·hours) and the failed-allocation share.

use tora_alloc::allocator::AlgorithmKind;
use tora_alloc::resources::ResourceKind;
use tora_bench::experiments::{maybe_dump_json, run_matrix_for, MatrixConfig};
use tora_metrics::{pct, Table};
use tora_workloads::PaperWorkflow;

/// The six algorithms of Figure 6.
const FIG6_SET: [AlgorithmKind; 6] = [
    AlgorithmKind::MaxSeen,
    AlgorithmKind::MinWaste,
    AlgorithmKind::MaxThroughput,
    AlgorithmKind::QuantizedBucketing,
    AlgorithmKind::GreedyBucketing,
    AlgorithmKind::ExhaustiveBucketing,
];

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let config = MatrixConfig {
        seed,
        ..MatrixConfig::default()
    };
    eprintln!("running 7 workflows x 6 algorithms (seed {seed})...");
    let cells = run_matrix_for(&PaperWorkflow::ALL, &FIG6_SET, &config);

    for kind in ResourceKind::STANDARD {
        let unit_hours = |v: f64| v / 3600.0;
        let mut headers = vec!["algorithm"];
        let names: Vec<&str> = PaperWorkflow::ALL.iter().map(|w| w.name()).collect();
        headers.extend(names.iter());
        let mut table = Table::new(
            format!(
                "Figure 6 — waste in {}·hours (failed-allocation share in parens)",
                kind.unit()
            ),
            &headers,
        );
        for alg in FIG6_SET {
            let mut row = vec![alg.label().to_string()];
            for wf in PaperWorkflow::ALL {
                let cell = cells
                    .iter()
                    .find(|c| c.workflow == wf && c.algorithm == alg)
                    .expect("matrix is complete");
                let w = cell.dim(kind).waste;
                row.push(format!(
                    "{:.0} ({})",
                    unit_hours(w.total()),
                    pct(w.failed_share())
                ));
            }
            table.push_row(row);
        }
        print!("{}", table.render());
        println!();
    }

    // Retry pressure per algorithm (the behaviour §V-D discusses).
    let mut retries = Table::new("Failed allocations per workflow", &{
        let mut h = vec!["algorithm"];
        h.extend(PaperWorkflow::ALL.iter().map(|w| w.name()));
        h
    });
    for alg in FIG6_SET {
        let mut row = vec![alg.label().to_string()];
        for wf in PaperWorkflow::ALL {
            let cell = cells
                .iter()
                .find(|c| c.workflow == wf && c.algorithm == alg)
                .expect("matrix is complete");
            row.push(cell.retries.to_string());
        }
        retries.push_row(row);
    }
    print!("{}", retries.render());

    if let Some(path) = maybe_dump_json("fig6_waste", &cells) {
        println!("\nwrote {}", path.display());
    }
}
