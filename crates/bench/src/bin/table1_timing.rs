//! Table I: average time (µs) to compute a new bucketing state and derive a
//! new allocation, for Greedy Bucketing (GB) and Exhaustive Bucketing (EB)
//! at 10 / 200 / 1000 / 2000 / 5000 records.
//!
//! Reproduces the paper's worst case — every request recomputes the state —
//! with records sampled from the §IV-A example distribution. A third row
//! shows the incremental-scan Greedy Bucketing ablation (identical output,
//! the "potential optimization" of §VII).

use tora_alloc::exhaustive::ExhaustiveBucketing;
use tora_alloc::greedy::GreedyBucketing;
use tora_alloc::partition::Partitioner;
use tora_bench::timing::{state_compute_time, TABLE1_SIZES};
use tora_metrics::{grouped, Table};

fn iters_for(n: usize, expensive: bool) -> usize {
    // Keep the harness fast: the quadratic scan at 5000 records costs
    // hundreds of ms per request.
    match (n, expensive) {
        (..=200, _) => 200,
        (..=1000, true) => 10,
        (..=1000, false) => 100,
        (_, true) => 3,
        (_, false) => 50,
    }
}

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let mut headers = vec!["algorithm".to_string()];
    headers.extend(TABLE1_SIZES.iter().map(|n| n.to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table I — mean µs per bucketing-state compute + allocation",
        &header_refs,
    );

    // Table I times the *paper's* implementation cost: the faithful scans,
    // not the prefix-sum production default. Guard against the default
    // silently changing underneath this harness.
    let gb = GreedyBucketing::faithful();
    assert_eq!(gb.name(), "greedy-bucketing-faithful");
    let eb = ExhaustiveBucketing::faithful();
    assert_eq!(eb.name(), "exhaustive-bucketing-faithful");

    eprintln!("timing GB (faithful scan)...");
    let mut gb_row = vec!["GB".to_string()];
    for &n in &TABLE1_SIZES {
        let d = state_compute_time(gb, n, iters_for(n, true), seed);
        gb_row.push(grouped(d.as_secs_f64() * 1e6));
    }
    table.push_row(gb_row);

    eprintln!("timing EB (faithful costing)...");
    let mut eb_row = vec!["EB".to_string()];
    for &n in &TABLE1_SIZES {
        let d = state_compute_time(eb, n, iters_for(n, false), seed);
        eb_row.push(grouped(d.as_secs_f64() * 1e6));
    }
    table.push_row(eb_row);

    eprintln!("timing GB (incremental-scan ablation)...");
    let mut gbi_row = vec!["GB-incr".to_string()];
    for &n in &TABLE1_SIZES {
        let d = state_compute_time(GreedyBucketing::incremental(), n, iters_for(n, false), seed);
        gbi_row.push(grouped(d.as_secs_f64() * 1e6));
    }
    table.push_row(gbi_row);

    print!("{}", table.render());
    println!(
        "\npaper reference (µs): GB 11.2 / 586.4 / 14,588.2 / 62,207.2 / 441,050.7;\n\
         EB 14.4 / 76.5 / 323.5 / 567.8 / 1,632.0"
    );
}
