//! Ablation sweeps over the design choices DESIGN.md calls out.
//!
//! Estimator-level ablations run through the serial replay (fast,
//! deterministic, isolates the allocator); system-level ablations (queue
//! policy, arrival model) run through the engine. Every section computes its
//! independent cells on the [`tora_bench::pool`] job pool and renders the
//! tables sequentially, so output is deterministic. Sections:
//!
//! 1. significance weighting on/off (the §IV-A recency mechanism);
//! 2. exploratory record threshold (§V-A uses 10);
//! 3. Exhaustive Bucketing bucket cap (§V-A caps at 10);
//! 4. Quantized Bucketing split quantile (\[11\] uses the median);
//! 5. clustering rule: value-grid (EB) vs greedy recursion (GB) vs k-means;
//! 6. enforcement model (linear-ramp vs instant-peak kill timing);
//! 7. robustness under §II-D2 perturbations (shuffle, phase shift,
//!    outliers, jitter);
//! 8. queue policy and arrival model through the engine.

use tora_alloc::allocator::{AlgorithmKind, AllocatorConfig, EstimatorFactory, ExploratoryPolicy};
use tora_alloc::baselines::QuantizedBucketing;
use tora_alloc::exhaustive::ExhaustiveBucketing;
use tora_alloc::policy::BucketingEstimator;
use tora_alloc::resources::ResourceKind;
use tora_bench::pool::run_parallel;
use tora_metrics::{pct, Table, WorkflowMetrics};
use tora_sim::replay::replay_with_config;
use tora_sim::{
    replay, simulate, ArrivalModel, ChurnConfig, EnforcementModel, QueuePolicy, SimConfig,
};
use tora_workloads::SyntheticKind;
use tora_workloads::{perturb, Workflow};

const SEED: u64 = 42;
const KIND: ResourceKind = ResourceKind::MemoryMb;

fn awe(m: &WorkflowMetrics) -> String {
    pct(m.awe(KIND).unwrap())
}

fn base_workflows() -> Vec<Workflow> {
    vec![
        SyntheticKind::Normal
            .catalog_workflow()
            .spec(SEED)
            .tasks(600)
            .materialize()
            .unwrap(),
        SyntheticKind::Bimodal
            .catalog_workflow()
            .spec(SEED)
            .tasks(600)
            .materialize()
            .unwrap(),
        SyntheticKind::PhasingTrimodal
            .catalog_workflow()
            .spec(SEED)
            .tasks(600)
            .materialize()
            .unwrap(),
    ]
}

/// Compute a rows×cols grid of cells on the job pool, row-major.
fn grid<T: Send>(rows: usize, cols: usize, f: impl Fn(usize, usize) -> T + Sync) -> Vec<Vec<T>> {
    let cells: Vec<(usize, usize)> = (0..rows)
        .flat_map(|r| (0..cols).map(move |c| (r, c)))
        .collect();
    let mut flat = run_parallel(&cells, |&(r, c)| f(r, c)).into_iter();
    (0..rows)
        .map(|_| {
            (0..cols)
                .map(|_| flat.next().expect("grid complete"))
                .collect()
        })
        .collect()
}

fn significance_ablation(workflows: &[Workflow]) {
    let mut table = Table::new(
        "1. significance weighting (memory AWE, Exhaustive Bucketing)",
        &["workflow", "sig = task id", "sig = 1"],
    );
    let modes = [false, true];
    let results = grid(workflows.len(), modes.len(), |w, m| {
        let wf = &workflows[w];
        let config = AllocatorConfig {
            machine: wf.worker,
            uniform_significance: modes[m],
            ..AllocatorConfig::default()
        };
        let metrics = replay_with_config(
            wf,
            AlgorithmKind::ExhaustiveBucketing,
            config,
            EnforcementModel::LinearRamp,
            SEED,
        );
        awe(&metrics)
    });
    for (wf, row) in workflows.iter().zip(results) {
        table.push_row(vec![wf.name.clone(), row[0].clone(), row[1].clone()]);
    }
    print!("{}", table.render());
    println!();
}

fn exploratory_threshold_ablation(workflows: &[Workflow]) {
    let thresholds = [5usize, 10, 20, 50];
    let mut headers = vec!["workflow".to_string()];
    headers.extend(thresholds.iter().map(|t| format!("{t} records")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "2. exploratory threshold (memory AWE, Exhaustive Bucketing)",
        &header_refs,
    );
    let results = grid(workflows.len(), thresholds.len(), |w, t| {
        let wf = &workflows[w];
        let config = AllocatorConfig {
            machine: wf.worker,
            exploratory_records: thresholds[t],
            ..AllocatorConfig::default()
        };
        let metrics = replay_with_config(
            wf,
            AlgorithmKind::ExhaustiveBucketing,
            config,
            EnforcementModel::LinearRamp,
            SEED,
        );
        awe(&metrics)
    });
    for (wf, cells) in workflows.iter().zip(results) {
        let mut row = vec![wf.name.clone()];
        row.extend(cells);
        table.push_row(row);
    }
    print!("{}", table.render());
    println!();
}

fn replay_with_factory(wf: &Workflow, label: String, factory: EstimatorFactory) -> WorkflowMetrics {
    use tora_alloc::allocator::Allocator;
    use tora_alloc::task::ResourceRecord;
    use tora_metrics::{AttemptOutcome, TaskOutcome};
    let config = AllocatorConfig {
        machine: wf.worker,
        exploratory: Some(ExploratoryPolicy::paper_conservative()),
        ..AllocatorConfig::default()
    };
    let mut allocator = Allocator::with_factory(label, factory, config, SEED);
    let enforcement = EnforcementModel::LinearRamp;
    let mut metrics = WorkflowMetrics::new();
    for task in &wf.tasks {
        let mut attempts = Vec::new();
        let mut alloc = allocator.predict_first(task.category).into_alloc();
        loop {
            let verdict = enforcement.judge(task, &alloc);
            if verdict.success {
                attempts.push(AttemptOutcome::success(alloc, verdict.charged_time_s));
                break;
            }
            attempts.push(AttemptOutcome::failure(alloc, verdict.charged_time_s));
            alloc = allocator
                .predict_retry(task.category, &alloc, &verdict.exhausted)
                .into_alloc();
        }
        metrics.push(TaskOutcome {
            task: task.id,
            category: task.category,
            peak: task.peak,
            duration_s: task.duration_s,
            attempts,
        });
        allocator.observe(&ResourceRecord::from_task(task));
    }
    metrics
}

fn bucket_cap_ablation(workflows: &[Workflow]) {
    let caps = [2usize, 5, 10, 20];
    let mut headers = vec!["workflow".to_string()];
    headers.extend(caps.iter().map(|c| format!("k ≤ {c}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "3. Exhaustive Bucketing bucket cap (memory AWE)",
        &header_refs,
    );
    let results = grid(workflows.len(), caps.len(), |w, c| {
        let cap = caps[c];
        let factory: EstimatorFactory = Box::new(move |_, _| {
            Box::new(BucketingEstimator::new(
                ExhaustiveBucketing::with_max_buckets(cap),
            ))
        });
        awe(&replay_with_factory(
            &workflows[w],
            format!("eb-k{cap}"),
            factory,
        ))
    });
    for (wf, cells) in workflows.iter().zip(results) {
        let mut row = vec![wf.name.clone()];
        row.extend(cells);
        table.push_row(row);
    }
    print!("{}", table.render());
    println!();
}

fn quantile_ablation(workflows: &[Workflow]) {
    let quantiles = [0.25f64, 0.5, 0.75, 0.95];
    let mut headers = vec!["workflow".to_string()];
    headers.extend(quantiles.iter().map(|q| format!("p{:.0}", q * 100.0)));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "4. Quantized Bucketing split quantile (memory AWE)",
        &header_refs,
    );
    let results = grid(workflows.len(), quantiles.len(), |w, q| {
        let quantile = quantiles[q];
        let factory: EstimatorFactory =
            Box::new(move |_, _| Box::new(QuantizedBucketing::with_quantile(quantile)));
        awe(&replay_with_factory(
            &workflows[w],
            format!("qb-{quantile}"),
            factory,
        ))
    });
    for (wf, cells) in workflows.iter().zip(results) {
        let mut row = vec![wf.name.clone()];
        row.extend(cells);
        table.push_row(row);
    }
    print!("{}", table.render());
    println!();
}

fn clustering_rule_ablation(workflows: &[Workflow]) {
    let mut table = Table::new(
        "5. clustering rule behind the shared bucketing policy (memory AWE)",
        &["workflow", "value-grid (EB)", "greedy (GB)", "k-means"],
    );
    let rules = [
        AlgorithmKind::ExhaustiveBucketing,
        AlgorithmKind::GreedyBucketing,
        AlgorithmKind::KMeansBucketing,
    ];
    let results = grid(workflows.len(), rules.len(), |w, r| {
        awe(&replay(
            &workflows[w],
            rules[r],
            EnforcementModel::LinearRamp,
            SEED,
        ))
    });
    for (wf, cells) in workflows.iter().zip(results) {
        let mut row = vec![wf.name.clone()];
        row.extend(cells);
        table.push_row(row);
    }
    print!("{}", table.render());
    println!();
}

fn enforcement_ablation(workflows: &[Workflow]) {
    let mut table = Table::new(
        "6. enforcement model (memory AWE, Exhaustive Bucketing)",
        &["workflow", "linear-ramp", "instant-peak"],
    );
    let models = [EnforcementModel::LinearRamp, EnforcementModel::InstantPeak];
    let results = grid(workflows.len(), models.len(), |w, m| {
        awe(&replay(
            &workflows[w],
            AlgorithmKind::ExhaustiveBucketing,
            models[m],
            SEED,
        ))
    });
    for (wf, cells) in workflows.iter().zip(results) {
        let mut row = vec![wf.name.clone()];
        row.extend(cells);
        table.push_row(row);
    }
    print!("{}", table.render());
    println!();
}

fn robustness_ablation() {
    let base = SyntheticKind::Bimodal
        .catalog_workflow()
        .spec(SEED)
        .tasks(800)
        .materialize()
        .unwrap();
    let variants: Vec<(&str, Workflow)> = vec![
        ("base", base.clone()),
        ("shuffled", perturb::shuffle(&base, SEED)),
        ("phase-shifted", perturb::phase_shift(&base)),
        (
            "5% outliers ×4",
            perturb::inject_outliers(&base, 0.05, 4.0, SEED),
        ),
        ("jitter σ=0.3", perturb::jitter(&base, 0.3, SEED)),
    ];
    let algorithms = [
        AlgorithmKind::MaxSeen,
        AlgorithmKind::QuantizedBucketing,
        AlgorithmKind::GreedyBucketing,
        AlgorithmKind::ExhaustiveBucketing,
    ];
    let mut headers = vec!["perturbation"];
    headers.extend(algorithms.iter().map(|a| a.label()));
    let mut table = Table::new(
        "7. robustness to §II-D2 perturbations (bimodal, memory AWE)",
        &headers,
    );
    let results = grid(variants.len(), algorithms.len(), |v, a| {
        awe(&replay(
            &variants[v].1,
            algorithms[a],
            EnforcementModel::LinearRamp,
            SEED,
        ))
    });
    for ((name, _), cells) in variants.iter().zip(results) {
        let mut row = vec![name.to_string()];
        row.extend(cells);
        table.push_row(row);
    }
    print!("{}", table.render());
    println!();
}

fn system_ablation() {
    let wf = SyntheticKind::Bimodal
        .catalog_workflow()
        .spec(SEED)
        .tasks(600)
        .materialize()
        .unwrap();
    let mut table = Table::new(
        "8. engine-level choices (bimodal, Exhaustive Bucketing)",
        &["configuration", "memory AWE", "makespan", "retries"],
    );
    let mut configs: Vec<(String, SimConfig)> = QueuePolicy::ALL
        .iter()
        .map(|&policy| {
            (
                format!("fixed pool, {}", policy.label()),
                SimConfig {
                    queue_policy: policy,
                    churn: ChurnConfig::fixed(20),
                    seed: SEED,
                    ..SimConfig::default()
                },
            )
        })
        .collect();
    configs.push((
        "paper pool, batch arrivals".to_string(),
        SimConfig {
            arrival: ArrivalModel::Batch,
            ..SimConfig::paper_like(SEED)
        },
    ));
    configs.push((
        "paper pool, poisson arrivals (1.5 s)".to_string(),
        SimConfig::paper_like(SEED),
    ));
    let results = run_parallel(&configs, |(_, config)| {
        let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, *config);
        (
            awe(&res.metrics),
            format!("{:.0}s", res.makespan_s),
            res.metrics.total_retries().to_string(),
        )
    });
    for ((name, _), (awe, makespan, retries)) in configs.iter().zip(results) {
        table.push_row(vec![name.clone(), awe, makespan, retries]);
    }
    print!("{}", table.render());
}

fn main() {
    let workflows = base_workflows();
    significance_ablation(&workflows);
    exploratory_threshold_ablation(&workflows);
    bucket_cap_ablation(&workflows);
    quantile_ablation(&workflows);
    clustering_rule_ablation(&workflows);
    enforcement_ablation(&workflows);
    robustness_ablation();
    system_ablation();
}
