//! Ablation sweeps over the design choices DESIGN.md calls out.
//!
//! Estimator-level ablations run through the serial replay (fast,
//! deterministic, isolates the allocator); system-level ablations (queue
//! policy, arrival model) run through the engine. Sections:
//!
//! 1. significance weighting on/off (the §IV-A recency mechanism);
//! 2. exploratory record threshold (§V-A uses 10);
//! 3. Exhaustive Bucketing bucket cap (§V-A caps at 10);
//! 4. Quantized Bucketing split quantile (\[11\] uses the median);
//! 5. clustering rule: value-grid (EB) vs greedy recursion (GB) vs k-means;
//! 6. enforcement model (linear-ramp vs instant-peak kill timing);
//! 7. robustness under §II-D2 perturbations (shuffle, phase shift,
//!    outliers, jitter);
//! 8. queue policy and arrival model through the engine.

use tora_alloc::allocator::{AlgorithmKind, AllocatorConfig, EstimatorFactory, ExploratoryPolicy};
use tora_alloc::baselines::QuantizedBucketing;
use tora_alloc::exhaustive::ExhaustiveBucketing;
use tora_alloc::policy::BucketingEstimator;
use tora_alloc::resources::ResourceKind;
use tora_metrics::{pct, Table, WorkflowMetrics};
use tora_sim::replay::replay_with_config;
use tora_sim::{
    replay, simulate, ArrivalModel, ChurnConfig, EnforcementModel, QueuePolicy, SimConfig,
};
use tora_workloads::synthetic::{generate, SyntheticKind};
use tora_workloads::{perturb, Workflow};

const SEED: u64 = 42;
const KIND: ResourceKind = ResourceKind::MemoryMb;

fn awe(m: &WorkflowMetrics) -> String {
    pct(m.awe(KIND).unwrap())
}

fn base_workflows() -> Vec<Workflow> {
    vec![
        generate(SyntheticKind::Normal, 600, SEED),
        generate(SyntheticKind::Bimodal, 600, SEED),
        generate(SyntheticKind::PhasingTrimodal, 600, SEED),
    ]
}

fn significance_ablation(workflows: &[Workflow]) {
    let mut table = Table::new(
        "1. significance weighting (memory AWE, Exhaustive Bucketing)",
        &["workflow", "sig = task id", "sig = 1"],
    );
    for wf in workflows {
        let row: Vec<String> = [false, true]
            .iter()
            .map(|&uniform| {
                let config = AllocatorConfig {
                    machine: wf.worker,
                    uniform_significance: uniform,
                    ..AllocatorConfig::default()
                };
                let m = replay_with_config(
                    wf,
                    AlgorithmKind::ExhaustiveBucketing,
                    config,
                    EnforcementModel::LinearRamp,
                    SEED,
                );
                awe(&m)
            })
            .collect();
        table.push_row(vec![wf.name.clone(), row[0].clone(), row[1].clone()]);
    }
    print!("{}", table.render());
    println!();
}

fn exploratory_threshold_ablation(workflows: &[Workflow]) {
    let thresholds = [5usize, 10, 20, 50];
    let mut headers = vec!["workflow".to_string()];
    headers.extend(thresholds.iter().map(|t| format!("{t} records")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "2. exploratory threshold (memory AWE, Exhaustive Bucketing)",
        &header_refs,
    );
    for wf in workflows {
        let mut row = vec![wf.name.clone()];
        for &t in &thresholds {
            let config = AllocatorConfig {
                machine: wf.worker,
                exploratory_records: t,
                ..AllocatorConfig::default()
            };
            let m = replay_with_config(
                wf,
                AlgorithmKind::ExhaustiveBucketing,
                config,
                EnforcementModel::LinearRamp,
                SEED,
            );
            row.push(awe(&m));
        }
        table.push_row(row);
    }
    print!("{}", table.render());
    println!();
}

fn replay_with_factory(wf: &Workflow, label: String, factory: EstimatorFactory) -> WorkflowMetrics {
    use tora_alloc::allocator::Allocator;
    use tora_alloc::task::ResourceRecord;
    use tora_metrics::{AttemptOutcome, TaskOutcome};
    let config = AllocatorConfig {
        machine: wf.worker,
        exploratory: Some(ExploratoryPolicy::paper_conservative()),
        ..AllocatorConfig::default()
    };
    let mut allocator = Allocator::with_factory(label, factory, config, SEED);
    let enforcement = EnforcementModel::LinearRamp;
    let mut metrics = WorkflowMetrics::new();
    for task in &wf.tasks {
        let mut attempts = Vec::new();
        let mut alloc = allocator.predict_first(task.category).into_alloc();
        loop {
            let verdict = enforcement.judge(task, &alloc);
            if verdict.success {
                attempts.push(AttemptOutcome::success(alloc, verdict.charged_time_s));
                break;
            }
            attempts.push(AttemptOutcome::failure(alloc, verdict.charged_time_s));
            alloc = allocator
                .predict_retry(task.category, &alloc, &verdict.exhausted)
                .into_alloc();
        }
        metrics.push(TaskOutcome {
            task: task.id,
            category: task.category,
            peak: task.peak,
            duration_s: task.duration_s,
            attempts,
        });
        allocator.observe(&ResourceRecord::from_task(task));
    }
    metrics
}

fn bucket_cap_ablation(workflows: &[Workflow]) {
    let caps = [2usize, 5, 10, 20];
    let mut headers = vec!["workflow".to_string()];
    headers.extend(caps.iter().map(|c| format!("k ≤ {c}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "3. Exhaustive Bucketing bucket cap (memory AWE)",
        &header_refs,
    );
    for wf in workflows {
        let mut row = vec![wf.name.clone()];
        for &cap in &caps {
            let factory: EstimatorFactory = Box::new(move |_, _| {
                Box::new(BucketingEstimator::new(
                    ExhaustiveBucketing::with_max_buckets(cap),
                ))
            });
            let m = replay_with_factory(wf, format!("eb-k{cap}"), factory);
            row.push(awe(&m));
        }
        table.push_row(row);
    }
    print!("{}", table.render());
    println!();
}

fn quantile_ablation(workflows: &[Workflow]) {
    let quantiles = [0.25f64, 0.5, 0.75, 0.95];
    let mut headers = vec!["workflow".to_string()];
    headers.extend(quantiles.iter().map(|q| format!("p{:.0}", q * 100.0)));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "4. Quantized Bucketing split quantile (memory AWE)",
        &header_refs,
    );
    for wf in workflows {
        let mut row = vec![wf.name.clone()];
        for &q in &quantiles {
            let factory: EstimatorFactory =
                Box::new(move |_, _| Box::new(QuantizedBucketing::with_quantile(q)));
            let m = replay_with_factory(wf, format!("qb-{q}"), factory);
            row.push(awe(&m));
        }
        table.push_row(row);
    }
    print!("{}", table.render());
    println!();
}

fn clustering_rule_ablation(workflows: &[Workflow]) {
    let mut table = Table::new(
        "5. clustering rule behind the shared bucketing policy (memory AWE)",
        &["workflow", "value-grid (EB)", "greedy (GB)", "k-means"],
    );
    for wf in workflows {
        let eb = replay(
            wf,
            AlgorithmKind::ExhaustiveBucketing,
            EnforcementModel::LinearRamp,
            SEED,
        );
        let gb = replay(
            wf,
            AlgorithmKind::GreedyBucketingIncremental,
            EnforcementModel::LinearRamp,
            SEED,
        );
        let km = replay(
            wf,
            AlgorithmKind::KMeansBucketing,
            EnforcementModel::LinearRamp,
            SEED,
        );
        table.push_row(vec![wf.name.clone(), awe(&eb), awe(&gb), awe(&km)]);
    }
    print!("{}", table.render());
    println!();
}

fn enforcement_ablation(workflows: &[Workflow]) {
    let mut table = Table::new(
        "6. enforcement model (memory AWE, Exhaustive Bucketing)",
        &["workflow", "linear-ramp", "instant-peak"],
    );
    for wf in workflows {
        let ramp = replay(
            wf,
            AlgorithmKind::ExhaustiveBucketing,
            EnforcementModel::LinearRamp,
            SEED,
        );
        let instant = replay(
            wf,
            AlgorithmKind::ExhaustiveBucketing,
            EnforcementModel::InstantPeak,
            SEED,
        );
        table.push_row(vec![wf.name.clone(), awe(&ramp), awe(&instant)]);
    }
    print!("{}", table.render());
    println!();
}

fn robustness_ablation() {
    let base = generate(SyntheticKind::Bimodal, 800, SEED);
    let variants: Vec<(&str, Workflow)> = vec![
        ("base", base.clone()),
        ("shuffled", perturb::shuffle(&base, SEED)),
        ("phase-shifted", perturb::phase_shift(&base)),
        (
            "5% outliers ×4",
            perturb::inject_outliers(&base, 0.05, 4.0, SEED),
        ),
        ("jitter σ=0.3", perturb::jitter(&base, 0.3, SEED)),
    ];
    let algorithms = [
        AlgorithmKind::MaxSeen,
        AlgorithmKind::QuantizedBucketing,
        AlgorithmKind::GreedyBucketingIncremental,
        AlgorithmKind::ExhaustiveBucketing,
    ];
    let mut headers = vec!["perturbation"];
    headers.extend(algorithms.iter().map(|a| a.label()));
    let mut table = Table::new(
        "7. robustness to §II-D2 perturbations (bimodal, memory AWE)",
        &headers,
    );
    for (name, wf) in &variants {
        let mut row = vec![name.to_string()];
        for alg in algorithms {
            let m = replay(wf, alg, EnforcementModel::LinearRamp, SEED);
            row.push(awe(&m));
        }
        table.push_row(row);
    }
    print!("{}", table.render());
    println!();
}

fn system_ablation() {
    let wf = generate(SyntheticKind::Bimodal, 600, SEED);
    let mut table = Table::new(
        "8. engine-level choices (bimodal, Exhaustive Bucketing)",
        &["configuration", "memory AWE", "makespan", "retries"],
    );
    let mut run = |name: &str, config: SimConfig| {
        let res = simulate(&wf, AlgorithmKind::ExhaustiveBucketing, config);
        table.push_row(vec![
            name.to_string(),
            awe(&res.metrics),
            format!("{:.0}s", res.makespan_s),
            res.metrics.total_retries().to_string(),
        ]);
    };
    for policy in QueuePolicy::ALL {
        run(
            &format!("fixed pool, {}", policy.label()),
            SimConfig {
                queue_policy: policy,
                churn: ChurnConfig::fixed(20),
                seed: SEED,
                ..SimConfig::default()
            },
        );
    }
    run(
        "paper pool, batch arrivals",
        SimConfig {
            arrival: ArrivalModel::Batch,
            ..SimConfig::paper_like(SEED)
        },
    );
    run(
        "paper pool, poisson arrivals (1.5 s)",
        SimConfig::paper_like(SEED),
    );
    print!("{}", table.render());
}

fn main() {
    let workflows = base_workflows();
    significance_ablation(&workflows);
    exploratory_threshold_ablation(&workflows);
    bucket_cap_ablation(&workflows);
    quantile_ablation(&workflows);
    clustering_rule_ablation(&workflows);
    enforcement_ablation(&workflows);
    robustness_ablation();
    system_ablation();
}
