//! Per-category allocator shards.
//!
//! The paper's allocator "treats each category of tasks independently and
//! uses a separate instance of a bucketing manager per category" (§IV-D) —
//! the allocation problem is partitionable by construction, POP-style. A
//! [`CategoryShard`] is that partition made concrete: one category's
//! estimator bank, record count, **and its own RNG stream**, with no
//! reference to any other category. Shards are `Send` (estimators are
//! `Box<dyn ValueEstimator>` and [`ValueEstimator`] requires `Send`), so
//! distinct categories can be predicted and rebucketed on different scoped
//! threads and merged deterministically.
//!
//! ## Determinism
//!
//! Two properties make the parallel path byte-identical to the serial one:
//!
//! * **Per-category RNG streams.** Each shard's RNG is seeded
//!   `seed ^ category`, so the draws one category consumes are independent
//!   of how calls to *other* categories interleave. A single-category
//!   workflow (category 0) sees the very same stream the old
//!   allocator-global RNG produced, since `seed ^ 0 == seed`.
//! * **Buffered trace events.** The prediction cores never emit into a sink;
//!   they append to a caller-supplied buffer (`None` compiles tracing out,
//!   preserving the zero-cost guarantee). The caller — serial or batched —
//!   owns the ordering and emits buffers in request order.

use crate::estimator::{double_allocation, AllocSource, RebucketInfo, ValueEstimator};
use crate::resources::{ResourceKind, ResourceMask, ResourceVector};
use crate::task::{CategoryId, TaskContext, TaskFeatures};
use crate::trace::{AllocEvent, AxisProvenance, PredictKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::types::{AllocationDecision, AllocatorConfig, EstimatorFactory};

/// One category's slice of allocator state: estimator bank, record count,
/// and a private RNG stream. See the module docs for why this is the unit
/// of parallelism.
pub(crate) struct CategoryShard {
    category: CategoryId,
    estimators: Vec<(ResourceKind, Box<dyn ValueEstimator>)>,
    records: usize,
    rng: StdRng,
}

impl CategoryShard {
    /// Build the shard for `category`: one estimator per managed axis and
    /// an RNG stream derived as `seed ^ category`.
    pub(crate) fn new(
        category: CategoryId,
        config: &AllocatorConfig,
        factory: &EstimatorFactory,
        seed: u64,
    ) -> Self {
        let machine = config.machine;
        CategoryShard {
            category,
            estimators: config
                .managed
                .iter()
                .map(|&k| (k, factory(k, &machine)))
                .collect(),
            records: 0,
            rng: StdRng::seed_from_u64(seed ^ u64::from(category.0)),
        }
    }

    /// The category this shard owns.
    pub(crate) fn category(&self) -> CategoryId {
        self.category
    }

    /// Records observed so far.
    pub(crate) fn records(&self) -> usize {
        self.records
    }

    /// Feed one validated record into every axis estimator, features
    /// attached (the category-global estimators ignore them).
    pub(crate) fn observe(&mut self, peak: &ResourceVector, sig: f64, features: &TaskFeatures) {
        for (kind, est) in self.estimators.iter_mut() {
            est.observe_ctx(features, peak[*kind], sig);
        }
        self.records += 1;
    }

    /// Read-only bucket snapshot for one axis.
    pub(crate) fn snapshot_axis(&self, kind: ResourceKind) -> Option<crate::bucket::BucketSet> {
        self.estimators
            .iter()
            .find(|(k, _)| *k == kind)
            .and_then(|(_, est)| est.snapshot())
    }

    /// Force one axis estimator to fold pending observations into a fresh
    /// bucketing configuration.
    pub(crate) fn rebucket_axis(&mut self, kind: ResourceKind) -> Option<RebucketInfo> {
        let (_, est) = self.estimators.iter_mut().find(|(k, _)| *k == kind)?;
        est.rebucket()
    }

    /// Force every axis estimator to rebucket, in managed-axis order.
    pub(crate) fn rebucket_all_axes(&mut self) -> Vec<(ResourceKind, RebucketInfo)> {
        self.estimators
            .iter_mut()
            .filter_map(|(kind, est)| est.rebucket().map(|info| (*kind, info)))
            .collect()
    }

    /// Steady-state first prediction (§IV-A steps 2–3) for this category.
    ///
    /// The exploratory check happens in the caller (an exploratory
    /// prediction touches no shard and consumes no draws). `events` buffers
    /// trace events in emission order; `None` constructs none.
    pub(crate) fn predict_first_steady(
        &mut self,
        ctx: &TaskContext,
        config: &AllocatorConfig,
        pad: f64,
        exploratory_alloc: ResourceVector,
        mut events: Option<&mut Vec<AllocEvent>>,
    ) -> AllocationDecision {
        let machine_cap = config.machine.capacity;
        let n = config.managed.len();
        let mut draws: Vec<f64> = Vec::with_capacity(n);
        for _ in 0..n {
            draws.push(self.rng.gen::<f64>());
        }
        let category = self.category;
        let mut alloc = machine_cap;
        let mut provenance = Vec::with_capacity(n);
        for (i, (kind, est)) in self.estimators.iter_mut().enumerate() {
            let (value, source) = match est.predict_first(ctx, draws[i]) {
                Some(p) => (p.value, p.source),
                None => {
                    // No records for this axis: fall back to the exploratory
                    // allocation (probe or capacity, per policy).
                    let v = exploratory_alloc[*kind];
                    let source = if v >= machine_cap[*kind] {
                        AllocSource::Capacity
                    } else {
                        AllocSource::Probe
                    };
                    (v, source)
                }
            };
            if let Some(buf) = events.as_deref_mut() {
                if let Some(info) = est.take_rebucket() {
                    buf.push(AllocEvent::rebucket(category, *kind, &info));
                }
            }
            let value = value * pad;
            alloc[*kind] = value;
            provenance.push(AxisProvenance {
                resource: *kind,
                source,
                draw: Some(draws[i]),
                clamped: value > machine_cap[*kind],
            });
        }
        let alloc = alloc.clamp_to(&machine_cap);
        if let Some(buf) = events {
            buf.push(AllocEvent::predict(
                category,
                PredictKind::First,
                alloc,
                provenance.clone(),
            ));
        }
        AllocationDecision {
            alloc,
            kind: PredictKind::First,
            provenance,
            infeasible: false,
        }
    }

    /// Retry prediction after `prev` was killed having exhausted the
    /// `exhausted` dimensions (§IV-A: each resource escalates
    /// independently; non-exhausted axes hold).
    ///
    /// Draws are consumed for every managed axis even in exploration mode —
    /// the doubling path discards them — matching the serial allocator's
    /// historical RNG consumption exactly.
    pub(crate) fn predict_retry_core(
        &mut self,
        ctx: &TaskContext,
        config: &AllocatorConfig,
        prev: &ResourceVector,
        exhausted: &ResourceMask,
        esc: f64,
        mut events: Option<&mut Vec<AllocEvent>>,
    ) -> AllocationDecision {
        let machine_cap = config.machine.capacity;
        let in_exploration = self.records < config.exploratory_records;
        let n = config.managed.len();
        let mut draws: Vec<f64> = Vec::with_capacity(n);
        for _ in 0..n {
            draws.push(self.rng.gen::<f64>());
        }
        let category = self.category;
        let mut alloc = *prev;
        let mut provenance = Vec::with_capacity(n);
        for (i, (kind, est)) in self.estimators.iter_mut().enumerate() {
            if !exhausted.contains(*kind) {
                provenance.push(AxisProvenance {
                    resource: *kind,
                    source: AllocSource::Held,
                    draw: None,
                    clamped: false,
                });
                continue;
            }
            let (value, source, consumed) = if in_exploration {
                (double_allocation(prev[*kind]), AllocSource::Doubling, false)
            } else {
                match est.predict_retry(ctx, prev[*kind], draws[i]) {
                    Some(p) => (p.value, p.source, true),
                    None => (double_allocation(prev[*kind]), AllocSource::Doubling, true),
                }
            };
            if let Some(buf) = events.as_deref_mut() {
                if let Some(info) = est.take_rebucket() {
                    buf.push(AllocEvent::rebucket(category, *kind, &info));
                }
            }
            let raised = (value * esc).max(prev[*kind]);
            alloc[*kind] = raised;
            provenance.push(AxisProvenance {
                resource: *kind,
                source,
                draw: if consumed { Some(draws[i]) } else { None },
                clamped: raised > machine_cap[*kind],
            });
        }
        // An exhausted axis outside the managed set has no estimator to
        // escalate it; left alone the retry would return the same allocation
        // and the engine would re-kill the task forever. Raise such axes
        // straight to machine capacity — the most any retry could grant.
        for kind in exhausted.iter() {
            if config.managed.contains(&kind) {
                continue;
            }
            let raised = machine_cap[kind].max(alloc[kind]);
            provenance.push(AxisProvenance {
                resource: kind,
                source: AllocSource::Capacity,
                draw: None,
                clamped: raised > machine_cap[kind],
            });
            alloc[kind] = raised;
        }
        let alloc = alloc.clamp_to(&machine_cap);
        // If no exhausted axis actually grew, the retry is a guaranteed
        // repeat kill (everything exhausted already sat at capacity).
        let infeasible = exhausted.any() && !exhausted.iter().any(|k| alloc[k] > prev[k]);
        if let Some(buf) = events {
            for &kind in &config.managed {
                if exhausted.contains(kind) {
                    buf.push(AllocEvent::escalate(
                        category,
                        kind,
                        prev[kind],
                        alloc[kind],
                    ));
                }
            }
            buf.push(AllocEvent::predict(
                category,
                PredictKind::Retry,
                alloc,
                provenance.clone(),
            ));
        }
        AllocationDecision {
            alloc,
            kind: PredictKind::Retry,
            provenance,
            infeasible,
        }
    }
}
