//! Allocator configuration surface: algorithm selection, exploratory
//! policy, and the [`AllocationDecision`] provenance type.

use crate::bandit::SemiBandit;
use crate::baselines::{MaxSeen, QuantizedBucketing, Tovar, WholeMachine};
use crate::estimator::ValueEstimator;
use crate::exhaustive::ExhaustiveBucketing;
use crate::featurebin::FeatureBinned;
use crate::greedy::GreedyBucketing;
use crate::kmeans::KMeansBucketing;
use crate::policy::BucketingEstimator;
use crate::resources::{ResourceKind, ResourceVector, WorkerSpec};
use crate::trace::{AxisProvenance, PredictKind};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Deref;

/// The seven allocation algorithms evaluated in §V, plus the incremental
/// Greedy Bucketing ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// Naive baseline: a full worker per task.
    WholeMachine,
    /// Histogram-rounded running maximum.
    MaxSeen,
    /// Tovar et al. job sizing, minimum-waste objective.
    MinWaste,
    /// Tovar et al. job sizing, maximum-throughput objective.
    MaxThroughput,
    /// Phung et al. quantile bucketing (median split).
    QuantizedBucketing,
    /// This paper: Greedy Bucketing (Algorithm 1).
    GreedyBucketing,
    /// This paper: Exhaustive Bucketing (Algorithm 2).
    ExhaustiveBucketing,
    /// Ablation: Greedy Bucketing with the one-pass scan (identical output,
    /// different compute cost). Not part of the paper's evaluated set.
    GreedyBucketingIncremental,
    /// Extension: k-means clustering behind the shared bucketing policy —
    /// the other clustering rule of Phung et al. \[11\]. Not part of the
    /// paper's evaluated set.
    KMeansBucketing,
    /// Extension: Ponder-style feature-conditioned estimation — per
    /// input-signal-bin sub-states with category-state fallback under low
    /// support ([`FeatureBinned`]). Not part of the paper's evaluated set.
    FeatureBinned,
    /// Extension: semi-bandit allocation — a decayed-loss arm per
    /// allocation size on a geometric grid, tables keyed by DAG phase
    /// ([`SemiBandit`]). Not part of the paper's evaluated set.
    SemiBandit,
}

impl AlgorithmKind {
    /// The seven algorithms of Figures 5 and 6, in the paper's order.
    pub const PAPER_SET: [AlgorithmKind; 7] = [
        AlgorithmKind::WholeMachine,
        AlgorithmKind::MaxSeen,
        AlgorithmKind::MinWaste,
        AlgorithmKind::MaxThroughput,
        AlgorithmKind::QuantizedBucketing,
        AlgorithmKind::GreedyBucketing,
        AlgorithmKind::ExhaustiveBucketing,
    ];

    /// Stable report label.
    pub fn label(self) -> &'static str {
        match self {
            AlgorithmKind::WholeMachine => "whole-machine",
            AlgorithmKind::MaxSeen => "max-seen",
            AlgorithmKind::MinWaste => "min-waste",
            AlgorithmKind::MaxThroughput => "max-throughput",
            AlgorithmKind::QuantizedBucketing => "quantized-bucketing",
            AlgorithmKind::GreedyBucketing => "greedy-bucketing",
            AlgorithmKind::ExhaustiveBucketing => "exhaustive-bucketing",
            AlgorithmKind::GreedyBucketingIncremental => "greedy-bucketing-incremental",
            AlgorithmKind::KMeansBucketing => "kmeans-bucketing",
            AlgorithmKind::FeatureBinned => "feature-binned",
            AlgorithmKind::SemiBandit => "semi-bandit",
        }
    }

    /// Whether this is one of the paper's two novel bucketing algorithms
    /// (they use the conservative exploratory mode; comparators use the
    /// whole-machine exploratory mode, §V-C).
    pub fn is_novel_bucketing(self) -> bool {
        matches!(
            self,
            AlgorithmKind::GreedyBucketing
                | AlgorithmKind::ExhaustiveBucketing
                | AlgorithmKind::GreedyBucketingIncremental
                | AlgorithmKind::KMeansBucketing
        )
    }

    /// Whether this algorithm uses the conservative exploratory mode: the
    /// paper's novel bucketing pair plus the learned extensions, which are
    /// likewise online and prior-free and would forfeit their win to
    /// whole-machine exploration.
    pub fn conservative_exploration(self) -> bool {
        self.is_novel_bucketing()
            || matches!(
                self,
                AlgorithmKind::FeatureBinned | AlgorithmKind::SemiBandit
            )
    }

    /// The output-identical but computationally cheaper variant, if one
    /// exists. Since the prefix-sum kernels became the default partitioner
    /// mode, every kind already *is* its fast equivalent, so this is the
    /// identity; it is kept so experiment harnesses read the same either
    /// way. Table I opts into the paper-faithful scans explicitly
    /// (`GreedyBucketing::faithful()` / `ExhaustiveBucketing::faithful()`)
    /// because their compute cost is what that table reports.
    pub fn fast_equivalent(self) -> AlgorithmKind {
        self
    }

    /// Construct the estimator for one resource dimension of one category.
    pub fn build_estimator(
        self,
        kind: ResourceKind,
        machine: &WorkerSpec,
    ) -> Box<dyn ValueEstimator> {
        let capacity = machine.capacity[kind];
        match self {
            AlgorithmKind::WholeMachine => Box::new(WholeMachine::new(capacity)),
            AlgorithmKind::MaxSeen => {
                let granularity = match kind {
                    ResourceKind::Cores | ResourceKind::Gpus => MaxSeen::CORES_GRANULARITY,
                    ResourceKind::MemoryMb | ResourceKind::DiskMb => {
                        MaxSeen::MEMORY_DISK_GRANULARITY
                    }
                    // Time limits round to the minute.
                    ResourceKind::TimeS => 60.0,
                };
                Box::new(MaxSeen::new(granularity))
            }
            AlgorithmKind::MinWaste => Box::new(Tovar::min_waste(capacity)),
            AlgorithmKind::MaxThroughput => Box::new(Tovar::max_throughput(capacity)),
            AlgorithmKind::QuantizedBucketing => Box::new(QuantizedBucketing::new()),
            AlgorithmKind::GreedyBucketing => {
                Box::new(BucketingEstimator::new(GreedyBucketing::new()))
            }
            AlgorithmKind::GreedyBucketingIncremental => {
                Box::new(BucketingEstimator::new(GreedyBucketing::incremental()))
            }
            AlgorithmKind::ExhaustiveBucketing => {
                Box::new(BucketingEstimator::new(ExhaustiveBucketing::new()))
            }
            AlgorithmKind::KMeansBucketing => {
                Box::new(BucketingEstimator::new(KMeansBucketing::new()))
            }
            AlgorithmKind::FeatureBinned => Box::new(FeatureBinned::new()),
            AlgorithmKind::SemiBandit => Box::new(SemiBandit::new(capacity)),
        }
    }
}

impl fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How a category is allocated before enough records exist.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExploratoryPolicy {
    /// §V-A: allocate a small fixed probe (1 core, 1 GB memory, 1 GB disk in
    /// the paper), doubling exhausted dimensions on failure.
    Conservative {
        /// The probe allocation.
        probe: ResourceVector,
    },
    /// §V-C: allocate a whole worker until enough records exist.
    WholeMachine,
}

impl ExploratoryPolicy {
    /// The paper's conservative probe: 1 core, 1 GB memory, 1 GB disk.
    pub fn paper_conservative() -> Self {
        ExploratoryPolicy::Conservative {
            probe: ResourceVector::new(1.0, 1024.0, 1024.0),
        }
    }
}

/// Allocator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocatorConfig {
    /// Worker shape allocations are clamped to.
    pub machine: WorkerSpec,
    /// Resource kinds under management (default: cores, memory, disk).
    pub managed: Vec<ResourceKind>,
    /// Records required per category before leaving exploratory mode
    /// (10 in §V-A).
    pub exploratory_records: usize,
    /// Exploratory behaviour; `None` selects the paper's per-algorithm
    /// default (conservative for bucketing, whole machine for comparators).
    pub exploratory: Option<ExploratoryPolicy>,
    /// Ablation switch: feed every estimator a significance of 1 instead of
    /// the task id, disabling the §IV-A recency weighting.
    pub uniform_significance: bool,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        AllocatorConfig {
            machine: WorkerSpec::paper_default(),
            managed: ResourceKind::STANDARD.to_vec(),
            exploratory_records: 10,
            exploratory: None,
            uniform_significance: false,
        }
    }
}

/// Builds one estimator per (resource kind, worker shape); lets ablation
/// harnesses run non-default algorithm variants (e.g. Exhaustive Bucketing
/// with a different bucket cap) through the full allocator machinery.
pub type EstimatorFactory =
    Box<dyn Fn(ResourceKind, &WorkerSpec) -> Box<dyn ValueEstimator> + Send>;

/// A predicted allocation together with how it was derived.
///
/// Dereferences to the underlying [`ResourceVector`], so existing callers
/// that only want the allocation keep working unchanged:
///
/// ```
/// use tora_alloc::allocator::{AlgorithmKind, Allocator};
/// use tora_alloc::task::CategoryId;
///
/// let mut a = Allocator::new(AlgorithmKind::GreedyBucketing, 1);
/// let decision = a.predict_first(CategoryId(0));
/// assert_eq!(decision.memory_mb(), 1024.0); // deref to ResourceVector
/// assert_eq!(decision.kind, tora_alloc::trace::PredictKind::Explore);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationDecision {
    /// The allocation to reserve (clamped to worker capacity).
    pub alloc: ResourceVector,
    /// Which prediction path produced it.
    pub kind: PredictKind,
    /// Per-axis derivation, in managed-axis order. Empty for exploratory
    /// predictions (every managed axis is the probe).
    pub provenance: Vec<AxisProvenance>,
    /// True when the attempt exhausted some dimension but no exhausted axis
    /// could be raised above its previous allocation (everything was already
    /// at machine capacity). Retrying such a decision reproduces the same
    /// kill: the task does not fit the machine and must be dead-lettered,
    /// not retried forever.
    #[serde(default)]
    pub infeasible: bool,
}

impl AllocationDecision {
    /// The provenance entry for one axis, if the axis is managed.
    pub fn axis(&self, kind: ResourceKind) -> Option<&AxisProvenance> {
        self.provenance.iter().find(|p| p.resource == kind)
    }

    /// Discard the provenance, keeping the allocation.
    pub fn into_alloc(self) -> ResourceVector {
        self.alloc
    }
}

impl Deref for AllocationDecision {
    type Target = ResourceVector;
    fn deref(&self) -> &ResourceVector {
        &self.alloc
    }
}

impl PartialEq<ResourceVector> for AllocationDecision {
    fn eq(&self, other: &ResourceVector) -> bool {
        self.alloc == *other
    }
}

impl From<AllocationDecision> for ResourceVector {
    fn from(d: AllocationDecision) -> ResourceVector {
        d.alloc
    }
}

impl fmt::Display for AllocationDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.alloc)
    }
}
