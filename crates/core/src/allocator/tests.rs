//! Unit tests for the adaptive allocator.

use super::*;
use crate::estimator::AllocSource;
use crate::task::TaskSpec;
use crate::trace::{MemorySink, TraceStats};

fn record(id: u64, category: u32, peak: ResourceVector) -> ResourceRecord {
    ResourceRecord::from_task(&TaskSpec::new(id, category, peak, 10.0))
}

#[test]
fn bucketing_explores_conservatively() {
    let mut a = Allocator::new(AlgorithmKind::ExhaustiveBucketing, 1);
    let alloc = a.predict_first(CategoryId(0));
    assert_eq!(alloc.cores(), 1.0);
    assert_eq!(alloc.memory_mb(), 1024.0);
    assert_eq!(alloc.disk_mb(), 1024.0);
    assert_eq!(alloc.kind, PredictKind::Explore);
    assert!(alloc.provenance.is_empty());
}

#[test]
fn comparators_explore_with_whole_machine() {
    for kind in [
        AlgorithmKind::MaxSeen,
        AlgorithmKind::MinWaste,
        AlgorithmKind::MaxThroughput,
        AlgorithmKind::QuantizedBucketing,
        AlgorithmKind::WholeMachine,
    ] {
        let mut a = Allocator::new(kind, 1);
        let alloc = a.predict_first(CategoryId(0));
        assert_eq!(alloc, WorkerSpec::paper_default().capacity, "{kind}");
    }
}

#[test]
fn leaves_exploration_after_threshold_records() {
    let mut a = Allocator::new(AlgorithmKind::MaxSeen, 1);
    for i in 0..9 {
        a.observe(&record(i, 0, ResourceVector::new(1.0, 300.0, 300.0)));
    }
    // 9 records: still exploring.
    assert_eq!(
        a.predict_first(CategoryId(0)),
        WorkerSpec::paper_default().capacity
    );
    a.observe(&record(9, 0, ResourceVector::new(1.0, 306.0, 306.0)));
    // 10 records: steady state. Max Seen rounds 306 → 500.
    let alloc = a.predict_first(CategoryId(0));
    assert_eq!(alloc.memory_mb(), 500.0);
    assert_eq!(alloc.disk_mb(), 500.0);
    assert_eq!(alloc.cores(), 1.0);
    assert_eq!(alloc.kind, PredictKind::First);
    assert_eq!(a.records_for(CategoryId(0)), 10);
}

#[test]
fn categories_are_independent() {
    let mut a = Allocator::new(AlgorithmKind::MaxSeen, 1);
    for i in 0..10 {
        a.observe(&record(i, 0, ResourceVector::new(1.0, 100.0, 100.0)));
    }
    // Category 1 has no records: still whole-machine exploration.
    assert_eq!(
        a.predict_first(CategoryId(1)),
        WorkerSpec::paper_default().capacity
    );
    assert_eq!(a.records_for(CategoryId(1)), 0);
    // Category 0 is in steady state.
    assert!(a.predict_first(CategoryId(0)).memory_mb() <= 250.0);
}

#[test]
fn exploratory_retry_doubles_only_exhausted_axes() {
    let mut a = Allocator::new(AlgorithmKind::GreedyBucketing, 1);
    let first = a.predict_first(CategoryId(0));
    let exhausted = ResourceMask::only(ResourceKind::MemoryMb);
    let retry = a.predict_retry(CategoryId(0), &first, &exhausted);
    assert_eq!(retry.memory_mb(), 2048.0);
    assert_eq!(retry.cores(), 1.0);
    assert_eq!(retry.disk_mb(), 1024.0);
    assert_eq!(retry.kind, PredictKind::Retry);
    // Provenance: memory doubled, the untouched axes held.
    let mem = retry.axis(ResourceKind::MemoryMb).unwrap();
    assert_eq!(mem.source, AllocSource::Doubling);
    assert_eq!(mem.draw, None); // exploration consults no estimator
    let cores = retry.axis(ResourceKind::Cores).unwrap();
    assert_eq!(cores.source, AllocSource::Held);
}

#[test]
fn retry_never_shrinks_any_axis() {
    let mut a = Allocator::new(AlgorithmKind::ExhaustiveBucketing, 7);
    for i in 0..20 {
        a.observe(&record(
            i,
            0,
            ResourceVector::new(1.0, 100.0 + i as f64, 10.0),
        ));
    }
    let first = a.predict_first(CategoryId(0));
    let mask = ResourceMask::only(ResourceKind::MemoryMb);
    let retry = a.predict_retry(CategoryId(0), &first, &mask);
    assert!(retry.dominates(&first));
    assert!(retry.memory_mb() > first.memory_mb());
}

#[test]
fn allocations_clamped_to_machine() {
    let mut a = Allocator::new(AlgorithmKind::MaxSeen, 1);
    for i in 0..10 {
        a.observe(&record(i, 0, ResourceVector::new(16.0, 65000.0, 65000.0)));
    }
    let cap = WorkerSpec::paper_default().capacity;
    // Max Seen rounds 65000 up to 65250 — the clamp keeps it at capacity.
    let alloc = a.predict_first(CategoryId(0));
    assert!(cap.dominates(&alloc));
    // Doubling past capacity stays clamped too, and the provenance
    // records that clamping intervened.
    let retry = a.predict_retry(
        CategoryId(0),
        &cap,
        &ResourceMask::only(ResourceKind::MemoryMb),
    );
    assert!(cap.dominates(&retry));
    assert!(retry.axis(ResourceKind::MemoryMb).unwrap().clamped);
}

#[test]
fn steady_state_escalation_terminates_for_feasible_tasks() {
    for kind in AlgorithmKind::PAPER_SET {
        let mut a = Allocator::new(kind, 3);
        for i in 0..10 {
            a.observe(&record(i, 0, ResourceVector::new(1.0, 200.0, 50.0)));
        }
        // A task demanding more than anything seen (but feasible).
        let demand = ResourceVector::new(4.0, 30000.0, 4000.0);
        let mut alloc = a.predict_first(CategoryId(0)).into_alloc();
        let mut attempts = 0;
        while !alloc.dominates(&demand) {
            let exhausted = alloc.exceeded_by(&demand);
            alloc = a
                .predict_retry(CategoryId(0), &alloc, &exhausted)
                .into_alloc();
            attempts += 1;
            assert!(attempts < 64, "{kind}: escalation did not terminate");
        }
    }
}

#[test]
fn unmanaged_axes_get_full_capacity() {
    let mut a = Allocator::new(AlgorithmKind::GreedyBucketing, 1);
    for i in 0..10 {
        a.observe(&record(i, 0, ResourceVector::new(1.0, 100.0, 100.0)));
    }
    let alloc = a.predict_first(CategoryId(0));
    // Gpus is unmanaged: allocated at machine capacity (0 by default),
    // and absent from the provenance.
    assert_eq!(alloc.gpus(), WorkerSpec::paper_default().capacity.gpus());
    assert!(alloc.axis(ResourceKind::Gpus).is_none());
    assert_eq!(alloc.provenance.len(), 3);
}

#[test]
fn managed_axes_are_configurable() {
    let config = AllocatorConfig {
        managed: vec![ResourceKind::MemoryMb],
        ..AllocatorConfig::default()
    };
    let mut a = Allocator::with_config(AlgorithmKind::MaxSeen, config, 1);
    for i in 0..10 {
        a.observe(&record(i, 0, ResourceVector::new(2.0, 100.0, 100.0)));
    }
    let alloc = a.predict_first(CategoryId(0));
    // Memory managed; cores/disk fall back to machine capacity.
    assert_eq!(alloc.memory_mb(), 250.0);
    assert_eq!(alloc.cores(), 16.0);
    assert_eq!(alloc.disk_mb(), 65536.0);
}

#[test]
fn deterministic_under_fixed_seed() {
    let run = |seed| {
        let mut a = Allocator::new(AlgorithmKind::ExhaustiveBucketing, seed);
        for i in 0..30 {
            a.observe(&record(
                i,
                0,
                ResourceVector::new(1.0, if i % 2 == 0 { 100.0 } else { 900.0 }, 10.0),
            ));
        }
        (0..20)
            .map(|_| a.predict_first(CategoryId(0)).memory_mb())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(42), run(42));
    // Different seeds should (almost surely) differ somewhere.
    assert_ne!(run(42), run(43));
}

#[test]
fn sink_choice_does_not_change_decisions() {
    let run_traced = |seed| {
        let mut a =
            Allocator::new(AlgorithmKind::ExhaustiveBucketing, seed).with_sink(MemorySink::new());
        for i in 0..30 {
            a.observe(&record(
                i,
                0,
                ResourceVector::new(1.0, 100.0 + i as f64, 10.0),
            ));
        }
        (0..20)
            .map(|_| a.predict_first(CategoryId(0)).memory_mb())
            .collect::<Vec<_>>()
    };
    let run_plain = |seed| {
        let mut a = Allocator::new(AlgorithmKind::ExhaustiveBucketing, seed);
        for i in 0..30 {
            a.observe(&record(
                i,
                0,
                ResourceVector::new(1.0, 100.0 + i as f64, 10.0),
            ));
        }
        (0..20)
            .map(|_| a.predict_first(CategoryId(0)).memory_mb())
            .collect::<Vec<_>>()
    };
    assert_eq!(run_traced(9), run_plain(9));
}

#[test]
fn retry_escalates_unmanaged_exhausted_axis_to_capacity() {
    // Regression: only memory is managed, but the kill exhausted cores.
    // The estimator loop and the escalate loop both iterate the managed
    // set, so before the unmanaged-axis pass the retry returned `prev`
    // unchanged — and the engine re-killed the task forever.
    let config = AllocatorConfig {
        managed: vec![ResourceKind::MemoryMb],
        ..AllocatorConfig::default()
    };
    let mut a = Allocator::with_config(AlgorithmKind::MaxSeen, config, 1);
    for i in 0..10 {
        a.observe(&record(i, 0, ResourceVector::new(2.0, 100.0, 100.0)));
    }
    let prev = ResourceVector::new(1.0, 250.0, 65536.0)
        .with(ResourceKind::TimeS, WorkerSpec::UNLIMITED_TIME_S);
    let exhausted = ResourceMask::only(ResourceKind::Cores);
    let retry = a.predict_retry(CategoryId(0), &prev, &exhausted);
    assert_ne!(
        retry.alloc, prev,
        "retry must change an allocation whose kill axis is unmanaged"
    );
    assert_eq!(retry.cores(), 16.0, "raised to machine capacity");
    assert!(!retry.infeasible);
    let cores = retry.axis(ResourceKind::Cores).unwrap();
    assert_eq!(cores.source, AllocSource::Capacity);
}

#[test]
fn retry_at_capacity_is_marked_infeasible() {
    let mut a = Allocator::new(AlgorithmKind::MaxSeen, 1);
    for i in 0..10 {
        a.observe(&record(i, 0, ResourceVector::new(1.0, 100.0, 100.0)));
    }
    let cap = WorkerSpec::paper_default().capacity;
    // Every exhausted axis already at capacity: nothing can grow.
    let retry = a.predict_retry(
        CategoryId(0),
        &cap,
        &ResourceMask::only(ResourceKind::MemoryMb),
    );
    assert_eq!(retry.alloc, cap);
    assert!(retry.infeasible);
    // Same for an unmanaged axis already at capacity.
    let retry = a.predict_retry(CategoryId(0), &cap, &ResourceMask::only(ResourceKind::Gpus));
    assert!(retry.infeasible);
    // But a retry that can still raise some exhausted axis is feasible.
    let below = cap.with(ResourceKind::MemoryMb, 100.0);
    let retry = a.predict_retry(
        CategoryId(0),
        &below,
        &ResourceMask::only(ResourceKind::MemoryMb),
    );
    assert!(!retry.infeasible);
    assert!(retry.memory_mb() > 100.0);
}

#[test]
fn non_finite_records_are_rejected_and_leave_predictions_unchanged() {
    // Max Seen predicts the rounded running maximum — deterministic, so
    // any post-poisoning drift is attributable to the bad record alone.
    let mut a = Allocator::new(AlgorithmKind::MaxSeen, 11);
    for i in 0..12 {
        a.observe(&record(
            i,
            0,
            ResourceVector::new(1.0, 200.0 + i as f64, 50.0),
        ));
    }
    let before = a.predict_first(CategoryId(0)).into_alloc();
    // NaN peak, negative peak, non-finite significance: all rejected.
    // Built directly — `TaskSpec::new` debug-asserts finiteness, but a
    // record arriving over the wire carries no such guarantee.
    let raw = |peak: ResourceVector, significance: f64| crate::task::ResourceRecord {
        task: crate::task::TaskId(100),
        category: CategoryId(0),
        peak,
        duration_s: 10.0,
        significance,
        features: crate::task::TaskFeatures::default(),
    };
    assert!(!a.observe(&raw(ResourceVector::new(1.0, f64::NAN, 50.0), 100.0)));
    assert!(!a.observe(&raw(ResourceVector::new(-1.0, 200.0, 50.0), 100.0)));
    assert!(!a.observe(&raw(ResourceVector::new(1.0, 200.0, 50.0), f64::INFINITY)));
    assert_eq!(a.rejected_records(), 3);
    assert_eq!(
        a.records_for(CategoryId(0)),
        12,
        "rejected records not counted"
    );
    let after = a.predict_first(CategoryId(0)).into_alloc();
    assert_eq!(before, after, "a poisoned record must not move predictions");
    // A later valid record still lands.
    assert!(a.observe(&record(103, 0, ResourceVector::new(1.0, 220.0, 50.0))));
    assert_eq!(a.records_for(CategoryId(0)), 13);
}

#[test]
fn fault_feedback_without_observed_faults_changes_nothing() {
    // Same seed, one allocator with the policy installed and fed
    // success-only outcomes: every prediction must match the plain one.
    let mut plain = Allocator::new(AlgorithmKind::ExhaustiveBucketing, 9);
    let mut fed = Allocator::builder(AlgorithmKind::ExhaustiveBucketing)
        .seed(9)
        .fault_policy(FaultPolicy::default())
        .build();
    assert!(fed.fault_policy().is_some());
    for i in 0..20 {
        let r = record(i, 0, ResourceVector::new(1.0, 100.0 + i as f64, 10.0));
        plain.observe(&r);
        fed.observe(&r);
        fed.observe_outcome(CategoryId(0), AttemptFeedback::Success, None);
    }
    assert_eq!(fed.windowed_fault_rate(), 0.0);
    for _ in 0..5 {
        let a = plain.predict_first(CategoryId(0)).into_alloc();
        let b = fed.predict_first(CategoryId(0)).into_alloc();
        assert_eq!(a, b);
        let mask = ResourceMask::only(ResourceKind::MemoryMb);
        let ra = plain.predict_retry(CategoryId(0), &a, &mask).into_alloc();
        let rb = fed.predict_retry(CategoryId(0), &b, &mask).into_alloc();
        assert_eq!(ra, rb);
    }
}

#[test]
fn fault_feedback_pads_and_escalates_under_observed_faults() {
    // Max Seen is deterministic, so any drift is the policy's doing.
    let mut a = Allocator::builder(AlgorithmKind::MaxSeen)
        .seed(1)
        .fault_policy(FaultPolicy::default())
        .build();
    for i in 0..10 {
        a.observe(&record(i, 0, ResourceVector::new(1.0, 300.0, 300.0)));
    }
    let baseline = a.predict_first(CategoryId(0)).into_alloc();
    for _ in 0..16 {
        a.observe_outcome(CategoryId(0), AttemptFeedback::Crash, None);
    }
    assert_eq!(a.windowed_fault_rate(), 1.0);
    let padded = a.predict_first(CategoryId(0)).into_alloc();
    assert!(
        padded.memory_mb() > baseline.memory_mb(),
        "padding must grow first predictions ({} vs {})",
        padded.memory_mb(),
        baseline.memory_mb()
    );
    // Escalation bias: a hostile window raises exhausted axes at least
    // as far as a calm one, from the same estimator state and seed.
    let retry_after = |outcome: AttemptFeedback| {
        let mut a = Allocator::builder(AlgorithmKind::GreedyBucketing)
            .seed(3)
            .fault_policy(FaultPolicy::default())
            .build();
        for i in 0..10 {
            a.observe(&record(
                i,
                0,
                ResourceVector::new(1.0, 100.0 + 20.0 * i as f64, 50.0),
            ));
        }
        for _ in 0..16 {
            a.observe_outcome(CategoryId(0), outcome, None);
        }
        let prev = ResourceVector::new(1.0, 150.0, 50.0);
        a.predict_retry(
            CategoryId(0),
            &prev,
            &ResourceMask::only(ResourceKind::MemoryMb),
        )
        .into_alloc()
    };
    let calm = retry_after(AttemptFeedback::Success);
    let hostile = retry_after(AttemptFeedback::Crash);
    assert!(hostile.memory_mb() >= calm.memory_mb());
    assert!(hostile.memory_mb() > 150.0, "retry must still escalate");
}

#[test]
fn observe_outcome_emits_feedback_events() {
    let mut a = Allocator::builder(AlgorithmKind::MaxSeen)
        .seed(2)
        .sink(TraceStats::new());
    a.observe_outcome(CategoryId(4), AttemptFeedback::Crash, None);
    a.observe_outcome(CategoryId(4), AttemptFeedback::Success, None);
    let stats = a.into_sink();
    assert_eq!(stats.overall.feedback, 2);
    assert_eq!(stats.category(CategoryId(4)).unwrap().feedback, 2);
}

#[test]
fn paper_set_has_seven_distinct_labels() {
    let labels: std::collections::HashSet<_> =
        AlgorithmKind::PAPER_SET.iter().map(|k| k.label()).collect();
    assert_eq!(labels.len(), 7);
    assert!(AlgorithmKind::GreedyBucketing.is_novel_bucketing());
    assert!(!AlgorithmKind::MaxSeen.is_novel_bucketing());
}

#[test]
fn builder_configures_everything() {
    let a = Allocator::builder(AlgorithmKind::MaxSeen)
        .seed(7)
        .machine(WorkerSpec::new(ResourceVector::new(8.0, 4096.0, 4096.0)))
        .managed(vec![ResourceKind::MemoryMb])
        .exploratory_records(3)
        .exploratory(ExploratoryPolicy::paper_conservative())
        .uniform_significance(true)
        .build();
    assert_eq!(a.config().machine.capacity.cores(), 8.0);
    assert_eq!(a.config().managed, vec![ResourceKind::MemoryMb]);
    assert_eq!(a.config().exploratory_records, 3);
    assert!(a.config().uniform_significance);
    assert_eq!(
        a.exploratory_policy(),
        ExploratoryPolicy::paper_conservative()
    );
    assert_eq!(a.algorithm(), Some(AlgorithmKind::MaxSeen));
}

#[test]
fn traced_allocator_emits_the_full_event_stream() {
    let mut a = Allocator::builder(AlgorithmKind::GreedyBucketing)
        .seed(5)
        .exploratory_records(2)
        .sink(TraceStats::new());
    // One exploratory prediction.
    let _ = a.predict_first(CategoryId(0));
    // Two observations leave exploration.
    for i in 0..2 {
        a.observe(&record(i, 0, ResourceVector::new(1.0, 300.0, 100.0)));
    }
    // Steady-state first prediction (triggers the first rebucket of all
    // three managed axes).
    let _ = a.predict_first(CategoryId(0));
    // A retry exhausting one axis.
    let prev = ResourceVector::new(1.0, 300.0, 100.0);
    let _ = a.predict_retry(
        CategoryId(0),
        &prev,
        &ResourceMask::only(ResourceKind::MemoryMb),
    );
    let stats = a.into_sink();
    assert_eq!(stats.overall.explore, 1);
    assert_eq!(stats.overall.first, 1);
    assert_eq!(stats.overall.retry, 1);
    assert_eq!(stats.overall.observe, 2);
    assert_eq!(stats.overall.escalate, 1);
    assert_eq!(stats.overall.rebucket, 3, "one per managed axis");
    assert_eq!(stats.category(CategoryId(0)).unwrap().total(), 9);
}

#[test]
fn snapshot_is_read_only_rebucket_refreshes() {
    let mut a = Allocator::new(AlgorithmKind::ExhaustiveBucketing, 1);
    assert!(a.snapshot(CategoryId(0), ResourceKind::MemoryMb).is_none());
    for i in 0..10 {
        a.observe(&record(i, 0, ResourceVector::new(1.0, 100.0, 100.0)));
    }
    // Observations alone never build buckets.
    assert!(a.snapshot(CategoryId(0), ResourceKind::MemoryMb).is_none());
    let info = a.rebucket(CategoryId(0), ResourceKind::MemoryMb).unwrap();
    assert_eq!(info.n_records, 10);
    let set = a.snapshot(CategoryId(0), ResourceKind::MemoryMb).unwrap();
    assert_eq!(set.len(), info.n_buckets);
    // Unmanaged axis: nothing to rebucket.
    assert!(a.rebucket(CategoryId(0), ResourceKind::Gpus).is_none());
}

#[test]
fn decision_display_and_conversions() {
    let mut a = Allocator::new(AlgorithmKind::GreedyBucketing, 1);
    let d = a.predict_first(CategoryId(0));
    let s = format!("{d}");
    assert!(s.starts_with("explore"));
    let v: ResourceVector = d.clone().into();
    assert_eq!(d, v);
}

/// Build a pair of identically-seeded allocators with categories 0..cats
/// past exploration (and one extra category still exploring).
fn seeded_pair(
    algorithm: AlgorithmKind,
    seed: u64,
    cats: u32,
) -> (Allocator<MemorySink>, Allocator<MemorySink>) {
    let mut a = Allocator::new(algorithm, seed).with_sink(MemorySink::new());
    let mut b = Allocator::new(algorithm, seed).with_sink(MemorySink::new());
    for id in 0..u64::from(cats) * 12 {
        let cat = (id % u64::from(cats)) as u32;
        let peak = ResourceVector::new(
            1.0 + (id % 4) as f64,
            300.0 + (id * 37 % 500) as f64,
            150.0 + (id * 13 % 200) as f64,
        );
        assert!(a.observe(&record(id, cat, peak)));
        assert!(b.observe(&record(id, cat, peak)));
    }
    (a, b)
}

#[test]
fn batched_predictions_match_serial_calls_byte_for_byte() {
    for algorithm in [
        AlgorithmKind::ExhaustiveBucketing,
        AlgorithmKind::GreedyBucketing,
        AlgorithmKind::MaxSeen,
    ] {
        for threads in [1, 2, 4, 9] {
            let (mut serial, mut batched) = seeded_pair(algorithm, 9, 3);
            // A mixed batch: three steady categories interleaved plus one
            // category (3) that is still exploratory.
            let requests: Vec<CategoryId> = (0..25).map(|i| CategoryId((i % 4) as u32)).collect();
            let want: Vec<AllocationDecision> =
                requests.iter().map(|&c| serial.predict_first(c)).collect();
            let got = batched.predict_first_batch(&requests, threads);
            assert_eq!(want, got, "{algorithm} decisions at threads={threads}");
            assert_eq!(
                serial.sink().events,
                batched.sink().events,
                "{algorithm} trace at threads={threads}"
            );
        }
    }
}

#[test]
fn batched_predictions_leave_rng_streams_where_serial_calls_do() {
    // After a batch, further *serial* predictions must continue the same
    // per-category streams: interleave batched and serial phases and compare
    // against an all-serial reference.
    let (mut reference, mut mixed) = seeded_pair(AlgorithmKind::ExhaustiveBucketing, 17, 2);
    let phase1: Vec<CategoryId> = (0..10).map(|i| CategoryId((i % 2) as u32)).collect();
    let mut want: Vec<AllocationDecision> =
        phase1.iter().map(|&c| reference.predict_first(c)).collect();
    let mut got = mixed.predict_first_batch(&phase1, 4);
    want.push(reference.predict_first(CategoryId(1)));
    got.push(mixed.predict_first(CategoryId(1)));
    want.extend(phase1.iter().map(|&c| reference.predict_first(c)));
    got.extend(mixed.predict_first_batch(&phase1, 4));
    assert_eq!(want, got);
    assert_eq!(reference.sink().events, mixed.sink().events);
}

#[test]
fn empty_batch_is_a_no_op() {
    let (mut serial, mut batched) = seeded_pair(AlgorithmKind::GreedyBucketing, 3, 2);
    assert!(batched
        .predict_first_batch(&[] as &[CategoryId], 4)
        .is_empty());
    let c = CategoryId(0);
    assert_eq!(serial.predict_first(c), batched.predict_first(c));
}

#[test]
fn rebucket_all_is_category_ordered_and_thread_count_invariant() {
    let (mut one, mut four) = seeded_pair(AlgorithmKind::ExhaustiveBucketing, 5, 3);
    let a = one.rebucket_all(1);
    let b = four.rebucket_all(4);
    assert_eq!(a, b);
    assert_eq!(one.sink().events, four.sink().events);
    // Three categories × three managed axes, in ascending category order.
    assert_eq!(a.len(), 9);
    let cats: Vec<u32> = a.iter().map(|(c, _, _)| c.0).collect();
    let mut sorted = cats.clone();
    sorted.sort_unstable();
    assert_eq!(cats, sorted);
    // A second sweep with no new observations has nothing new to fold, but
    // forced rebuilds still report (version bumps); the two paths agree.
    assert_eq!(one.rebucket_all(4), four.rebucket_all(1));
}

#[test]
fn single_category_streams_match_the_legacy_global_rng() {
    // seed ^ 0 == seed: a category-0-only run must reproduce the exact
    // pre-sharding draw sequence (pinned indirectly by every golden test,
    // directly here via the serial/batch cross-check at seed == shard seed).
    let (mut serial, mut batched) = seeded_pair(AlgorithmKind::GreedyBucketing, 42, 1);
    let requests = vec![CategoryId(0); 8];
    let want: Vec<AllocationDecision> = requests.iter().map(|&c| serial.predict_first(c)).collect();
    assert_eq!(batched.predict_first_batch(&requests, 4), want);
}
