//! The adaptive resource allocator (§IV-D).
//!
//! An [`Allocator`] owns one estimator per *(task category, resource kind)*
//! pair — "an allocator treats each category of tasks independently and uses
//! a separate instance of a bucketing manager per category. Within each
//! category, the bucketing manager maintains a separate instance of a
//! resource state" — and implements the exploratory mode of §V-A:
//!
//! * the bucketing algorithms allocate a conservative (1 core, 1 GB memory,
//!   1 GB disk) probe until 10 records exist, doubling exhausted dimensions
//!   on failure;
//! * the comparator algorithms "allocate a whole machine instead, trading an
//!   expensive exploratory cost with a guarantee of successful task
//!   execution" (§V-C).
//!
//! All allocations are clamped to the worker capacity: nothing larger could
//! be scheduled.
//!
//! ## Construction
//!
//! [`Allocator::builder`] is the primary construction path:
//!
//! ```
//! use tora_alloc::allocator::{AlgorithmKind, Allocator};
//!
//! let allocator = Allocator::builder(AlgorithmKind::GreedyBucketing)
//!     .seed(42)
//!     .exploratory_records(5)
//!     .build();
//! assert_eq!(allocator.label(), "greedy-bucketing");
//! ```
//!
//! ## Decision tracing
//!
//! The allocator is generic over an [`EventSink`]; the default [`NoopSink`]
//! compiles tracing out entirely. Every prediction also returns an
//! [`AllocationDecision`] carrying per-axis provenance, so callers can see
//! *why* an allocation has the shape it has without installing a sink.

use crate::estimator::RebucketInfo;
use crate::feedback::{AttemptFeedback, FaultPolicy, FeedbackState};
use crate::resources::{ResourceKind, ResourceMask, ResourceVector, WorkerSpec};
use crate::task::{CategoryId, ResourceRecord, TaskContext};
use crate::trace::{AllocEvent, EventSink, NoopSink, PredictKind};
use std::collections::HashMap;
use std::fmt;

mod parallel;
mod shard;
mod types;

use shard::CategoryShard;

pub use types::{
    AlgorithmKind, AllocationDecision, AllocatorConfig, EstimatorFactory, ExploratoryPolicy,
};

#[cfg(test)]
mod tests;

/// Staged construction of an [`Allocator`].
///
/// Obtained from [`Allocator::builder`]; finish with [`build`] for an
/// untraced allocator or [`sink`] to attach an [`EventSink`].
///
/// [`build`]: AllocatorBuilder::build
/// [`sink`]: AllocatorBuilder::sink
#[derive(Debug, Clone)]
pub struct AllocatorBuilder {
    algorithm: AlgorithmKind,
    config: AllocatorConfig,
    seed: u64,
    fault_policy: Option<FaultPolicy>,
}

impl AllocatorBuilder {
    /// RNG seed for bucket sampling (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker shape allocations are clamped to.
    pub fn machine(mut self, machine: WorkerSpec) -> Self {
        self.config.machine = machine;
        self
    }

    /// Resource kinds under management.
    pub fn managed(mut self, managed: impl Into<Vec<ResourceKind>>) -> Self {
        self.config.managed = managed.into();
        self
    }

    /// Records required per category before leaving exploratory mode.
    pub fn exploratory_records(mut self, n: usize) -> Self {
        self.config.exploratory_records = n;
        self
    }

    /// Exploratory policy override (the default follows the algorithm).
    pub fn exploratory(mut self, policy: ExploratoryPolicy) -> Self {
        self.config.exploratory = Some(policy);
        self
    }

    /// Disable the §IV-A recency weighting (ablation).
    pub fn uniform_significance(mut self, on: bool) -> Self {
        self.config.uniform_significance = on;
        self
    }

    /// Replace the whole configuration at once.
    pub fn config(mut self, config: AllocatorConfig) -> Self {
        self.config = config;
        self
    }

    /// Enable the fault-feedback policy (absent by default).
    pub fn fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = Some(policy);
        self
    }

    /// Build an untraced allocator.
    pub fn build(self) -> Allocator {
        let mut allocator = Allocator::with_config(self.algorithm, self.config, self.seed);
        allocator.set_fault_policy(self.fault_policy);
        allocator
    }

    /// Build a traced allocator emitting [`AllocEvent`]s into `sink`.
    pub fn sink<S: EventSink>(self, sink: S) -> Allocator<S> {
        self.build().with_sink(sink)
    }
}

/// The adaptive allocator: the §IV-D `Allocator` pseudocode, concretely.
///
/// Generic over an [`EventSink`]; the default [`NoopSink`] disables decision
/// tracing at compile time.
///
/// State is sharded by category ([`shard::CategoryShard`]): each category
/// owns its estimator bank *and its own RNG stream* (seeded
/// `seed ^ category`), so predictions and rebucketing for distinct
/// categories are independent and can run concurrently — see
/// [`predict_first_batch`](Allocator::predict_first_batch) and
/// [`rebucket_all`](Allocator::rebucket_all) — with output byte-identical
/// to the serial calls at any thread count.
pub struct Allocator<S: EventSink = NoopSink> {
    label: String,
    algorithm: Option<AlgorithmKind>,
    factory: EstimatorFactory,
    config: AllocatorConfig,
    exploratory: ExploratoryPolicy,
    categories: HashMap<CategoryId, CategoryShard>,
    seed: u64,
    rejected: u64,
    fault_policy: Option<FaultPolicy>,
    feedback: FeedbackState,
    sink: S,
}

impl Allocator {
    /// Start building an allocator for `algorithm`.
    pub fn builder(algorithm: AlgorithmKind) -> AllocatorBuilder {
        AllocatorBuilder {
            algorithm,
            config: AllocatorConfig::default(),
            seed: 0,
            fault_policy: None,
        }
    }

    /// Build an allocator for `algorithm` with the paper's defaults and a
    /// deterministic seed. Shorthand for
    /// `Allocator::builder(algorithm).seed(seed).build()`.
    pub fn new(algorithm: AlgorithmKind, seed: u64) -> Self {
        Self::with_config(algorithm, AllocatorConfig::default(), seed)
    }

    /// Build with an explicit configuration.
    pub fn with_config(algorithm: AlgorithmKind, config: AllocatorConfig, seed: u64) -> Self {
        let exploratory = config
            .exploratory
            .unwrap_or(if algorithm.conservative_exploration() {
                ExploratoryPolicy::paper_conservative()
            } else {
                ExploratoryPolicy::WholeMachine
            });
        Allocator {
            label: algorithm.label().to_string(),
            algorithm: Some(algorithm),
            factory: Box::new(move |kind, machine| algorithm.build_estimator(kind, machine)),
            config,
            exploratory,
            categories: HashMap::new(),
            seed,
            rejected: 0,
            fault_policy: None,
            feedback: FeedbackState::new(None),
            sink: NoopSink,
        }
    }

    /// Build around a custom estimator factory — the escape hatch for
    /// algorithm variants without an [`AlgorithmKind`] (ablations).
    /// `config.exploratory` must be set (there is no per-algorithm default
    /// to fall back to).
    pub fn with_factory(
        label: impl Into<String>,
        factory: EstimatorFactory,
        config: AllocatorConfig,
        seed: u64,
    ) -> Self {
        let exploratory = config
            .exploratory
            .expect("with_factory requires an explicit exploratory policy");
        Allocator {
            label: label.into(),
            algorithm: None,
            factory,
            config,
            exploratory,
            categories: HashMap::new(),
            seed,
            rejected: 0,
            fault_policy: None,
            feedback: FeedbackState::new(None),
            sink: NoopSink,
        }
    }

    /// Attach an [`EventSink`], turning this untraced allocator into a
    /// traced one. All estimator state and the per-shard RNG positions
    /// carry over.
    pub fn with_sink<S: EventSink>(self, sink: S) -> Allocator<S> {
        Allocator {
            label: self.label,
            algorithm: self.algorithm,
            factory: self.factory,
            config: self.config,
            exploratory: self.exploratory,
            categories: self.categories,
            seed: self.seed,
            rejected: self.rejected,
            fault_policy: self.fault_policy,
            feedback: self.feedback,
            sink,
        }
    }
}

impl<S: EventSink> Allocator<S> {
    /// The algorithm driving this allocator (`None` for factory-built
    /// variants).
    pub fn algorithm(&self) -> Option<AlgorithmKind> {
        self.algorithm
    }

    /// Report label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The active configuration.
    pub fn config(&self) -> &AllocatorConfig {
        &self.config
    }

    /// The exploratory policy in effect.
    pub fn exploratory_policy(&self) -> ExploratoryPolicy {
        self.exploratory
    }

    /// Records observed for `category`.
    pub fn records_for(&self, category: CategoryId) -> usize {
        self.categories.get(&category).map_or(0, |s| s.records())
    }

    /// The active fault-feedback policy, if one is set.
    pub fn fault_policy(&self) -> Option<FaultPolicy> {
        self.fault_policy
    }

    /// Install (or remove, with `None`) the fault-feedback policy. Resets
    /// the outcome windows to the policy's capacity and decay, so call
    /// before the run starts.
    pub fn set_fault_policy(&mut self, policy: Option<FaultPolicy>) {
        if let Some(p) = &policy {
            debug_assert!(p.validate().is_ok(), "invalid fault policy");
            self.feedback = FeedbackState::new(Some(p));
        }
        self.fault_policy = policy;
    }

    /// Report one attempt outcome through the fault-feedback channel
    /// (§II-A adversarial-robustness extension) — the single entry point
    /// feeding the decayed per-category and per-rack windows. Pure
    /// telemetry when no [`FaultPolicy`] is installed; with one, the
    /// decayed crash/timeout rate of the task's *own category* starts
    /// padding first predictions and biasing retry escalations, and racks
    /// crossing [`FaultPolicy::rack_crash_threshold`] surface through
    /// [`avoided_racks`](Self::avoided_racks). Consumes no randomness
    /// either way.
    pub fn observe_outcome(
        &mut self,
        category: CategoryId,
        outcome: AttemptFeedback,
        rack: Option<u32>,
    ) {
        self.feedback.observe(category, outcome, rack);
        if S::ENABLED {
            let rate = self.windowed_fault_rate();
            let padding = self
                .fault_policy
                .map_or(1.0, |p| p.padding(self.effective_rate(category)));
            self.sink
                .emit(AllocEvent::feedback(category, outcome, rate, padding));
        }
    }

    /// The decayed global fault rate feeding telemetry (`0.0` while fewer
    /// than `min_samples` outcomes are recorded).
    pub fn windowed_fault_rate(&self) -> f64 {
        let min = self
            .fault_policy
            .map_or(FaultPolicy::default().min_samples, |p| p.min_samples);
        self.feedback.global_rate(min)
    }

    /// The decayed fault history shared by the padding layer, the learned
    /// estimators and placement avoidance.
    pub fn feedback(&self) -> &FeedbackState {
        &self.feedback
    }

    /// Racks whose decayed crash rate crossed the policy threshold, in
    /// ascending order; always empty without a policy or observed faults.
    pub fn avoided_racks(&self) -> Vec<u32> {
        match &self.fault_policy {
            Some(p) => self.feedback.avoided_racks(p),
            None => Vec::new(),
        }
    }

    /// The fault rate driving policy factors for `category`: the category's
    /// own decayed window once it holds `min_samples` outcomes, the pooled
    /// global window before that (a sparse category should not read as
    /// fault-free while the pool burns).
    fn effective_rate(&self, category: CategoryId) -> f64 {
        let min = self
            .fault_policy
            .map_or(FaultPolicy::default().min_samples, |p| p.min_samples);
        if self.feedback.category_len(category) >= min.max(1) {
            self.feedback.category_rate(category, min)
        } else {
            self.feedback.global_rate(min)
        }
    }

    /// Padding factor on first predictions for `category`; exactly `1.0`
    /// without a policy or without observed faults.
    ///
    /// The feedback state is only updated from the serial event loop
    /// ([`observe_outcome`](Self::observe_outcome)), so a batched
    /// prediction computes this once per request in its serial phase — a
    /// deterministic fold, identical to the serial sequence at any thread
    /// count.
    fn feedback_padding(&self, category: CategoryId) -> f64 {
        self.fault_policy
            .map_or(1.0, |p| p.padding(self.effective_rate(category)))
    }

    /// Escalation factor on retry predictions for `category`; exactly
    /// `1.0` without a policy or without observed faults.
    fn feedback_escalation(&self, category: CategoryId) -> f64 {
        self.fault_policy
            .map_or(1.0, |p| p.escalation(self.effective_rate(category)))
    }

    /// The attached event sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The attached event sink, mutably.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consume the allocator and return its sink.
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// Entry point taking the fields it needs, so callers can keep borrows
    /// of the sink alive alongside the category state.
    fn shard_entry<'a>(
        categories: &'a mut HashMap<CategoryId, CategoryShard>,
        config: &AllocatorConfig,
        factory: &EstimatorFactory,
        seed: u64,
        category: CategoryId,
    ) -> &'a mut CategoryShard {
        categories
            .entry(category)
            .or_insert_with(|| CategoryShard::new(category, config, factory, seed))
    }

    /// The exploratory allocation vector. Unmanaged dimensions get the full
    /// machine so they never spuriously fail; so does a managed dimension
    /// whose probe is unset (zero) — e.g. managing the wall-time axis with
    /// the paper's (1 core, 1 GB, 1 GB) probe, which says nothing about
    /// time.
    fn exploratory_allocation(&self) -> ResourceVector {
        let mut alloc = self.config.machine.capacity;
        if let ExploratoryPolicy::Conservative { probe } = self.exploratory {
            for &k in &self.config.managed {
                if probe[k] > 0.0 {
                    alloc[k] = probe[k];
                }
            }
        }
        alloc.clamp_to(&self.config.machine.capacity)
    }

    /// Predict the allocation for a task's first attempt (§IV-A steps 2–3).
    ///
    /// Accepts anything convertible to a [`TaskContext`]: a bare
    /// [`CategoryId`] (features default to zero — the category-global
    /// algorithms never read them) or a full context carrying the task's
    /// pre-run feature vector for the feature-conditioned estimators.
    pub fn predict_first(&mut self, ctx: impl Into<TaskContext>) -> AllocationDecision {
        let ctx = ctx.into();
        let category = ctx.category;
        let in_exploration = self.categories.get(&category).map_or(0, |s| s.records())
            < self.config.exploratory_records;
        if in_exploration {
            // An exploratory prediction touches no shard state and consumes
            // no draws — the category may not even exist yet.
            let alloc = self.exploratory_allocation();
            if S::ENABLED {
                self.sink.emit(AllocEvent::predict(
                    category,
                    PredictKind::Explore,
                    alloc,
                    Vec::new(),
                ));
            }
            return AllocationDecision {
                alloc,
                kind: PredictKind::Explore,
                provenance: Vec::new(),
                infeasible: false,
            };
        }
        // Fault-feedback padding: ×1.0 (an exact no-op) without a policy or
        // without observed faults.
        let pad = self.feedback_padding(category);
        let exploratory_alloc = self.exploratory_allocation();
        let shard = Self::shard_entry(
            &mut self.categories,
            &self.config,
            &self.factory,
            self.seed,
            category,
        );
        let mut events = Vec::new();
        let decision = shard.predict_first_steady(
            &ctx,
            &self.config,
            pad,
            exploratory_alloc,
            S::ENABLED.then_some(&mut events),
        );
        for event in events {
            self.sink.emit(event);
        }
        decision
    }

    /// Predict the allocation for a retry after `prev` was killed having
    /// exhausted the `exhausted` dimensions. Non-exhausted dimensions keep
    /// their previous allocation (§IV-A: each resource escalates
    /// independently).
    pub fn predict_retry(
        &mut self,
        ctx: impl Into<TaskContext>,
        prev: &ResourceVector,
        exhausted: &ResourceMask,
    ) -> AllocationDecision {
        let ctx = ctx.into();
        let category = ctx.category;
        // Fault-feedback escalation bias: ×1.0 (an exact no-op) without a
        // policy or without observed faults.
        let esc = self.feedback_escalation(category);
        let shard = Self::shard_entry(
            &mut self.categories,
            &self.config,
            &self.factory,
            self.seed,
            category,
        );
        let mut events = Vec::new();
        let decision = shard.predict_retry_core(
            &ctx,
            &self.config,
            prev,
            exhausted,
            esc,
            S::ENABLED.then_some(&mut events),
        );
        for event in events {
            self.sink.emit(event);
        }
        decision
    }

    /// A read-only snapshot of the bucketing state of one (category,
    /// resource kind) pair. Never recomputes — the view may lag behind
    /// unprocessed observations; call [`rebucket`](Self::rebucket) first
    /// for a fresh one. `None` when the category is unknown, the kind is
    /// unmanaged, or the algorithm keeps no bucket structure.
    pub fn snapshot(
        &self,
        category: CategoryId,
        kind: ResourceKind,
    ) -> Option<crate::bucket::BucketSet> {
        self.categories.get(&category)?.snapshot_axis(kind)
    }

    /// Force the estimator of one (category, resource kind) pair to fold
    /// pending observations into a fresh bucketing configuration, and
    /// describe the result. `None` when there is nothing to rebucket.
    pub fn rebucket(&mut self, category: CategoryId, kind: ResourceKind) -> Option<RebucketInfo> {
        let info = self.categories.get_mut(&category)?.rebucket_axis(kind)?;
        if S::ENABLED {
            self.sink.emit(AllocEvent::rebucket(category, kind, &info));
        }
        Some(info)
    }

    /// Ingest a completed task's resource record (§IV-A step 6).
    ///
    /// The record is validated first: a non-finite or negative peak on any
    /// managed axis, or a non-finite/non-positive significance, would
    /// silently poison the estimators' weighted sums (`debug_assert`s inside
    /// the estimators vanish in release builds). Invalid records are
    /// rejected, counted (see [`rejected_records`](Self::rejected_records)),
    /// and leave every estimator untouched. Returns whether the record was
    /// ingested.
    pub fn observe(&mut self, record: &ResourceRecord) -> bool {
        let sig = if self.config.uniform_significance {
            1.0
        } else {
            record.significance
        };
        let valid = sig.is_finite()
            && sig > 0.0
            && self.config.managed.iter().all(|&k| {
                let peak = record.peak[k];
                peak.is_finite() && peak >= 0.0
            });
        if !valid {
            self.rejected += 1;
            return false;
        }
        if S::ENABLED {
            self.sink
                .emit(AllocEvent::observe(record.category, record.peak, sig));
        }
        let shard = Self::shard_entry(
            &mut self.categories,
            &self.config,
            &self.factory,
            self.seed,
            record.category,
        );
        shard.observe(&record.peak, sig, &record.features);
        true
    }

    /// Number of records rejected at the [`observe`](Self::observe)
    /// validation boundary.
    pub fn rejected_records(&self) -> u64 {
        self.rejected
    }
}

impl<S: EventSink> fmt::Debug for Allocator<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Allocator")
            .field("label", &self.label)
            .field("categories", &self.categories.len())
            .field("traced", &S::ENABLED)
            .finish_non_exhaustive()
    }
}
