//! Batched, shard-parallel allocator entry points.
//!
//! The POP insight applied to §IV-D: because every category owns an
//! independent shard (estimators + RNG stream, see [`super::shard`]), a
//! batch of first-attempt predictions — and a full rebucket sweep — can be
//! partitioned by category, solved concurrently on scoped threads, and
//! stitched back together deterministically:
//!
//! * **Decisions** are written into slots indexed by request position, so
//!   the returned vector is in request order regardless of which thread
//!   finished first.
//! * **Trace events** are buffered per request (per category, for
//!   [`rebucket_all`](Allocator::rebucket_all)) and emitted by the caller
//!   thread in request (category) order after the join.
//! * **Draw sequences** per category depend only on that category's call
//!   order, which each shard worker preserves.
//!
//! The result: byte-identical output to the equivalent sequence of serial
//! [`predict_first`](Allocator::predict_first) calls, at any thread count.
//! `tests/differential.rs` enforces this for all nine algorithms.

use crate::estimator::RebucketInfo;
use crate::par;
use crate::resources::ResourceKind;
use crate::task::{CategoryId, TaskContext};
use crate::trace::{AllocEvent, EventSink, PredictKind};
use std::collections::HashMap;

use super::shard::CategoryShard;
use super::{AllocationDecision, Allocator};

impl<S: EventSink> Allocator<S> {
    /// Predict first-attempt allocations for a batch of tasks, sharded by
    /// category across up to `threads` scoped worker threads.
    ///
    /// Semantically identical — byte-for-byte, including trace output and
    /// RNG consumption — to calling
    /// [`predict_first`](Allocator::predict_first) once per entry of
    /// `requests` in order, as long as no observation lands mid-batch
    /// (which is exactly the engine's dispatch pattern: a burst of
    /// predictions, then placements). `threads` is used as given; pass
    /// [`par::resolve`]`(0)` for auto-detection. With `threads <= 1` the
    /// batch runs serially through the very same shard code.
    ///
    /// Requests are anything convertible to a [`TaskContext`] — bare
    /// [`CategoryId`]s or full feature-carrying contexts.
    pub fn predict_first_batch<C>(
        &mut self,
        requests: &[C],
        threads: usize,
    ) -> Vec<AllocationDecision>
    where
        C: Into<TaskContext> + Copy,
    {
        let n = requests.len();
        if n == 0 {
            return Vec::new();
        }
        let contexts: Vec<TaskContext> = requests.iter().map(|&c| c.into()).collect();
        let trace = S::ENABLED;
        let exploratory_records = self.config.exploratory_records;
        let exploratory_alloc = self.exploratory_allocation();

        // Phase 1 (serial): answer exploratory requests immediately (they
        // touch no shard and consume no draws) and group the steady-state
        // ones by category, creating shards as needed. Within a category,
        // request indices stay ascending, so each shard consumes its RNG
        // stream in exactly the serial order. Fault-feedback padding is
        // per-category and only moves on observe_outcome (serial event
        // loop), so one read per category here applies to the whole batch —
        // the same value every serial call would see, at any thread count.
        let mut decisions: Vec<Option<AllocationDecision>> = vec![None; n];
        let mut slot_events: Vec<Vec<AllocEvent>> = Vec::new();
        if trace {
            slot_events.resize_with(n, Vec::new);
        }
        let mut groups: Vec<(CategoryId, f64, Vec<usize>)> = Vec::new();
        let mut group_of: HashMap<CategoryId, usize> = HashMap::new();
        for (i, ctx) in contexts.iter().enumerate() {
            let category = ctx.category;
            let in_exploration =
                self.categories.get(&category).map_or(0, |s| s.records()) < exploratory_records;
            if in_exploration {
                if trace {
                    slot_events[i].push(AllocEvent::predict(
                        category,
                        PredictKind::Explore,
                        exploratory_alloc,
                        Vec::new(),
                    ));
                }
                decisions[i] = Some(AllocationDecision {
                    alloc: exploratory_alloc,
                    kind: PredictKind::Explore,
                    provenance: Vec::new(),
                    infeasible: false,
                });
            } else {
                let g = match group_of.get(&category) {
                    Some(&g) => g,
                    None => {
                        let pad = self.feedback_padding(category);
                        Self::shard_entry(
                            &mut self.categories,
                            &self.config,
                            &self.factory,
                            self.seed,
                            category,
                        );
                        groups.push((category, pad, Vec::new()));
                        group_of.insert(category, groups.len() - 1);
                        groups.len() - 1
                    }
                };
                groups[g].2.push(i);
            }
        }

        // Phase 2 (parallel): one work item per category, each processing
        // its requests sequentially against its own shard.
        if !groups.is_empty() {
            let config = &self.config;
            let contexts = &contexts;
            let mut shard_refs: HashMap<CategoryId, &mut CategoryShard> =
                self.categories.iter_mut().map(|(&k, v)| (k, v)).collect();
            let mut work: Vec<(f64, Vec<usize>, &mut CategoryShard)> = groups
                .into_iter()
                .map(|(category, pad, idxs)| {
                    let shard = shard_refs
                        .remove(&category)
                        .expect("shard created in phase 1");
                    (pad, idxs, shard)
                })
                .collect();
            drop(shard_refs);
            let results = par::par_map_mut(&mut work, threads, |(pad, idxs, shard)| {
                idxs.iter()
                    .map(|&i| {
                        let mut events = Vec::new();
                        let decision = shard.predict_first_steady(
                            &contexts[i],
                            config,
                            *pad,
                            exploratory_alloc,
                            trace.then_some(&mut events),
                        );
                        (i, decision, events)
                    })
                    .collect::<Vec<_>>()
            });
            // Phase 3 (serial): place results by request index.
            for group in results {
                for (i, decision, events) in group {
                    decisions[i] = Some(decision);
                    if trace {
                        slot_events[i] = events;
                    }
                }
            }
        }
        if trace {
            for events in slot_events {
                for event in events {
                    self.sink.emit(event);
                }
            }
        }
        decisions
            .into_iter()
            .map(|d| d.expect("every batched request is decided"))
            .collect()
    }

    /// Force every (category, resource kind) estimator to fold pending
    /// observations into a fresh bucketing configuration, sharding the work
    /// by category across up to `threads` scoped worker threads.
    ///
    /// Results — and any trace events — are merged in ascending category
    /// order (managed-axis order within a category), so the output is
    /// independent of the thread count. Pairs with nothing to rebucket are
    /// omitted, exactly as [`rebucket`](Allocator::rebucket) returns `None`.
    pub fn rebucket_all(
        &mut self,
        threads: usize,
    ) -> Vec<(CategoryId, ResourceKind, RebucketInfo)> {
        let mut shards: Vec<&mut CategoryShard> = self.categories.values_mut().collect();
        shards.sort_by_key(|s| s.category());
        let results = par::par_map_mut(&mut shards, threads, |shard| {
            let category = shard.category();
            shard
                .rebucket_all_axes()
                .into_iter()
                .map(|(kind, info)| (category, kind, info))
                .collect::<Vec<_>>()
        });
        let merged: Vec<(CategoryId, ResourceKind, RebucketInfo)> =
            results.into_iter().flatten().collect();
        if S::ENABLED {
            for (category, kind, info) in &merged {
                self.sink.emit(AllocEvent::rebucket(*category, *kind, info));
            }
        }
        merged
    }
}
