//! Per-resource scalar record storage for the bucketing algorithms.
//!
//! The bucketing manager keeps, per task category and per resource kind, a
//! list of `(value, significance)` pairs from completed tasks (§IV-A). The
//! algorithms operate on the records *sorted by value*; [`RecordList`]
//! maintains that order with **amortized batch ingestion**: observations land
//! in a pending buffer in O(1) and are folded into the sorted list in one
//! merge pass when a consumer next needs the order
//! ([`RecordList::commit`]). Aggregates that don't need the order —
//! [`RecordList::sig_sum`], [`RecordList::weighted_mean`],
//! [`RecordList::min_value`], [`RecordList::max_value`],
//! [`RecordList::max_sig`] — are maintained as running caches and stay O(1)
//! regardless of pending state.

use serde::{Deserialize, Serialize};

/// One observation of a task's peak consumption of a single resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalarRecord {
    /// Peak consumption (units depend on the resource kind).
    pub value: f64,
    /// Significance weight; §V-A sets it to the task id (we use id + 1 so
    /// every record carries positive weight).
    pub sig: f64,
}

impl ScalarRecord {
    /// A record with the given value and significance.
    pub fn new(value: f64, sig: f64) -> Self {
        debug_assert!(value.is_finite() && value >= 0.0, "record value invalid");
        debug_assert!(sig.is_finite() && sig > 0.0, "significance must be > 0");
        ScalarRecord { value, sig }
    }
}

/// A list of scalar records kept sorted by value (ties keep insertion order
/// among equals, which does not affect any bucketing computation).
///
/// Observations accumulate in a pending batch; order-dependent accessors
/// ([`sorted`](Self::sorted), [`quantile`](Self::quantile),
/// [`closest_below`](Self::closest_below)) require the batch to be folded in
/// first via [`commit`](Self::commit). The lazy-rebucket estimators call
/// `commit` once per rebucket, turning N sorted inserts into one merge pass.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecordList {
    sorted: Vec<ScalarRecord>,
    /// Observations not yet merged into `sorted`.
    pending: Vec<ScalarRecord>,
    /// Running maximum significance, used by callers that need a "most
    /// recent" notion without re-scanning.
    max_sig: f64,
    /// Running Σ sig over `sorted` and `pending`.
    sig_sum: f64,
    /// Running Σ value·sig over `sorted` and `pending`.
    weighted_sum: f64,
    /// Running min/max value over `sorted` and `pending` (NaN when empty).
    min_value: f64,
    max_value: f64,
}

impl RecordList {
    /// An empty list.
    pub fn new() -> Self {
        RecordList {
            sorted: Vec::new(),
            pending: Vec::new(),
            max_sig: 0.0,
            sig_sum: 0.0,
            weighted_sum: 0.0,
            min_value: f64::NAN,
            max_value: f64::NAN,
        }
    }

    /// Number of records, including uncommitted pending observations.
    pub fn len(&self) -> usize {
        self.sorted.len() + self.pending.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty() && self.pending.is_empty()
    }

    /// Whether all observations have been merged into the sorted list.
    pub fn is_committed(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of observations waiting in the pending batch.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Buffer a record in O(1); it joins the sorted order at the next
    /// [`commit`](Self::commit).
    pub fn push(&mut self, record: ScalarRecord) {
        if record.sig > self.max_sig {
            self.max_sig = record.sig;
        }
        self.sig_sum += record.sig;
        self.weighted_sum += record.value * record.sig;
        if self.min_value.is_nan() || record.value < self.min_value {
            self.min_value = record.value;
        }
        if self.max_value.is_nan() || record.value > self.max_value {
            self.max_value = record.value;
        }
        self.pending.push(record);
    }

    /// Buffer a `(value, sig)` pair.
    pub fn observe(&mut self, value: f64, sig: f64) {
        self.push(ScalarRecord::new(value, sig));
    }

    /// Fold the pending batch into the sorted list in one pass: sort the
    /// batch, then merge the two sorted runs back-to-front in place. Returns
    /// `true` when anything was merged. Ties keep insertion order (pending
    /// records were observed later, so they land after equal-valued sorted
    /// ones).
    pub fn commit(&mut self) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        // Stable sort keeps insertion order among equal pending values.
        self.pending
            .sort_by(|a, b| a.value.partial_cmp(&b.value).expect("finite record values"));
        let old_len = self.sorted.len();
        let add = self.pending.len();
        self.sorted.resize(
            old_len + add,
            ScalarRecord {
                value: 0.0,
                sig: 0.0,
            },
        );
        // Back-to-front merge: each slot is written before it is read.
        let mut i = old_len; // one past the last unmerged sorted element
        let mut j = add; // one past the last unmerged pending element
        for k in (0..old_len + add).rev() {
            let take_pending =
                i == 0 || (j > 0 && self.pending[j - 1].value >= self.sorted[i - 1].value);
            if take_pending {
                j -= 1;
                self.sorted[k] = self.pending[j];
            } else {
                i -= 1;
                self.sorted[k] = self.sorted[i];
            }
            if j == 0 {
                break; // remaining sorted prefix is already in place
            }
        }
        self.pending.clear();
        true
    }

    /// The records, sorted ascending by value.
    ///
    /// # Panics
    /// If observations are pending — call [`commit`](Self::commit) first.
    pub fn sorted(&self) -> &[ScalarRecord] {
        assert!(
            self.pending.is_empty(),
            "RecordList::sorted with {} uncommitted observations; call commit() first",
            self.pending.len()
        );
        &self.sorted
    }

    /// Largest observed value, if any (O(1), pending included).
    pub fn max_value(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.max_value)
        }
    }

    /// Smallest observed value, if any (O(1), pending included).
    pub fn min_value(&self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            Some(self.min_value)
        }
    }

    /// Largest significance seen so far.
    pub fn max_sig(&self) -> f64 {
        self.max_sig
    }

    /// Total significance weight (O(1), pending included).
    pub fn sig_sum(&self) -> f64 {
        self.sig_sum
    }

    /// Significance-weighted mean of all values (`None` when empty; O(1),
    /// pending included).
    pub fn weighted_mean(&self) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        Some(self.weighted_sum / self.sig_sum)
    }

    /// The value at the given quantile `q ∈ [0, 1]` by *record count*
    /// (nearest-rank on the sorted list). `None` when empty.
    ///
    /// # Panics
    /// If observations are pending — call [`commit`](Self::commit) first.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let sorted = self.sorted();
        if sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let n = sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        Some(sorted[idx].value)
    }

    /// Index of the record closest to `target` from below: the largest index
    /// `i` such that `sorted[i].value < target`. `None` when every record is
    /// ≥ `target`.
    ///
    /// This is the mapping step of the Exhaustive Bucketing candidate grid
    /// (§IV-D step 2: "map its value to the closest record that has a lower
    /// value than it").
    ///
    /// # Panics
    /// If observations are pending — call [`commit`](Self::commit) first.
    pub fn closest_below(&self, target: f64) -> Option<usize> {
        let idx = self.sorted().partition_point(|r| r.value < target);
        idx.checked_sub(1)
    }

    /// Drop all records (sorted and pending), keeping capacity, and reset
    /// every running cache.
    pub fn clear(&mut self) {
        self.sorted.clear();
        self.pending.clear();
        self.max_sig = 0.0;
        self.sig_sum = 0.0;
        self.weighted_sum = 0.0;
        self.min_value = f64::NAN;
        self.max_value = f64::NAN;
    }
}

impl FromIterator<(f64, f64)> for RecordList {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut list = RecordList::new();
        for (value, sig) in iter {
            list.observe(value, sig);
        }
        list.commit();
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(values: &[f64]) -> RecordList {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64))
            .collect()
    }

    #[test]
    fn stays_sorted_under_arbitrary_insertion() {
        let l = list(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        let values: Vec<f64> = l.sorted().iter().map(|r| r.value).collect();
        assert_eq!(values, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(l.min_value(), Some(1.0));
        assert_eq!(l.max_value(), Some(5.0));
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn weighted_mean_matches_hand_computation() {
        // values 2 (sig 1) and 4 (sig 3): mean = (2*1 + 4*3) / 4 = 3.5
        let mut l = RecordList::new();
        l.observe(2.0, 1.0);
        l.observe(4.0, 3.0);
        assert!((l.weighted_mean().unwrap() - 3.5).abs() < 1e-12);
        assert_eq!(l.sig_sum(), 4.0);
    }

    #[test]
    fn aggregates_are_live_before_commit() {
        // The running caches answer without a merge.
        let mut l = RecordList::new();
        l.observe(10.0, 1.0);
        l.observe(2.0, 3.0);
        assert!(!l.is_committed());
        assert_eq!(l.len(), 2);
        assert_eq!(l.min_value(), Some(2.0));
        assert_eq!(l.max_value(), Some(10.0));
        assert_eq!(l.sig_sum(), 4.0);
        assert_eq!(l.max_sig(), 3.0);
        assert!((l.weighted_mean().unwrap() - 4.0).abs() < 1e-12);
        assert!(l.commit());
        assert!(l.is_committed());
        assert!(!l.commit(), "second commit is a no-op");
        assert_eq!(l.sorted().len(), 2);
    }

    #[test]
    fn commit_interleaves_batches_correctly() {
        let mut l = RecordList::new();
        for v in [5.0, 1.0, 9.0] {
            l.observe(v, 1.0);
        }
        l.commit();
        for v in [7.0, 0.5, 9.5, 3.0] {
            l.observe(v, 2.0);
        }
        l.commit();
        let values: Vec<f64> = l.sorted().iter().map(|r| r.value).collect();
        assert_eq!(values, vec![0.5, 1.0, 3.0, 5.0, 7.0, 9.0, 9.5]);
        assert_eq!(l.max_sig(), 2.0);
    }

    #[test]
    fn commit_keeps_tie_order_by_insertion() {
        // Equal values: earlier-committed records stay first, pending ones
        // keep their relative order after them.
        let mut l = RecordList::new();
        l.observe(2.0, 1.0);
        l.observe(2.0, 2.0);
        l.commit();
        l.observe(2.0, 3.0);
        l.observe(2.0, 4.0);
        l.commit();
        let sigs: Vec<f64> = l.sorted().iter().map(|r| r.sig).collect();
        assert_eq!(sigs, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "uncommitted")]
    fn sorted_rejects_uncommitted_state() {
        let mut l = RecordList::new();
        l.observe(1.0, 1.0);
        let _ = l.sorted();
    }

    #[test]
    fn empty_list_yields_none() {
        let l = RecordList::new();
        assert!(l.is_empty());
        assert_eq!(l.max_value(), None);
        assert_eq!(l.min_value(), None);
        assert_eq!(l.weighted_mean(), None);
        assert_eq!(l.quantile(0.5), None);
        assert_eq!(l.closest_below(10.0), None);
    }

    #[test]
    fn quantile_nearest_rank() {
        let l = list(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(l.quantile(0.0), Some(10.0));
        assert_eq!(l.quantile(0.25), Some(10.0));
        assert_eq!(l.quantile(0.5), Some(20.0));
        assert_eq!(l.quantile(0.75), Some(30.0));
        assert_eq!(l.quantile(1.0), Some(40.0));
    }

    #[test]
    fn closest_below_is_strictly_lower() {
        let l = list(&[10.0, 20.0, 30.0]);
        assert_eq!(l.closest_below(5.0), None);
        assert_eq!(l.closest_below(10.0), None); // strict: no value < 10
        assert_eq!(l.closest_below(10.1), Some(0));
        assert_eq!(l.closest_below(25.0), Some(1));
        assert_eq!(l.closest_below(1000.0), Some(2));
    }

    #[test]
    fn max_sig_tracks_running_maximum() {
        let mut l = RecordList::new();
        l.observe(5.0, 3.0);
        l.observe(1.0, 7.0);
        l.observe(9.0, 2.0);
        assert_eq!(l.max_sig(), 7.0);
        l.commit();
        assert_eq!(l.max_sig(), 7.0, "merge must not disturb max_sig");
    }

    #[test]
    fn duplicate_values_all_kept() {
        let mut l = RecordList::new();
        for i in 0..4 {
            l.observe(2.0, (i + 1) as f64);
        }
        l.commit();
        assert_eq!(l.len(), 4);
        assert_eq!(l.quantile(0.5), Some(2.0));
    }

    #[test]
    fn clear_resets() {
        let mut l = list(&[1.0, 2.0]);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.max_sig(), 0.0);
        assert_eq!(l.sig_sum(), 0.0);
        assert_eq!(l.weighted_mean(), None);
        assert_eq!(l.min_value(), None);
        assert_eq!(l.max_value(), None);
    }

    #[test]
    fn clear_then_observe_rebuilds_caches_from_scratch() {
        // Regression: a stale running sum after clear() would poison every
        // later weighted_mean/sig_sum.
        let mut l = list(&[100.0, 200.0]);
        l.observe(300.0, 50.0); // leave something pending too
        l.clear();
        l.observe(4.0, 2.0);
        l.observe(8.0, 2.0);
        assert_eq!(l.len(), 2);
        assert_eq!(l.sig_sum(), 4.0);
        assert_eq!(l.max_sig(), 2.0);
        assert!((l.weighted_mean().unwrap() - 6.0).abs() < 1e-12);
        assert_eq!(l.min_value(), Some(4.0));
        assert_eq!(l.max_value(), Some(8.0));
        l.commit();
        let values: Vec<f64> = l.sorted().iter().map(|r| r.value).collect();
        assert_eq!(values, vec![4.0, 8.0]);
    }
}
