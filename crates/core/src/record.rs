//! Per-resource scalar record storage for the bucketing algorithms.
//!
//! The bucketing manager keeps, per task category and per resource kind, a
//! list of `(value, significance)` pairs from completed tasks (§IV-A). The
//! algorithms operate on the records *sorted by value*; [`RecordList`]
//! maintains that order incrementally.

use serde::{Deserialize, Serialize};

/// One observation of a task's peak consumption of a single resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalarRecord {
    /// Peak consumption (units depend on the resource kind).
    pub value: f64,
    /// Significance weight; §V-A sets it to the task id (we use id + 1 so
    /// every record carries positive weight).
    pub sig: f64,
}

impl ScalarRecord {
    /// A record with the given value and significance.
    pub fn new(value: f64, sig: f64) -> Self {
        debug_assert!(value.is_finite() && value >= 0.0, "record value invalid");
        debug_assert!(sig.is_finite() && sig > 0.0, "significance must be > 0");
        ScalarRecord { value, sig }
    }
}

/// A list of scalar records kept sorted by value (ties keep insertion order
/// among equals, which does not affect any bucketing computation).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecordList {
    sorted: Vec<ScalarRecord>,
    /// Running maximum significance, used by callers that need a "most
    /// recent" notion without re-scanning.
    max_sig: f64,
}

impl RecordList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Insert a record, keeping the list sorted by value.
    pub fn push(&mut self, record: ScalarRecord) {
        let idx = self.sorted.partition_point(|r| r.value <= record.value);
        self.sorted.insert(idx, record);
        if record.sig > self.max_sig {
            self.max_sig = record.sig;
        }
    }

    /// Insert a `(value, sig)` pair.
    pub fn observe(&mut self, value: f64, sig: f64) {
        self.push(ScalarRecord::new(value, sig));
    }

    /// The records, sorted ascending by value.
    pub fn sorted(&self) -> &[ScalarRecord] {
        &self.sorted
    }

    /// Largest observed value, if any.
    pub fn max_value(&self) -> Option<f64> {
        self.sorted.last().map(|r| r.value)
    }

    /// Smallest observed value, if any.
    pub fn min_value(&self) -> Option<f64> {
        self.sorted.first().map(|r| r.value)
    }

    /// Largest significance seen so far.
    pub fn max_sig(&self) -> f64 {
        self.max_sig
    }

    /// Total significance weight.
    pub fn sig_sum(&self) -> f64 {
        self.sorted.iter().map(|r| r.sig).sum()
    }

    /// Significance-weighted mean of all values (`None` when empty).
    pub fn weighted_mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let (num, den) = self
            .sorted
            .iter()
            .fold((0.0, 0.0), |(n, d), r| (n + r.value * r.sig, d + r.sig));
        Some(num / den)
    }

    /// The value at the given quantile `q ∈ [0, 1]` by *record count*
    /// (nearest-rank on the sorted list). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        Some(self.sorted[idx].value)
    }

    /// Index of the record closest to `target` from below: the largest index
    /// `i` such that `sorted[i].value < target`. `None` when every record is
    /// ≥ `target`.
    ///
    /// This is the mapping step of the Exhaustive Bucketing candidate grid
    /// (§IV-D step 2: "map its value to the closest record that has a lower
    /// value than it").
    pub fn closest_below(&self, target: f64) -> Option<usize> {
        let idx = self.sorted.partition_point(|r| r.value < target);
        idx.checked_sub(1)
    }

    /// Drop all records, keeping capacity.
    pub fn clear(&mut self) {
        self.sorted.clear();
        self.max_sig = 0.0;
    }
}

impl FromIterator<(f64, f64)> for RecordList {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        let mut list = RecordList::new();
        for (value, sig) in iter {
            list.observe(value, sig);
        }
        list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(values: &[f64]) -> RecordList {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64))
            .collect()
    }

    #[test]
    fn stays_sorted_under_arbitrary_insertion() {
        let l = list(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        let values: Vec<f64> = l.sorted().iter().map(|r| r.value).collect();
        assert_eq!(values, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(l.min_value(), Some(1.0));
        assert_eq!(l.max_value(), Some(5.0));
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn weighted_mean_matches_hand_computation() {
        // values 2 (sig 1) and 4 (sig 3): mean = (2*1 + 4*3) / 4 = 3.5
        let mut l = RecordList::new();
        l.observe(2.0, 1.0);
        l.observe(4.0, 3.0);
        assert!((l.weighted_mean().unwrap() - 3.5).abs() < 1e-12);
        assert_eq!(l.sig_sum(), 4.0);
    }

    #[test]
    fn empty_list_yields_none() {
        let l = RecordList::new();
        assert!(l.is_empty());
        assert_eq!(l.max_value(), None);
        assert_eq!(l.weighted_mean(), None);
        assert_eq!(l.quantile(0.5), None);
        assert_eq!(l.closest_below(10.0), None);
    }

    #[test]
    fn quantile_nearest_rank() {
        let l = list(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(l.quantile(0.0), Some(10.0));
        assert_eq!(l.quantile(0.25), Some(10.0));
        assert_eq!(l.quantile(0.5), Some(20.0));
        assert_eq!(l.quantile(0.75), Some(30.0));
        assert_eq!(l.quantile(1.0), Some(40.0));
    }

    #[test]
    fn closest_below_is_strictly_lower() {
        let l = list(&[10.0, 20.0, 30.0]);
        assert_eq!(l.closest_below(5.0), None);
        assert_eq!(l.closest_below(10.0), None); // strict: no value < 10
        assert_eq!(l.closest_below(10.1), Some(0));
        assert_eq!(l.closest_below(25.0), Some(1));
        assert_eq!(l.closest_below(1000.0), Some(2));
    }

    #[test]
    fn max_sig_tracks_running_maximum() {
        let mut l = RecordList::new();
        l.observe(5.0, 3.0);
        l.observe(1.0, 7.0);
        l.observe(9.0, 2.0);
        assert_eq!(l.max_sig(), 7.0);
    }

    #[test]
    fn duplicate_values_all_kept() {
        let mut l = RecordList::new();
        for i in 0..4 {
            l.observe(2.0, (i + 1) as f64);
        }
        assert_eq!(l.len(), 4);
        assert_eq!(l.quantile(0.5), Some(2.0));
    }

    #[test]
    fn clear_resets() {
        let mut l = list(&[1.0, 2.0]);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(l.max_sig(), 0.0);
    }
}
