//! K-means bucketing: the clustering half of Phung et al. \[11\].
//!
//! The paper's Quantized Bucketing comparator descends from "Not all tasks
//! are created equal" (Phung et al., WORKS 2021), which evaluated *both*
//! quantile- and k-means-based clustering of task resource records. The
//! quantile variant is the one benchmarked in §V; this module supplies the
//! k-means variant as an extension algorithm so the ablation harness can
//! compare all three clustering rules (value-grid, quantile, k-means) behind
//! the same [`crate::policy::BucketingEstimator`] machinery.
//!
//! This is classic 1-D Lloyd's algorithm with significance-weighted
//! centroids and deterministic quantile seeding; `k` is selected by the same
//! expected-waste cost the other bucketing algorithms use, so the only
//! experimental variable is the clustering rule itself.

use crate::bucket::BucketSet;
use crate::cost::exhaustive_cost;
use crate::partition::Partitioner;
use crate::record::ScalarRecord;

/// The k-means bucketing partitioner.
#[derive(Debug, Clone, Copy)]
pub struct KMeansBucketing {
    max_clusters: usize,
    max_iterations: usize,
}

impl Default for KMeansBucketing {
    fn default() -> Self {
        KMeansBucketing {
            max_clusters: 10,
            max_iterations: 50,
        }
    }
}

impl KMeansBucketing {
    /// Default configuration: up to 10 clusters (the same cap as Exhaustive
    /// Bucketing), at most 50 Lloyd iterations per `k`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ablation constructor.
    pub fn with_max_clusters(max_clusters: usize) -> Self {
        assert!(max_clusters >= 1);
        KMeansBucketing {
            max_clusters,
            ..Self::default()
        }
    }

    /// The configured cluster cap.
    pub fn max_clusters(&self) -> usize {
        self.max_clusters
    }

    /// Run weighted 1-D Lloyd's algorithm for exactly `k` clusters over the
    /// sorted records. Returns bucket end indices (excluding the final one),
    /// or `None` when the data cannot support `k` distinct clusters.
    pub fn lloyd(&self, records: &[ScalarRecord], k: usize) -> Option<Vec<usize>> {
        let n = records.len();
        if k == 0 || k > n {
            return None;
        }
        if k == 1 {
            return Some(Vec::new());
        }
        // Deterministic seeding: quantile-spaced centroids.
        let mut centroids: Vec<f64> = (0..k)
            .map(|i| {
                let idx = ((i as f64 + 0.5) / k as f64 * n as f64) as usize;
                records[idx.min(n - 1)].value
            })
            .collect();
        centroids.dedup();
        if centroids.len() < k {
            return None; // not enough distinct values for k clusters
        }

        // In 1-D with sorted data, an assignment is a set of boundaries:
        // record i belongs to the centroid nearest its value.
        let mut boundaries = vec![0usize; k - 1];
        for _ in 0..self.max_iterations {
            // Assignment step: boundary between cluster j and j+1 is the
            // midpoint of their centroids.
            let mut new_boundaries = Vec::with_capacity(k - 1);
            for j in 0..k - 1 {
                let mid = (centroids[j] + centroids[j + 1]) / 2.0;
                new_boundaries.push(records.partition_point(|r| r.value < mid));
            }
            // Update step: weighted centroid of each segment.
            let mut new_centroids = Vec::with_capacity(k);
            let mut start = 0usize;
            for j in 0..k {
                let end = if j < k - 1 { new_boundaries[j] } else { n };
                if start >= end {
                    // Empty cluster: keep its old centroid so it can attract
                    // members next iteration.
                    new_centroids.push(centroids[j]);
                } else {
                    let seg = &records[start..end];
                    let sig: f64 = seg.iter().map(|r| r.sig).sum();
                    let wsum: f64 = seg.iter().map(|r| r.value * r.sig).sum();
                    new_centroids.push(wsum / sig);
                }
                start = end;
            }
            let converged = new_boundaries == boundaries && new_centroids == centroids;
            boundaries = new_boundaries;
            centroids = new_centroids;
            if converged {
                break;
            }
        }

        // Convert segment boundaries to inclusive end indices, dropping
        // empty segments.
        let mut ends: Vec<usize> = boundaries
            .iter()
            .filter(|&&b| b > 0 && b < n)
            .map(|&b| b - 1)
            .collect();
        ends.sort_unstable();
        ends.dedup();
        Some(ends)
    }
}

impl Partitioner for KMeansBucketing {
    fn name(&self) -> &'static str {
        "kmeans-bucketing"
    }

    fn partition(&self, records: &[ScalarRecord]) -> Vec<usize> {
        let n = records.len();
        if n <= 1 {
            return Vec::new();
        }
        let mut best_breaks = Vec::new();
        let mut best_cost = exhaustive_cost(&BucketSet::single(records));
        for k in 2..=self.max_clusters.min(n) {
            let Some(breaks) = self.lloyd(records, k) else {
                continue;
            };
            if breaks.is_empty() {
                continue;
            }
            let cost = exhaustive_cost(&BucketSet::from_breaks(records, &breaks));
            if cost < best_cost {
                best_cost = cost;
                best_breaks = breaks;
            }
        }
        best_breaks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordList;

    fn list(values: &[f64]) -> RecordList {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64))
            .collect()
    }

    #[test]
    fn trivial_inputs() {
        let km = KMeansBucketing::new();
        assert!(km.partition(&[]).is_empty());
        let one = list(&[5.0]);
        assert!(km.partition(one.sorted()).is_empty());
        let same = list(&[7.0; 20]);
        assert!(km.partition(same.sorted()).is_empty());
    }

    #[test]
    fn two_clusters_found_at_the_gap() {
        let mut values: Vec<f64> = (0..15).map(|i| 100.0 + i as f64).collect();
        values.extend((0..15).map(|i| 5000.0 + i as f64));
        let l = list(&values);
        let km = KMeansBucketing::new();
        let breaks = km.partition(l.sorted());
        assert!(breaks.contains(&14), "breaks {breaks:?}");
        let set = BucketSet::from_breaks(l.sorted(), &breaks);
        set.check_invariants(l.sorted()).unwrap();
    }

    #[test]
    fn lloyd_exact_k_on_three_clusters() {
        let mut values = Vec::new();
        for center in [10.0, 100.0, 1000.0] {
            for i in 0..10 {
                values.push(center + i as f64 * 0.1);
            }
        }
        let l = list(&values);
        let km = KMeansBucketing::new();
        let breaks = km.lloyd(l.sorted(), 3).unwrap();
        assert_eq!(breaks, vec![9, 19]);
    }

    #[test]
    fn lloyd_rejects_impossible_k() {
        let l = list(&[1.0, 2.0]);
        let km = KMeansBucketing::new();
        assert!(km.lloyd(l.sorted(), 5).is_none());
        assert_eq!(km.lloyd(l.sorted(), 1), Some(vec![]));
    }

    #[test]
    fn respects_cluster_cap() {
        let values: Vec<f64> = (0..60).map(|i| (i as f64 + 1.0) * 100.0).collect();
        let l = list(&values);
        let km = KMeansBucketing::with_max_clusters(4);
        let breaks = km.partition(l.sorted());
        assert!(breaks.len() < 4, "{breaks:?}");
        assert_eq!(km.max_clusters(), 4);
    }

    #[test]
    fn chosen_cost_no_worse_than_single_bucket() {
        let mut state = 0xBEEFu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) * 2000.0 + 1.0
        };
        for n in [3usize, 10, 40, 100] {
            let values: Vec<f64> = (0..n).map(|_| next()).collect();
            let l = list(&values);
            let km = KMeansBucketing::new();
            let breaks = km.partition(l.sorted());
            let chosen = exhaustive_cost(&BucketSet::from_breaks(l.sorted(), &breaks));
            let single = exhaustive_cost(&BucketSet::single(l.sorted()));
            assert!(chosen <= single + 1e-9, "n={n}");
        }
    }

    #[test]
    fn works_behind_the_bucketing_estimator() {
        use crate::estimator::ValueEstimator;
        use crate::policy::BucketingEstimator;
        let mut est = BucketingEstimator::new(KMeansBucketing::new());
        for i in 0..20 {
            est.observe(100.0 + i as f64, (i + 1) as f64);
        }
        for i in 0..20 {
            est.observe(900.0 + i as f64, (21 + i) as f64);
        }
        let first = est.first(0.0).unwrap();
        assert!(first >= 100.0);
        let retry = est.retry(first, 0.5).unwrap();
        assert!(retry > first);
        assert_eq!(est.name(), "kmeans-bucketing");
    }
}
