//! # tora-alloc — adaptive task-oriented resource allocation
//!
//! A from-scratch Rust implementation of the allocation algorithms from
//! *"Adaptive Task-Oriented Resource Allocation for Large Dynamic Workflows
//! on Opportunistic Resources"* (Phung & Thain, IPDPS 2024):
//!
//! * **Greedy Bucketing** ([`greedy::GreedyBucketing`]) and
//!   **Exhaustive Bucketing** ([`exhaustive::ExhaustiveBucketing`]) — the
//!   paper's two novel, online, prior-free, general-purpose allocation
//!   algorithms;
//! * the five comparators of its evaluation ([`baselines`]): Whole Machine,
//!   Max Seen, Min Waste, Max Throughput, and Quantized Bucketing;
//! * the surrounding allocator machinery ([`allocator::Allocator`]):
//!   per-category and per-resource estimator states, the exploratory mode,
//!   probabilistic bucket selection and retry escalation.
//!
//! ## The problem
//!
//! Dynamic workflow systems generate tasks at runtime whose resource needs
//! (cores, memory, disk) are unknown until they finish — yet every task must
//! be given an allocation *before* it runs, and a task exceeding its
//! allocation is killed and retried with a bigger one. Over-allocation
//! wastes resources through internal fragmentation; under-allocation wastes
//! entire failed attempts.
//!
//! ## Quick start
//!
//! ```
//! use tora_alloc::allocator::{Allocator, AlgorithmKind};
//! use tora_alloc::resources::ResourceVector;
//! use tora_alloc::task::{CategoryId, ResourceRecord, TaskSpec};
//!
//! let mut allocator = Allocator::new(AlgorithmKind::ExhaustiveBucketing, 42);
//! let category = CategoryId(0);
//!
//! // Feed completed-task records (normally reported by workers)...
//! for id in 0..50 {
//!     let peak = ResourceVector::new(1.0, if id % 2 == 0 { 450.0 } else { 580.0 }, 306.0);
//!     let task = TaskSpec::new(id, category.0, peak, 60.0);
//!     allocator.observe(&ResourceRecord::from_task(&task));
//! }
//!
//! // ...and ask for the next task's allocation.
//! let alloc = allocator.predict_first(category);
//! assert!(alloc.memory_mb() >= 450.0);
//! assert!(alloc.memory_mb() <= 650.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allocator;
pub mod bandit;
pub mod baselines;
pub mod bucket;
pub mod cost;
pub mod estimator;
pub mod exhaustive;
pub mod featurebin;
pub mod feedback;
pub mod greedy;
pub mod kmeans;
pub mod oplog;
pub mod par;
pub mod partition;
pub mod policy;
pub mod record;
pub mod resources;
pub mod task;
pub mod trace;

pub use allocator::{
    AlgorithmKind, AllocationDecision, Allocator, AllocatorBuilder, AllocatorConfig,
    EstimatorFactory, ExploratoryPolicy,
};
pub use bandit::SemiBandit;
pub use bucket::{Bucket, BucketSet};
pub use estimator::{AllocSource, Prediction, RebucketInfo, ValueEstimator};
pub use exhaustive::ExhaustiveBucketing;
pub use featurebin::FeatureBinned;
pub use feedback::{AttemptFeedback, FaultPolicy, FeedbackState, FeedbackWindow};
pub use greedy::GreedyBucketing;
pub use kmeans::KMeansBucketing;
pub use oplog::{AllocLog, AllocOp};
pub use partition::Partitioner;
pub use policy::BucketingEstimator;
pub use record::{RecordList, ScalarRecord};
pub use resources::{ResourceKind, ResourceMask, ResourceVector, WorkerSpec};
pub use task::{CategoryId, ResourceRecord, TaskContext, TaskFeatures, TaskId, TaskSpec};
pub use trace::{
    AllocEvent, AxisProvenance, EventSink, JsonlSink, MemorySink, NoopSink, PredictKind,
    SharedSink, TraceStats,
};
