//! Greedy Bucketing (Algorithm 1).
//!
//! Greedy Bucketing asks, for a (sub)interval of the sorted record list:
//! *should it be broken into exactly two buckets, and if so where?* It scans
//! every candidate break point, scores each with the two-bucket expected
//! waste model ([`crate::cost::greedy_cost`]), and keeps the minimum. If the
//! best "break" is the interval's end (one bucket), it stops; otherwise it
//! recurses into both halves, accumulating break points.
//!
//! Three scan strategies are provided:
//!
//! * **Prefix** (default): a [`PrefixStats`] cache built once per
//!   `partition` call answers every interval's statistics in O(1), so each
//!   scan is O(len) with no per-interval re-accumulation. This is the
//!   production mode.
//! * **Faithful** ([`GreedyBucketing::faithful`]): each candidate's cost
//!   re-walks the interval, exactly like the paper's `compute_greedy_cost` —
//!   O(len²) per scan. This reproduces Table I's measured growth
//!   (GB ≈ 0.44 s at 5000 records) and is what the `table1` bench times.
//! * **Incremental** (ablation, §VII "potential optimizations"): one prefix
//!   pass per interval computes every candidate's cost with running sums.
//!   Kept as the historical ablation variant; output-identical to both
//!   others.

use crate::cost::{greedy_cost, PrefixStats};
use crate::partition::Partitioner;
use crate::record::ScalarRecord;

/// How the per-interval break scan computes candidate costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum GreedyScan {
    /// O(1) interval stats from a partition-wide prefix-sum cache.
    #[default]
    Prefix,
    /// Per-interval running sums (the historical fast ablation).
    Incremental,
    /// The paper's per-candidate interval re-walk (Table I's cost).
    Faithful,
}

/// The Greedy Bucketing partitioner.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyBucketing {
    scan: GreedyScan,
}

impl GreedyBucketing {
    /// The paper's algorithm with the prefix-sum fast scan (production
    /// default). Output-identical to [`Self::faithful`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's per-candidate scan cost — O(len²) per interval. Use this
    /// to reproduce Table I's compute-cost measurements.
    pub fn faithful() -> Self {
        GreedyBucketing {
            scan: GreedyScan::Faithful,
        }
    }

    /// Output-identical variant whose scan is computed incrementally in one
    /// pass per interval (the optimization ablation).
    pub fn incremental() -> Self {
        GreedyBucketing {
            scan: GreedyScan::Incremental,
        }
    }

    /// Whether this instance uses one of the fast scans (anything but the
    /// paper-faithful re-walk).
    pub fn is_incremental(&self) -> bool {
        self.scan != GreedyScan::Faithful
    }

    /// Whether this instance reproduces the paper's O(len²) scan cost.
    pub fn is_faithful(&self) -> bool {
        self.scan == GreedyScan::Faithful
    }

    /// Find the best break for `records[lo..=hi]`. Returns `(break, cost)`;
    /// `break == hi` means "keep one bucket". `stats` is only consulted by
    /// the prefix scan.
    fn best_break(
        &self,
        records: &[ScalarRecord],
        stats: &PrefixStats,
        lo: usize,
        hi: usize,
    ) -> (usize, f64) {
        match self.scan {
            GreedyScan::Prefix => best_break_prefix(records, stats, lo, hi),
            GreedyScan::Incremental => best_break_incremental(records, lo, hi),
            GreedyScan::Faithful => best_break_faithful(records, lo, hi),
        }
    }
}

/// Paper-faithful scan: `compute_greedy_cost` re-walks the interval per
/// candidate.
fn best_break_faithful(records: &[ScalarRecord], lo: usize, hi: usize) -> (usize, f64) {
    let mut min_cost = f64::INFINITY;
    let mut break_idx = hi;
    for i in lo..=hi {
        let cost = greedy_cost(records, lo, i, hi);
        if cost < min_cost {
            min_cost = cost;
            break_idx = i;
        }
    }
    (break_idx, min_cost)
}

/// One-pass scan with identical results: prefix sums of significance and
/// value·significance give each candidate's bucket stats in O(1).
#[allow(clippy::needless_range_loop)] // index math mirrors the paper's pseudocode
fn best_break_incremental(records: &[ScalarRecord], lo: usize, hi: usize) -> (usize, f64) {
    let mut total_sig = 0.0;
    let mut total_wsum = 0.0;
    for r in &records[lo..=hi] {
        total_sig += r.sig;
        total_wsum += r.value * r.sig;
    }
    let rep_hi = records[hi].value;

    let mut min_cost = f64::INFINITY;
    let mut break_idx = hi;
    let mut low_sig = 0.0;
    let mut low_wsum = 0.0;
    for i in lo..=hi {
        low_sig += records[i].sig;
        low_wsum += records[i].value * records[i].sig;
        let cost = if i == hi {
            rep_hi - total_wsum / total_sig
        } else {
            let high_sig = total_sig - low_sig;
            let high_wsum = total_wsum - low_wsum;
            two_bucket_cost(
                total_sig,
                low_sig,
                high_sig,
                low_wsum / low_sig,
                high_wsum / high_sig,
                records[i].value,
                rep_hi,
            )
        };
        if cost < min_cost {
            min_cost = cost;
            break_idx = i;
        }
    }
    (break_idx, min_cost)
}

/// Prefix-cache scan: the partition-wide [`PrefixStats`] answers every
/// interval query in O(1), so no per-interval accumulation pass is needed.
fn best_break_prefix(
    records: &[ScalarRecord],
    stats: &PrefixStats,
    lo: usize,
    hi: usize,
) -> (usize, f64) {
    let total_sig = stats.sig(lo, hi);
    let total_wsum = stats.wsum(lo, hi);
    let rep_hi = records[hi].value;

    let mut min_cost = f64::INFINITY;
    let mut break_idx = hi;
    for (i, rec) in records.iter().enumerate().take(hi + 1).skip(lo) {
        let cost = if i == hi {
            rep_hi - total_wsum / total_sig
        } else {
            let low_sig = stats.sig(lo, i);
            let high_sig = stats.sig(i + 1, hi);
            let v_lo = stats.wsum(lo, i) / low_sig;
            let v_hi = stats.wsum(i + 1, hi) / high_sig;
            two_bucket_cost(total_sig, low_sig, high_sig, v_lo, v_hi, rec.value, rep_hi)
        };
        if cost < min_cost {
            min_cost = cost;
            break_idx = i;
        }
    }
    (break_idx, min_cost)
}

/// The §IV-B four-case two-bucket expected waste, from precomputed interval
/// statistics.
#[inline]
fn two_bucket_cost(
    total_sig: f64,
    low_sig: f64,
    high_sig: f64,
    v_lo: f64,
    v_hi: f64,
    rep_lo: f64,
    rep_hi: f64,
) -> f64 {
    let p_lo = low_sig / total_sig;
    let p_hi = high_sig / total_sig;
    p_lo * p_lo * (rep_lo - v_lo)
        + p_lo * p_hi * (rep_hi - v_lo)
        + p_hi * p_lo * (rep_lo + rep_hi - v_hi)
        + p_hi * p_hi * (rep_hi - v_hi)
}

impl Partitioner for GreedyBucketing {
    fn name(&self) -> &'static str {
        match self.scan {
            GreedyScan::Prefix => "greedy-bucketing",
            GreedyScan::Incremental => "greedy-bucketing-incremental",
            GreedyScan::Faithful => "greedy-bucketing-faithful",
        }
    }

    /// Algorithm 1, iteratively (an explicit work stack replaces the paper's
    /// recursion so adversarial inputs cannot overflow the call stack).
    fn partition(&self, records: &[ScalarRecord]) -> Vec<usize> {
        let n = records.len();
        if n <= 1 {
            return Vec::new();
        }
        // The prefix cache is built once per partition call and shared by
        // every interval scan; the other scan modes never touch it.
        let stats = if self.scan == GreedyScan::Prefix {
            PrefixStats::from_records(records)
        } else {
            PrefixStats::new()
        };
        let mut ends: Vec<usize> = Vec::new();
        let mut stack = vec![(0usize, n - 1)];
        while let Some((lo, hi)) = stack.pop() {
            if lo == hi {
                ends.push(hi);
                continue;
            }
            let (brk, _cost) = self.best_break(records, &stats, lo, hi);
            if brk == hi {
                ends.push(hi);
            } else {
                stack.push((lo, brk));
                stack.push((brk + 1, hi));
            }
        }
        ends.sort_unstable();
        debug_assert_eq!(ends.last(), Some(&(n - 1)));
        ends.pop(); // the final bucket's end is implicit
        ends
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::BucketSet;
    use crate::record::RecordList;

    fn list(values: &[f64]) -> RecordList {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64))
            .collect()
    }

    #[test]
    fn empty_and_singleton_lists_produce_no_breaks() {
        let gb = GreedyBucketing::new();
        assert!(gb.partition(&[]).is_empty());
        let l = list(&[5.0]);
        assert!(gb.partition(l.sorted()).is_empty());
    }

    #[test]
    fn identical_values_stay_in_one_bucket() {
        let gb = GreedyBucketing::new();
        let l: RecordList = (0..20).map(|i| (7.0, (i + 1) as f64)).collect();
        assert!(gb.partition(l.sorted()).is_empty());
    }

    #[test]
    fn two_well_separated_clusters_split_at_the_gap() {
        let gb = GreedyBucketing::new();
        let mut values: Vec<f64> = (0..10).map(|i| 10.0 + i as f64 * 0.1).collect();
        values.extend((0..10).map(|i| 1000.0 + i as f64 * 0.1));
        let l = list(&values);
        let breaks = gb.partition(l.sorted());
        // The gap is between sorted indices 9 and 10.
        assert!(breaks.contains(&9), "breaks {breaks:?} should include 9");
        let set = BucketSet::from_breaks(l.sorted(), &breaks);
        set.check_invariants(l.sorted()).unwrap();
    }

    #[test]
    fn three_clusters_found_recursively() {
        let gb = GreedyBucketing::new();
        let mut values = Vec::new();
        for center in [10.0, 500.0, 5000.0] {
            for i in 0..8 {
                values.push(center + i as f64 * 0.01);
            }
        }
        let l = list(&values);
        let breaks = gb.partition(l.sorted());
        assert!(breaks.contains(&7), "missing first gap: {breaks:?}");
        assert!(breaks.contains(&15), "missing second gap: {breaks:?}");
    }

    #[test]
    fn all_scan_modes_produce_identical_partitions() {
        let gb_p = GreedyBucketing::new();
        let gb_f = GreedyBucketing::faithful();
        let gb_i = GreedyBucketing::incremental();
        // Deterministic pseudo-random values.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) * 1000.0
        };
        for n in [2usize, 3, 7, 20, 64, 133] {
            let values: Vec<f64> = (0..n).map(|_| next()).collect();
            let l = list(&values);
            let faithful = gb_f.partition(l.sorted());
            assert_eq!(gb_p.partition(l.sorted()), faithful, "prefix, n = {n}");
            assert_eq!(gb_i.partition(l.sorted()), faithful, "incremental, n = {n}");
        }
    }

    #[test]
    fn breaks_are_valid_bucket_set_inputs() {
        let gb = GreedyBucketing::new();
        let values: Vec<f64> = (0..50).map(|i| ((i * 37) % 100) as f64 + 1.0).collect();
        let l = list(&values);
        let breaks = gb.partition(l.sorted());
        let set = BucketSet::from_breaks(l.sorted(), &breaks);
        set.check_invariants(l.sorted()).unwrap();
    }

    #[test]
    fn best_break_single_element_interval() {
        let l = list(&[3.0, 9.0]);
        let gb = GreedyBucketing::new();
        let stats = PrefixStats::from_records(l.sorted());
        let (brk, cost) = gb.best_break(l.sorted(), &stats, 0, 0);
        assert_eq!(brk, 0);
        assert!(cost.abs() < 1e-12); // singleton bucket: rep == mean
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(GreedyBucketing::new().name(), "greedy-bucketing");
        assert_eq!(
            GreedyBucketing::faithful().name(),
            "greedy-bucketing-faithful"
        );
        assert_eq!(
            GreedyBucketing::incremental().name(),
            "greedy-bucketing-incremental"
        );
        assert!(GreedyBucketing::new().is_incremental());
        assert!(GreedyBucketing::incremental().is_incremental());
        assert!(!GreedyBucketing::faithful().is_incremental());
        assert!(GreedyBucketing::faithful().is_faithful());
        assert!(!GreedyBucketing::new().is_faithful());
    }
}
