//! Honest thread detection and a deterministic scoped parallel map.
//!
//! Everything parallel in the workspace sizes itself through this module, so
//! the worker count is decided in exactly one place, with one precedence:
//!
//! 1. **`TORA_THREADS`** — explicit operator override (≥ 1);
//! 2. **cgroup CPU quota** — inside a container the kernel caps runnable
//!    CPUs at `quota / period`, regardless of how many cores the host
//!    advertises. Both cgroup v2 (`cpu.max`) and v1
//!    (`cpu.cfs_quota_us` / `cpu.cfs_period_us`) are parsed;
//! 3. **[`std::thread::available_parallelism`]** — the hardware answer.
//!
//! The detected count is *capped* by the quota, never raised: claiming 32
//! threads on a half-core container is how a benchmark reports a parallel
//! "speedup" of 0.97×. `BENCH.json` records both `threads_detected` (this
//! module's answer) and `threads_used` (what a run actually spent), so a
//! 1-core box honestly reports `threads_used: 1` instead of a fake speedup.
//!
//! [`par_map_mut`] is the execution half: a scoped-thread map over mutable
//! items (the allocator's category shards) that preserves item order in its
//! results and degenerates to a plain serial loop at `threads == 1`, so the
//! parallel and serial paths are the same code.

use std::num::NonZeroUsize;

/// Parse a cgroup v2 `cpu.max` line (`"<quota> <period>"` or `"max ..."`)
/// into a usable thread cap. `None` means unlimited or unparseable.
fn parse_cpu_max(line: &str) -> Option<usize> {
    let mut parts = line.split_whitespace();
    let quota: f64 = parts.next()?.parse().ok()?; // "max" fails the parse ⇒ unlimited
    let period: f64 = parts.next().and_then(|p| p.parse().ok()).unwrap_or(1e5);
    quota_threads(quota, period)
}

/// Parse cgroup v1 `cpu.cfs_quota_us` / `cpu.cfs_period_us` contents.
/// A quota of `-1` means unlimited.
fn parse_cfs(quota: &str, period: &str) -> Option<usize> {
    let quota: f64 = quota.trim().parse().ok()?;
    if quota < 0.0 {
        return None;
    }
    let period: f64 = period.trim().parse().ok().filter(|p| *p > 0.0)?;
    quota_threads(quota, period)
}

/// `ceil(quota / period)`, floored at one thread.
fn quota_threads(quota: f64, period: f64) -> Option<usize> {
    if !(quota > 0.0 && period > 0.0) {
        return None;
    }
    Some(((quota / period).ceil() as usize).max(1))
}

/// The container CPU quota as a thread count, if one is imposed.
///
/// Reads cgroup v2 first (`/sys/fs/cgroup/cpu.max`), then v1
/// (`/sys/fs/cgroup/cpu/cpu.cfs_{quota,period}_us`). `None` outside a
/// quota-limited cgroup (or on non-Linux systems).
pub fn cgroup_quota() -> Option<usize> {
    if let Ok(line) = std::fs::read_to_string("/sys/fs/cgroup/cpu.max") {
        if let Some(n) = parse_cpu_max(&line) {
            return Some(n);
        }
    }
    let quota = std::fs::read_to_string("/sys/fs/cgroup/cpu/cpu.cfs_quota_us").ok()?;
    let period = std::fs::read_to_string("/sys/fs/cgroup/cpu/cpu.cfs_period_us").ok()?;
    parse_cfs(&quota, &period)
}

/// The number of worker threads this process should use: the
/// `TORA_THREADS` override when set (≥ 1), otherwise the available
/// parallelism capped by the cgroup CPU quota.
pub fn detected_threads() -> usize {
    if let Some(n) = std::env::var("TORA_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
    {
        return n;
    }
    let hardware = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    match cgroup_quota() {
        Some(quota) => hardware.min(quota),
        None => hardware,
    }
}

/// Resolve an explicit thread-count request: `0` means "auto"
/// ([`detected_threads`]); any other value is taken as-is.
pub fn resolve(requested: usize) -> usize {
    if requested == 0 {
        detected_threads()
    } else {
        requested
    }
}

/// Worker threads to use for `jobs` independent items: the detected count,
/// never more than the job count, never less than one.
pub fn thread_count(jobs: usize) -> usize {
    detected_threads().min(jobs.max(1))
}

/// Map `f` over `items` on up to `threads` scoped worker threads, returning
/// results in item order.
///
/// Items are split into contiguous balanced chunks, one worker per chunk,
/// and each worker's results are concatenated in chunk order — so the
/// output order (and therefore anything merged from it) is independent of
/// scheduling. With `threads <= 1` (or one item) this is a plain serial
/// `map` over the very same closure: the serial reference path and the
/// parallel path cannot drift apart.
pub fn par_map_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter_mut().map(&f).collect();
    }
    let workers = threads.min(n);
    let base = n / workers;
    let rem = n % workers;
    let mut chunks: Vec<&mut [T]> = Vec::with_capacity(workers);
    let mut rest = items;
    for w in 0..workers {
        let len = base + usize::from(w < rem);
        let (head, tail) = rest.split_at_mut(len);
        chunks.push(head);
        rest = tail;
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let f = &f;
                scope.spawn(move || chunk.iter_mut().map(f).collect::<Vec<R>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("par_map_mut worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_max_parsing() {
        // v2 syntax: "<quota> <period>" with "max" meaning unlimited.
        assert_eq!(parse_cpu_max("max 100000"), None);
        assert_eq!(parse_cpu_max("100000 100000"), Some(1));
        assert_eq!(parse_cpu_max("150000 100000"), Some(2)); // 1.5 CPUs → 2
        assert_eq!(parse_cpu_max("400000 100000"), Some(4));
        assert_eq!(parse_cpu_max("50000 100000"), Some(1)); // half a CPU → 1
        assert_eq!(parse_cpu_max(""), None);
        assert_eq!(parse_cpu_max("garbage"), None);
    }

    #[test]
    fn cfs_parsing() {
        // v1 syntax: quota -1 means unlimited.
        assert_eq!(parse_cfs("-1", "100000"), None);
        assert_eq!(parse_cfs("200000", "100000"), Some(2));
        assert_eq!(parse_cfs("100000\n", "100000\n"), Some(1));
        assert_eq!(parse_cfs("100000", "0"), None);
        assert_eq!(parse_cfs("x", "100000"), None);
    }

    #[test]
    fn resolve_and_bounds() {
        assert!(detected_threads() >= 1);
        assert_eq!(resolve(3), 3);
        assert!(resolve(0) >= 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(0) >= 1);
        assert!(thread_count(2) <= 2);
    }

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let want: Vec<u64> = items.iter().map(|i| i * 7 + 1).collect();
        for threads in [1, 2, 3, 4, 16, 200] {
            let mut mine = items.clone();
            let got = par_map_mut(&mut mine, threads, |i| *i * 7 + 1);
            assert_eq!(got, want, "threads={threads}");
        }
        let mut empty: Vec<u64> = Vec::new();
        assert!(par_map_mut(&mut empty, 4, |i| *i).is_empty());
    }

    #[test]
    fn par_map_mutations_land_in_every_item() {
        let mut items: Vec<u64> = vec![0; 41];
        par_map_mut(&mut items, 4, |i| *i += 1);
        assert!(items.iter().all(|&i| i == 1));
    }
}
