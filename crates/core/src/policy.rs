//! The shared prediction/retry policy of the bucketing approach.
//!
//! §IV-A: all bucketing algorithms share the same prediction machinery —
//! sample a bucket by probability and allocate its representative; on
//! resource exhaustion consider only strictly-higher buckets (renormalized);
//! past the top bucket, double until success. They differ only in the
//! [`Partitioner`] that cuts the record list.
//!
//! Recomputation is *lazy*: observations mark the cached [`BucketSet`] dirty
//! and the next prediction rebuilds it. This implements the batching
//! discussed under Table I ("a sequence of completed tasks can be batched
//! into a large update if there's no ready tasks in-between"). A
//! paper-worst-case mode (`recompute_always`) forces a rebuild per
//! prediction, which is what Table I times.

use crate::bucket::BucketSet;
use crate::estimator::{double_allocation, ValueEstimator};
use crate::partition::Partitioner;
use crate::record::RecordList;

/// A [`ValueEstimator`] built from any bucketing [`Partitioner`].
///
/// # Examples
///
/// ```
/// use tora_alloc::estimator::ValueEstimator;
/// use tora_alloc::exhaustive::ExhaustiveBucketing;
/// use tora_alloc::policy::BucketingEstimator;
///
/// let mut est = BucketingEstimator::new(ExhaustiveBucketing::new());
/// for i in 0..20 {
///     est.observe(300.0 + i as f64, 1.0 + i as f64);
/// }
/// let first = est.first(0.4).unwrap();      // a bucket representative
/// assert!(first >= 300.0 && first <= 319.0);
/// let retry = est.retry(first, 0.4).unwrap(); // §IV-A escalation
/// assert!(retry > first);
/// ```
#[derive(Debug, Clone)]
pub struct BucketingEstimator<P> {
    partitioner: P,
    records: RecordList,
    cached: BucketSet,
    dirty: bool,
    recompute_always: bool,
}

impl<P: Partitioner> BucketingEstimator<P> {
    /// Wrap a partitioner with the shared bucketing policy.
    pub fn new(partitioner: P) -> Self {
        BucketingEstimator {
            partitioner,
            records: RecordList::new(),
            cached: BucketSet::default(),
            dirty: false,
            recompute_always: false,
        }
    }

    /// Force a full bucketing-state recomputation on every prediction — the
    /// worst case Table I measures.
    pub fn recompute_always(mut self) -> Self {
        self.recompute_always = true;
        self
    }

    /// The records observed so far.
    pub fn records(&self) -> &RecordList {
        &self.records
    }

    /// The current bucket set, recomputing if stale. `None` when no records
    /// exist.
    pub fn bucket_set(&mut self) -> Option<&BucketSet> {
        if self.records.is_empty() {
            return None;
        }
        if self.dirty || self.recompute_always || self.cached.is_empty() {
            let breaks = self.partitioner.partition(self.records.sorted());
            self.cached = BucketSet::from_breaks(self.records.sorted(), &breaks);
            self.dirty = false;
        }
        Some(&self.cached)
    }

    /// The partitioner in use.
    pub fn partitioner(&self) -> &P {
        &self.partitioner
    }
}

impl<P: Partitioner> ValueEstimator for BucketingEstimator<P> {
    fn name(&self) -> &'static str {
        self.partitioner.name()
    }

    fn observe(&mut self, value: f64, sig: f64) {
        self.records.observe(value, sig);
        self.dirty = true;
    }

    fn len(&self) -> usize {
        self.records.len()
    }

    fn first(&mut self, u: f64) -> Option<f64> {
        let set = self.bucket_set()?;
        let idx = set.sample(u)?;
        Some(set.buckets()[idx].rep)
    }

    fn retry(&mut self, prev: f64, u: f64) -> Option<f64> {
        let set = self.bucket_set()?;
        match set.sample_above(prev, u) {
            Some(idx) => Some(set.buckets()[idx].rep),
            // Previous allocation was at or above the top representative:
            // §IV-A doubling fallback.
            None => Some(double_allocation(prev).max(prev * 2.0)),
        }
    }

    fn snapshot(&mut self) -> Option<BucketSet> {
        self.bucket_set().cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveBucketing;
    use crate::greedy::GreedyBucketing;

    fn bimodal_estimator() -> BucketingEstimator<ExhaustiveBucketing> {
        let mut est = BucketingEstimator::new(ExhaustiveBucketing::new());
        // Two clear clusters: ~100 and ~1000.
        for i in 0..20 {
            est.observe(100.0 + i as f64, (i + 1) as f64);
        }
        for i in 0..20 {
            est.observe(1000.0 + i as f64, (21 + i) as f64);
        }
        est
    }

    #[test]
    fn empty_estimator_predicts_nothing() {
        let mut est = BucketingEstimator::new(GreedyBucketing::new());
        assert!(est.is_empty());
        assert_eq!(est.first(0.5), None);
        assert_eq!(est.retry(4.0, 0.5), None);
        assert!(est.bucket_set().is_none());
    }

    #[test]
    fn predictions_are_bucket_representatives() {
        let mut est = bimodal_estimator();
        let reps: Vec<f64> = est
            .bucket_set()
            .unwrap()
            .buckets()
            .iter()
            .map(|b| b.rep)
            .collect();
        for u in [0.0, 0.1, 0.5, 0.9, 0.999] {
            let a = est.first(u).unwrap();
            assert!(reps.contains(&a), "allocation {a} not a representative");
        }
    }

    #[test]
    fn retry_moves_strictly_upward() {
        let mut est = bimodal_estimator();
        let first = est.first(0.0).unwrap();
        let next = est.retry(first, 0.5).unwrap();
        assert!(next > first);
        // Retrying from the top representative must double.
        let top = est.bucket_set().unwrap().max_rep().unwrap();
        let doubled = est.retry(top, 0.5).unwrap();
        assert_eq!(doubled, top * 2.0);
    }

    #[test]
    fn retry_chain_terminates_above_any_demand() {
        let mut est = bimodal_estimator();
        let demand = 1e7;
        let mut alloc = est.first(0.42).unwrap();
        let mut steps = 0;
        while alloc < demand {
            alloc = est.retry(alloc, 0.42).unwrap();
            steps += 1;
            assert!(steps < 64, "retry chain did not terminate");
        }
        assert!(alloc >= demand);
    }

    #[test]
    fn lazy_recompute_batches_observations() {
        let mut est = bimodal_estimator();
        let set_before = est.bucket_set().unwrap().clone();
        // Many observations, no prediction in between: one rebuild at the end.
        for i in 0..100 {
            est.observe(500.0, (41 + i) as f64);
        }
        assert!(est.dirty);
        let _ = est.first(0.3);
        assert!(!est.dirty);
        let set_after = est.bucket_set().unwrap().clone();
        assert_ne!(set_before, set_after);
    }

    #[test]
    fn recompute_always_still_correct() {
        let mut a = bimodal_estimator();
        let mut b = bimodal_estimator().recompute_always();
        for u in [0.0, 0.25, 0.5, 0.75] {
            assert_eq!(a.first(u), b.first(u));
        }
    }

    #[test]
    fn significance_shift_follows_phases() {
        // Phase 1: small tasks with low significance. Phase 2: large tasks
        // with much higher significance. The high bucket must carry most of
        // the probability, so a mid-range draw allocates large.
        let mut est = BucketingEstimator::new(ExhaustiveBucketing::new());
        for i in 0..50 {
            est.observe(100.0 + (i % 5) as f64, (i + 1) as f64);
        }
        for i in 0..50 {
            est.observe(900.0 + (i % 5) as f64, (51 + i) as f64);
        }
        let set = est.bucket_set().unwrap();
        let top = set.buckets().last().unwrap();
        assert!(
            top.prob > 0.6,
            "recent large phase should dominate: prob {}",
            top.prob
        );
    }

    #[test]
    fn single_record_allocates_exactly_it() {
        let mut est = BucketingEstimator::new(GreedyBucketing::new());
        est.observe(306.0, 1.0);
        assert_eq!(est.first(0.7), Some(306.0));
        assert_eq!(est.retry(306.0, 0.7), Some(612.0));
    }

    #[test]
    fn names_flow_through() {
        let est = BucketingEstimator::new(GreedyBucketing::new());
        assert_eq!(est.name(), "greedy-bucketing");
        let est = BucketingEstimator::new(ExhaustiveBucketing::new());
        assert_eq!(est.name(), "exhaustive-bucketing");
    }
}
