//! The shared prediction/retry policy of the bucketing approach.
//!
//! §IV-A: all bucketing algorithms share the same prediction machinery —
//! sample a bucket by probability and allocate its representative; on
//! resource exhaustion consider only strictly-higher buckets (renormalized);
//! past the top bucket, double until success. They differ only in the
//! [`Partitioner`] that cuts the record list.
//!
//! Recomputation is *lazy*: observations mark the cached [`BucketSet`] dirty
//! and the next prediction rebuilds it. This implements the batching
//! discussed under Table I ("a sequence of completed tasks can be batched
//! into a large update if there's no ready tasks in-between"). A
//! paper-worst-case mode (`recompute_always`) forces a rebuild per
//! prediction, which is what Table I times.
//!
//! At paper scale the rebuild cadence is exact: every observation makes the
//! next prediction rebucket. Past [`EXACT_REBUCKET_LIMIT`] records the
//! per-observation rebuild would turn the whole run O(n²) (each rebuild
//! re-merges and re-partitions the full record list), so rebuilds switch to
//! *geometric batching*: a rebuild is deferred until the pending batch
//! reaches `1/`[`REBUCKET_BATCH_DIVISOR`] of the list, bounding total
//! rebuild work at O(n log n) while predictions between rebuilds serve the
//! cached bucket set in O(1). Every paper workflow keeps each category far
//! below the limit, so seed-scale runs are bit-identical to the
//! always-exact cadence; the batching only engages on million-task runs,
//! where the paper's own Table I argument (batch completed tasks into one
//! large update) justifies it.
//!
//! Each rebuild bumps a monotone *version*; [`ValueEstimator::take_rebucket`]
//! reports it (with the new configuration's size and §IV-C expected waste)
//! to the decision-tracing layer. The bookkeeping on the prediction hot path
//! is a counter increment and a flag — the [`RebucketInfo`] itself is only
//! materialized when somebody asks.

use crate::bucket::BucketSet;
use crate::estimator::{double_allocation, Prediction, RebucketInfo, ValueEstimator};
use crate::partition::Partitioner;
use crate::record::RecordList;
use crate::task::TaskContext;

/// Record count at or below which every observation still triggers an
/// immediate rebucket on the next prediction (the paper's exact cadence).
/// Chosen above the largest per-category record count any seed-scale
/// workflow produces (TopEFT `processing`, 3994 tasks), so the golden and
/// differential suites never see a deferred rebuild.
pub const EXACT_REBUCKET_LIMIT: usize = 4096;

/// Past the exactness limit, a rebuild waits until the pending batch holds
/// at least `len / REBUCKET_BATCH_DIVISOR` observations: rebuild gaps grow
/// linearly with the list, so the number of rebuilds over n observations is
/// O(divisor · log n) and total rebuild work is O(n log n).
pub const REBUCKET_BATCH_DIVISOR: usize = 64;

/// A [`ValueEstimator`] built from any bucketing [`Partitioner`].
///
/// # Examples
///
/// ```
/// use tora_alloc::estimator::ValueEstimator;
/// use tora_alloc::exhaustive::ExhaustiveBucketing;
/// use tora_alloc::policy::BucketingEstimator;
///
/// let mut est = BucketingEstimator::new(ExhaustiveBucketing::new());
/// for i in 0..20 {
///     est.observe(300.0 + i as f64, 1.0 + i as f64);
/// }
/// let first = est.first(0.4).unwrap();      // a bucket representative
/// assert!(first >= 300.0 && first <= 319.0);
/// let retry = est.retry(first, 0.4).unwrap(); // §IV-A escalation
/// assert!(retry > first);
/// ```
#[derive(Debug, Clone)]
pub struct BucketingEstimator<P> {
    partitioner: P,
    records: RecordList,
    cached: BucketSet,
    dirty: bool,
    recompute_always: bool,
    /// Monotone rebuild counter (0 = never rebuilt).
    version: u64,
    /// A rebuild happened since the last [`ValueEstimator::take_rebucket`].
    rebucket_pending: bool,
}

impl<P: Partitioner> BucketingEstimator<P> {
    /// Wrap a partitioner with the shared bucketing policy.
    pub fn new(partitioner: P) -> Self {
        BucketingEstimator {
            partitioner,
            records: RecordList::new(),
            cached: BucketSet::default(),
            dirty: false,
            recompute_always: false,
            version: 0,
            rebucket_pending: false,
        }
    }

    /// Force a full bucketing-state recomputation on every prediction — the
    /// worst case Table I measures.
    pub fn recompute_always(mut self) -> Self {
        self.recompute_always = true;
        self
    }

    /// The records observed so far.
    pub fn records(&self) -> &RecordList {
        &self.records
    }

    /// The current bucket set, recomputing if stale. `None` when no records
    /// exist.
    ///
    /// Past [`EXACT_REBUCKET_LIMIT`] records a dirty state may serve the
    /// cached (slightly stale) set until the pending batch is large enough —
    /// see the module docs on geometric batching.
    pub fn bucket_set(&mut self) -> Option<&BucketSet> {
        self.bucket_set_inner(false)
    }

    /// Whether a dirty state is due for an actual rebuild under the
    /// geometric-batching cadence.
    fn rebuild_due(&self) -> bool {
        let n = self.records.len();
        n <= EXACT_REBUCKET_LIMIT || self.records.pending_len() * REBUCKET_BATCH_DIVISOR >= n
    }

    fn bucket_set_inner(&mut self, force: bool) -> Option<&BucketSet> {
        if self.records.is_empty() {
            return None;
        }
        let rebuild = self.recompute_always
            || self.cached.is_empty()
            || (self.dirty && (force || self.rebuild_due()));
        if rebuild {
            // Fold the pending observation batch into the sorted list in one
            // merge pass — the amortization that replaces per-observe sorted
            // inserts.
            self.records.commit();
            let breaks = self.partitioner.partition(self.records.sorted());
            self.cached = BucketSet::from_breaks(self.records.sorted(), &breaks);
            self.dirty = false;
            self.version += 1;
            self.rebucket_pending = true;
        }
        Some(&self.cached)
    }

    /// The number of bucketing-state rebuilds so far.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The partitioner in use.
    pub fn partitioner(&self) -> &P {
        &self.partitioner
    }

    /// Describe the current (fresh) bucketing state.
    fn info(&self) -> RebucketInfo {
        RebucketInfo {
            version: self.version,
            n_buckets: self.cached.len(),
            n_records: self.records.len(),
            cost: crate::cost::exhaustive_cost(&self.cached),
        }
    }
}

impl<P: Partitioner> ValueEstimator for BucketingEstimator<P> {
    fn name(&self) -> &'static str {
        self.partitioner.name()
    }

    fn observe(&mut self, value: f64, sig: f64) {
        self.records.observe(value, sig);
        self.dirty = true;
    }

    fn len(&self) -> usize {
        self.records.len()
    }

    fn predict_first(&mut self, _ctx: &TaskContext, u: f64) -> Option<Prediction> {
        let set = self.bucket_set()?;
        let idx = set.sample(u)?;
        Some(Prediction::bucket(set.buckets()[idx].rep, idx))
    }

    fn predict_retry(&mut self, _ctx: &TaskContext, prev: f64, u: f64) -> Option<Prediction> {
        let set = self.bucket_set()?;
        match set.sample_above(prev, u) {
            Some(idx) => Some(Prediction::bucket(set.buckets()[idx].rep, idx)),
            // Previous allocation was at or above the top representative:
            // §IV-A doubling fallback.
            None => Some(Prediction::doubling(
                double_allocation(prev).max(prev * 2.0),
            )),
        }
    }

    fn rebucket(&mut self) -> Option<RebucketInfo> {
        // The explicit API forces a rebuild even when geometric batching
        // would defer it: the caller asked for a fresh state.
        self.bucket_set_inner(true)?;
        // The explicit call reports the state itself; nothing further is
        // pending for the tracing layer.
        self.rebucket_pending = false;
        Some(self.info())
    }

    fn snapshot(&self) -> Option<BucketSet> {
        if self.cached.is_empty() {
            return None;
        }
        Some(self.cached.clone())
    }

    fn take_rebucket(&mut self) -> Option<RebucketInfo> {
        if !self.rebucket_pending {
            return None;
        }
        self.rebucket_pending = false;
        Some(self.info())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::ExhaustiveBucketing;
    use crate::greedy::GreedyBucketing;

    fn bimodal_estimator() -> BucketingEstimator<ExhaustiveBucketing> {
        let mut est = BucketingEstimator::new(ExhaustiveBucketing::new());
        // Two clear clusters: ~100 and ~1000.
        for i in 0..20 {
            est.observe(100.0 + i as f64, (i + 1) as f64);
        }
        for i in 0..20 {
            est.observe(1000.0 + i as f64, (21 + i) as f64);
        }
        est
    }

    #[test]
    fn empty_estimator_predicts_nothing() {
        let mut est = BucketingEstimator::new(GreedyBucketing::new());
        assert!(est.is_empty());
        assert_eq!(est.first(0.5), None);
        assert_eq!(est.retry(4.0, 0.5), None);
        assert!(est.bucket_set().is_none());
        assert!(est.rebucket().is_none());
        assert!(est.snapshot().is_none());
        assert!(est.take_rebucket().is_none());
    }

    #[test]
    fn predictions_are_bucket_representatives() {
        let mut est = bimodal_estimator();
        let reps: Vec<f64> = est
            .bucket_set()
            .unwrap()
            .buckets()
            .iter()
            .map(|b| b.rep)
            .collect();
        let ctx = TaskContext::from(crate::task::CategoryId(0));
        for u in [0.0, 0.1, 0.5, 0.9, 0.999] {
            let p = est.predict_first(&ctx, u).unwrap();
            assert!(
                reps.contains(&p.value),
                "allocation {} not a representative",
                p.value
            );
            // The bucket index in the provenance points at the sampled rep.
            match p.source {
                crate::estimator::AllocSource::Bucket { idx } => {
                    assert_eq!(reps[idx], p.value);
                }
                other => panic!("expected bucket source, got {other:?}"),
            }
        }
    }

    #[test]
    fn retry_moves_strictly_upward() {
        let mut est = bimodal_estimator();
        let first = est.first(0.0).unwrap();
        let next = est.retry(first, 0.5).unwrap();
        assert!(next > first);
        // Retrying from the top representative must double.
        let top = est.bucket_set().unwrap().max_rep().unwrap();
        let ctx = TaskContext::from(crate::task::CategoryId(0));
        let doubled = est.predict_retry(&ctx, top, 0.5).unwrap();
        assert_eq!(doubled.value, top * 2.0);
        assert_eq!(doubled.source, crate::estimator::AllocSource::Doubling);
    }

    #[test]
    fn retry_chain_terminates_above_any_demand() {
        let mut est = bimodal_estimator();
        let demand = 1e7;
        let mut alloc = est.first(0.42).unwrap();
        let mut steps = 0;
        while alloc < demand {
            alloc = est.retry(alloc, 0.42).unwrap();
            steps += 1;
            assert!(steps < 64, "retry chain did not terminate");
        }
        assert!(alloc >= demand);
    }

    #[test]
    fn lazy_recompute_batches_observations() {
        let mut est = bimodal_estimator();
        let set_before = est.bucket_set().unwrap().clone();
        // Many observations, no prediction in between: one rebuild at the end.
        for i in 0..100 {
            est.observe(500.0, (41 + i) as f64);
        }
        assert!(est.dirty);
        let v = est.version();
        let _ = est.first(0.3);
        assert!(!est.dirty);
        assert_eq!(est.version(), v + 1);
        let set_after = est.bucket_set().unwrap().clone();
        assert_ne!(set_before, set_after);
    }

    #[test]
    fn cadence_is_exact_at_paper_scale() {
        // Below the exactness limit every observe → predict pair rebuilds,
        // exactly the pre-batching behaviour the golden suites pin.
        let mut est = BucketingEstimator::new(GreedyBucketing::new());
        for i in 0..200u64 {
            est.observe(100.0 + (i % 13) as f64 * 50.0, (i + 1) as f64);
            let _ = est.first(0.4);
            assert_eq!(est.version(), i + 1, "rebuild per observation");
        }
    }

    #[test]
    fn geometric_batching_defers_rebuilds_past_the_exact_limit() {
        let mut est = BucketingEstimator::new(GreedyBucketing::new());
        for i in 0..=EXACT_REBUCKET_LIMIT {
            est.observe(100.0 + (i % 97) as f64, (i + 1) as f64);
        }
        let _ = est.first(0.5);
        let v = est.version();
        // A single pending record is below the batching threshold: the
        // prediction serves the cached set without rebuilding.
        est.observe(5.0, 1e6);
        let _ = est.first(0.5);
        assert_eq!(est.version(), v, "one pending record must not rebuild");
        assert!(est.dirty, "deferred state stays dirty");
        // A full batch triggers the rebuild.
        for i in 0..EXACT_REBUCKET_LIMIT / REBUCKET_BATCH_DIVISOR + 2 {
            est.observe(50.0, (i + 1) as f64);
        }
        let _ = est.first(0.5);
        assert_eq!(est.version(), v + 1, "batched rebuild fires");
        // The explicit rebucket API always forces freshness.
        est.observe(25.0, 1.0);
        assert_eq!(est.rebucket().unwrap().version, v + 2);
    }

    #[test]
    fn recompute_always_still_correct() {
        let mut a = bimodal_estimator();
        let mut b = bimodal_estimator().recompute_always();
        for u in [0.0, 0.25, 0.5, 0.75] {
            assert_eq!(a.first(u), b.first(u));
        }
    }

    #[test]
    fn significance_shift_follows_phases() {
        // Phase 1: small tasks with low significance. Phase 2: large tasks
        // with much higher significance. The high bucket must carry most of
        // the probability, so a mid-range draw allocates large.
        let mut est = BucketingEstimator::new(ExhaustiveBucketing::new());
        for i in 0..50 {
            est.observe(100.0 + (i % 5) as f64, (i + 1) as f64);
        }
        for i in 0..50 {
            est.observe(900.0 + (i % 5) as f64, (51 + i) as f64);
        }
        let set = est.bucket_set().unwrap();
        let top = set.buckets().last().unwrap();
        assert!(
            top.prob > 0.6,
            "recent large phase should dominate: prob {}",
            top.prob
        );
    }

    #[test]
    fn single_record_allocates_exactly_it() {
        let mut est = BucketingEstimator::new(GreedyBucketing::new());
        est.observe(306.0, 1.0);
        assert_eq!(est.first(0.7), Some(306.0));
        assert_eq!(est.retry(306.0, 0.7), Some(612.0));
    }

    #[test]
    fn names_flow_through() {
        let est = BucketingEstimator::new(GreedyBucketing::new());
        assert_eq!(est.name(), "greedy-bucketing");
        let est = BucketingEstimator::new(ExhaustiveBucketing::new());
        assert_eq!(est.name(), "exhaustive-bucketing");
    }

    #[test]
    fn snapshot_is_read_only_and_may_lag() {
        let mut est = bimodal_estimator();
        // Nothing computed yet: snapshot has nothing to show.
        assert!(est.snapshot().is_none());
        let _ = est.first(0.5);
        let fresh = est.snapshot().expect("state exists after a prediction");
        // New observations do NOT refresh the read-only view...
        est.observe(5000.0, 100.0);
        assert_eq!(est.snapshot().unwrap(), fresh);
        // ...an explicit rebucket does.
        let info = est.rebucket().unwrap();
        assert_eq!(info.n_records, 41);
        assert_ne!(est.snapshot().unwrap(), fresh);
    }

    #[test]
    fn take_rebucket_drains_once_per_rebuild() {
        let mut est = bimodal_estimator();
        assert!(est.take_rebucket().is_none()); // nothing computed yet
        let _ = est.first(0.5);
        let info = est.take_rebucket().expect("first build pending");
        assert_eq!(info.version, 1);
        assert_eq!(info.n_records, 40);
        assert!(info.n_buckets >= 2, "bimodal data should split");
        assert!(info.cost >= 0.0);
        // Drained: no duplicate notice.
        assert!(est.take_rebucket().is_none());
        // A prediction without new records does not rebuild.
        let _ = est.first(0.9);
        assert!(est.take_rebucket().is_none());
        // New records + prediction → a new pending notice.
        est.observe(450.0, 41.0);
        let _ = est.first(0.2);
        assert_eq!(est.take_rebucket().unwrap().version, 2);
    }

    #[test]
    fn explicit_rebucket_clears_pending_notice() {
        let mut est = bimodal_estimator();
        let info = est.rebucket().unwrap();
        assert_eq!(info.version, 1);
        // The explicit call already reported this rebuild.
        assert!(est.take_rebucket().is_none());
        // Rebucket without new data is idempotent (no recompute).
        assert_eq!(est.rebucket().unwrap().version, 1);
    }
}
