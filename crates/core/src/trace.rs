//! Allocation decision tracing: a typed event stream from the allocator.
//!
//! Every consequential step the allocator takes — observing a completed
//! task, rebuilding a bucketing configuration, predicting an allocation,
//! escalating an exhausted axis — is describable as an [`AllocEvent`].
//! Components that want the stream implement [`EventSink`] and receive
//! events synchronously, in decision order.
//!
//! The design constraint is that tracing must cost *nothing* when unused.
//! [`EventSink::ENABLED`] is an associated constant: the allocator guards
//! every event construction behind `if S::ENABLED`, so with the default
//! [`NoopSink`] the branch is constant-folded away and no event is ever
//! built. The provided sinks cover the common uses:
//!
//! | Sink          | Purpose                                            |
//! |---------------|----------------------------------------------------|
//! | [`NoopSink`]  | Default; compiles to nothing                       |
//! | [`TraceStats`]| Counts events, overall and per category            |
//! | [`MemorySink`]| Buffers events for later inspection                |
//! | [`JsonlSink`] | Serializes each event as one JSON line             |
//! | [`SharedSink`]| Shares one sink between the caller and the tracer  |
//! | `(A, B)`      | Fans each event out to two sinks                   |
//!
//! Events serialize with `serde`, externally tagged, so a JSONL line looks
//! like:
//!
//! ```json
//! {"Predict":{"category":0,"kind":"First","alloc":{...},"provenance":[...]}}
//! ```

use crate::estimator::{AllocSource, RebucketInfo};
use crate::feedback::AttemptFeedback;
use crate::resources::{ResourceKind, ResourceVector};
use crate::task::CategoryId;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::fmt;
use std::io::Write;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Global count of [`AllocEvent`] values ever constructed (process-wide).
///
/// Exists to make the zero-cost claim *testable*: a run with a [`NoopSink`]
/// must leave this counter untouched, because the allocator never reaches
/// an event constructor when `S::ENABLED` is false.
static EVENTS_CONSTRUCTED: AtomicU64 = AtomicU64::new(0);

/// Process-wide number of [`AllocEvent`] values constructed so far.
///
/// Take a reading before and after a run and compare deltas; see
/// `tests/trace_noop.rs` for the intended pattern.
pub fn events_constructed() -> u64 {
    EVENTS_CONSTRUCTED.load(Ordering::Relaxed)
}

/// Which prediction path produced an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictKind {
    /// Steady-state first allocation of a task.
    First,
    /// Allocation for a retry after a resource-exhaustion failure.
    Retry,
    /// Exploratory first allocation (§IV-B): the category has too few
    /// records for the estimators to be trusted.
    Explore,
}

impl fmt::Display for PredictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PredictKind::First => "first",
            PredictKind::Retry => "retry",
            PredictKind::Explore => "explore",
        })
    }
}

/// How one axis of a predicted allocation was chosen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AxisProvenance {
    /// The resource dimension this entry describes.
    pub resource: ResourceKind,
    /// Where the value came from (bucket index, doubling, probe, ...).
    pub source: AllocSource,
    /// The uniform draw handed to the estimator, when one was consumed.
    pub draw: Option<f64>,
    /// Whether clamping to worker capacity changed the proposed value.
    pub clamped: bool,
}

/// One allocator decision, as seen by an [`EventSink`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AllocEvent {
    /// A completed task's peak usage was fed back into the estimators.
    Observe {
        /// Task category the record belongs to.
        category: u32,
        /// Peak consumption of the completed task.
        usage: ResourceVector,
        /// Significance weight assigned to the record (§IV-B).
        sig: f64,
    },
    /// An estimator rebuilt its bucketing configuration.
    Rebucket {
        /// Task category whose estimator rebuilt.
        category: u32,
        /// The resource axis the estimator manages.
        resource: ResourceKind,
        /// Monotone rebuild counter for this estimator (1 = first build).
        version: u64,
        /// Buckets in the new configuration.
        n_buckets: usize,
        /// Records the configuration was built from.
        n_records: usize,
        /// §IV-C expected waste of the new configuration.
        cost: f64,
    },
    /// An allocation was predicted for a task.
    Predict {
        /// Task category the prediction is for.
        category: u32,
        /// Which prediction path ran.
        kind: PredictKind,
        /// The allocation handed to the scheduler (post-clamp).
        alloc: ResourceVector,
        /// Per-axis derivation, managed axes only. Empty for [`PredictKind::Explore`].
        provenance: Vec<AxisProvenance>,
    },
    /// A retry raised one exhausted axis (§IV-A escalation).
    Escalate {
        /// Task category of the failed task.
        category: u32,
        /// The axis the task exhausted.
        resource: ResourceKind,
        /// The allocation that proved too small.
        from: f64,
        /// The raised allocation for the retry.
        to: f64,
    },
    /// The engine reported an attempt outcome through the fault-feedback
    /// channel ([`observe_outcome`]).
    ///
    /// [`observe_outcome`]: crate::allocator::Allocator::observe_outcome
    Feedback {
        /// Task category of the reported attempt.
        category: u32,
        /// The reported outcome.
        outcome: AttemptFeedback,
        /// Windowed fault rate after folding the outcome in.
        fault_rate: f64,
        /// Padding factor the active policy derives from the rate (`1.0`
        /// when no policy is set).
        padding: f64,
    },
}

impl AllocEvent {
    /// Build an [`AllocEvent::Observe`].
    pub fn observe(category: CategoryId, usage: ResourceVector, sig: f64) -> Self {
        EVENTS_CONSTRUCTED.fetch_add(1, Ordering::Relaxed);
        AllocEvent::Observe {
            category: category.0,
            usage,
            sig,
        }
    }

    /// Build an [`AllocEvent::Rebucket`] from an estimator's notice.
    pub fn rebucket(category: CategoryId, resource: ResourceKind, info: &RebucketInfo) -> Self {
        EVENTS_CONSTRUCTED.fetch_add(1, Ordering::Relaxed);
        AllocEvent::Rebucket {
            category: category.0,
            resource,
            version: info.version,
            n_buckets: info.n_buckets,
            n_records: info.n_records,
            cost: info.cost,
        }
    }

    /// Build an [`AllocEvent::Predict`].
    pub fn predict(
        category: CategoryId,
        kind: PredictKind,
        alloc: ResourceVector,
        provenance: Vec<AxisProvenance>,
    ) -> Self {
        EVENTS_CONSTRUCTED.fetch_add(1, Ordering::Relaxed);
        AllocEvent::Predict {
            category: category.0,
            kind,
            alloc,
            provenance,
        }
    }

    /// Build an [`AllocEvent::Escalate`].
    pub fn escalate(category: CategoryId, resource: ResourceKind, from: f64, to: f64) -> Self {
        EVENTS_CONSTRUCTED.fetch_add(1, Ordering::Relaxed);
        AllocEvent::Escalate {
            category: category.0,
            resource,
            from,
            to,
        }
    }

    /// Build an [`AllocEvent::Feedback`].
    pub fn feedback(
        category: CategoryId,
        outcome: AttemptFeedback,
        fault_rate: f64,
        padding: f64,
    ) -> Self {
        EVENTS_CONSTRUCTED.fetch_add(1, Ordering::Relaxed);
        AllocEvent::Feedback {
            category: category.0,
            outcome,
            fault_rate,
            padding,
        }
    }

    /// The category the event concerns.
    pub fn category(&self) -> CategoryId {
        match self {
            AllocEvent::Observe { category, .. }
            | AllocEvent::Rebucket { category, .. }
            | AllocEvent::Predict { category, .. }
            | AllocEvent::Escalate { category, .. }
            | AllocEvent::Feedback { category, .. } => CategoryId(*category),
        }
    }
}

/// A consumer of [`AllocEvent`]s.
///
/// Implementations receive events synchronously from inside the allocator,
/// in the order decisions are made. Keep `emit` cheap; heavy processing
/// belongs downstream.
pub trait EventSink {
    /// Whether the allocator should construct events at all. The allocator
    /// checks this *before* building an event, so a sink with
    /// `ENABLED = false` (the [`NoopSink`]) removes tracing entirely at
    /// compile time.
    const ENABLED: bool = true;

    /// Receive one event.
    fn emit(&mut self, event: AllocEvent);
}

/// The default sink: tracing disabled, zero cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl EventSink for NoopSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _event: AllocEvent) {}
}

/// Per-category event tallies kept by [`TraceStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tally {
    /// Steady-state first predictions.
    pub first: u64,
    /// Retry predictions.
    pub retry: u64,
    /// Exploratory first predictions.
    pub explore: u64,
    /// Observations.
    pub observe: u64,
    /// Axis escalations.
    pub escalate: u64,
    /// Bucketing rebuilds.
    pub rebucket: u64,
    /// Attempt-outcome feedback reports.
    #[serde(default)]
    pub feedback: u64,
}

impl Tally {
    /// Total events in this tally.
    pub fn total(&self) -> u64 {
        self.first
            + self.retry
            + self.explore
            + self.observe
            + self.escalate
            + self.rebucket
            + self.feedback
    }

    /// First predictions of either flavor (exploratory or steady-state).
    pub fn predictions_first(&self) -> u64 {
        self.first + self.explore
    }
}

/// A counting sink: aggregate and per-category event tallies.
///
/// This is the cheap always-on option for metrics — it never stores events,
/// only counters — and the backbone of the `tora trace` reconciliation
/// check, which compares these tallies against the simulator's own
/// bookkeeping.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Tally across all categories.
    pub overall: Tally,
    /// Per-category tallies, keyed by raw category id, insertion-ordered.
    pub by_category: Vec<(u32, Tally)>,
}

impl TraceStats {
    /// A fresh, all-zero stats sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The tally for one category, if any event mentioned it.
    pub fn category(&self, category: CategoryId) -> Option<&Tally> {
        self.by_category
            .iter()
            .find(|(id, _)| *id == category.0)
            .map(|(_, t)| t)
    }

    fn tally_mut(&mut self, category: u32) -> &mut Tally {
        let idx = match self.by_category.iter().position(|(id, _)| *id == category) {
            Some(i) => i,
            None => {
                self.by_category.push((category, Tally::default()));
                self.by_category.len() - 1
            }
        };
        &mut self.by_category[idx].1
    }
}

impl EventSink for TraceStats {
    fn emit(&mut self, event: AllocEvent) {
        fn bump(tally: &mut Tally, event: &AllocEvent) {
            match event {
                AllocEvent::Observe { .. } => tally.observe += 1,
                AllocEvent::Rebucket { .. } => tally.rebucket += 1,
                AllocEvent::Predict { kind, .. } => match kind {
                    PredictKind::First => tally.first += 1,
                    PredictKind::Retry => tally.retry += 1,
                    PredictKind::Explore => tally.explore += 1,
                },
                AllocEvent::Escalate { .. } => tally.escalate += 1,
                AllocEvent::Feedback { .. } => tally.feedback += 1,
            }
        }
        let category = event.category().0;
        bump(&mut self.overall, &event);
        bump(self.tally_mut(category), &event);
    }
}

/// A sink that buffers every event in memory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemorySink {
    /// The buffered events, in emission order.
    pub events: Vec<AllocEvent>,
}

impl MemorySink {
    /// A fresh, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: AllocEvent) {
        self.events.push(event);
    }
}

/// A sink that writes each event as one JSON line.
///
/// Serialization failures are counted, not propagated: `emit` is infallible
/// by design, and a tracing layer must never abort the run it observes.
pub struct JsonlSink<W: Write> {
    writer: W,
    written: u64,
    errors: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer. Buffer it (`BufWriter`) for file targets.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            written: 0,
            errors: 0,
        }
    }

    /// Lines successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Events dropped because serialization or IO failed.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn emit(&mut self, event: AllocEvent) {
        match serde_json::to_string(&event) {
            Ok(line) => {
                if writeln!(self.writer, "{line}").is_ok() {
                    self.written += 1;
                } else {
                    self.errors += 1;
                }
            }
            Err(_) => self.errors += 1,
        }
    }
}

impl<W: Write> fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink")
            .field("written", &self.written)
            .field("errors", &self.errors)
            .finish()
    }
}

/// A cloneable handle to a shared sink.
///
/// The allocator takes its sink by value; `SharedSink` lets the caller keep
/// a handle to the same sink and read it back after the run (see the
/// `tora trace` subcommand).
#[derive(Debug, Default)]
pub struct SharedSink<S>(Rc<RefCell<S>>);

impl<S: EventSink> SharedSink<S> {
    /// Wrap a sink for shared access.
    pub fn new(sink: S) -> Self {
        SharedSink(Rc::new(RefCell::new(sink)))
    }

    /// Run `f` with a shared borrow of the inner sink.
    pub fn with<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Recover the inner sink. Panics if other handles are still alive.
    pub fn into_inner(self) -> S {
        Rc::try_unwrap(self.0)
            .unwrap_or_else(|_| panic!("SharedSink still has live handles"))
            .into_inner()
    }
}

impl<S> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        SharedSink(Rc::clone(&self.0))
    }
}

impl<S: EventSink> EventSink for SharedSink<S> {
    const ENABLED: bool = S::ENABLED;

    fn emit(&mut self, event: AllocEvent) {
        self.0.borrow_mut().emit(event);
    }
}

/// Fan-out: each event goes to both sinks (cloned for the first).
impl<A: EventSink, B: EventSink> EventSink for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn emit(&mut self, event: AllocEvent) {
        self.0.emit(event.clone());
        self.1.emit(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<AllocEvent> {
        vec![
            AllocEvent::predict(
                CategoryId(0),
                PredictKind::Explore,
                ResourceVector::new(1.0, 1024.0, 1024.0),
                Vec::new(),
            ),
            AllocEvent::observe(CategoryId(0), ResourceVector::new(0.5, 300.0, 120.0), 1.0),
            AllocEvent::rebucket(
                CategoryId(0),
                ResourceKind::MemoryMb,
                &RebucketInfo {
                    version: 1,
                    n_buckets: 2,
                    n_records: 12,
                    cost: 340.5,
                },
            ),
            AllocEvent::predict(
                CategoryId(0),
                PredictKind::First,
                ResourceVector::new(1.0, 350.0, 200.0),
                vec![AxisProvenance {
                    resource: ResourceKind::MemoryMb,
                    source: AllocSource::Bucket { idx: 0 },
                    draw: Some(0.42),
                    clamped: false,
                }],
            ),
            AllocEvent::escalate(CategoryId(0), ResourceKind::MemoryMb, 350.0, 700.0),
            AllocEvent::predict(
                CategoryId(1),
                PredictKind::Retry,
                ResourceVector::new(1.0, 700.0, 200.0),
                Vec::new(),
            ),
            AllocEvent::feedback(CategoryId(1), AttemptFeedback::Crash, 0.25, 1.125),
        ]
    }

    #[test]
    fn constructors_bump_the_global_counter() {
        let before = events_constructed();
        let n = sample_events().len() as u64;
        assert_eq!(events_constructed(), before + n);
    }

    #[test]
    fn trace_stats_counts_overall_and_per_category() {
        let mut stats = TraceStats::new();
        for e in sample_events() {
            stats.emit(e);
        }
        assert_eq!(stats.overall.explore, 1);
        assert_eq!(stats.overall.first, 1);
        assert_eq!(stats.overall.retry, 1);
        assert_eq!(stats.overall.observe, 1);
        assert_eq!(stats.overall.escalate, 1);
        assert_eq!(stats.overall.rebucket, 1);
        assert_eq!(stats.overall.feedback, 1);
        assert_eq!(stats.overall.total(), 7);
        assert_eq!(stats.overall.predictions_first(), 2);
        let c0 = stats.category(CategoryId(0)).unwrap();
        assert_eq!(c0.total(), 5);
        let c1 = stats.category(CategoryId(1)).unwrap();
        assert_eq!(c1.retry, 1);
        assert_eq!(c1.feedback, 1);
        assert_eq!(c1.total(), 2);
        assert!(stats.category(CategoryId(7)).is_none());
    }

    #[test]
    fn memory_sink_preserves_order() {
        let mut sink = MemorySink::new();
        let events = sample_events();
        for e in events.clone() {
            sink.emit(e);
        }
        assert_eq!(sink.events, events);
        assert_eq!(sink.len(), 7);
    }

    #[test]
    fn jsonl_sink_round_trips() {
        let mut sink = JsonlSink::new(Vec::new());
        let events = sample_events();
        for e in events.clone() {
            sink.emit(e);
        }
        assert_eq!(sink.written(), 7);
        assert_eq!(sink.errors(), 0);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let parsed: Vec<AllocEvent> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(parsed, events);
    }

    #[test]
    fn shared_sink_aliases_one_store() {
        let shared = SharedSink::new(MemorySink::new());
        let mut handle = shared.clone();
        for e in sample_events() {
            handle.emit(e);
        }
        assert_eq!(shared.with(|s| s.len()), 7);
        drop(handle);
        assert_eq!(shared.into_inner().len(), 7);
    }

    #[test]
    fn pair_sink_fans_out() {
        let mut pair = (TraceStats::new(), MemorySink::new());
        for e in sample_events() {
            pair.emit(e);
        }
        assert_eq!(pair.0.overall.total(), 7);
        assert_eq!(pair.1.len(), 7);
        const { assert!(<(TraceStats, MemorySink) as EventSink>::ENABLED) };
        const { assert!(!NoopSink::ENABLED) };
        const { assert!(!<SharedSink<NoopSink> as EventSink>::ENABLED) };
    }

    #[test]
    fn event_category_accessor() {
        for e in sample_events() {
            let c = e.category();
            assert!(c == CategoryId(0) || c == CategoryId(1));
        }
    }
}
