//! Exhaustive Bucketing (Algorithm 2 with the §IV-D candidate optimization).
//!
//! Exhaustive Bucketing considers bucket configurations of every size,
//! scores each with the full N×N expected-waste table
//! ([`crate::cost::exhaustive_cost`]) and keeps the cheapest. Enumerating all
//! `C(N, k)` break-point subsets would be exponential, so §IV-D replaces the
//! `combinations(k, L)` call with a *value-space grid*: for a `b`-bucket
//! configuration the candidate break values are `v_max · i / b`
//! (`i = 1..b-1`), each mapped to the closest record strictly below it, with
//! duplicates and empty mappings dropped. One configuration per bucket count,
//! bucket count capped at 10 (§V-A: "the number of buckets rarely exceeds 10
//! at any given time").

use crate::bucket::BucketSet;
use crate::cost::{exhaustive_cost, exhaustive_cost_with, ExhaustiveScratch, PrefixStats};
use crate::partition::Partitioner;
use crate::record::{RecordList, ScalarRecord};

/// Bucket-count cap used in all paper experiments (§V-A).
pub const PAPER_MAX_BUCKETS: usize = 10;

/// The Exhaustive Bucketing partitioner.
///
/// # Examples
///
/// ```
/// use tora_alloc::exhaustive::ExhaustiveBucketing;
/// use tora_alloc::partition::Partitioner;
/// use tora_alloc::record::RecordList;
///
/// let records: RecordList = (0..20)
///     .map(|i| (if i % 2 == 0 { 200.0 } else { 2000.0 }, 1.0 + i as f64))
///     .collect();
/// let breaks = ExhaustiveBucketing::new().partition(records.sorted());
/// // The two well-separated memory clusters get their own buckets.
/// assert_eq!(breaks, vec![9]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveBucketing {
    max_buckets: usize,
    faithful: bool,
}

impl Default for ExhaustiveBucketing {
    fn default() -> Self {
        ExhaustiveBucketing {
            max_buckets: PAPER_MAX_BUCKETS,
            faithful: false,
        }
    }
}

impl ExhaustiveBucketing {
    /// The paper's configuration (at most 10 buckets), scored with the
    /// prefix-sum fast kernel (production default). Output-identical to
    /// [`Self::faithful`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The paper's per-configuration costing: materialize a [`BucketSet`]
    /// per bucket count and score it with [`exhaustive_cost`]. Use this to
    /// reproduce Table I's compute-cost measurements.
    pub fn faithful() -> Self {
        ExhaustiveBucketing {
            faithful: true,
            ..Self::default()
        }
    }

    /// Ablation constructor: cap configurations at `max_buckets` (≥ 1).
    pub fn with_max_buckets(max_buckets: usize) -> Self {
        assert!(max_buckets >= 1, "need at least one bucket");
        ExhaustiveBucketing {
            max_buckets,
            faithful: false,
        }
    }

    /// The configured bucket-count cap.
    pub fn max_buckets(&self) -> usize {
        self.max_buckets
    }

    /// Whether this instance reproduces the paper's per-configuration
    /// costing (fresh bucket set per candidate count).
    pub fn is_faithful(&self) -> bool {
        self.faithful
    }

    /// The §IV-D grid for a `b`-bucket configuration over `records`:
    /// break *indices* after mapping each `v_max·i/b` to the closest record
    /// strictly below it, deduplicated.
    pub fn grid_breaks(records: &[ScalarRecord], b: usize) -> Vec<usize> {
        let mut breaks = Vec::new();
        Self::grid_breaks_into(records, b, &mut breaks);
        breaks
    }

    /// [`Self::grid_breaks`] writing into a caller-owned buffer, so the
    /// b = 2..=10 configuration loop reuses one allocation.
    fn grid_breaks_into(records: &[ScalarRecord], b: usize, breaks: &mut Vec<usize>) {
        debug_assert!(b >= 2);
        breaks.clear();
        let n = records.len();
        if n < 2 {
            return;
        }
        let v_max = records[n - 1].value;
        if v_max <= 0.0 {
            return;
        }
        // Reuse RecordList's strictly-below search without copying: a local
        // binary search over the sorted slice.
        let closest_below = |target: f64| -> Option<usize> {
            let idx = records.partition_point(|r| r.value < target);
            idx.checked_sub(1)
        };
        breaks.extend((1..b).filter_map(|i| closest_below(v_max * i as f64 / b as f64)));
        breaks.sort_unstable();
        breaks.dedup();
        // A break at the final index would empty the last bucket; the strict
        // "< target < v_max" mapping already prevents it, assert in debug.
        debug_assert!(breaks.last().is_none_or(|&e| e < n - 1));
    }

    /// The paper's costing loop: a fresh [`BucketSet`] per bucket count,
    /// scored with the canonical [`exhaustive_cost`].
    fn partition_faithful(&self, records: &[ScalarRecord]) -> Vec<usize> {
        let n = records.len();
        // b = 1: the single-bucket configuration.
        let mut best_breaks = Vec::new();
        let mut best_cost = exhaustive_cost(&BucketSet::single(records));
        for b in 2..=self.max_buckets.min(n) {
            let breaks = Self::grid_breaks(records, b);
            if breaks.is_empty() {
                continue; // grid collapsed (e.g. all values equal)
            }
            let set = BucketSet::from_breaks(records, &breaks);
            let cost = exhaustive_cost(&set);
            if cost < best_cost {
                best_cost = cost;
                best_breaks = breaks;
            }
        }
        best_breaks
    }

    /// The fast costing loop: per-configuration bucket statistics are O(1)
    /// prefix-sum queries and the scoring table reuses one scratch space —
    /// no `BucketSet` is materialized until the winning configuration is
    /// rebuilt by the caller.
    fn partition_fast(&self, records: &[ScalarRecord]) -> Vec<usize> {
        let n = records.len();
        let stats = PrefixStats::from_records(records);
        let mut scratch = ExhaustiveScratch::new();
        let mut candidate = Vec::new();
        // b = 1: the single-bucket configuration.
        let mut best_breaks = Vec::new();
        let mut best_cost = exhaustive_cost_with(records, &stats, &[], &mut scratch);
        for b in 2..=self.max_buckets.min(n) {
            Self::grid_breaks_into(records, b, &mut candidate);
            if candidate.is_empty() {
                continue; // grid collapsed (e.g. all values equal)
            }
            let cost = exhaustive_cost_with(records, &stats, &candidate, &mut scratch);
            if cost < best_cost {
                best_cost = cost;
                best_breaks.clear();
                best_breaks.extend_from_slice(&candidate);
            }
        }
        best_breaks
    }
}

impl Partitioner for ExhaustiveBucketing {
    fn name(&self) -> &'static str {
        if self.faithful {
            "exhaustive-bucketing-faithful"
        } else {
            "exhaustive-bucketing"
        }
    }

    fn partition(&self, records: &[ScalarRecord]) -> Vec<usize> {
        if records.len() <= 1 {
            return Vec::new();
        }
        if self.faithful {
            self.partition_faithful(records)
        } else {
            self.partition_fast(records)
        }
    }
}

/// Convenience: partition a [`RecordList`] and materialize the bucket set.
pub fn bucketize(list: &RecordList, partitioner: &dyn Partitioner) -> Option<BucketSet> {
    if list.is_empty() {
        return None;
    }
    let breaks = partitioner.partition(list.sorted());
    Some(BucketSet::from_breaks(list.sorted(), &breaks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::GreedyBucketing;

    fn list(values: &[f64]) -> RecordList {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64))
            .collect()
    }

    #[test]
    fn trivial_lists() {
        let eb = ExhaustiveBucketing::new();
        assert!(eb.partition(&[]).is_empty());
        let l = list(&[4.0]);
        assert!(eb.partition(l.sorted()).is_empty());
    }

    #[test]
    fn identical_values_collapse_to_one_bucket() {
        let eb = ExhaustiveBucketing::new();
        let l: RecordList = (0..30).map(|i| (9.0, (i + 1) as f64)).collect();
        assert!(eb.partition(l.sorted()).is_empty());
    }

    #[test]
    fn grid_break_values_map_strictly_below() {
        // values 1..=10, v_max = 10, b = 2 → candidate 5.0 → closest below
        // is value 4 at index 3.
        let l = list(&(1..=10).map(|v| v as f64).collect::<Vec<_>>());
        let breaks = ExhaustiveBucketing::grid_breaks(l.sorted(), 2);
        assert_eq!(breaks, vec![3]);
        // b = 5 → candidates 2,4,6,8 → indices of 1,3,5,7 → [0,2,4,6]
        let breaks = ExhaustiveBucketing::grid_breaks(l.sorted(), 5);
        assert_eq!(breaks, vec![0, 2, 4, 6]);
    }

    #[test]
    fn grid_dedups_collapsed_candidates() {
        // Heavily skewed data: most grid points fall in the empty value range
        // and map to the same record.
        let l = list(&[1.0, 1.1, 1.2, 100.0]);
        let breaks = ExhaustiveBucketing::grid_breaks(l.sorted(), 10);
        let mut sorted = breaks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(breaks, sorted, "breaks must be sorted and unique");
        assert!(breaks.iter().all(|&e| e < 3));
    }

    #[test]
    fn separated_clusters_get_separated_buckets() {
        let mut values: Vec<f64> = (0..10).map(|i| 100.0 + i as f64).collect();
        values.extend((0..10).map(|i| 900.0 + i as f64));
        let l = list(&values);
        let eb = ExhaustiveBucketing::new();
        let breaks = eb.partition(l.sorted());
        assert!(!breaks.is_empty(), "clusters should be split");
        let set = BucketSet::from_breaks(l.sorted(), &breaks);
        set.check_invariants(l.sorted()).unwrap();
        // The cut must land in the gap: some bucket boundary between 109 and 900.
        assert!(
            breaks
                .iter()
                .any(|&e| (100.0..900.0).contains(&l.sorted()[e].value)),
            "breaks {breaks:?}"
        );
    }

    #[test]
    fn respects_bucket_cap() {
        // 40 well-separated clusters but a cap of 3 buckets.
        let values: Vec<f64> = (0..40).map(|i| (i as f64 + 1.0) * 1000.0).collect();
        let l = list(&values);
        let eb = ExhaustiveBucketing::with_max_buckets(3);
        let breaks = eb.partition(l.sorted());
        assert!(breaks.len() < 3, "breaks {breaks:?}");
    }

    #[test]
    fn chooses_no_worse_than_single_bucket() {
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) * 500.0 + 1.0
        };
        for n in [2usize, 5, 17, 64] {
            let values: Vec<f64> = (0..n).map(|_| next()).collect();
            let l = list(&values);
            let eb = ExhaustiveBucketing::new();
            let breaks = eb.partition(l.sorted());
            let chosen = exhaustive_cost(&BucketSet::from_breaks(l.sorted(), &breaks));
            let single = exhaustive_cost(&BucketSet::single(l.sorted()));
            assert!(chosen <= single + 1e-9, "n={n}: {chosen} vs {single}");
        }
    }

    #[test]
    fn fast_and_faithful_modes_produce_identical_partitions() {
        let eb = ExhaustiveBucketing::new();
        let eb_f = ExhaustiveBucketing::faithful();
        let mut state = 0xBEEFu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64) / (u32::MAX as f64) * 2000.0 + 1.0
        };
        for n in [2usize, 3, 5, 16, 41, 150] {
            let values: Vec<f64> = (0..n).map(|_| next()).collect();
            let l = list(&values);
            assert_eq!(
                eb.partition(l.sorted()),
                eb_f.partition(l.sorted()),
                "n={n}"
            );
        }
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(ExhaustiveBucketing::new().name(), "exhaustive-bucketing");
        assert_eq!(
            ExhaustiveBucketing::faithful().name(),
            "exhaustive-bucketing-faithful"
        );
        assert!(ExhaustiveBucketing::faithful().is_faithful());
        assert!(!ExhaustiveBucketing::new().is_faithful());
        assert!(!ExhaustiveBucketing::with_max_buckets(3).is_faithful());
    }

    #[test]
    fn bucketize_roundtrip_for_both_algorithms() {
        let l = list(&[1.0, 2.0, 50.0, 51.0, 52.0, 400.0]);
        for p in [
            &ExhaustiveBucketing::new() as &dyn Partitioner,
            &GreedyBucketing::new() as &dyn Partitioner,
        ] {
            let set = bucketize(&l, p).unwrap();
            set.check_invariants(l.sorted()).unwrap();
            assert_eq!(set.max_rep(), Some(400.0));
        }
        assert!(bucketize(&RecordList::new(), &ExhaustiveBucketing::new()).is_none());
    }

    #[test]
    fn zero_valued_records_stay_single_bucket() {
        let l: RecordList = (0..5).map(|i| (0.0, (i + 1) as f64)).collect();
        let eb = ExhaustiveBucketing::new();
        assert!(eb.partition(l.sorted()).is_empty());
    }
}
