//! The Max Seen baseline.
//!
//! §V-A: "*Max Seen* allocates each task the maximum resource value seen so
//! far in the current workflow run." Values are rounded up onto a histogram
//! grid (bucket size 250 MB for memory/disk, 1 for cores — §V-C explains the
//! 306 MB → 500 MB disk allocation this rounding produces for TopEFT).

use crate::baselines::round_up;
use crate::estimator::{double_allocation, Prediction, ValueEstimator};
use crate::task::TaskContext;

/// Allocates the histogram-rounded running maximum.
#[derive(Debug, Clone, Copy)]
pub struct MaxSeen {
    granularity: f64,
    max_seen: f64,
    observed: usize,
}

impl MaxSeen {
    /// `granularity` is the histogram bucket size (250 for MB axes, 1 for
    /// cores in the paper's configuration).
    pub fn new(granularity: f64) -> Self {
        assert!(granularity > 0.0, "granularity must be positive");
        MaxSeen {
            granularity,
            max_seen: 0.0,
            observed: 0,
        }
    }

    /// The paper's histogram bucket size for a memory/disk axis.
    pub const MEMORY_DISK_GRANULARITY: f64 = 250.0;
    /// The granularity used for the cores axis (whole cores).
    pub const CORES_GRANULARITY: f64 = 1.0;

    /// The raw (unrounded) maximum observed value.
    pub fn max_value(&self) -> f64 {
        self.max_seen
    }
}

impl ValueEstimator for MaxSeen {
    fn name(&self) -> &'static str {
        "max-seen"
    }

    fn observe(&mut self, value: f64, _sig: f64) {
        if value > self.max_seen {
            self.max_seen = value;
        }
        self.observed += 1;
    }

    fn len(&self) -> usize {
        self.observed
    }

    fn predict_first(&mut self, _ctx: &TaskContext, _u: f64) -> Option<Prediction> {
        if self.observed == 0 {
            return None;
        }
        Some(Prediction::point(round_up(self.max_seen, self.granularity)))
    }

    fn predict_retry(&mut self, _ctx: &TaskContext, prev: f64, u: f64) -> Option<Prediction> {
        // A failure means the task exceeded everything seen so far; there is
        // no better information than escalating geometrically (still on the
        // histogram grid).
        let _ = u;
        if self.observed == 0 {
            return None;
        }
        Some(Prediction::doubling(round_up(
            double_allocation(prev).max(prev * 2.0),
            self.granularity,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicts_rounded_running_max() {
        let mut ms = MaxSeen::new(250.0);
        assert_eq!(ms.first(0.5), None);
        ms.observe(306.0, 1.0);
        assert_eq!(ms.first(0.5), Some(500.0)); // the §V-C example
        ms.observe(120.0, 2.0);
        assert_eq!(ms.first(0.5), Some(500.0)); // max unchanged
        ms.observe(740.0, 3.0);
        assert_eq!(ms.first(0.5), Some(750.0));
        assert_eq!(ms.max_value(), 740.0);
    }

    #[test]
    fn cores_round_to_whole_units() {
        let mut ms = MaxSeen::new(MaxSeen::CORES_GRANULARITY);
        ms.observe(0.9, 1.0);
        assert_eq!(ms.first(0.0), Some(1.0));
        ms.observe(3.6, 2.0);
        assert_eq!(ms.first(0.0), Some(4.0));
    }

    #[test]
    fn retry_escalates_on_grid() {
        let mut ms = MaxSeen::new(250.0);
        ms.observe(306.0, 1.0);
        let r = ms.retry(500.0, 0.3).unwrap();
        assert_eq!(r, 1000.0);
        assert!(r % 250.0 == 0.0);
        assert!(r > 500.0);
    }

    #[test]
    #[should_panic(expected = "granularity must be positive")]
    fn zero_granularity_rejected() {
        MaxSeen::new(0.0);
    }
}
