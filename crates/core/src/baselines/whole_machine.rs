//! The Whole Machine baseline: give every task a full worker.
//!
//! §V-A: "*Whole Machine* simply allocates each task a whole worker and thus
//! serves as our baseline." It never fails for tasks that fit a worker, and
//! wastes everything the task does not consume.

use crate::estimator::{Prediction, ValueEstimator};
use crate::task::TaskContext;

/// Allocates the worker's full capacity of one resource dimension.
#[derive(Debug, Clone, Copy)]
pub struct WholeMachine {
    capacity: f64,
    observed: usize,
}

impl WholeMachine {
    /// `capacity` is the worker's capacity of this resource dimension.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity >= 0.0,
            "capacity must be a non-negative finite value"
        );
        WholeMachine {
            capacity,
            observed: 0,
        }
    }
}

impl ValueEstimator for WholeMachine {
    fn name(&self) -> &'static str {
        "whole-machine"
    }

    fn observe(&mut self, _value: f64, _sig: f64) {
        self.observed += 1;
    }

    fn len(&self) -> usize {
        self.observed
    }

    fn predict_first(&mut self, _ctx: &TaskContext, _u: f64) -> Option<Prediction> {
        Some(Prediction::capacity(self.capacity))
    }

    fn predict_retry(&mut self, _ctx: &TaskContext, prev: f64, _u: f64) -> Option<Prediction> {
        // Unreachable for feasible tasks; escalate anyway so the allocator's
        // termination guarantee holds even for infeasible demands.
        Some(Prediction::doubling((prev * 2.0).max(self.capacity)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_allocates_capacity() {
        let mut wm = WholeMachine::new(65536.0);
        assert_eq!(wm.first(0.0), Some(65536.0));
        wm.observe(100.0, 1.0);
        wm.observe(60000.0, 2.0);
        assert_eq!(wm.first(0.99), Some(65536.0));
        assert_eq!(wm.len(), 2);
    }

    #[test]
    fn retry_escalates_beyond_capacity() {
        let mut wm = WholeMachine::new(16.0);
        let r = wm.retry(16.0, 0.5).unwrap();
        assert!(r > 16.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacity_rejected() {
        WholeMachine::new(-1.0);
    }
}
