//! The job-sizing strategies of Tovar et al. \[15\] (*Min Waste* and
//! *Max Throughput*), reimplemented from their published model.
//!
//! Both strategies pick one *first allocation* `a` from the set of observed
//! peak values and rely on an **at-most-once retry**: a task that exceeds `a`
//! is retried with the whole machine `M`, which guarantees success for
//! feasible tasks. The strategies differ in the objective evaluated over the
//! empirical distribution of completed-task peaks `c_1..c_n`:
//!
//! * **Min Waste** minimizes expected waste per task
//!   `E_waste(a) = (1/n)[ Σ_{c≤a}(a − c) + Σ_{c>a}(a + M − c) ]`
//!   — internal fragmentation for tasks that fit, plus the failed first
//!   attempt and the retry's fragmentation for tasks that don't. (Record
//!   durations are not visible at this layer, so terms are per unit time; the
//!   paper's waste metric reweights by measured durations afterwards.)
//! * **Max Throughput** maximizes the expected number of tasks running
//!   concurrently and successfully on one machine: an allocation `a` packs
//!   `M / a` tasks, of which a fraction `p(a) = P(c ≤ a)` succeed, so the
//!   strategy maximizes `φ(a) = p(a) · M / a`. The division by `a` rewards
//!   small allocations far more aggressively than the waste objective does,
//!   which is why this strategy shows the largest failed-allocation share in
//!   the paper's Figure 6.
//!
//! Candidates are the distinct observed values (any optimal `a` lies on one),
//! re-evaluated lazily when new records arrive.

use crate::estimator::{Prediction, ValueEstimator};
use crate::record::RecordList;
use crate::task::TaskContext;
use serde::{Deserialize, Serialize};

/// Which Tovar objective the estimator optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TovarObjective {
    /// Minimize expected resource waste.
    MinWaste,
    /// Maximize expected throughput (minimize expected machine share).
    MaxThroughput,
}

/// A Tovar-style first-allocation estimator with at-most-once retry.
#[derive(Debug, Clone)]
pub struct Tovar {
    objective: TovarObjective,
    machine_capacity: f64,
    records: RecordList,
    cached: Option<f64>,
}

impl Tovar {
    /// Build an estimator for one resource dimension with the worker's
    /// capacity of that dimension.
    pub fn new(objective: TovarObjective, machine_capacity: f64) -> Self {
        assert!(
            machine_capacity.is_finite() && machine_capacity > 0.0,
            "machine capacity must be positive"
        );
        Tovar {
            objective,
            machine_capacity,
            records: RecordList::new(),
            cached: None,
        }
    }

    /// Min Waste constructor.
    pub fn min_waste(machine_capacity: f64) -> Self {
        Self::new(TovarObjective::MinWaste, machine_capacity)
    }

    /// Max Throughput constructor.
    pub fn max_throughput(machine_capacity: f64) -> Self {
        Self::new(TovarObjective::MaxThroughput, machine_capacity)
    }

    /// The objective in use.
    pub fn objective(&self) -> TovarObjective {
        self.objective
    }

    /// Evaluate the objective at candidate allocation `a` by walking the
    /// full record set (lower is better for both objectives — Max
    /// Throughput is expressed as expected allocation per packed success).
    /// Reference implementation: `best_allocation` uses the O(n) closed
    /// form; the tests cross-check the two.
    #[cfg(test)]
    fn score(&self, a: f64) -> f64 {
        let sorted = self.records.sorted();
        let n = sorted.len() as f64;
        let m = self.machine_capacity;
        match self.objective {
            TovarObjective::MinWaste => {
                let mut waste = 0.0;
                for r in sorted {
                    if r.value <= a {
                        waste += a - r.value;
                    } else {
                        waste += a + (m - r.value);
                    }
                }
                waste / n
            }
            TovarObjective::MaxThroughput => {
                // Lower-is-better form of maximizing φ(a) = p(a)·M/a: the
                // expected allocation spent per successful concurrent task.
                let fits = sorted.partition_point(|r| r.value <= a) as f64;
                let p = fits / n;
                if p <= 0.0 {
                    f64::INFINITY
                } else {
                    a / (p * m)
                }
            }
        }
    }

    /// The optimal first allocation over distinct observed values.
    ///
    /// A single descending pass: at the candidate equal to sorted value
    /// index `i` (its last occurrence), `p(a) = (i+1)/n`, and both
    /// objectives reduce to closed forms over `p(a)` —
    /// `E_waste(a) = a + (1−p)·M − c̄` (the mean consumption `c̄` is
    /// constant, so it drops from the argmin) and the machine share
    /// `a / (p·M)`. This makes re-evaluation O(n) instead of the naive
    /// O(n²), which matters at TopEFT scale (§V's 4,569-task run).
    fn best_allocation(&mut self) -> Option<f64> {
        if let Some(a) = self.cached {
            return Some(a);
        }
        if self.records.is_empty() {
            return None;
        }
        self.records.commit();
        let sorted = self.records.sorted();
        let n = sorted.len() as f64;
        let m = self.machine_capacity;
        let mut best_a = f64::NAN;
        let mut best_score = f64::INFINITY;
        let mut prev = f64::NAN;
        // Walk candidates largest-first so equal scores prefer the larger
        // (safer) allocation. `i` is the last occurrence of each distinct
        // value, so p = (i+1)/n counts every record ≤ the candidate.
        for (i, r) in sorted.iter().enumerate().rev() {
            if r.value == prev {
                continue;
            }
            prev = r.value;
            let p = (i + 1) as f64 / n;
            let s = match self.objective {
                TovarObjective::MinWaste => r.value + (1.0 - p) * m,
                TovarObjective::MaxThroughput => r.value / (p * m),
            };
            if s < best_score {
                best_score = s;
                best_a = r.value;
            }
        }
        self.cached = Some(best_a);
        Some(best_a)
    }
}

impl ValueEstimator for Tovar {
    fn name(&self) -> &'static str {
        match self.objective {
            TovarObjective::MinWaste => "min-waste",
            TovarObjective::MaxThroughput => "max-throughput",
        }
    }

    fn observe(&mut self, value: f64, sig: f64) {
        self.records.observe(value, sig);
        self.cached = None;
    }

    fn len(&self) -> usize {
        self.records.len()
    }

    fn predict_first(&mut self, _ctx: &TaskContext, _u: f64) -> Option<Prediction> {
        self.best_allocation().map(Prediction::point)
    }

    fn predict_retry(&mut self, _ctx: &TaskContext, prev: f64, _u: f64) -> Option<Prediction> {
        if self.records.is_empty() {
            return None;
        }
        // At-most-once retry: fall back to the whole machine. Escalate past
        // it only for infeasible demands (termination guarantee).
        if prev < self.machine_capacity {
            Some(Prediction::capacity(self.machine_capacity))
        } else {
            Some(Prediction::doubling(prev * 2.0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(t: &mut Tovar, values: &[f64]) {
        for (i, &v) in values.iter().enumerate() {
            t.observe(v, (i + 1) as f64);
        }
    }

    #[test]
    fn empty_estimator_has_no_prediction() {
        let mut t = Tovar::min_waste(1000.0);
        assert_eq!(t.first(0.5), None);
        assert_eq!(t.retry(10.0, 0.5), None);
    }

    #[test]
    fn min_waste_hand_computed_choice() {
        // Values {10, 100}, M = 1000.
        // a=10:  fits {10}: 0; fails {100}: 10 + 900 = 910 → mean 455
        // a=100: fits both: 90 + 0 = 90 → mean 45  ← optimum
        let mut t = Tovar::min_waste(1000.0);
        feed(&mut t, &[10.0, 100.0]);
        assert_eq!(t.first(0.0), Some(100.0));
    }

    #[test]
    fn min_waste_prefers_small_when_failures_cheap() {
        // Tight small cluster + one huge outlier with a small machine:
        // covering the outlier wastes more than occasionally retrying.
        // Values: 10×10.0 and 1×900, M = 1000.
        // a=10: 10 fits ×0 + fail: 10 + 100 = 110 → mean 10
        // a=900: fits all: 10×890 + 0 = 8900 → mean ~809
        let mut t = Tovar::min_waste(1000.0);
        feed(&mut t, &[10.0; 10]);
        t.observe(900.0, 11.0);
        assert_eq!(t.first(0.0), Some(10.0));
    }

    #[test]
    fn max_throughput_maximizes_packed_successes() {
        // Values {10, 100}, M = 1000, φ(a) = p·M/a:
        // a=10:  0.5·1000/10 = 50 concurrent successes ← optimum
        // a=100: 1.0·1000/100 = 10
        let mut t = Tovar::max_throughput(1000.0);
        feed(&mut t, &[10.0, 100.0]);
        assert_eq!(t.first(0.0), Some(10.0));
    }

    #[test]
    fn objectives_disagree_where_packing_beats_waste() {
        // Values {10, 100}, M = 1000: Min Waste covers the big task
        // (retrying at the 1000-unit machine is too expensive), Max
        // Throughput under-allocates to pack 50 small slots.
        let mut w = Tovar::min_waste(1000.0);
        let mut p = Tovar::max_throughput(1000.0);
        feed(&mut w, &[10.0, 100.0]);
        feed(&mut p, &[10.0, 100.0]);
        assert_eq!(w.first(0.0), Some(100.0));
        assert_eq!(p.first(0.0), Some(10.0));
    }

    #[test]
    fn max_throughput_does_not_always_pick_the_minimum() {
        // 1×1.0 and 99×100.0, M = 1000:
        // a=1:   p=0.01 → φ = 0.01·1000/1 = 10
        // a=100: p=1.00 → φ = 1000/100 = 10 — tie; the larger wins ties.
        // Nudge: 2×1.0 → a=1: φ = 0.02·1000 = 20 > 10. And with 1×1.0 and a
        // modest machine the large candidate wins outright:
        // M=200: a=1: φ=0.01·200=2; a=100: φ=2 — tie again. Use values
        // {50, 100}, M=1000: a=50: φ=0.5·20=10; a=100: φ=10 → tie → larger.
        let mut t = Tovar::max_throughput(1000.0);
        feed(&mut t, &[50.0, 100.0]);
        assert_eq!(t.first(0.0), Some(100.0));
    }

    #[test]
    fn retry_goes_to_whole_machine_once() {
        let mut t = Tovar::min_waste(1000.0);
        feed(&mut t, &[10.0, 20.0]);
        assert_eq!(t.retry(20.0, 0.9), Some(1000.0));
        // past the machine, keep escalating
        assert_eq!(t.retry(1000.0, 0.9), Some(2000.0));
    }

    #[test]
    fn cache_invalidated_by_new_records() {
        let mut t = Tovar::min_waste(1000.0);
        feed(&mut t, &[10.0, 100.0]);
        assert_eq!(t.first(0.0), Some(100.0));
        // A flood of 500s shifts the optimum upward.
        for i in 0..50 {
            t.observe(500.0, (i + 3) as f64);
        }
        assert_eq!(t.first(0.0), Some(500.0));
    }

    #[test]
    fn equal_scores_prefer_larger_allocation() {
        // Identical values: every candidate scores the same; pick the value
        // itself (largest-first walk keeps the larger on ties).
        let mut t = Tovar::max_throughput(100.0);
        feed(&mut t, &[7.0, 7.0, 7.0]);
        assert_eq!(t.first(0.0), Some(7.0));
    }

    #[test]
    fn fast_pass_matches_naive_scoring() {
        // The closed-form descending pass must pick the same candidate as
        // exhaustively evaluating `score()` (largest value wins ties).
        let mut state = 0xACE5u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (((state >> 33) as f64) / (u32::MAX as f64) * 900.0).round() + 10.0
        };
        for objective in [TovarObjective::MinWaste, TovarObjective::MaxThroughput] {
            for n in [1usize, 2, 7, 40, 150] {
                let mut t = Tovar::new(objective, 5000.0);
                for i in 0..n {
                    t.observe(next(), (i + 1) as f64);
                }
                let fast = t.first(0.0).unwrap();
                // Naive argmin over distinct values, largest-first.
                let mut best = f64::NAN;
                let mut best_score = f64::INFINITY;
                let mut seen = std::collections::BTreeSet::new();
                for r in t.records.sorted() {
                    seen.insert(r.value.to_bits());
                }
                for bits in seen.iter().rev() {
                    let a = f64::from_bits(*bits);
                    let s = t.score(a);
                    if s < best_score {
                        best_score = s;
                        best = a;
                    }
                }
                assert_eq!(fast, best, "{objective:?} n={n}");
            }
        }
    }

    #[test]
    fn names() {
        assert_eq!(Tovar::min_waste(1.0).name(), "min-waste");
        assert_eq!(Tovar::max_throughput(1.0).name(), "max-throughput");
        assert_eq!(
            Tovar::max_throughput(1.0).objective(),
            TovarObjective::MaxThroughput
        );
    }
}
