//! Quantized Bucketing — the quantile-clustering strategy of Phung et
//! al. \[11\], used as the third informed comparator in §V-A.
//!
//! The record list is split at a fixed quantile (the 50th percentile in the
//! paper's configuration — §V-B: "it separates the buckets at the 50th
//! quantile, which reduces the number of retries on average"). The first
//! allocation is the low bucket's representative (the quantile value); a
//! failure escalates to the high bucket's representative (the max seen), and
//! past that doubles. The low-first policy trades frequent-but-cheap failed
//! allocations for small internal fragmentation, which is why Fig. 6 shows
//! this algorithm with the largest failed-allocation share and why it
//! excels on the outlier-heavy Exponential workflow.

use crate::estimator::{double_allocation, Prediction, ValueEstimator};
use crate::record::RecordList;
use crate::task::TaskContext;

/// Quantile-split bucketing with deterministic low-first allocation.
#[derive(Debug, Clone)]
pub struct QuantizedBucketing {
    quantile: f64,
    records: RecordList,
}

impl QuantizedBucketing {
    /// The paper's configuration: split at the 50th percentile.
    pub fn new() -> Self {
        Self::with_quantile(0.5)
    }

    /// Ablation constructor: split at an arbitrary quantile in `(0, 1]`.
    pub fn with_quantile(quantile: f64) -> Self {
        assert!(
            quantile > 0.0 && quantile <= 1.0,
            "quantile must be in (0, 1]"
        );
        QuantizedBucketing {
            quantile,
            records: RecordList::new(),
        }
    }

    /// The split quantile.
    pub fn quantile(&self) -> f64 {
        self.quantile
    }

    /// The current low-bucket representative (the quantile value).
    pub fn low_rep(&self) -> Option<f64> {
        self.records.quantile(self.quantile)
    }

    /// The current high-bucket representative (the max value).
    pub fn high_rep(&self) -> Option<f64> {
        self.records.max_value()
    }
}

impl Default for QuantizedBucketing {
    fn default() -> Self {
        Self::new()
    }
}

impl ValueEstimator for QuantizedBucketing {
    fn name(&self) -> &'static str {
        "quantized-bucketing"
    }

    fn observe(&mut self, value: f64, sig: f64) {
        self.records.observe(value, sig);
    }

    fn len(&self) -> usize {
        self.records.len()
    }

    fn predict_first(&mut self, _ctx: &TaskContext, _u: f64) -> Option<Prediction> {
        // The quantile needs the sorted order; fold any pending batch first.
        self.records.commit();
        // The low bucket's representative: the quantile value itself.
        self.low_rep().map(Prediction::point)
    }

    fn predict_retry(&mut self, _ctx: &TaskContext, prev: f64, _u: f64) -> Option<Prediction> {
        let high = self.high_rep()?;
        if prev < high {
            Some(Prediction::point(high))
        } else {
            Some(Prediction::doubling(
                double_allocation(prev).max(prev * 2.0),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(q: &mut QuantizedBucketing, values: &[f64]) {
        for (i, &v) in values.iter().enumerate() {
            q.observe(v, (i + 1) as f64);
        }
    }

    #[test]
    fn empty_has_no_prediction() {
        let mut q = QuantizedBucketing::new();
        assert_eq!(q.first(0.1), None);
        assert_eq!(q.retry(5.0, 0.1), None);
    }

    #[test]
    fn first_allocation_is_median() {
        let mut q = QuantizedBucketing::new();
        feed(&mut q, &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(q.first(0.9), Some(20.0)); // nearest-rank p50 of 4 values
        assert_eq!(q.low_rep(), Some(20.0));
        assert_eq!(q.high_rep(), Some(40.0));
    }

    #[test]
    fn retry_escalates_median_then_max_then_doubles() {
        let mut q = QuantizedBucketing::new();
        feed(&mut q, &[10.0, 20.0, 30.0, 40.0]);
        let first = q.first(0.0).unwrap();
        let second = q.retry(first, 0.0).unwrap();
        let third = q.retry(second, 0.0).unwrap();
        assert_eq!(first, 20.0);
        assert_eq!(second, 40.0);
        assert_eq!(third, 80.0);
    }

    #[test]
    fn outliers_do_not_inflate_first_allocation() {
        // The §V-B rationale: the occasional huge task must not drag every
        // allocation up the way Max Seen does.
        let mut q = QuantizedBucketing::new();
        feed(&mut q, &[10.0; 99]);
        q.observe(100000.0, 100.0);
        assert_eq!(q.first(0.0), Some(10.0));
    }

    #[test]
    fn custom_quantile() {
        let mut q = QuantizedBucketing::with_quantile(0.75);
        feed(&mut q, &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(q.first(0.0), Some(30.0));
        assert_eq!(q.quantile(), 0.75);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn zero_quantile_rejected() {
        QuantizedBucketing::with_quantile(0.0);
    }
}
