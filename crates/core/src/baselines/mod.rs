//! The five comparator allocation algorithms of §V-A.
//!
//! * [`whole_machine::WholeMachine`] — allocate a full worker (the naive
//!   baseline).
//! * [`max_seen::MaxSeen`] — allocate the histogram-rounded maximum value
//!   seen so far.
//! * [`tovar::Tovar`] — the two job-sizing strategies of Tovar et al. \[15\]:
//!   *Min Waste* and *Max Throughput*, both with an at-most-once retry that
//!   falls back to the whole machine.
//! * [`quantized::QuantizedBucketing`] — the quantile-bucket strategy of
//!   Phung et al. \[11\] (median split, escalating retries).

pub mod max_seen;
pub mod quantized;
pub mod tovar;
pub mod whole_machine;

pub use max_seen::MaxSeen;
pub use quantized::QuantizedBucketing;
pub use tovar::{Tovar, TovarObjective};
pub use whole_machine::WholeMachine;

/// Round `value` up to the next multiple of `granularity` (> 0).
///
/// §V-C: "Max Seen allocates resources to tasks using a histogram with the
/// bucket size of 250, resulting in a rounded-up 500-MB disk allocation for a
/// 306-MB disk consumption".
pub fn round_up(value: f64, granularity: f64) -> f64 {
    debug_assert!(granularity > 0.0);
    if value <= 0.0 {
        return 0.0;
    }
    (value / granularity).ceil() * granularity
}

#[cfg(test)]
mod tests {
    use super::round_up;

    #[test]
    fn round_up_matches_paper_example() {
        assert_eq!(round_up(306.0, 250.0), 500.0);
        assert_eq!(round_up(250.0, 250.0), 250.0);
        assert_eq!(round_up(251.0, 250.0), 500.0);
        assert_eq!(round_up(0.0, 250.0), 0.0);
        assert_eq!(round_up(0.9, 1.0), 1.0);
        assert_eq!(round_up(3.2, 1.0), 4.0);
    }
}
