//! Tasks and task categories.
//!
//! A dynamic workflow submits tasks at runtime; each task belongs to a
//! *category* (the function it packages — §III-B, e.g. `evaluate_mpnn`,
//! `processing`). The allocator treats categories independently (§IV-D),
//! because different categories do not necessarily correlate in resource
//! consumption.

use crate::resources::ResourceVector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a task category within a workflow.
///
/// Categories are small dense integers assigned by the workload generator;
/// `display_name`-style naming lives with the workflow, which
/// keeps this crate free of task-specific features (the *general-purpose*
/// design goal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CategoryId(pub u32);

impl fmt::Display for CategoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "category#{}", self.0)
    }
}

/// Identifies a task. Assigned in submission order starting at 0, which is
/// also the task's significance base (§V-A sets a record's significance to
/// its task ID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// The ground truth of one task: its peak consumption and duration.
///
/// The 4-tuple `(c, m, d, t)` is *not known* to the allocator before
/// execution (§II-B assumption 1); only the simulator's enforcement layer and
/// the metrics reader see it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Submission-order id, unique within a workflow.
    pub id: TaskId,
    /// The category (function) this task belongs to.
    pub category: CategoryId,
    /// Peak resource consumption during a successful run.
    pub peak: ResourceVector,
    /// Execution time of a successful run, in seconds.
    pub duration_s: f64,
}

impl TaskSpec {
    /// Build a task.
    ///
    /// # Panics
    /// If the peak is invalid (negative/NaN) or duration is not positive.
    pub fn new(id: u64, category: u32, peak: ResourceVector, duration_s: f64) -> Self {
        assert!(peak.is_valid(), "task peak must be finite and non-negative");
        assert!(
            duration_s.is_finite() && duration_s > 0.0,
            "task duration must be positive"
        );
        // The time axis of the peak is the duration itself (the `t` of the
        // paper's 4-tuple), so time-managing allocators see it as a record.
        let peak = peak.with(crate::resources::ResourceKind::TimeS, duration_s);
        TaskSpec {
            id: TaskId(id),
            category: CategoryId(category),
            peak,
            duration_s,
        }
    }

    /// Significance of this task's resource record.
    ///
    /// §V-A: "we simply set it to the task ID, so the task's record with ID 1
    /// has a significance value of 1". We shift by one so the first task
    /// (ID 0) still contributes positive weight.
    pub fn significance(&self) -> f64 {
        (self.id.0 + 1) as f64
    }
}

/// A completed task's resource record, as reported by a worker back to the
/// bucketing manager (§IV-A step 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceRecord {
    /// The task that produced the record.
    pub task: TaskId,
    /// The category the record belongs to.
    pub category: CategoryId,
    /// Measured peak consumption.
    pub peak: ResourceVector,
    /// Measured execution time in seconds.
    pub duration_s: f64,
    /// Significance weight (§IV-A): higher = more recent/important.
    pub significance: f64,
}

impl ResourceRecord {
    /// The record a successful run of `task` produces.
    pub fn from_task(task: &TaskSpec) -> Self {
        ResourceRecord {
            task: task.id,
            category: task.category,
            peak: task.peak,
            duration_s: task.duration_s,
            significance: task.significance(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn significance_is_id_plus_one() {
        let t = TaskSpec::new(0, 0, ResourceVector::new(1.0, 1.0, 1.0), 1.0);
        assert_eq!(t.significance(), 1.0);
        let t = TaskSpec::new(41, 0, ResourceVector::new(1.0, 1.0, 1.0), 1.0);
        assert_eq!(t.significance(), 42.0);
    }

    #[test]
    fn record_mirrors_task() {
        let t = TaskSpec::new(7, 3, ResourceVector::new(2.0, 300.0, 10.0), 12.5);
        let r = ResourceRecord::from_task(&t);
        assert_eq!(r.task, TaskId(7));
        assert_eq!(r.category, CategoryId(3));
        assert_eq!(r.peak, t.peak);
        assert_eq!(r.duration_s, 12.5);
        assert_eq!(r.significance, 8.0);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        TaskSpec::new(0, 0, ResourceVector::new(1.0, 1.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "peak must be finite")]
    fn invalid_peak_rejected() {
        TaskSpec::new(0, 0, ResourceVector::new(-1.0, 1.0, 1.0), 1.0);
    }

    #[test]
    fn ids_order_and_display() {
        assert!(TaskId(1) < TaskId(2));
        assert!(CategoryId(0) < CategoryId(1));
        assert_eq!(TaskId(5).to_string(), "task#5");
        assert_eq!(CategoryId(2).to_string(), "category#2");
    }
}
