//! Tasks and task categories.
//!
//! A dynamic workflow submits tasks at runtime; each task belongs to a
//! *category* (the function it packages — §III-B, e.g. `evaluate_mpnn`,
//! `processing`). The allocator treats categories independently (§IV-D),
//! because different categories do not necessarily correlate in resource
//! consumption.

use crate::resources::ResourceVector;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a task category within a workflow.
///
/// Categories are small dense integers assigned by the workload generator;
/// `display_name`-style naming lives with the workflow, which
/// keeps this crate free of task-specific features (the *general-purpose*
/// design goal).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct CategoryId(pub u32);

impl fmt::Display for CategoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "category#{}", self.0)
    }
}

/// Identifies a task. Assigned in submission order starting at 0, which is
/// also the task's significance base (§V-A sets a record's significance to
/// its task ID).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// Deterministic, pre-run observable signals about one task.
///
/// These are the features a real workflow system knows *before* execution —
/// input sizes, position in the DAG — as opposed to the `(c, m, d, t)`
/// ground truth it only learns afterwards. Feature-conditioned estimators
/// (Ponder-style) key sub-states on them; category-global algorithms ignore
/// them entirely. The workloads crate mints them deterministically so
/// streamed and materialized workflows carry byte-identical features.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskFeatures {
    /// Input-size signal, normalized to `[0, 1]` (log-scaled input bytes
    /// relative to machine capacity, with generator jitter). `0` when the
    /// workload has no input-size model.
    #[serde(default)]
    pub input_signal: f64,
    /// DAG depth (longest dependency chain below this task); `0` for roots
    /// and for workflows without dependencies.
    #[serde(default)]
    pub depth: u32,
}

impl TaskFeatures {
    /// Features carrying only an input-size signal.
    pub fn with_input_signal(input_signal: f64) -> Self {
        TaskFeatures {
            input_signal,
            ..TaskFeatures::default()
        }
    }

    /// A copy with the DAG depth set.
    pub fn at_depth(mut self, depth: u32) -> Self {
        self.depth = depth;
        self
    }
}

/// Everything an estimator may condition a prediction on: the category plus
/// the task's pre-run feature vector and attempt history.
///
/// Category-global algorithms (the paper's five and the bucketing family)
/// ignore everything but the category — `From<CategoryId>` builds the
/// default-feature context those call sites use — while the learned
/// comparators ([`crate::featurebin`], [`crate::bandit`]) read the features.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskContext {
    /// The task's category (the only key the paper's algorithms use).
    pub category: CategoryId,
    /// Pre-run observable features.
    #[serde(default)]
    pub features: TaskFeatures,
    /// Completed attempts before this prediction (0 for a first attempt).
    #[serde(default)]
    pub attempt: u32,
}

impl TaskContext {
    /// A context with explicit features and no attempt history.
    pub fn new(category: CategoryId, features: TaskFeatures) -> Self {
        TaskContext {
            category,
            features,
            attempt: 0,
        }
    }

    /// A copy with the attempt count set.
    pub fn with_attempt(mut self, attempt: u32) -> Self {
        self.attempt = attempt;
        self
    }
}

impl From<CategoryId> for TaskContext {
    fn from(category: CategoryId) -> Self {
        TaskContext::new(category, TaskFeatures::default())
    }
}

impl From<&TaskSpec> for TaskContext {
    fn from(spec: &TaskSpec) -> Self {
        TaskContext::new(spec.category, spec.features)
    }
}

/// The ground truth of one task: its peak consumption and duration.
///
/// The 4-tuple `(c, m, d, t)` is *not known* to the allocator before
/// execution (§II-B assumption 1); only the simulator's enforcement layer and
/// the metrics reader see it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Submission-order id, unique within a workflow.
    pub id: TaskId,
    /// The category (function) this task belongs to.
    pub category: CategoryId,
    /// Peak resource consumption during a successful run.
    pub peak: ResourceVector,
    /// Execution time of a successful run, in seconds.
    pub duration_s: f64,
    /// Pre-run observable features (unlike the fields above, these *are*
    /// visible to the allocator, via [`TaskContext`]).
    #[serde(default)]
    pub features: TaskFeatures,
}

impl TaskSpec {
    /// Build a task.
    ///
    /// # Panics
    /// If the peak is invalid (negative/NaN) or duration is not positive.
    pub fn new(id: u64, category: u32, peak: ResourceVector, duration_s: f64) -> Self {
        assert!(peak.is_valid(), "task peak must be finite and non-negative");
        assert!(
            duration_s.is_finite() && duration_s > 0.0,
            "task duration must be positive"
        );
        // The time axis of the peak is the duration itself (the `t` of the
        // paper's 4-tuple), so time-managing allocators see it as a record.
        let peak = peak.with(crate::resources::ResourceKind::TimeS, duration_s);
        TaskSpec {
            id: TaskId(id),
            category: CategoryId(category),
            peak,
            duration_s,
            features: TaskFeatures::default(),
        }
    }

    /// A copy with the pre-run features set (builder style, used by the
    /// workload generators).
    pub fn with_features(mut self, features: TaskFeatures) -> Self {
        self.features = features;
        self
    }

    /// The prediction context of this task's first attempt.
    pub fn context(&self) -> TaskContext {
        TaskContext::new(self.category, self.features)
    }

    /// Significance of this task's resource record.
    ///
    /// §V-A: "we simply set it to the task ID, so the task's record with ID 1
    /// has a significance value of 1". We shift by one so the first task
    /// (ID 0) still contributes positive weight.
    pub fn significance(&self) -> f64 {
        (self.id.0 + 1) as f64
    }
}

/// A completed task's resource record, as reported by a worker back to the
/// bucketing manager (§IV-A step 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceRecord {
    /// The task that produced the record.
    pub task: TaskId,
    /// The category the record belongs to.
    pub category: CategoryId,
    /// Measured peak consumption.
    pub peak: ResourceVector,
    /// Measured execution time in seconds.
    pub duration_s: f64,
    /// Significance weight (§IV-A): higher = more recent/important.
    pub significance: f64,
    /// The pre-run features of the task that produced the record, so
    /// feature-conditioned estimators can key sub-states at observe time.
    #[serde(default)]
    pub features: TaskFeatures,
}

impl ResourceRecord {
    /// The record a successful run of `task` produces.
    pub fn from_task(task: &TaskSpec) -> Self {
        ResourceRecord {
            task: task.id,
            category: task.category,
            peak: task.peak,
            duration_s: task.duration_s,
            significance: task.significance(),
            features: task.features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn significance_is_id_plus_one() {
        let t = TaskSpec::new(0, 0, ResourceVector::new(1.0, 1.0, 1.0), 1.0);
        assert_eq!(t.significance(), 1.0);
        let t = TaskSpec::new(41, 0, ResourceVector::new(1.0, 1.0, 1.0), 1.0);
        assert_eq!(t.significance(), 42.0);
    }

    #[test]
    fn record_mirrors_task() {
        let t = TaskSpec::new(7, 3, ResourceVector::new(2.0, 300.0, 10.0), 12.5);
        let r = ResourceRecord::from_task(&t);
        assert_eq!(r.task, TaskId(7));
        assert_eq!(r.category, CategoryId(3));
        assert_eq!(r.peak, t.peak);
        assert_eq!(r.duration_s, 12.5);
        assert_eq!(r.significance, 8.0);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        TaskSpec::new(0, 0, ResourceVector::new(1.0, 1.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "peak must be finite")]
    fn invalid_peak_rejected() {
        TaskSpec::new(0, 0, ResourceVector::new(-1.0, 1.0, 1.0), 1.0);
    }

    #[test]
    fn features_default_and_round_trip() {
        // Pre-feature JSON (no `features` key) still deserializes: the
        // serde default keeps old traces and snapshots loadable.
        let spec = TaskSpec::new(3, 1, ResourceVector::new(1.0, 2.0, 3.0), 4.0);
        let json = serde_json::to_string(&spec).unwrap();
        let legacy = json.replace(",\"features\":{\"input_signal\":0.0,\"depth\":0}", "");
        assert_ne!(legacy, json, "features must serialize");
        let parsed: TaskSpec = serde_json::from_str(&legacy).expect("legacy spec parses");
        assert_eq!(parsed, spec);
        let spec = spec.with_features(TaskFeatures::with_input_signal(0.5).at_depth(2));
        let ctx = spec.context();
        assert_eq!(ctx.category, CategoryId(1));
        assert_eq!(ctx.features.depth, 2);
        assert_eq!(ctx.attempt, 0);
        assert_eq!(ctx.with_attempt(3).attempt, 3);
        let r = ResourceRecord::from_task(&spec);
        assert_eq!(r.features, spec.features);
        let round: TaskContext =
            serde_json::from_str(&serde_json::to_string(&ctx).unwrap()).unwrap();
        assert_eq!(round, ctx);
        // A bare-category context carries default features.
        let bare: TaskContext = CategoryId(7).into();
        assert_eq!(bare.features, TaskFeatures::default());
    }

    #[test]
    fn ids_order_and_display() {
        assert!(TaskId(1) < TaskId(2));
        assert!(CategoryId(0) < CategoryId(1));
        assert_eq!(TaskId(5).to_string(), "task#5");
        assert_eq!(CategoryId(2).to_string(), "category#2");
    }
}
