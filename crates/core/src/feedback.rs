//! Fault-aware allocation feedback (off by default).
//!
//! The paper's estimators learn from *observed consumption* only (§III–IV):
//! a crashed or timed-out attempt never completes, so it teaches the
//! allocator nothing — on a flaky pool the predictions stay exactly as
//! tight as on a healthy one, and every lost attempt repeats the same
//! too-optimistic bet. This module closes that loop. The execution engine
//! reports every attempt outcome back through
//! [`Allocator::observe_outcome`](crate::allocator::Allocator::observe_outcome);
//! a [`FaultPolicy`] turns the windowed crash/timeout rate into two
//! multiplicative adjustments:
//!
//! * a **padding factor** on steady-state first predictions, growing from
//!   `1` (no observed faults) towards [`FaultPolicy::max_padding`] as the
//!   fault rate approaches `1` — pay a little waste up front to lose fewer
//!   attempts;
//! * an **escalation bias** on retry predictions, raising exhausted axes
//!   more aggressively when the pool is hostile — fewer kill/retry rounds
//!   per task.
//!
//! Both factors are exactly `1.0` when the policy is absent, the window has
//! too few samples, or no faults were observed, so a fault-free run is
//! byte-identical with the feedback loop compiled in but idle. The policy
//! consumes no randomness.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// The outcome of one task attempt, as reported by the execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttemptFeedback {
    /// The attempt completed.
    Success,
    /// The attempt died with its worker (abrupt departure, rack outage).
    Crash,
    /// The attempt was killed at the straggler timeout.
    Straggler,
    /// The attempt was killed for exceeding its allocation.
    Exhaustion,
}

impl AttemptFeedback {
    /// Whether the outcome is an *infrastructure* fault (crash or timeout).
    /// Exhaustion is an allocation mistake, not a fault: it already has its
    /// own feedback path (`predict_retry`), so it does not move the
    /// windowed fault rate.
    pub fn is_fault(&self) -> bool {
        matches!(self, AttemptFeedback::Crash | AttemptFeedback::Straggler)
    }

    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            AttemptFeedback::Success => "success",
            AttemptFeedback::Crash => "crash",
            AttemptFeedback::Straggler => "straggler",
            AttemptFeedback::Exhaustion => "exhaustion",
        }
    }
}

impl fmt::Display for AttemptFeedback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Tuning knobs of the fault-feedback loop. Absent by default: an
/// allocator without a policy treats [`observe_outcome`] reports as pure
/// telemetry and never changes a prediction.
///
/// [`observe_outcome`]: crate::allocator::Allocator::observe_outcome
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPolicy {
    /// Number of most-recent attempt outcomes the fault rate is computed
    /// over.
    pub window: usize,
    /// Padding factor applied to first predictions at fault rate `1`
    /// (linear in between; `1.0` disables padding).
    pub max_padding: f64,
    /// Extra escalation applied to retry predictions: exhausted axes are
    /// raised by `1 + escalation_bias × rate` (`0.0` disables).
    pub escalation_bias: f64,
    /// Outcomes required in the window before the rate is trusted; below
    /// this the rate reads as `0` and both factors stay at `1`.
    pub min_samples: usize,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            window: 64,
            max_padding: 1.5,
            escalation_bias: 1.0,
            min_samples: 8,
        }
    }
}

impl FaultPolicy {
    /// Validate the knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("fault policy window must be >= 1".to_string());
        }
        if self.min_samples == 0 {
            return Err("fault policy min_samples must be >= 1".to_string());
        }
        if !(self.max_padding.is_finite() && self.max_padding >= 1.0) {
            return Err(format!(
                "fault policy max_padding must be >= 1, got {}",
                self.max_padding
            ));
        }
        if !(self.escalation_bias.is_finite() && self.escalation_bias >= 0.0) {
            return Err(format!(
                "fault policy escalation_bias must be >= 0, got {}",
                self.escalation_bias
            ));
        }
        Ok(())
    }

    /// Padding factor on first predictions at the given fault rate.
    pub fn padding(&self, rate: f64) -> f64 {
        1.0 + (self.max_padding - 1.0) * rate
    }

    /// Escalation factor on retry predictions at the given fault rate.
    pub fn escalation(&self, rate: f64) -> f64 {
        1.0 + self.escalation_bias * rate
    }
}

/// A bounded FIFO of recent attempt outcomes, from which the fault rate
/// is computed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeedbackWindow {
    capacity: usize,
    outcomes: VecDeque<AttemptFeedback>,
    faults: usize,
}

impl FeedbackWindow {
    /// An empty window holding at most `capacity` outcomes.
    pub fn new(capacity: usize) -> Self {
        FeedbackWindow {
            capacity: capacity.max(1),
            outcomes: VecDeque::new(),
            faults: 0,
        }
    }

    /// Record one outcome, evicting the oldest beyond capacity.
    pub fn push(&mut self, outcome: AttemptFeedback) {
        if self.outcomes.len() == self.capacity {
            if let Some(old) = self.outcomes.pop_front() {
                if old.is_fault() {
                    self.faults -= 1;
                }
            }
        }
        if outcome.is_fault() {
            self.faults += 1;
        }
        self.outcomes.push_back(outcome);
    }

    /// Outcomes currently held.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether no outcome was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Fraction of held outcomes that were faults (crash/straggler), or
    /// `0.0` while fewer than `min_samples` outcomes are held.
    pub fn fault_rate(&self, min_samples: usize) -> f64 {
        if self.outcomes.len() < min_samples.max(1) {
            return 0.0;
        }
        self.faults as f64 / self.outcomes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_are_identity_at_zero_rate() {
        let policy = FaultPolicy::default();
        policy.validate().unwrap();
        assert_eq!(policy.padding(0.0), 1.0);
        assert_eq!(policy.escalation(0.0), 1.0);
        assert_eq!(policy.padding(1.0), policy.max_padding);
        assert!(policy.escalation(0.5) > 1.0);
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let p = FaultPolicy {
            window: 0,
            ..FaultPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = FaultPolicy {
            max_padding: 0.5,
            ..FaultPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = FaultPolicy {
            escalation_bias: -1.0,
            ..FaultPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = FaultPolicy {
            min_samples: 0,
            ..FaultPolicy::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn window_rate_respects_min_samples_and_eviction() {
        let mut w = FeedbackWindow::new(4);
        assert!(w.is_empty());
        w.push(AttemptFeedback::Crash);
        w.push(AttemptFeedback::Straggler);
        // Two samples, min 3: rate not yet trusted.
        assert_eq!(w.fault_rate(3), 0.0);
        w.push(AttemptFeedback::Success);
        assert!((w.fault_rate(3) - 2.0 / 3.0).abs() < 1e-12);
        w.push(AttemptFeedback::Success);
        w.push(AttemptFeedback::Success); // evicts the first crash
        assert_eq!(w.len(), 4);
        assert!((w.fault_rate(1) - 0.25).abs() < 1e-12);
        // Exhaustion is not a fault.
        let mut w = FeedbackWindow::new(8);
        for _ in 0..8 {
            w.push(AttemptFeedback::Exhaustion);
        }
        assert_eq!(w.fault_rate(1), 0.0);
    }

    #[test]
    fn feedback_serde_and_labels() {
        for (outcome, label) in [
            (AttemptFeedback::Success, "success"),
            (AttemptFeedback::Crash, "crash"),
            (AttemptFeedback::Straggler, "straggler"),
            (AttemptFeedback::Exhaustion, "exhaustion"),
        ] {
            assert_eq!(outcome.label(), label);
            assert_eq!(format!("{outcome}"), label);
            let json = serde_json::to_string(&outcome).unwrap();
            let back: AttemptFeedback = serde_json::from_str(&json).unwrap();
            assert_eq!(back, outcome);
        }
        let policy = FaultPolicy::default();
        let json = serde_json::to_string(&policy).unwrap();
        let back: FaultPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, policy);
    }
}
