//! Fault-aware allocation feedback (off by default).
//!
//! The paper's estimators learn from *observed consumption* only (§III–IV):
//! a crashed or timed-out attempt never completes, so it teaches the
//! allocator nothing — on a flaky pool the predictions stay exactly as
//! tight as on a healthy one, and every lost attempt repeats the same
//! too-optimistic bet. This module closes that loop. The execution engine
//! reports every attempt outcome back through
//! [`Allocator::observe_outcome`](crate::allocator::Allocator::observe_outcome);
//! a [`FaultPolicy`] turns the windowed crash/timeout rate into two
//! multiplicative adjustments:
//!
//! * a **padding factor** on steady-state first predictions, growing from
//!   `1` (no observed faults) towards [`FaultPolicy::max_padding`] as the
//!   fault rate approaches `1` — pay a little waste up front to lose fewer
//!   attempts;
//! * an **escalation bias** on retry predictions, raising exhausted axes
//!   more aggressively when the pool is hostile — fewer kill/retry rounds
//!   per task.
//!
//! Both factors are exactly `1.0` when the policy is absent, the window has
//! too few samples, or no faults were observed, so a fault-free run is
//! byte-identical with the feedback loop compiled in but idle. The policy
//! consumes no randomness.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// The outcome of one task attempt, as reported by the execution engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttemptFeedback {
    /// The attempt completed.
    Success,
    /// The attempt died with its worker (abrupt departure, rack outage).
    Crash,
    /// The attempt was killed at the straggler timeout.
    Straggler,
    /// The attempt was killed for exceeding its allocation.
    Exhaustion,
}

impl AttemptFeedback {
    /// Whether the outcome is an *infrastructure* fault (crash or timeout).
    /// Exhaustion is an allocation mistake, not a fault: it already has its
    /// own feedback path (`predict_retry`), so it does not move the
    /// windowed fault rate.
    pub fn is_fault(&self) -> bool {
        matches!(self, AttemptFeedback::Crash | AttemptFeedback::Straggler)
    }

    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            AttemptFeedback::Success => "success",
            AttemptFeedback::Crash => "crash",
            AttemptFeedback::Straggler => "straggler",
            AttemptFeedback::Exhaustion => "exhaustion",
        }
    }
}

impl fmt::Display for AttemptFeedback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Tuning knobs of the fault-feedback loop. Absent by default: an
/// allocator without a policy treats [`observe_outcome`] reports as pure
/// telemetry and never changes a prediction.
///
/// [`observe_outcome`]: crate::allocator::Allocator::observe_outcome
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPolicy {
    /// Number of most-recent attempt outcomes the fault rate is computed
    /// over.
    pub window: usize,
    /// Padding factor applied to first predictions at fault rate `1`
    /// (linear in between; `1.0` disables padding).
    pub max_padding: f64,
    /// Extra escalation applied to retry predictions: exhausted axes are
    /// raised by `1 + escalation_bias × rate` (`0.0` disables).
    pub escalation_bias: f64,
    /// Outcomes required in the window before the rate is trusted; below
    /// this the rate reads as `0` and both factors stay at `1`.
    pub min_samples: usize,
    /// Per-outcome exponential decay of the windowed rate: each new outcome
    /// multiplies all prior weights by `decay` before adding itself with
    /// weight `1`. `1.0` weighs every held outcome equally; values below `1`
    /// favour recent outcomes, so the padding tracks fault *bursts* instead
    /// of the long-run average. `0` (the serde default, produced by
    /// pre-decay policy JSON) means *unset* — [`FaultPolicy::effective_decay`]
    /// substitutes [`FaultPolicy::DEFAULT_DECAY`].
    #[serde(default)]
    pub decay: f64,
    /// Decayed per-rack crash rate at or above which a rack is reported in
    /// [`FeedbackState::avoided_racks`] and deprioritized at placement.
    /// `0` means *unset* — [`FaultPolicy::effective_rack_threshold`]
    /// substitutes [`FaultPolicy::DEFAULT_RACK_THRESHOLD`].
    #[serde(default)]
    pub rack_crash_threshold: f64,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy {
            window: 64,
            max_padding: 1.5,
            escalation_bias: 1.0,
            min_samples: 8,
            decay: Self::DEFAULT_DECAY,
            rack_crash_threshold: Self::DEFAULT_RACK_THRESHOLD,
        }
    }
}

impl FaultPolicy {
    /// Validate the knobs.
    pub fn validate(&self) -> Result<(), String> {
        if self.window == 0 {
            return Err("fault policy window must be >= 1".to_string());
        }
        if self.min_samples == 0 {
            return Err("fault policy min_samples must be >= 1".to_string());
        }
        if !(self.max_padding.is_finite() && self.max_padding >= 1.0) {
            return Err(format!(
                "fault policy max_padding must be >= 1, got {}",
                self.max_padding
            ));
        }
        if !(self.escalation_bias.is_finite() && self.escalation_bias >= 0.0) {
            return Err(format!(
                "fault policy escalation_bias must be >= 0, got {}",
                self.escalation_bias
            ));
        }
        if !(self.decay.is_finite() && (0.0..=1.0).contains(&self.decay)) {
            return Err(format!(
                "fault policy decay must be in [0, 1] (0 = unset), got {}",
                self.decay
            ));
        }
        if !(self.rack_crash_threshold.is_finite() && self.rack_crash_threshold >= 0.0) {
            return Err(format!(
                "fault policy rack_crash_threshold must be >= 0 (0 = unset), got {}",
                self.rack_crash_threshold
            ));
        }
        Ok(())
    }

    /// Decay applied when the field was never set (pre-decay policies).
    pub const DEFAULT_DECAY: f64 = 0.95;
    /// Rack-avoidance threshold applied when the field was never set.
    pub const DEFAULT_RACK_THRESHOLD: f64 = 0.5;

    /// The decay in force: the configured value, or
    /// [`Self::DEFAULT_DECAY`] when unset (`0`).
    pub fn effective_decay(&self) -> f64 {
        if self.decay > 0.0 {
            self.decay
        } else {
            Self::DEFAULT_DECAY
        }
    }

    /// The rack-avoidance threshold in force: the configured value, or
    /// [`Self::DEFAULT_RACK_THRESHOLD`] when unset (`0`).
    pub fn effective_rack_threshold(&self) -> f64 {
        if self.rack_crash_threshold > 0.0 {
            self.rack_crash_threshold
        } else {
            Self::DEFAULT_RACK_THRESHOLD
        }
    }

    /// Padding factor on first predictions at the given fault rate.
    pub fn padding(&self, rate: f64) -> f64 {
        1.0 + (self.max_padding - 1.0) * rate
    }

    /// Escalation factor on retry predictions at the given fault rate.
    pub fn escalation(&self, rate: f64) -> f64 {
        1.0 + self.escalation_bias * rate
    }
}

/// A bounded FIFO of recent attempt outcomes, from which the fault rate
/// is computed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeedbackWindow {
    capacity: usize,
    outcomes: VecDeque<AttemptFeedback>,
    faults: usize,
}

impl FeedbackWindow {
    /// An empty window holding at most `capacity` outcomes.
    pub fn new(capacity: usize) -> Self {
        FeedbackWindow {
            capacity: capacity.max(1),
            outcomes: VecDeque::new(),
            faults: 0,
        }
    }

    /// Record one outcome, evicting the oldest beyond capacity.
    pub fn push(&mut self, outcome: AttemptFeedback) {
        if self.outcomes.len() == self.capacity {
            if let Some(old) = self.outcomes.pop_front() {
                if old.is_fault() {
                    self.faults -= 1;
                }
            }
        }
        if outcome.is_fault() {
            self.faults += 1;
        }
        self.outcomes.push_back(outcome);
    }

    /// Outcomes currently held.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether no outcome was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Fraction of held outcomes that were faults (crash/straggler), or
    /// `0.0` while fewer than `min_samples` outcomes are held.
    pub fn fault_rate(&self, min_samples: usize) -> f64 {
        if self.outcomes.len() < min_samples.max(1) {
            return 0.0;
        }
        self.faults as f64 / self.outcomes.len() as f64
    }
}

/// A bounded FIFO of recent attempt outcomes with *exponential decay*: the
/// newest outcome has weight `1`, the one before it `decay`, then `decay²`,
/// and so on. `decay = 1.0` reduces exactly to [`FeedbackWindow`]'s plain
/// fraction. The decayed counts are maintained incrementally (O(1) push),
/// so the hot path never walks the window.
#[derive(Debug, Clone, PartialEq)]
pub struct DecayWindow {
    capacity: usize,
    decay: f64,
    outcomes: VecDeque<AttemptFeedback>,
    weighted_total: f64,
    weighted_faults: f64,
}

impl DecayWindow {
    /// An empty window holding at most `capacity` outcomes.
    pub fn new(capacity: usize, decay: f64) -> Self {
        DecayWindow {
            capacity: capacity.max(1),
            decay: if decay.is_finite() && decay > 0.0 && decay <= 1.0 {
                decay
            } else {
                1.0
            },
            outcomes: VecDeque::new(),
            weighted_total: 0.0,
            weighted_faults: 0.0,
        }
    }

    /// Record one outcome, evicting (and un-weighting) the oldest beyond
    /// capacity.
    pub fn push(&mut self, outcome: AttemptFeedback) {
        if self.outcomes.len() == self.capacity {
            if let Some(old) = self.outcomes.pop_front() {
                // The oldest of k outcomes carries weight decay^(k-1).
                let w = self.decay.powi(self.capacity as i32 - 1);
                self.weighted_total = (self.weighted_total - w).max(0.0);
                if old.is_fault() {
                    self.weighted_faults = (self.weighted_faults - w).max(0.0);
                }
            }
        }
        self.weighted_total = self.weighted_total * self.decay + 1.0;
        self.weighted_faults *= self.decay;
        if outcome.is_fault() {
            self.weighted_faults += 1.0;
        }
        self.outcomes.push_back(outcome);
    }

    /// Outcomes currently held (raw count, not decayed weight).
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether no outcome was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Decay-weighted fraction of held outcomes that were faults, or `0.0`
    /// while fewer than `min_samples` outcomes are held.
    pub fn fault_rate(&self, min_samples: usize) -> f64 {
        if self.outcomes.len() < min_samples.max(1) || self.weighted_total <= 0.0 {
            return 0.0;
        }
        (self.weighted_faults / self.weighted_total).clamp(0.0, 1.0)
    }
}

/// The allocator's unified feedback history: one decayed window per
/// category, one global, and one per rack. Every success/crash/straggler
/// signal flows through
/// [`Allocator::observe_outcome`](crate::allocator::Allocator::observe_outcome)
/// into here, so the fault-padding layer, the learned estimators and the
/// rack-avoidance placement all read the *same* history.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackState {
    capacity: usize,
    decay: f64,
    global: DecayWindow,
    categories: std::collections::BTreeMap<crate::task::CategoryId, DecayWindow>,
    racks: std::collections::BTreeMap<u32, DecayWindow>,
}

impl FeedbackState {
    /// Empty state with the policy's window/decay knobs (or the defaults
    /// when no policy is configured — outcomes are then pure telemetry).
    pub fn new(policy: Option<&FaultPolicy>) -> Self {
        let defaults = FaultPolicy::default();
        let p = policy.unwrap_or(&defaults);
        FeedbackState {
            capacity: p.window.max(1),
            decay: p.effective_decay(),
            global: DecayWindow::new(p.window, p.effective_decay()),
            categories: std::collections::BTreeMap::new(),
            racks: std::collections::BTreeMap::new(),
        }
    }

    /// Record one attempt outcome for `category`, attributed to `rack`
    /// when the attempt ran on a known worker.
    pub fn observe(
        &mut self,
        category: crate::task::CategoryId,
        outcome: AttemptFeedback,
        rack: Option<u32>,
    ) {
        self.global.push(outcome);
        self.categories
            .entry(category)
            .or_insert_with(|| DecayWindow::new(self.capacity, self.decay))
            .push(outcome);
        if let Some(rack) = rack {
            self.racks
                .entry(rack)
                .or_insert_with(|| DecayWindow::new(self.capacity, self.decay))
                .push(outcome);
        }
    }

    /// Decayed fault rate over every outcome (all categories pooled).
    pub fn global_rate(&self, min_samples: usize) -> f64 {
        self.global.fault_rate(min_samples)
    }

    /// Decayed fault rate of one category; categories that never reported
    /// read as `0`.
    pub fn category_rate(&self, category: crate::task::CategoryId, min_samples: usize) -> f64 {
        self.categories
            .get(&category)
            .map_or(0.0, |w| w.fault_rate(min_samples))
    }

    /// Samples recorded for one category (raw count).
    pub fn category_len(&self, category: crate::task::CategoryId) -> usize {
        self.categories.get(&category).map_or(0, |w| w.len())
    }

    /// Decayed fault rate of one rack; racks that never reported read as
    /// `0`.
    pub fn rack_rate(&self, rack: u32, min_samples: usize) -> f64 {
        self.racks
            .get(&rack)
            .map_or(0.0, |w| w.fault_rate(min_samples))
    }

    /// Racks whose decayed crash rate meets
    /// [`FaultPolicy::rack_crash_threshold`] at sufficient support, in
    /// ascending rack order. Empty at zero observed faults, so placement
    /// avoidance is exactly inert on a healthy pool.
    pub fn avoided_racks(&self, policy: &FaultPolicy) -> Vec<u32> {
        self.racks
            .iter()
            .filter(|(_, w)| w.fault_rate(policy.min_samples) >= policy.effective_rack_threshold())
            .map(|(rack, _)| *rack)
            .collect()
    }

    /// Total outcomes recorded (raw global count).
    pub fn len(&self) -> usize {
        self.global.len()
    }

    /// Whether no outcome was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.global.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::CategoryId;

    #[test]
    fn factors_are_identity_at_zero_rate() {
        let policy = FaultPolicy::default();
        policy.validate().unwrap();
        assert_eq!(policy.padding(0.0), 1.0);
        assert_eq!(policy.escalation(0.0), 1.0);
        assert_eq!(policy.padding(1.0), policy.max_padding);
        assert!(policy.escalation(0.5) > 1.0);
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let p = FaultPolicy {
            window: 0,
            ..FaultPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = FaultPolicy {
            max_padding: 0.5,
            ..FaultPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = FaultPolicy {
            escalation_bias: -1.0,
            ..FaultPolicy::default()
        };
        assert!(p.validate().is_err());
        let p = FaultPolicy {
            min_samples: 0,
            ..FaultPolicy::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn window_rate_respects_min_samples_and_eviction() {
        let mut w = FeedbackWindow::new(4);
        assert!(w.is_empty());
        w.push(AttemptFeedback::Crash);
        w.push(AttemptFeedback::Straggler);
        // Two samples, min 3: rate not yet trusted.
        assert_eq!(w.fault_rate(3), 0.0);
        w.push(AttemptFeedback::Success);
        assert!((w.fault_rate(3) - 2.0 / 3.0).abs() < 1e-12);
        w.push(AttemptFeedback::Success);
        w.push(AttemptFeedback::Success); // evicts the first crash
        assert_eq!(w.len(), 4);
        assert!((w.fault_rate(1) - 0.25).abs() < 1e-12);
        // Exhaustion is not a fault.
        let mut w = FeedbackWindow::new(8);
        for _ in 0..8 {
            w.push(AttemptFeedback::Exhaustion);
        }
        assert_eq!(w.fault_rate(1), 0.0);
    }

    #[test]
    fn feedback_serde_and_labels() {
        for (outcome, label) in [
            (AttemptFeedback::Success, "success"),
            (AttemptFeedback::Crash, "crash"),
            (AttemptFeedback::Straggler, "straggler"),
            (AttemptFeedback::Exhaustion, "exhaustion"),
        ] {
            assert_eq!(outcome.label(), label);
            assert_eq!(format!("{outcome}"), label);
            let json = serde_json::to_string(&outcome).unwrap();
            let back: AttemptFeedback = serde_json::from_str(&json).unwrap();
            assert_eq!(back, outcome);
        }
        let policy = FaultPolicy::default();
        let json = serde_json::to_string(&policy).unwrap();
        let back: FaultPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, policy);
        // Pre-decay policy JSON (no decay/rack keys) parses to the zero
        // sentinel, which the effective accessors resolve to the defaults.
        let legacy = r#"{"window":64,"max_padding":1.5,"escalation_bias":1.0,"min_samples":8}"#;
        let back: FaultPolicy = serde_json::from_str(legacy).unwrap();
        assert_eq!(back.decay, 0.0);
        assert!(back.validate().is_ok(), "zero sentinel is valid");
        assert_eq!(back.effective_decay(), FaultPolicy::DEFAULT_DECAY);
        assert_eq!(
            back.effective_rack_threshold(),
            FaultPolicy::DEFAULT_RACK_THRESHOLD
        );
        assert_eq!(policy.effective_decay(), policy.decay);
    }

    #[test]
    fn decay_one_matches_the_plain_window() {
        let mut plain = FeedbackWindow::new(4);
        let mut decayed = DecayWindow::new(4, 1.0);
        let seq = [
            AttemptFeedback::Crash,
            AttemptFeedback::Success,
            AttemptFeedback::Straggler,
            AttemptFeedback::Success,
            AttemptFeedback::Success,
            AttemptFeedback::Crash,
        ];
        for outcome in seq {
            plain.push(outcome);
            decayed.push(outcome);
            assert!(
                (plain.fault_rate(1) - decayed.fault_rate(1)).abs() < 1e-12,
                "decay=1 must reduce to the plain fraction"
            );
        }
        assert_eq!(plain.len(), decayed.len());
    }

    #[test]
    fn decay_weights_recent_outcomes_more() {
        // Same multiset of outcomes, opposite orders: a recent fault burst
        // must read hotter than an old one.
        let mut recent_faults = DecayWindow::new(16, 0.8);
        let mut old_faults = DecayWindow::new(16, 0.8);
        for _ in 0..4 {
            recent_faults.push(AttemptFeedback::Success);
            old_faults.push(AttemptFeedback::Crash);
        }
        for _ in 0..4 {
            recent_faults.push(AttemptFeedback::Crash);
            old_faults.push(AttemptFeedback::Success);
        }
        assert!(recent_faults.fault_rate(1) > 0.5);
        assert!(old_faults.fault_rate(1) < 0.5);
        assert!(recent_faults.fault_rate(1) > old_faults.fault_rate(1));
    }

    #[test]
    fn decayed_eviction_keeps_counts_consistent() {
        let mut w = DecayWindow::new(4, 0.9);
        // Push far past capacity; the rate must stay in [0, 1] and settle
        // to 0 once faults age out entirely.
        for _ in 0..4 {
            w.push(AttemptFeedback::Crash);
        }
        assert!(w.fault_rate(1) > 0.99);
        for _ in 0..8 {
            w.push(AttemptFeedback::Success);
            let r = w.fault_rate(1);
            assert!((0.0..=1.0).contains(&r), "rate out of range: {r}");
        }
        assert!(
            w.fault_rate(1) < 1e-9,
            "faults fully evicted, up to float residue: {}",
            w.fault_rate(1)
        );
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn feedback_state_keeps_categories_and_racks_apart() {
        let policy = FaultPolicy {
            min_samples: 2,
            ..FaultPolicy::default()
        };
        let mut state = FeedbackState::new(Some(&policy));
        assert!(state.is_empty());
        // Category 0 on rack 1 is healthy; category 1 on rack 2 crashes.
        for _ in 0..8 {
            state.observe(CategoryId(0), AttemptFeedback::Success, Some(1));
            state.observe(CategoryId(1), AttemptFeedback::Crash, Some(2));
        }
        assert_eq!(state.len(), 16);
        assert_eq!(state.category_rate(CategoryId(0), policy.min_samples), 0.0);
        assert!(state.category_rate(CategoryId(1), policy.min_samples) > 0.99);
        // An unseen category reads as healthy.
        assert_eq!(state.category_rate(CategoryId(9), policy.min_samples), 0.0);
        assert_eq!(state.rack_rate(1, policy.min_samples), 0.0);
        assert!(state.rack_rate(2, policy.min_samples) > 0.99);
        assert_eq!(state.avoided_racks(&policy), vec![2]);
        // The pooled global rate sits between the two.
        let g = state.global_rate(policy.min_samples);
        assert!(g > 0.2 && g < 0.8, "global rate {g}");
    }

    #[test]
    fn avoidance_is_inert_without_faults_or_support() {
        let policy = FaultPolicy::default();
        let mut state = FeedbackState::new(Some(&policy));
        for _ in 0..100 {
            state.observe(CategoryId(0), AttemptFeedback::Success, Some(0));
        }
        assert!(state.avoided_racks(&policy).is_empty());
        // A few crashes below min_samples still avoid nothing.
        let mut state = FeedbackState::new(Some(&policy));
        for _ in 0..policy.min_samples - 1 {
            state.observe(CategoryId(0), AttemptFeedback::Crash, Some(3));
        }
        assert!(state.avoided_racks(&policy).is_empty());
    }
}
