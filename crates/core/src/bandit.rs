//! A semi-bandit allocation policy over a geometric arm grid
//! (*Optimal Resource Allocation with Semi-Bandit Feedback*,
//! arXiv:1406.3840).
//!
//! The allocation problem maps onto the semi-bandit setting naturally: the
//! arms are candidate allocation levels, a round is one task, and the loss
//! of an arm is the waste it would have produced on that task. Because a
//! completed task reveals its exact peak, the loss of *every* arm on the
//! grid is computable from one observation (the semi-bandit advantage over
//! strict bandit feedback: the whole component-wise loss vector is
//! revealed), so the policy does full-information updates while still
//! exploring with the allocator's uniform draw.
//!
//! Concretely, [`SemiBandit`] keeps [`SemiBandit::ARMS`] levels on the
//! geometric grid `capacity / 2^j`. For an observed peak `c`, arm level `L`
//! incurs
//!
//! * `(L − c) / capacity` when the task fits (`L ≥ c`) — fragmentation, and
//! * `L / capacity + retry_penalty` when it does not — the whole attempt is
//!   wasted, plus a fixed penalty for the kill/retry cycle.
//!
//! Losses are exponentially decayed (weight `decay` per round), so the
//! policy tracks drifting workloads the way the decayed feedback windows
//! do. Arm statistics are kept per DAG *phase* (depth bucket, from
//! [`crate::task::TaskFeatures::depth`]) with a category-global table as the
//! low-support fallback, so pipeline stages with different profiles learn
//! separate optima. Selection is ε-greedy driven entirely by the caller's
//! uniform draw — the policy consumes no RNG of its own, which keeps the
//! allocator's thread-count byte parity intact.

use crate::estimator::{double_allocation, Prediction, ValueEstimator};
use crate::task::{TaskContext, TaskFeatures};

/// Decayed loss statistics for one arm table (one phase, or global).
#[derive(Debug, Clone, Copy)]
struct ArmTable {
    loss: [f64; SemiBandit::ARMS],
    weight: f64,
    rounds: usize,
}

impl ArmTable {
    fn new() -> Self {
        ArmTable {
            loss: [0.0; SemiBandit::ARMS],
            weight: 0.0,
            rounds: 0,
        }
    }

    fn update(&mut self, levels: &[f64; SemiBandit::ARMS], capacity: f64, peak: f64, decay: f64) {
        for (slot, level) in self.loss.iter_mut().zip(levels) {
            let loss = if *level >= peak {
                (*level - peak) / capacity
            } else {
                *level / capacity + SemiBandit::RETRY_PENALTY
            };
            *slot = *slot * decay + loss;
        }
        self.weight = self.weight * decay + 1.0;
        self.rounds += 1;
    }

    /// The arm with the lowest decayed mean loss; ties go to the lower
    /// index (the larger, safer allocation).
    fn best(&self) -> usize {
        let mut best = 0;
        let mut best_loss = f64::INFINITY;
        for (idx, loss) in self.loss.iter().enumerate() {
            if *loss < best_loss {
                best_loss = *loss;
                best = idx;
            }
        }
        best
    }
}

/// A semi-bandit estimator for one (category, resource) state.
#[derive(Debug, Clone)]
pub struct SemiBandit {
    capacity: f64,
    levels: [f64; Self::ARMS],
    phases: [ArmTable; Self::PHASES],
    global: ArmTable,
    observed: usize,
    epsilon: f64,
    decay: f64,
}

impl SemiBandit {
    /// Arms on the geometric grid: `capacity / 2^j`, `j = 0..ARMS`.
    pub const ARMS: usize = 7;

    /// Depth buckets: depths `0, 1, 2` and `3+` learn separate tables.
    pub const PHASES: usize = 4;

    /// Exploration rate of the ε-greedy selection.
    pub const EPSILON: f64 = 0.1;

    /// Per-round exponential decay of the loss statistics.
    pub const DECAY: f64 = 0.98;

    /// Fixed extra loss for an arm that would not have fit the task.
    pub const RETRY_PENALTY: f64 = 0.25;

    /// Rounds a phase table needs before it answers instead of the global.
    pub const MIN_ROUNDS: usize = 8;

    /// A policy over one resource axis with the worker's capacity of it.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "capacity must be positive"
        );
        let mut levels = [0.0; Self::ARMS];
        for (j, level) in levels.iter_mut().enumerate() {
            *level = capacity / (1u64 << j) as f64;
        }
        SemiBandit {
            capacity,
            levels,
            phases: [ArmTable::new(); Self::PHASES],
            global: ArmTable::new(),
            observed: 0,
            epsilon: Self::EPSILON,
            decay: Self::DECAY,
        }
    }

    /// The phase bucket a DAG depth maps to.
    pub fn phase_of(depth: u32) -> usize {
        (depth as usize).min(Self::PHASES - 1)
    }

    /// The allocation levels on the arm grid (test/observability hook).
    pub fn levels(&self) -> &[f64; Self::ARMS] {
        &self.levels
    }

    /// The table that should answer for `depth`: its phase table once it
    /// has seen enough rounds, the global table before that.
    fn table_for(&self, depth: u32) -> &ArmTable {
        let phase = &self.phases[Self::phase_of(depth)];
        if phase.rounds >= Self::MIN_ROUNDS {
            phase
        } else {
            &self.global
        }
    }
}

impl ValueEstimator for SemiBandit {
    fn name(&self) -> &'static str {
        "semi-bandit"
    }

    fn observe(&mut self, value: f64, sig: f64) {
        // Featureless ingestion: update the global table only.
        let _ = sig;
        let (levels, capacity, decay) = (self.levels, self.capacity, self.decay);
        self.global.update(&levels, capacity, value, decay);
        self.observed += 1;
    }

    fn observe_ctx(&mut self, features: &TaskFeatures, value: f64, sig: f64) {
        self.observe(value, sig);
        let (levels, capacity, decay) = (self.levels, self.capacity, self.decay);
        self.phases[Self::phase_of(features.depth)].update(&levels, capacity, value, decay);
    }

    fn len(&self) -> usize {
        self.observed
    }

    fn predict_first(&mut self, ctx: &TaskContext, u: f64) -> Option<Prediction> {
        if self.observed == 0 {
            return None;
        }
        let idx = if u < self.epsilon {
            // Exploration reuses the draw itself: `u / ε` is uniform again,
            // so no additional RNG consumption.
            (((u / self.epsilon) * Self::ARMS as f64) as usize).min(Self::ARMS - 1)
        } else {
            self.table_for(ctx.features.depth).best()
        };
        Some(Prediction::arm(self.levels[idx], idx))
    }

    fn predict_retry(&mut self, _ctx: &TaskContext, prev: f64, _u: f64) -> Option<Prediction> {
        if self.observed == 0 {
            return None;
        }
        // The smallest arm strictly above the failed allocation; past the
        // top arm (the capacity), double.
        match self
            .levels
            .iter()
            .enumerate()
            .rev()
            .find(|(_, level)| **level > prev)
        {
            Some((idx, level)) => Some(Prediction::arm(*level, idx)),
            None => Some(Prediction::doubling(
                double_allocation(prev).max(prev * 2.0),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::CategoryId;

    fn ctx(depth: u32) -> TaskContext {
        TaskContext::new(
            CategoryId(0),
            TaskFeatures {
                input_signal: 0.0,
                depth,
            },
        )
    }

    #[test]
    fn empty_has_no_prediction() {
        let mut sb = SemiBandit::new(1024.0);
        assert!(sb.predict_first(&ctx(0), 0.5).is_none());
        assert!(sb.predict_retry(&ctx(0), 8.0, 0.5).is_none());
    }

    #[test]
    fn levels_are_a_geometric_grid() {
        let sb = SemiBandit::new(1024.0);
        assert_eq!(sb.levels()[0], 1024.0);
        assert_eq!(sb.levels()[1], 512.0);
        assert_eq!(sb.levels()[SemiBandit::ARMS - 1], 16.0);
    }

    #[test]
    fn exploitation_converges_to_the_cheapest_fitting_arm() {
        // Peaks ~100 on a 1024 machine: arm 128 (idx 3) fits with the least
        // fragmentation, so exploitation (u past ε) must pick it.
        let mut sb = SemiBandit::new(1024.0);
        for _ in 0..50 {
            sb.observe_ctx(&TaskFeatures::default(), 100.0, 1.0);
        }
        let p = sb.predict_first(&ctx(0), 0.5).unwrap();
        assert_eq!(p.value, 128.0, "{p:?}");
        assert_eq!(p.source, crate::estimator::AllocSource::Arm { idx: 3 });
    }

    #[test]
    fn exploration_spreads_over_the_grid_without_extra_rng() {
        let mut sb = SemiBandit::new(1024.0);
        sb.observe_ctx(&TaskFeatures::default(), 100.0, 1.0);
        // Draws inside [0, ε) map onto distinct arms deterministically.
        let low = sb.predict_first(&ctx(0), 0.0).unwrap();
        let high = sb.predict_first(&ctx(0), 0.0999).unwrap();
        assert_eq!(low.source, crate::estimator::AllocSource::Arm { idx: 0 });
        assert_eq!(
            high.source,
            crate::estimator::AllocSource::Arm {
                idx: SemiBandit::ARMS - 1
            }
        );
    }

    #[test]
    fn phases_learn_separate_optima() {
        // Depth-0 tasks peak ~30, depth-3 tasks peak ~500. After warmup the
        // two phases must pick different arms.
        let mut sb = SemiBandit::new(1024.0);
        for _ in 0..SemiBandit::MIN_ROUNDS + 4 {
            sb.observe_ctx(&TaskFeatures::default().at_depth(0), 30.0, 1.0);
            sb.observe_ctx(&TaskFeatures::default().at_depth(3), 500.0, 1.0);
        }
        let shallow = sb.predict_first(&ctx(0), 0.9).unwrap().value;
        let deep = sb.predict_first(&ctx(3), 0.9).unwrap().value;
        assert_eq!(shallow, 32.0, "shallow phase");
        assert_eq!(deep, 512.0, "deep phase");
    }

    #[test]
    fn low_support_phase_answers_from_the_global_table() {
        let mut sb = SemiBandit::new(1024.0);
        for _ in 0..20 {
            sb.observe_ctx(&TaskFeatures::default().at_depth(0), 100.0, 1.0);
        }
        // Depth 2 never observed: the global table (dominated by the
        // depth-0 rounds) answers.
        let unseen = sb.predict_first(&ctx(2), 0.9).unwrap();
        let seen = sb.predict_first(&ctx(0), 0.9).unwrap();
        assert_eq!(unseen.value, seen.value);
    }

    #[test]
    fn retry_climbs_the_grid_then_doubles() {
        let mut sb = SemiBandit::new(1024.0);
        sb.observe_ctx(&TaskFeatures::default(), 100.0, 1.0);
        let r1 = sb.predict_retry(&ctx(0), 128.0, 0.5).unwrap();
        assert_eq!(r1.value, 256.0);
        let r2 = sb.predict_retry(&ctx(0), 1024.0, 0.5).unwrap();
        assert_eq!(r2.value, 2048.0);
        assert_eq!(r2.source, crate::estimator::AllocSource::Doubling);
        // Strict escalation holds between grid points too.
        let r3 = sb.predict_retry(&ctx(0), 100.0, 0.5).unwrap();
        assert!(r3.value > 100.0);
        assert_eq!(r3.value, 128.0);
    }

    #[test]
    fn decay_tracks_workload_drift() {
        // A long small phase then a long large phase: the decayed losses
        // must forget the small optimum and move up the grid.
        let mut sb = SemiBandit::new(1024.0);
        for _ in 0..100 {
            sb.observe_ctx(&TaskFeatures::default(), 20.0, 1.0);
        }
        assert_eq!(sb.predict_first(&ctx(0), 0.9).unwrap().value, 32.0);
        for _ in 0..200 {
            sb.observe_ctx(&TaskFeatures::default(), 400.0, 1.0);
        }
        assert_eq!(sb.predict_first(&ctx(0), 0.9).unwrap().value, 512.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        SemiBandit::new(0.0);
    }
}
