//! Expected-resource-waste cost models.
//!
//! Both bucketing algorithms score a candidate partition by the *expected
//! resource waste of the next task*, assuming it behaves like the completed
//! tasks (§IV-B, §IV-C). This module implements:
//!
//! * [`greedy_cost`] — the two-bucket (or one-bucket) model of
//!   `compute_greedy_cost` in Algorithm 1,
//! * [`exhaustive_cost`] — the N×N expected-waste table of
//!   `compute_exhaust_cost` in Algorithm 2, and
//! * [`PrefixStats`] / [`exhaustive_cost_with`] — the prefix-sum fast path:
//!   cumulative `sig` and `value·sig` arrays built once per rebucket make any
//!   interval's statistics an O(1) query, so the fast partitioner modes score
//!   candidates without re-walking the record list or materializing a
//!   [`BucketSet`] per configuration.

use crate::bucket::BucketSet;
use crate::record::ScalarRecord;

/// Significance-weighted statistics of a contiguous record interval.
#[derive(Debug, Clone, Copy)]
struct IntervalStats {
    sig_sum: f64,
    wmean: f64,
    rep: f64,
}

/// Compute stats over `records[lo..=hi]` (inclusive), as the paper's
/// `compute_greedy_cost` does — a linear pass over the interval. This is
/// intentionally *not* accelerated with prefix sums: the O(interval) cost per
/// candidate is what gives Greedy Bucketing its measured Table I growth
/// (≈0.44 s at 5000 records in the paper). An incremental variant lives in
/// [`crate::greedy`] as an ablation.
fn interval_stats(records: &[ScalarRecord], lo: usize, hi: usize) -> IntervalStats {
    debug_assert!(lo <= hi && hi < records.len());
    let mut sig_sum = 0.0;
    let mut wsum = 0.0;
    for r in &records[lo..=hi] {
        sig_sum += r.sig;
        wsum += r.value * r.sig;
    }
    IntervalStats {
        sig_sum,
        wmean: wsum / sig_sum,
        rep: records[hi].value,
    }
}

/// `compute_greedy_cost(lo, brk, hi, L)` (§IV-B).
///
/// Scores breaking `records[lo..=hi]` into `B_lo = [lo..=brk]` and
/// `B_hi = [brk+1..=hi]`. When `brk == hi` the interval stays one bucket and
/// the expected waste is simply `rep − v̄` (allocate the max, tasks land at
/// the weighted mean).
///
/// With two buckets, four cases (task lands low/high × algorithm picks
/// low/high):
///
/// ```text
/// W_lo,lo = p_lo² (rep_lo − v_lo)
/// W_lo,hi = p_lo p_hi (rep_hi − v_lo)
/// W_hi,lo = p_hi p_lo (rep_lo + rep_hi − v_hi)   // failed attempt + retry
/// W_hi,hi = p_hi² (rep_hi − v_hi)
/// ```
///
/// Probabilities are significance shares *within the interval*; `v_lo`,
/// `v_hi` are significance-weighted means of each side.
pub fn greedy_cost(records: &[ScalarRecord], lo: usize, brk: usize, hi: usize) -> f64 {
    debug_assert!(lo <= brk && brk <= hi && hi < records.len());
    if brk == hi {
        let s = interval_stats(records, lo, hi);
        return s.rep - s.wmean;
    }
    let low = interval_stats(records, lo, brk);
    let high = interval_stats(records, brk + 1, hi);
    let total_sig = low.sig_sum + high.sig_sum;
    let p_lo = low.sig_sum / total_sig;
    let p_hi = high.sig_sum / total_sig;
    let (v_lo, v_hi) = (low.wmean, high.wmean);
    let (rep_lo, rep_hi) = (low.rep, high.rep);

    let w_lo_lo = p_lo * p_lo * (rep_lo - v_lo);
    let w_lo_hi = p_lo * p_hi * (rep_hi - v_lo);
    let w_hi_lo = p_hi * p_lo * (rep_lo + rep_hi - v_hi);
    let w_hi_hi = p_hi * p_hi * (rep_hi - v_hi);
    w_lo_lo + w_lo_hi + w_hi_lo + w_hi_hi
}

/// `compute_exhaust_cost(P, L)` (§IV-C): expected waste of a full bucket
/// configuration.
///
/// Builds the table `T[i][j]` — expected waste when the next task falls in
/// bucket `i` and the allocator picks bucket `j`:
///
/// * `i ≤ j`: the allocation suffices, `T[i][j] = rep_j − v_i`;
/// * `i > j`: the attempt fails and the allocator re-samples among buckets
///   `> j` with renormalized probabilities:
///   `T[i][j] = rep_j + Σ_{k>j} (p_k / Σ_{m>j} p_m) · T[i][k]`.
///
/// The table is filled right-to-left per row (each entry only depends on
/// entries with larger `j`). The configuration's expected waste is
/// `Σ_ij p_i p_j T[i][j]`.
pub fn exhaustive_cost(set: &BucketSet) -> f64 {
    let buckets = set.buckets();
    let n = buckets.len();
    debug_assert!(n > 0, "cost of an empty bucket set is undefined");
    // Suffix probability sums: suffix_p[j] = Σ_{k ≥ j} p_k.
    let mut suffix_p = vec![0.0; n + 1];
    for j in (0..n).rev() {
        suffix_p[j] = suffix_p[j + 1] + buckets[j].prob;
    }
    let mut total = 0.0;
    for i in 0..n {
        let v_i = buckets[i].wmean;
        // s_pt = Σ_{k > j} p_k · T[i][k], maintained as j walks left.
        let mut s_pt = 0.0;
        for j in (0..n).rev() {
            let rep_j = buckets[j].rep;
            let t = if i <= j {
                rep_j - v_i
            } else {
                let denom = suffix_p[j + 1];
                if denom > 0.0 {
                    rep_j + s_pt / denom
                } else {
                    // No higher bucket exists (only possible for j = n-1,
                    // which requires i > n-1 — unreachable; kept for safety).
                    rep_j
                }
            };
            s_pt += buckets[j].prob * t;
            total += buckets[i].prob * buckets[j].prob * t;
        }
    }
    total
}

/// Prefix-sum cache over a sorted record slice: cumulative `sig` and
/// `value·sig` arrays that answer any contiguous interval's significance sum
/// and weighted sum in O(1).
///
/// Built once per rebucket by the fast partitioner modes; every candidate
/// break the scan considers then costs O(1) instead of an O(interval)
/// re-walk.
///
/// # Examples
///
/// ```
/// use tora_alloc::cost::PrefixStats;
/// use tora_alloc::record::ScalarRecord;
///
/// let records = [
///     ScalarRecord::new(2.0, 1.0),
///     ScalarRecord::new(4.0, 3.0),
///     ScalarRecord::new(8.0, 1.0),
/// ];
/// let stats = PrefixStats::from_records(&records);
/// assert_eq!(stats.sig(0, 2), 5.0);
/// assert_eq!(stats.wsum(1, 2), 4.0 * 3.0 + 8.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PrefixStats {
    /// cum_sig[i] = Σ_{k < i} sig_k (so cum_sig[0] = 0).
    cum_sig: Vec<f64>,
    /// cum_wsum[i] = Σ_{k < i} value_k · sig_k.
    cum_wsum: Vec<f64>,
}

impl PrefixStats {
    /// An empty cache; call [`rebuild`](Self::rebuild) before querying.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a cache for `records`.
    pub fn from_records(records: &[ScalarRecord]) -> Self {
        let mut stats = Self::new();
        stats.rebuild(records);
        stats
    }

    /// Recompute the cumulative arrays for `records`, reusing the
    /// allocations.
    pub fn rebuild(&mut self, records: &[ScalarRecord]) {
        self.cum_sig.clear();
        self.cum_wsum.clear();
        self.cum_sig.reserve(records.len() + 1);
        self.cum_wsum.reserve(records.len() + 1);
        let mut sig = 0.0;
        let mut wsum = 0.0;
        self.cum_sig.push(0.0);
        self.cum_wsum.push(0.0);
        for r in records {
            sig += r.sig;
            wsum += r.value * r.sig;
            self.cum_sig.push(sig);
            self.cum_wsum.push(wsum);
        }
    }

    /// Number of records the cache covers.
    pub fn len(&self) -> usize {
        self.cum_sig.len().saturating_sub(1)
    }

    /// Whether the cache covers no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Σ sig over `records[lo..=hi]` (inclusive).
    #[inline]
    pub fn sig(&self, lo: usize, hi: usize) -> f64 {
        debug_assert!(lo <= hi && hi < self.len());
        self.cum_sig[hi + 1] - self.cum_sig[lo]
    }

    /// Σ value·sig over `records[lo..=hi]` (inclusive).
    #[inline]
    pub fn wsum(&self, lo: usize, hi: usize) -> f64 {
        debug_assert!(lo <= hi && hi < self.len());
        self.cum_wsum[hi + 1] - self.cum_wsum[lo]
    }
}

/// Reusable buffers for [`exhaustive_cost_with`]: per-bucket probabilities,
/// representatives, weighted means, and the suffix-probability array. One
/// instance lives across the b = 1..=10 configuration loop of the fast
/// Exhaustive Bucketing mode, so scoring a configuration allocates nothing
/// after the first iteration.
#[derive(Debug, Clone, Default)]
pub struct ExhaustiveScratch {
    probs: Vec<f64>,
    reps: Vec<f64>,
    wmeans: Vec<f64>,
    suffix_p: Vec<f64>,
}

impl ExhaustiveScratch {
    /// Empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`exhaustive_cost`] computed directly from break indices and a
/// [`PrefixStats`] cache — no [`BucketSet`] is materialized. Per-bucket
/// statistics are O(1) prefix-sum queries; the N×N table walk is identical to
/// the canonical version.
///
/// `breaks` are the inclusive end indices of all buckets but the last, as
/// produced by a [`crate::partition::Partitioner`].
pub fn exhaustive_cost_with(
    records: &[ScalarRecord],
    stats: &PrefixStats,
    breaks: &[usize],
    scratch: &mut ExhaustiveScratch,
) -> f64 {
    let n_records = records.len();
    debug_assert!(n_records > 0, "cost of an empty configuration is undefined");
    debug_assert_eq!(stats.len(), n_records, "stale PrefixStats");
    let n = breaks.len() + 1;
    let total_sig = stats.sig(0, n_records - 1);

    scratch.probs.clear();
    scratch.reps.clear();
    scratch.wmeans.clear();
    let mut start = 0usize;
    for b in 0..n {
        let end = if b < breaks.len() {
            breaks[b]
        } else {
            n_records - 1
        };
        debug_assert!(start <= end && end < n_records, "invalid break indices");
        let sig = stats.sig(start, end);
        scratch.probs.push(sig / total_sig);
        scratch.reps.push(records[end].value);
        scratch.wmeans.push(stats.wsum(start, end) / sig);
        start = end + 1;
    }

    scratch.suffix_p.clear();
    scratch.suffix_p.resize(n + 1, 0.0);
    for j in (0..n).rev() {
        scratch.suffix_p[j] = scratch.suffix_p[j + 1] + scratch.probs[j];
    }

    let mut total = 0.0;
    for i in 0..n {
        let v_i = scratch.wmeans[i];
        let mut s_pt = 0.0;
        for j in (0..n).rev() {
            let rep_j = scratch.reps[j];
            let t = if i <= j {
                rep_j - v_i
            } else {
                let denom = scratch.suffix_p[j + 1];
                if denom > 0.0 {
                    rep_j + s_pt / denom
                } else {
                    rep_j
                }
            };
            s_pt += scratch.probs[j] * t;
            total += scratch.probs[i] * scratch.probs[j] * t;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordList;

    fn sorted(pairs: &[(f64, f64)]) -> RecordList {
        pairs.iter().copied().collect()
    }

    #[test]
    fn greedy_single_bucket_is_rep_minus_mean() {
        // values 2,4 sig 1,1: rep 4, mean 3, cost 1.
        let l = sorted(&[(2.0, 1.0), (4.0, 1.0)]);
        let c = greedy_cost(l.sorted(), 0, 1, 1);
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_two_bucket_matches_hand_computation() {
        // values 1,3 sig 1,1 → p=0.5 each, v_lo=1, v_hi=3, rep_lo=1, rep_hi=3.
        // W = .25(1-1) + .25(3-1) + .25(1+3-3) + .25(3-3) = 0.5 + 0.25 = 0.75
        let l = sorted(&[(1.0, 1.0), (3.0, 1.0)]);
        let c = greedy_cost(l.sorted(), 0, 0, 1);
        assert!((c - 0.75).abs() < 1e-12, "{c}");
    }

    #[test]
    fn greedy_split_wins_for_well_separated_clusters() {
        // Two tight clusters far apart: splitting beats one bucket.
        let l = sorted(&[
            (1.0, 1.0),
            (1.1, 1.0),
            (1.2, 1.0),
            (100.0, 1.0),
            (100.1, 1.0),
            (100.2, 1.0),
        ]);
        let one = greedy_cost(l.sorted(), 0, 5, 5);
        let split = greedy_cost(l.sorted(), 0, 2, 5);
        assert!(split < one, "split {split} should beat single {one}");
    }

    #[test]
    fn greedy_identical_values_prefer_single_bucket() {
        let l = sorted(&[(5.0, 1.0); 4]);
        let single = greedy_cost(l.sorted(), 0, 3, 3);
        assert!(single.abs() < 1e-12);
        // Any split still costs extra (failed-allocation term is positive).
        for brk in 0..3 {
            assert!(greedy_cost(l.sorted(), 0, brk, 3) >= single);
        }
    }

    #[test]
    fn greedy_significance_shifts_probabilities() {
        // With multi-record buckets the significance weighting moves the
        // in-bucket means and the bucket probabilities, changing the cost
        // relative to the unweighted case.
        let unweighted = sorted(&[(1.0, 1.0), (2.0, 1.0), (8.0, 1.0), (9.0, 1.0)]);
        let weighted = sorted(&[(1.0, 1.0), (2.0, 5.0), (8.0, 1.0), (9.0, 5.0)]);
        let c_u = greedy_cost(unweighted.sorted(), 0, 1, 3);
        let c_w = greedy_cost(weighted.sorted(), 0, 1, 3);
        assert!((c_u - c_w).abs() > 1e-9, "{c_u} vs {c_w}");
        // Hand check the unweighted cost: p=0.5 each, v_lo=1.5, v_hi=8.5,
        // rep_lo=2, rep_hi=9:
        // .25(2-1.5) + .25(9-1.5) + .25(2+9-8.5) + .25(9-8.5) = 2.75
        assert!((c_u - 2.75).abs() < 1e-12, "{c_u}");
    }

    #[test]
    fn exhaustive_single_bucket_equals_greedy_single() {
        let l = sorted(&[(2.0, 1.0), (4.0, 1.0), (6.0, 3.0)]);
        let set = BucketSet::single(l.sorted());
        let c = exhaustive_cost(&set);
        let g = greedy_cost(l.sorted(), 0, 2, 2);
        assert!((c - g).abs() < 1e-12);
    }

    #[test]
    fn exhaustive_two_buckets_matches_greedy_two_buckets() {
        // For exactly two buckets the N×N model reduces to the same four
        // cases as the greedy model:
        // T[0][0]=rep0-v0, T[0][1]=rep1-v0, T[1][1]=rep1-v1,
        // T[1][0]=rep0 + (p1/p1)·T[1][1] = rep0 + rep1 - v1.
        let l = sorted(&[(1.0, 1.0), (2.0, 2.0), (8.0, 1.0), (9.0, 4.0)]);
        let set = BucketSet::from_breaks(l.sorted(), &[1]);
        let c = exhaustive_cost(&set);
        let g = greedy_cost(l.sorted(), 0, 1, 3);
        assert!((c - g).abs() < 1e-12, "exhaustive {c} vs greedy {g}");
    }

    #[test]
    fn exhaustive_cost_nonnegative_and_zero_for_identical() {
        let l = sorted(&[(5.0, 1.0); 6]);
        let set = BucketSet::single(l.sorted());
        assert!(exhaustive_cost(&set).abs() < 1e-12);
        let l2 = sorted(&[(1.0, 1.0), (2.0, 1.0), (3.0, 1.0), (10.0, 1.0)]);
        for breaks in [vec![], vec![0], vec![1], vec![2], vec![0, 2], vec![0, 1, 2]] {
            let set = BucketSet::from_breaks(l2.sorted(), &breaks);
            assert!(exhaustive_cost(&set) >= 0.0, "breaks {breaks:?}");
        }
    }

    #[test]
    fn exhaustive_three_bucket_hand_check() {
        // Three singleton buckets, values 1, 2, 4, equal sigs → p = 1/3 each,
        // v_i = rep_i. Successful cells: T[i][j] = rep_j - rep_i for i<=j
        // (diagonal zero). Failure cells:
        // T[1][0] = 1 + [p1·T[1][1] + p2·T[1][2]] / (p1+p2) = 1 + (0+2)/2 = 2
        // T[2][1] = 2 + T[2][2] = 2
        // T[2][0] = 1 + (T[2][1] + T[2][2])/2 = 1 + (2+0)/2 = 2
        // W = (1/9)(0+1+3 + 2+0+2 + 2+2+0) = 12/9
        let l = sorted(&[(1.0, 1.0), (2.0, 1.0), (4.0, 1.0)]);
        let set = BucketSet::from_breaks(l.sorted(), &[0, 1]);
        let c = exhaustive_cost(&set);
        assert!((c - 12.0 / 9.0).abs() < 1e-12, "{c}");
    }

    #[test]
    fn prefix_stats_match_direct_interval_sums() {
        let l = sorted(&[(1.0, 2.0), (3.0, 1.0), (7.0, 4.0), (9.0, 0.5)]);
        let stats = PrefixStats::from_records(l.sorted());
        assert_eq!(stats.len(), 4);
        for lo in 0..4 {
            for hi in lo..4 {
                let mut sig = 0.0;
                let mut wsum = 0.0;
                for r in &l.sorted()[lo..=hi] {
                    sig += r.sig;
                    wsum += r.value * r.sig;
                }
                assert!((stats.sig(lo, hi) - sig).abs() < 1e-12, "sig {lo}..={hi}");
                assert!(
                    (stats.wsum(lo, hi) - wsum).abs() < 1e-12,
                    "wsum {lo}..={hi}"
                );
            }
        }
    }

    #[test]
    fn exhaustive_cost_with_matches_bucket_set_version() {
        let l = sorted(&[
            (1.0, 1.0),
            (2.0, 2.0),
            (3.0, 1.5),
            (10.0, 1.0),
            (11.0, 4.0),
            (50.0, 2.0),
        ]);
        let stats = PrefixStats::from_records(l.sorted());
        let mut scratch = ExhaustiveScratch::new();
        for breaks in [vec![], vec![0], vec![2], vec![2, 4], vec![0, 1, 2, 3, 4]] {
            let canonical = exhaustive_cost(&BucketSet::from_breaks(l.sorted(), &breaks));
            let fast = exhaustive_cost_with(l.sorted(), &stats, &breaks, &mut scratch);
            assert!(
                (canonical - fast).abs() < 1e-12,
                "breaks {breaks:?}: {canonical} vs {fast}"
            );
        }
    }

    #[test]
    fn clustered_data_prefers_cluster_break() {
        // Exhaustive cost should be lowest at the natural cluster boundary.
        let l = sorted(&[
            (10.0, 1.0),
            (11.0, 1.0),
            (12.0, 1.0),
            (200.0, 1.0),
            (201.0, 1.0),
            (202.0, 1.0),
        ]);
        let natural = exhaustive_cost(&BucketSet::from_breaks(l.sorted(), &[2]));
        let single = exhaustive_cost(&BucketSet::single(l.sorted()));
        let wrong = exhaustive_cost(&BucketSet::from_breaks(l.sorted(), &[0]));
        assert!(natural < single);
        assert!(natural < wrong);
    }
}
