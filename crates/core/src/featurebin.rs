//! Feature-conditioned first allocation (*Ponder*-style, arXiv:2408.00047).
//!
//! The paper's bucketing manager keys every resource state on the task's
//! category alone (§IV-D). Ponder's observation is that pre-run task
//! features — input sizes above all — predict peak consumption far better
//! than category membership, because a category mixes small and large
//! inputs. [`FeatureBinned`] conditions on [`TaskFeatures::input_signal`]:
//! the `[0, 1]` signal range is cut into [`FeatureBinned::BINS`] equal bins,
//! each bin keeps its own running peak maximum, and a prediction answers
//! from the task's bin (times a small headroom factor) whenever the bin has
//! enough support.
//!
//! Two fallback rules keep the estimator safe where the feature is
//! uninformative:
//!
//! 1. **Low support** — a bin with fewer than `min_support` observations
//!    answers from the *category state* (the global running max over all
//!    bins) instead, exactly what a category-global algorithm would know.
//! 2. **Category floor** — a bin prediction is clamped from below by the
//!    smallest observed peak, so feature-conditioning can specialize
//!    *within* the category's observed range but never extrapolate under
//!    it. The property suite pins this invariant.
//!
//! Retries ignore the feature (a kill means the sub-state was wrong) and
//! escalate through the category maximum, then doubling.

use crate::estimator::{double_allocation, Prediction, ValueEstimator};
use crate::task::{TaskContext, TaskFeatures};

/// Running support and peak maximum of one feature bin.
#[derive(Debug, Clone, Copy, Default)]
struct BinState {
    count: usize,
    max: f64,
}

/// A feature-conditioned estimator for one (category, resource) state.
#[derive(Debug, Clone)]
pub struct FeatureBinned {
    bins: [BinState; Self::BINS],
    global: BinState,
    min_seen: f64,
    min_support: usize,
    headroom: f64,
}

impl FeatureBinned {
    /// Number of equal-width bins over the `[0, 1]` input-signal range.
    pub const BINS: usize = 8;

    /// Default minimum per-bin observations before the sub-state answers.
    pub const MIN_SUPPORT: usize = 4;

    /// Default multiplicative headroom over a bin's running maximum.
    pub const HEADROOM: f64 = 1.05;

    /// The default configuration (support 4, 5% headroom).
    pub fn new() -> Self {
        Self::with_params(Self::MIN_SUPPORT, Self::HEADROOM)
    }

    /// Ablation constructor: explicit support threshold and headroom.
    pub fn with_params(min_support: usize, headroom: f64) -> Self {
        assert!(min_support >= 1, "min_support must be at least 1");
        assert!(
            headroom.is_finite() && headroom >= 1.0,
            "headroom must be at least 1"
        );
        FeatureBinned {
            bins: [BinState::default(); Self::BINS],
            global: BinState::default(),
            min_seen: f64::INFINITY,
            min_support,
            headroom,
        }
    }

    /// The bin index a signal falls into.
    pub fn bin_of(signal: f64) -> usize {
        let clamped = signal.clamp(0.0, 1.0);
        ((clamped * Self::BINS as f64) as usize).min(Self::BINS - 1)
    }

    /// The category floor: the smallest peak observed so far.
    pub fn floor(&self) -> Option<f64> {
        (self.global.count > 0).then_some(self.min_seen)
    }

    /// Support of the bin the signal maps to (test/observability hook).
    pub fn support_of(&self, signal: f64) -> usize {
        self.bins[Self::bin_of(signal)].count
    }
}

impl Default for FeatureBinned {
    fn default() -> Self {
        Self::new()
    }
}

impl ValueEstimator for FeatureBinned {
    fn name(&self) -> &'static str {
        "feature-binned"
    }

    fn observe(&mut self, value: f64, sig: f64) {
        // Featureless ingestion (oplog replays of pre-feature records):
        // only the category state learns.
        let _ = sig;
        self.global.count += 1;
        self.global.max = self.global.max.max(value);
        self.min_seen = self.min_seen.min(value);
    }

    fn observe_ctx(&mut self, features: &TaskFeatures, value: f64, sig: f64) {
        self.observe(value, sig);
        let bin = &mut self.bins[Self::bin_of(features.input_signal)];
        bin.count += 1;
        bin.max = bin.max.max(value);
    }

    fn len(&self) -> usize {
        self.global.count
    }

    fn predict_first(&mut self, ctx: &TaskContext, _u: f64) -> Option<Prediction> {
        if self.global.count == 0 {
            return None;
        }
        let idx = Self::bin_of(ctx.features.input_signal);
        let bin = self.bins[idx];
        if bin.count >= self.min_support {
            // Rule 2: never below the category floor.
            let value = (bin.max * self.headroom).max(self.min_seen);
            Some(Prediction::feature_bin(value, idx))
        } else {
            // Rule 1: low support falls back to the category state.
            Some(Prediction::point(self.global.max * self.headroom))
        }
    }

    fn predict_retry(&mut self, _ctx: &TaskContext, prev: f64, _u: f64) -> Option<Prediction> {
        if self.global.count == 0 {
            return None;
        }
        // The sub-state under-predicted; escalate through the category max,
        // then geometrically.
        let category_max = self.global.max * self.headroom;
        if prev < category_max {
            Some(Prediction::point(category_max))
        } else {
            Some(Prediction::doubling(
                double_allocation(prev).max(prev * 2.0),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::CategoryId;

    fn ctx(signal: f64) -> TaskContext {
        TaskContext::new(CategoryId(0), TaskFeatures::with_input_signal(signal))
    }

    #[test]
    fn empty_has_no_prediction() {
        let mut fb = FeatureBinned::new();
        assert!(fb.predict_first(&ctx(0.5), 0.3).is_none());
        assert!(fb.predict_retry(&ctx(0.5), 10.0, 0.3).is_none());
        assert!(fb.floor().is_none());
    }

    #[test]
    fn bins_partition_the_signal_range() {
        assert_eq!(FeatureBinned::bin_of(0.0), 0);
        assert_eq!(FeatureBinned::bin_of(1.0), FeatureBinned::BINS - 1);
        assert_eq!(FeatureBinned::bin_of(-3.0), 0);
        assert_eq!(FeatureBinned::bin_of(7.0), FeatureBinned::BINS - 1);
        // 0.5 lands exactly on the boundary of the upper half.
        assert_eq!(FeatureBinned::bin_of(0.5), FeatureBinned::BINS / 2);
    }

    #[test]
    fn supported_bin_specializes_below_the_category_max() {
        let mut fb = FeatureBinned::new();
        // Small-input mode near signal 0.2 peaks ~100; large-input mode
        // near 0.8 peaks ~1000.
        for i in 0..10 {
            fb.observe_ctx(&TaskFeatures::with_input_signal(0.2), 100.0 + i as f64, 1.0);
            fb.observe_ctx(
                &TaskFeatures::with_input_signal(0.8),
                1000.0 + i as f64,
                1.0,
            );
        }
        let small = fb.predict_first(&ctx(0.2), 0.5).unwrap();
        let large = fb.predict_first(&ctx(0.8), 0.5).unwrap();
        assert!(matches!(
            small.source,
            crate::estimator::AllocSource::FeatureBin { .. }
        ));
        // The small bin answers near its own max, far under the global max.
        assert!(small.value < 200.0, "small bin over-allocated: {small:?}");
        assert!(
            large.value >= 1009.0,
            "large bin under-allocated: {large:?}"
        );
        // A bin with no support falls back to the category state.
        let unseen = fb.predict_first(&ctx(0.5), 0.5).unwrap();
        assert_eq!(unseen.source, crate::estimator::AllocSource::Point);
        assert!(unseen.value >= 1009.0);
    }

    #[test]
    fn low_support_falls_back_until_threshold() {
        let mut fb = FeatureBinned::new();
        for i in 0..FeatureBinned::MIN_SUPPORT {
            fb.observe_ctx(&TaskFeatures::with_input_signal(0.9), 500.0, (i + 1) as f64);
            fb.observe_ctx(&TaskFeatures::with_input_signal(0.1), 50.0, (i + 1) as f64);
            let p = fb.predict_first(&ctx(0.1), 0.0).unwrap();
            if i + 1 < FeatureBinned::MIN_SUPPORT {
                assert_eq!(p.source, crate::estimator::AllocSource::Point, "i={i}");
            } else {
                assert!(
                    matches!(p.source, crate::estimator::AllocSource::FeatureBin { .. }),
                    "i={i}"
                );
            }
        }
    }

    #[test]
    fn predictions_never_drop_below_the_category_floor() {
        let mut fb = FeatureBinned::new();
        // A bin full of tiny peaks, but the category's smallest peak is
        // larger: the clamp keeps the bin from extrapolating under it.
        for _ in 0..8 {
            fb.observe_ctx(&TaskFeatures::with_input_signal(0.3), 10.0, 1.0);
        }
        let floor = fb.floor().unwrap();
        let p = fb.predict_first(&ctx(0.3), 0.0).unwrap();
        assert!(p.value >= floor);
    }

    #[test]
    fn retry_escalates_through_category_max_then_doubles() {
        let mut fb = FeatureBinned::new();
        for _ in 0..8 {
            fb.observe_ctx(&TaskFeatures::with_input_signal(0.2), 100.0, 1.0);
            fb.observe_ctx(&TaskFeatures::with_input_signal(0.8), 1000.0, 1.0);
        }
        let first = fb.predict_first(&ctx(0.2), 0.0).unwrap().value;
        let second = fb.predict_retry(&ctx(0.2), first, 0.0).unwrap().value;
        let third = fb.predict_retry(&ctx(0.2), second, 0.0).unwrap().value;
        assert!(second > first);
        assert_eq!(second, 1000.0 * FeatureBinned::HEADROOM);
        assert_eq!(third, second * 2.0);
    }

    #[test]
    fn featureless_observe_only_feeds_the_category_state() {
        let mut fb = FeatureBinned::new();
        for _ in 0..10 {
            fb.observe(400.0, 1.0);
        }
        assert_eq!(fb.len(), 10);
        assert_eq!(fb.support_of(0.0), 0);
        let p = fb.predict_first(&ctx(0.0), 0.0).unwrap();
        assert_eq!(p.source, crate::estimator::AllocSource::Point);
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn zero_support_rejected() {
        FeatureBinned::with_params(0, 1.1);
    }
}
