//! The partitioner abstraction shared by the bucketing family.
//!
//! Greedy Bucketing, Exhaustive Bucketing and Quantized Bucketing differ
//! *only* in how they cut a sorted record list into buckets (§IV-A: the
//! algorithms "only diverge on how to update the internal bucketing states
//! and share the resource prediction approach"). A [`Partitioner`] computes
//! the cut; [`crate::policy::BucketingEstimator`] layers the shared
//! probabilistic prediction/retry behaviour on top.

use crate::record::ScalarRecord;

/// Computes bucket break points for a sorted record list.
pub trait Partitioner: Send {
    /// Stable algorithm name.
    fn name(&self) -> &'static str;

    /// Break indices for `records` (sorted ascending by value): strictly
    /// increasing inclusive end-indices of every bucket except the last.
    /// An empty vector means a single bucket. Must be valid input for
    /// [`crate::bucket::BucketSet::from_breaks`].
    fn partition(&self, records: &[ScalarRecord]) -> Vec<usize>;
}

impl<P: Partitioner + ?Sized> Partitioner for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn partition(&self, records: &[ScalarRecord]) -> Vec<usize> {
        (**self).partition(records)
    }
}
